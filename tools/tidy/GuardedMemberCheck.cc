#include "GuardedMemberCheck.h"

#include "LemonsTidyUtils.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace lemons::tidy {

namespace {

constexpr llvm::StringLiteral kCode("T004");

/** Whether @p record is the annotated lemons::Mutex wrapper. */
bool
isLemonsMutex(const clang::CXXRecordDecl *record)
{
    return record != nullptr &&
           record->getQualifiedNameAsString() == "lemons::Mutex";
}

/** Whether the class owning @p field also owns a lemons::Mutex. */
bool
ownerHasMutex(const clang::FieldDecl *field)
{
    const auto *owner =
        llvm::dyn_cast<clang::CXXRecordDecl>(field->getParent());
    if (owner == nullptr)
        return false;
    for (const clang::FieldDecl *member : owner->fields())
        if (isLemonsMutex(member->getType()->getAsCXXRecordDecl()))
            return true;
    return false;
}

/** Whether @p type desugars to std::atomic (already race-safe and
 *  deliberately outside the GUARDED_BY discipline). */
bool
isAtomic(clang::QualType type)
{
    const auto *record = type.getCanonicalType()->getAsCXXRecordDecl();
    return record != nullptr &&
           record->getQualifiedNameAsString() == "std::atomic";
}

/**
 * Whether the enclosing function holds the lock: it declares a
 * lemons::MutexLock guard, or it is annotated with
 * requires_capability / acquire_capability (LEMONS_REQUIRES /
 * LEMONS_ACQUIRE), meaning the caller holds the mutex for it.
 */
bool
functionHoldsLock(const clang::FunctionDecl *function,
                  clang::ASTContext &context)
{
    if (function->hasAttr<clang::RequiresCapabilityAttr>() ||
        function->hasAttr<clang::AcquireCapabilityAttr>())
        return true;
    if (!function->hasBody())
        return false;
    const auto guards = match(
        stmt(forEachDescendant(
            varDecl(hasType(cxxRecordDecl(hasName("::lemons::MutexLock"))))
                .bind("guard"))),
        *function->getBody(), context);
    return !guards.empty();
}

} // namespace

void
GuardedMemberCheck::registerMatchers(MatchFinder *finder)
{
    const auto thisField =
        memberExpr(member(fieldDecl().bind("field")),
                   hasObjectExpression(ignoringParenImpCasts(cxxThisExpr())));
    const auto inMember =
        hasAncestor(functionDecl(hasBody(compoundStmt())).bind("function"));

    finder->addMatcher(binaryOperator(isAssignmentOperator(),
                                      hasLHS(thisField), inMember)
                           .bind("mutation"),
                       this);
    finder->addMatcher(unaryOperator(hasAnyOperatorName("++", "--"),
                                     hasUnaryOperand(thisField), inMember)
                           .bind("mutation"),
                       this);
    finder->addMatcher(
        cxxMemberCallExpr(on(ignoringParenImpCasts(thisField)),
                          callee(cxxMethodDecl(unless(isConst()))), inMember)
            .bind("mutation"),
        this);
    finder->addMatcher(
        cxxOperatorCallExpr(callee(cxxMethodDecl(unless(isConst()))),
                            hasArgument(0, ignoringParenImpCasts(thisField)),
                            inMember)
            .bind("mutation"),
        this);
}

void
GuardedMemberCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *field = result.Nodes.getNodeAs<clang::FieldDecl>("field");
    const auto *function =
        result.Nodes.getNodeAs<clang::FunctionDecl>("function");
    const auto *mutation = result.Nodes.getNodeAs<clang::Stmt>("mutation");
    if (field == nullptr || function == nullptr || mutation == nullptr)
        return;
    if (field->hasAttr<clang::GuardedByAttr>() ||
        field->hasAttr<clang::PtGuardedByAttr>())
        return;
    if (isLemonsMutex(field->getType()->getAsCXXRecordDecl()) ||
        isAtomic(field->getType()))
        return;
    if (!ownerHasMutex(field))
        return;
    if (!functionHoldsLock(function, *result.Context))
        return;

    const clang::SourceManager &sm = *result.SourceManager;
    const clang::SourceLocation loc =
        sm.getExpansionLoc(mutation->getBeginLoc());
    if (sm.isInSystemHeader(loc) || allowSuppressed(sm, loc, kCode))
        return;

    const CodeRow row = codeRow(kCode);
    diag(loc, "%0: member %1 is mutated under a MutexLock but carries no "
              "LEMONS_GUARDED_BY annotation, so -Wthread-safety cannot "
              "see unlocked accesses to it [%2]")
        << row.id << field << row.title;
    diag(field->getLocation(), "annotate the member here with "
                               "LEMONS_GUARDED_BY(<mutex>)",
         clang::DiagnosticIDs::Note);
}

} // namespace lemons::tidy
