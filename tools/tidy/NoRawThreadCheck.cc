#include "NoRawThreadCheck.h"

#include "LemonsTidyUtils.h"

using namespace clang::ast_matchers;

namespace lemons::tidy {

namespace {
constexpr llvm::StringLiteral kCode("T001");
} // namespace

NoRawThreadCheck::NoRawThreadCheck(llvm::StringRef name,
                                   clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      engineFilePattern(Options.get("EngineFilePattern", "(^|/)src/engine/")),
      engineFiles(engineFilePattern)
{
}

void
NoRawThreadCheck::storeOptions(clang::tidy::ClangTidyOptions::OptionMap &options)
{
    Options.store(options, "EngineFilePattern", engineFilePattern);
}

void
NoRawThreadCheck::registerMatchers(MatchFinder *finder)
{
    const auto threadClass =
        cxxRecordDecl(hasAnyName("::std::thread", "::std::jthread"));
    finder->addMatcher(
        cxxConstructExpr(
            hasDeclaration(cxxConstructorDecl(ofClass(threadClass))))
            .bind("construct"),
        this);
    finder->addMatcher(
        callExpr(callee(functionDecl(hasName("::std::async"))))
            .bind("async"),
        this);
    finder->addMatcher(
        cxxMemberCallExpr(callee(
                              cxxMethodDecl(hasName("detach"),
                                            ofClass(threadClass))))
            .bind("detach"),
        this);
}

void
NoRawThreadCheck::check(const MatchFinder::MatchResult &result)
{
    const clang::SourceManager &sm = *result.SourceManager;
    const CodeRow row = codeRow(kCode);

    if (const auto *detach =
            result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("detach")) {
        const clang::SourceLocation loc =
            sm.getExpansionLoc(detach->getBeginLoc());
        if (sm.isInSystemHeader(loc) || allowSuppressed(sm, loc, kCode))
            return;
        diag(loc, "%0: std::thread::detach orphans the thread past every "
                  "checkpoint and shutdown path; join it, or submit the "
                  "work to engine::ThreadPool::global() [%1]")
            << row.id << row.title;
        return;
    }

    const clang::Expr *use = nullptr;
    if (const auto *construct =
            result.Nodes.getNodeAs<clang::CXXConstructExpr>("construct"))
        use = construct;
    else if (const auto *async =
                 result.Nodes.getNodeAs<clang::CallExpr>("async"))
        use = async;
    if (use == nullptr)
        return;

    const clang::SourceLocation loc = sm.getExpansionLoc(use->getBeginLoc());
    if (sm.isInSystemHeader(loc) || inFileMatching(sm, loc, engineFiles) ||
        allowSuppressed(sm, loc, kCode))
        return;
    diag(loc, "%0: raw thread creation outside src/engine; submit the "
              "work through engine::ThreadPool::global() so thread counts "
              "stay bounded and merges stay chunk-ordered [%1]")
        << row.id << row.title;
}

} // namespace lemons::tidy
