/**
 * @file
 * T004 lemons-guarded-member: any data member of a class that owns a
 * util::Mutex and is mutated inside a lock-holding member function
 * (one that declares a MutexLock or is annotated LEMONS_REQUIRES)
 * must carry LEMONS_GUARDED_BY. Clang's -Wthread-safety only reasons
 * about members that are annotated — an unannotated member silently
 * opts out of the whole analysis, which is exactly the gap this check
 * closes. std::atomic members and the mutexes themselves are exempt.
 */

#ifndef LEMONS_TOOLS_TIDY_GUARDED_MEMBER_CHECK_H_
#define LEMONS_TOOLS_TIDY_GUARDED_MEMBER_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace lemons::tidy {

class GuardedMemberCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_GUARDED_MEMBER_CHECK_H_
