#ifndef FIXTURE_ARCH_TOPOLOGY_H_
#define FIXTURE_ARCH_TOPOLOGY_H_

// Seeded violation: half of an include cycle with wiring.h.
#include "arch/wiring.h"

inline int
fanout()
{
    return 4;
}

#endif // FIXTURE_ARCH_TOPOLOGY_H_
