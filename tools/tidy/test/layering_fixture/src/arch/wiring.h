#ifndef FIXTURE_ARCH_WIRING_H_
#define FIXTURE_ARCH_WIRING_H_

// Seeded violation: the other half of the cycle with topology.h.
#include "arch/topology.h"

inline int
lanes()
{
    return 8;
}

#endif // FIXTURE_ARCH_WIRING_H_
