#ifndef FIXTURE_UTIL_CLOCK_H_
#define FIXTURE_UTIL_CLOCK_H_

// Seeded violation: util is the bottom layer and must not reach up
// into arch.
#include "arch/topology.h"

inline int
tick()
{
    return fanout() + 1;
}

#endif // FIXTURE_UTIL_CLOCK_H_
