#!/usr/bin/env bash
# Fixture driver for the lemons-* clang-tidy checks.
#
#   run_fixture_tests.sh <plugin.so> <clang-tidy> <repo src dir> <fixtures dir>
#
# Every fixtures/**/t<code>_positive*.cc must produce at least one
# diagnostic from its check (carrying the matching T-code), and every
# t<code>_negative*.cc must produce none. A fixture that fails to
# compile fails the test outright — a silent check on broken code
# proves nothing. Exits 77 (ctest SKIP_RETURN_CODE) when the host has
# no clang-tidy or one too old to support -load (< 15).

set -u

plugin=${1:?plugin path}
clang_tidy=${2:-}
src_dir=${3:?repo src dir}
fixtures=${4:?fixtures dir}

if [[ -z "${clang_tidy}" || "${clang_tidy}" == *-NOTFOUND ]]; then
    echo "SKIP: no clang-tidy binary found" >&2
    exit 77
fi
if [[ ! -f "${plugin}" ]]; then
    echo "SKIP: plugin ${plugin} was not built" >&2
    exit 77
fi

# Capability probe: -load appeared in clang-tidy 15. An older binary
# rejects the flag before looking at the checks list.
if ! "${clang_tidy}" -load "${plugin}" -checks='-*,lemons-*' \
        --list-checks 2>/dev/null | grep -q 'lemons-no-raw-thread'; then
    echo "SKIP: ${clang_tidy} cannot load the lemons plugin" \
         "(needs clang-tidy >= 15)" >&2
    exit 77
fi

check_for() {
    case "$1" in
        t001) echo lemons-no-raw-thread ;;
        t002) echo lemons-deterministic-sim ;;
        t003) echo lemons-memoized-math ;;
        t004) echo lemons-guarded-member ;;
        t005) echo lemons-obs-scoped-timer ;;
        t006) echo lemons-stats-accumulation ;;
        *) echo "" ;;
    esac
}

failures=0
ran=0

run_fixture() {
    local file=$1
    local base prefix check code expect output status
    base=$(basename "${file}")
    prefix=${base:0:4}
    check=$(check_for "${prefix}")
    if [[ -z "${check}" ]]; then
        echo "FAIL ${base}: unknown fixture prefix '${prefix}'" >&2
        failures=$((failures + 1))
        return
    fi
    code=T${prefix:1}
    if [[ "${base}" == *positive* ]]; then
        expect=positive
    elif [[ "${base}" == *negative* ]]; then
        expect=negative
    else
        echo "FAIL ${base}: name must contain 'positive' or 'negative'" >&2
        failures=$((failures + 1))
        return
    fi

    output=$("${clang_tidy}" -load "${plugin}" -checks="-*,${check}" \
        --quiet "${file}" -- -std=c++20 "-I${src_dir}" 2>&1)
    status=$?
    ran=$((ran + 1))

    if grep -q ' error: ' <<<"${output}"; then
        echo "FAIL ${base}: fixture does not compile" >&2
        echo "${output}" >&2
        failures=$((failures + 1))
        return
    fi

    local hits
    hits=$(grep -c "warning: .*\[${check}\]" <<<"${output}")
    if [[ "${expect}" == positive ]]; then
        if [[ "${hits}" -eq 0 ]]; then
            echo "FAIL ${base}: expected a [${check}] diagnostic," \
                 "got none (exit ${status})" >&2
            echo "${output}" >&2
            failures=$((failures + 1))
        elif ! grep -q "warning: ${code}:" <<<"${output}"; then
            echo "FAIL ${base}: diagnostic is missing the ${code}" \
                 "registry code" >&2
            echo "${output}" >&2
            failures=$((failures + 1))
        else
            echo "PASS ${base} (${hits} diagnostic(s))"
        fi
    else
        if [[ "${hits}" -ne 0 ]]; then
            echo "FAIL ${base}: expected silence, got:" >&2
            echo "${output}" >&2
            failures=$((failures + 1))
        else
            echo "PASS ${base} (silent)"
        fi
    fi
}

while IFS= read -r file; do
    run_fixture "${file}"
done < <(find "${fixtures}" -name '*.cc' | sort)

if [[ "${ran}" -eq 0 ]]; then
    echo "FAIL: no fixtures found under ${fixtures}" >&2
    exit 1
fi

echo "${ran} fixture(s), ${failures} failure(s)"
[[ "${failures}" -eq 0 ]]
