#!/usr/bin/env bash
# ctest driver for scripts/check_layering.py: the real tree must be
# clean, and the seeded-violation fixture must fail with both planted
# findings (downward include + header cycle) reported. Exit 77 when
# the interpreter lacks tomllib so ctest records a skip, not a failure.
#
#   run_layering_test.sh <repo root>

set -u

repo=${1:?repo root}
checker=${repo}/scripts/check_layering.py
fixture=${repo}/tools/tidy/test/layering_fixture

output=$(python3 "${checker}" "${repo}/src" \
    --config "${repo}/scripts/layering.toml" 2>&1)
status=$?
if [[ ${status} -eq 77 ]]; then
    echo "${output}"
    exit 77
fi
if [[ ${status} -ne 0 ]]; then
    echo "FAIL: src/ violates the layering contract:" >&2
    echo "${output}" >&2
    exit 1
fi
echo "src/: ${output}"

output=$(python3 "${checker}" "${fixture}/src" \
    --config "${fixture}/layering.toml" 2>&1)
status=$?
if [[ ${status} -ne 1 ]]; then
    echo "FAIL: fixture expected exit 1, got ${status}:" >&2
    echo "${output}" >&2
    exit 1
fi
if ! grep -q 'util -> arch is not in \[allow\]' <<<"${output}"; then
    echo "FAIL: fixture's downward include was not reported:" >&2
    echo "${output}" >&2
    exit 1
fi
if ! grep -q 'include cycle: arch/' <<<"${output}"; then
    echo "FAIL: fixture's header cycle was not reported:" >&2
    echo "${output}" >&2
    exit 1
fi
echo "fixture: both seeded violations reported"
