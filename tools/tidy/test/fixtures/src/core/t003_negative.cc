// T003 lemons-memoized-math, negative: the memoized entry points
// themselves, exp of a plain value, and an annotated pow are fine.

#include <cmath>

#include "engine/cache.h"

double
memoizedWeibull(double x)
{
    return lemons::engine::cachedWeibullSurvival(2000.0, 1.8, x); // fine
}

double
memoizedStructure(double x)
{
    return lemons::engine::cachedParallelLogReliability(2000.0, 1.8, 8, 3,
                                                        x); // fine
}

double
memoizedTail()
{
    return lemons::engine::cachedLogBinomialTailAtLeast(8, 3, 0.99); // fine
}

double
expOfPlainValue(double logTerm)
{
    return std::exp(logTerm); // fine: nothing cacheable underneath
}

double
annotatedPow(double base)
{
    // LEMONS-TIDY-ALLOW(T003): operand varies every call, memo cannot hit
    return std::pow(base, 2.0);
}
