// T003 lemons-memoized-math: direct reliability math in a src/core/
// TU where engine::cache has a bit-identical memoized drop-in.

#include <cmath>

#include "util/math.h"
#include "wearout/weibull.h"

double
directWeibull(double x)
{
    const lemons::wearout::Weibull weibull(2000.0, 1.8);
    return weibull.reliability(x); // expect T003: cachedWeibullSurvival
}

double
directBinomialTail()
{
    return lemons::logBinomialTailAtLeast(8, 3, 0.99); // expect T003
}

double
rawPow(double x, double beta)
{
    return std::pow(x, beta); // expect T003: raw pow on the hot path
}

double
expOfLogTerm(double x)
{
    const lemons::wearout::Weibull weibull(2000.0, 1.8);
    return std::exp(weibull.logReliability(x)); // expect T003: fused memo
}
