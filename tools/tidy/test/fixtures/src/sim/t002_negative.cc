// T002 lemons-deterministic-sim, negative: seeded generators, ordered
// containers, and an annotated deadline check are all fine.

#include <chrono>
#include <map>
#include <random>
#include <string>

unsigned
seededStream()
{
    std::mt19937_64 generator(0x5eedULL); // fine: fixed seed
    return static_cast<unsigned>(generator());
}

double
orderedIteration(const std::map<std::string, double> &weights)
{
    double total = 0.0;
    for (const auto &entry : weights) // fine: deterministic order
        total += entry.second;
    return total;
}

long
deadlineCheck()
{
    // LEMONS-TIDY-ALLOW(T002): wall-clock deadline, not trial state
    const auto now = std::chrono::steady_clock::now();
    return now.time_since_epoch().count();
}
