// T001 lemons-no-raw-thread: raw thread creation outside src/engine.
// This file sits under a src/sim/ path, so every spawn below must be
// diagnosed (and detach is diagnosed regardless of directory).

#include <future>
#include <thread>

namespace {

void
work()
{
}

} // namespace

void
spawnDirect()
{
    std::thread worker(work); // expect T001: raw construction
    worker.join();
}

void
spawnAsync()
{
    auto handle = std::async(std::launch::async, work); // expect T001
    handle.get();
}

void
spawnAndDetach()
{
    std::thread worker(work); // expect T001: raw construction
    worker.detach();          // expect T001: detach orphans the thread
}
