// T002 lemons-deterministic-sim: nondeterminism sources in a
// simulation TU. Every construct below must be diagnosed.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <string>
#include <unordered_map>

int
libcRandomness()
{
    int sink = std::rand();                     // expect T002
    sink += static_cast<int>(::time(nullptr));  // expect T002
    return sink;
}

unsigned
hardwareEntropy()
{
    std::random_device device; // expect T002
    return device();
}

long
wallClock()
{
    const auto now = std::chrono::steady_clock::now(); // expect T002
    return now.time_since_epoch().count();
}

double
hashOrderIteration(const std::unordered_map<std::string, double> &weights)
{
    double total = 0.0;
    for (const auto &entry : weights) // expect T002: hash order leaks
        total += entry.second;
    return total;
}
