// T005 lemons-obs-scoped-timer: instrumentation misuse — a discarded
// timer temporary, a guard constructed every loop iteration, and a
// metric name outside the registered namespaces.

#include "obs/metrics.h"

void
discardedTemporary()
{
    lemons::obs::Timer &timer =
        lemons::obs::Registry::global().timer("sim.fixture.discarded");
    lemons::obs::ScopedTimer{timer}; // expect T005: times nothing
}

void
timerInLoop(unsigned iterations)
{
    for (unsigned i = 0; i < iterations; ++i) {
        LEMONS_OBS_SCOPED_TIMER("sim.fixture.loop"); // expect T005
    }
}

void
rogueNamespace()
{
    lemons::obs::Registry::global().counter("rogue.events").add(1);
    // ^ expect T005: 'rogue.' is not a registered namespace
}
