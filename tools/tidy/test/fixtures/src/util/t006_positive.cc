// T006 lemons-stats-accumulation: floating-point accumulation into
// captured state from a parallel worker body commits in thread arrival
// order. Self-contained stand-in for engine::ThreadPool::parallelFor.

namespace {

template <typename F>
void
parallelFor(unsigned count, F body)
{
    for (unsigned i = 0; i < count; ++i)
        body(i);
}

struct Tally
{
    double sum = 0.0;

    void
    accumulate(unsigned count)
    {
        parallelFor(count, [this](unsigned i) {
            sum += static_cast<double>(i); // expect T006: member state
        });
    }
};

} // namespace

double
sumTrials(unsigned count)
{
    double total = 0.0;
    parallelFor(count, [&](unsigned i) {
        total += static_cast<double>(i); // expect T006: by-ref capture
    });
    Tally tally;
    tally.accumulate(count);
    return total + tally.sum;
}
