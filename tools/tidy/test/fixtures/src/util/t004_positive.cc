// T004 lemons-guarded-member: members mutated under a MutexLock must
// carry LEMONS_GUARDED_BY so -Wthread-safety can track them.

#include <cstdint>

#include "util/mutex.h"

namespace {

class Accumulator
{
  public:
    void
    add(double x)
    {
        lemons::MutexLock lock(mu);
        total += x;  // expect T004: no GUARDED_BY on total
        ++additions; // expect T004: no GUARDED_BY on additions
    }

  private:
    lemons::Mutex mu;
    double total = 0.0;
    uint64_t additions = 0;
};

} // namespace

void
touch(double x)
{
    Accumulator accumulator;
    accumulator.add(x);
}
