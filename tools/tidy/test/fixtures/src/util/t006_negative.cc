// T006 lemons-stats-accumulation, negative: worker-local accumulators
// folded in after the dispatch, integer counters, and lambdas handed
// to non-parallel entry points are all fine.

namespace {

template <typename F>
void
parallelFor(unsigned count, F body)
{
    for (unsigned i = 0; i < count; ++i)
        body(i);
}

template <typename F>
double
applyOnce(F body)
{
    return body(1u);
}

} // namespace

double
workerLocal(unsigned count, double *results)
{
    parallelFor(count, [&](unsigned i) {
        double local = 0.0;
        local += static_cast<double>(i); // fine: lambda-local state
        results[i] = local;
    });
    double total = 0.0;
    for (unsigned i = 0; i < count; ++i)
        total += results[i]; // fine: sequential fold, no lambda
    return total;
}

double
sequentialHelper(double seed)
{
    double total = seed;
    const double extra = applyOnce([&](unsigned i) {
        total += static_cast<double>(i); // fine: applyOnce is serial
        return total;
    });
    return extra;
}
