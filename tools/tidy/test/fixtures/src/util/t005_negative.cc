// T005 lemons-obs-scoped-timer, negative: a named guard over the whole
// function, metrics in registered namespaces, and an annotated
// per-iteration timer are all fine.

#include "obs/metrics.h"

double
timedRegion(unsigned iterations)
{
    LEMONS_OBS_SCOPED_TIMER("sim.fixture.region"); // fine: named guard
    double total = 0.0;
    for (unsigned i = 0; i < iterations; ++i)
        total += static_cast<double>(i);
    return total;
}

void
registeredNamespaces()
{
    lemons::obs::Registry::global().counter("core.fixture.events").add(1);
    lemons::obs::Registry::global().counter("fleet.fixture.ticks").add(1);
}

void
intendedPerIteration(unsigned iterations)
{
    for (unsigned i = 0; i < iterations; ++i) {
        // LEMONS-TIDY-ALLOW(T005): per-iteration latency is the metric
        LEMONS_OBS_SCOPED_TIMER("sim.fixture.iteration");
    }
}
