// T004 lemons-guarded-member, negative: annotated members, atomics,
// and classes without a lemons::Mutex are all outside the check.

#include <atomic>
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Annotated
{
  public:
    void
    add(double x)
    {
        lemons::MutexLock lock(mu);
        total += x;                               // fine: GUARDED_BY
        events.fetch_add(1, std::memory_order_relaxed); // fine: atomic
    }

  private:
    lemons::Mutex mu;
    double total LEMONS_GUARDED_BY(mu) = 0.0;
    std::atomic<uint64_t> events{0};
};

class Unlocked
{
  public:
    void
    add(double x)
    {
        total += x; // fine: single-threaded class, no mutex at all
    }

  private:
    double total = 0.0;
};

} // namespace

void
touch(double x)
{
    Annotated annotated;
    annotated.add(x);
    Unlocked unlocked;
    unlocked.add(x);
}
