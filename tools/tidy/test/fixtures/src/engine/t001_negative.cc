// T001 lemons-no-raw-thread, negative: this file sits under a
// src/engine/ path, where the thread pool itself is allowed to create
// its worker threads — as long as it joins them.

#include <thread>
#include <vector>

namespace {

void
work()
{
}

} // namespace

void
poolStart()
{
    std::vector<std::thread> workers;
    workers.emplace_back(work); // fine: engine-internal spawn
    std::thread extra(work);    // fine: engine-internal spawn
    extra.join();
    for (std::thread &worker : workers)
        worker.join();
}
