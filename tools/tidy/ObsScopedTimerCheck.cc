#include "ObsScopedTimerCheck.h"

#include "LemonsTidyUtils.h"
#include "clang/AST/ParentMapContext.h"

using namespace clang::ast_matchers;

namespace lemons::tidy {

namespace {

constexpr llvm::StringLiteral kCode("T005");

/**
 * Walks the parent chain of @p node. Returns the loop statement the
 * node sits in, or nullptr when a function/lambda boundary (a new
 * execution context — the loop does not re-run that body) or the
 * translation unit is reached first. A declaration parent also means
 * "not in a loop" (e.g. a default-member-initializer context).
 */
const clang::Stmt *
enclosingLoop(clang::DynTypedNode node, clang::ASTContext &context)
{
    for (;;) {
        const auto parents = context.getParents(node);
        if (parents.empty())
            return nullptr;
        const clang::DynTypedNode parent = parents[0];
        if (const auto *stmt = parent.get<clang::Stmt>()) {
            if (llvm::isa<clang::ForStmt>(stmt) ||
                llvm::isa<clang::WhileStmt>(stmt) ||
                llvm::isa<clang::DoStmt>(stmt) ||
                llvm::isa<clang::CXXForRangeStmt>(stmt))
                return stmt;
            if (llvm::isa<clang::LambdaExpr>(stmt))
                return nullptr;
            node = parent;
            continue;
        }
        return nullptr;
    }
}

/** Whether the parent chain shows the temporary is discarded (its
 *  full expression is a statement, not an initializer). */
bool
isDiscardedTemporary(const clang::Expr *temporary,
                     clang::ASTContext &context)
{
    clang::DynTypedNode node = clang::DynTypedNode::create(*temporary);
    for (;;) {
        const auto parents = context.getParents(node);
        if (parents.empty())
            return false;
        const clang::DynTypedNode parent = parents[0];
        if (parent.get<clang::VarDecl>() != nullptr ||
            parent.get<clang::CXXCtorInitializer>() != nullptr ||
            parent.get<clang::ReturnStmt>() != nullptr)
            return false;
        if (parent.get<clang::CompoundStmt>() != nullptr)
            return true;
        if (parent.get<clang::Stmt>() == nullptr)
            return false;
        node = parent;
    }
}

} // namespace

ObsScopedTimerCheck::ObsScopedTimerCheck(
    llvm::StringRef name, clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      namespaceOption(Options.get(
          "Namespaces", "sim.;core.;rs.;shamir.;arch.;fleet.;wearout."))
{
    llvm::SmallVector<llvm::StringRef, 8> parts;
    llvm::StringRef(namespaceOption).split(parts, ';', -1, false);
    for (llvm::StringRef part : parts)
        namespaces.emplace_back(part.trim());
}

void
ObsScopedTimerCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &options)
{
    Options.store(options, "Namespaces", namespaceOption);
}

void
ObsScopedTimerCheck::registerMatchers(MatchFinder *finder)
{
    const auto scopedTimer =
        cxxRecordDecl(hasName("::lemons::obs::ScopedTimer"));
    finder->addMatcher(
        cxxTemporaryObjectExpr(hasType(scopedTimer)).bind("temporary"),
        this);
    finder->addMatcher(varDecl(hasType(scopedTimer)).bind("guard"), this);
    finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("counter", "timer", "histogram"),
                ofClass(hasName("::lemons::obs::Registry")))),
            // The name argument is a std::string_view, so the literal
            // usually sits under a string_view constructor rather than
            // a plain implicit cast.
            hasArgument(0, expr(anyOf(
                               ignoringParenImpCasts(
                                   stringLiteral().bind("name")),
                               hasDescendant(
                                   stringLiteral().bind("name"))))))
            .bind("registration"),
        this);
}

void
ObsScopedTimerCheck::check(const MatchFinder::MatchResult &result)
{
    const clang::SourceManager &sm = *result.SourceManager;
    const CodeRow row = codeRow(kCode);

    if (const auto *temporary =
            result.Nodes.getNodeAs<clang::CXXTemporaryObjectExpr>(
                "temporary")) {
        const clang::SourceLocation loc =
            sm.getExpansionLoc(temporary->getBeginLoc());
        if (sm.isInSystemHeader(loc) || allowSuppressed(sm, loc, kCode))
            return;
        if (!isDiscardedTemporary(temporary, *result.Context))
            return;
        diag(loc, "%0: ScopedTimer temporary is destroyed inside the same "
                  "full expression and times nothing; use "
                  "LEMONS_OBS_SCOPED_TIMER to bind a named guard [%1]")
            << row.id << row.title;
        return;
    }

    if (const auto *guard =
            result.Nodes.getNodeAs<clang::VarDecl>("guard")) {
        const clang::SourceLocation loc =
            sm.getExpansionLoc(guard->getLocation());
        if (sm.isInSystemHeader(loc) || allowSuppressed(sm, loc, kCode))
            return;
        if (enclosingLoop(clang::DynTypedNode::create(*guard),
                          *result.Context) == nullptr)
            return;
        diag(loc, "%0: ScopedTimer constructed every loop iteration; wrap "
                  "the loop with one timer, or annotate "
                  "LEMONS-TIDY-ALLOW(T005) if per-iteration timing is "
                  "intended [%1]")
            << row.id << row.title;
        return;
    }

    if (const auto *name =
            result.Nodes.getNodeAs<clang::StringLiteral>("name")) {
        const auto *registration =
            result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("registration");
        const clang::SourceLocation loc = sm.getExpansionLoc(
            registration == nullptr ? name->getBeginLoc()
                                    : registration->getBeginLoc());
        if (sm.isInSystemHeader(loc) || allowSuppressed(sm, loc, kCode))
            return;
        const llvm::StringRef metric = name->getString();
        // take_front instead of startswith/starts_with: the spelling
        // changed across the LLVM 14..18 span this plugin builds on.
        for (const std::string &prefix : namespaces)
            if (metric.size() >= prefix.size() &&
                metric.take_front(prefix.size()) == prefix)
                return;
        diag(loc, "%0: metric name '%1' is outside the registered "
                  "namespaces (%2); dashboards and snapshot diffs key on "
                  "those prefixes [%3]")
            << row.id << metric << namespaceOption << row.title;
    }
}

} // namespace lemons::tidy
