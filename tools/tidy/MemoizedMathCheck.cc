#include "MemoizedMathCheck.h"

#include "LemonsTidyUtils.h"

using namespace clang::ast_matchers;

namespace lemons::tidy {

namespace {
constexpr llvm::StringLiteral kCode("T003");
} // namespace

MemoizedMathCheck::MemoizedMathCheck(llvm::StringRef name,
                                     clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      hotFilePattern(Options.get("HotFilePattern", "(^|/)src/core/")),
      hotFiles(hotFilePattern)
{
}

void
MemoizedMathCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &options)
{
    Options.store(options, "HotFilePattern", hotFilePattern);
}

void
MemoizedMathCheck::registerMatchers(MatchFinder *finder)
{
    const auto weibullCall = cxxMemberCallExpr(callee(cxxMethodDecl(
        hasAnyName("reliability", "logReliability", "quantile"),
        ofClass(hasName("::lemons::wearout::Weibull")))));
    const auto parallelCall = cxxMemberCallExpr(callee(cxxMethodDecl(
        hasAnyName("reliabilityAt", "logReliabilityAt", "logFailureAt"),
        ofClass(hasName("::lemons::arch::ParallelStructure")))));
    const auto binomialCall = callExpr(callee(
        functionDecl(hasName("::lemons::logBinomialTailAtLeast"))));

    finder->addMatcher(weibullCall.bind("cacheable"), this);
    finder->addMatcher(parallelCall.bind("cacheable"), this);
    finder->addMatcher(binomialCall.bind("cacheable"), this);
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::std::pow", "::pow", "::std::lgamma", "::lgamma"))))
            .bind("raw"),
        this);
    // exp() wrapped directly around a cacheable log term: the fused
    // cached*Survival / cachedParallelReliability entry points fold
    // the exponential into the memo too.
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName("::std::exp", "::exp"))),
                 hasArgument(0, ignoringParenImpCasts(anyOf(
                                    weibullCall, parallelCall,
                                    binomialCall))))
            .bind("raw"),
        this);
}

void
MemoizedMathCheck::check(const MatchFinder::MatchResult &result)
{
    const clang::SourceManager &sm = *result.SourceManager;
    const CodeRow row = codeRow(kCode);

    const clang::Expr *use = nullptr;
    const char *what = nullptr;
    if (const auto *cacheable =
            result.Nodes.getNodeAs<clang::CallExpr>("cacheable")) {
        use = cacheable;
        what = "reliability math with an exact memoized drop-in";
    } else if (const auto *raw =
                   result.Nodes.getNodeAs<clang::CallExpr>("raw")) {
        use = raw;
        what = "raw pow/exp/lgamma on the solver hot path";
    }
    if (use == nullptr)
        return;

    const clang::SourceLocation loc = sm.getExpansionLoc(use->getBeginLoc());
    if (sm.isInSystemHeader(loc) || !inFileMatching(sm, loc, hotFiles) ||
        allowSuppressed(sm, loc, kCode))
        return;
    diag(loc, "%0: %1; route through the bit-identical engine::cache "
              "memo (engine/cache.h) or annotate "
              "LEMONS-TIDY-ALLOW(T003) with why memoization cannot "
              "apply [%2]")
        << row.id << what << row.title;
}

} // namespace lemons::tidy
