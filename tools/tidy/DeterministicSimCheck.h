/**
 * @file
 * T002 lemons-deterministic-sim: flag nondeterminism sources inside
 * the simulation TUs (src/sim, src/engine, src/fleet, src/arch by
 * default). The engine's bit-exact guarantee — identical trial stats
 * at any thread count, resumable from checkpoints — only holds when
 * every random draw flows from the sanctioned seeded streams and
 * every merge iterates in a deterministic order. The sanctioned
 * entry points are the counter-based Philox trial streams
 * (`Rng::trialStream(seed, trial)`, the definitional path for Monte
 * Carlo trials; batch kernels may use `util/philox.h` deriveKey /
 * fillUniform directly) and the splittable xoshiro256** streams
 * (`Rng(seed)` / `Rng::split`) for non-trial uses. Flagged:
 *
 *   - std::rand / srand / time / clock (global hidden state);
 *   - std::random_device (hardware entropy: unseedable);
 *   - std::chrono clock now() reads (wall-clock feeding trial state;
 *     deadline checks annotate LEMONS-TIDY-ALLOW(T002));
 *   - range-for over std::unordered_{map,set,multimap,multiset}
 *     (hash-order iteration leaking into stat merges or checkpoint
 *     payloads).
 *
 * Options:
 *   SimFilePattern  regex of TUs under the determinism contract
 *                   (default "(^|/)src/(sim|engine|fleet|arch)/").
 */

#ifndef LEMONS_TOOLS_TIDY_DETERMINISTIC_SIM_CHECK_H_
#define LEMONS_TOOLS_TIDY_DETERMINISTIC_SIM_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace lemons::tidy {

class DeterministicSimCheck : public clang::tidy::ClangTidyCheck
{
  public:
    DeterministicSimCheck(llvm::StringRef name,
                          clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &options)
        override;

  private:
    const std::string simFilePattern;
    llvm::Regex simFiles;
};

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_DETERMINISTIC_SIM_CHECK_H_
