/**
 * @file
 * T005 lemons-obs-scoped-timer: misuse of the lemons::obs
 * instrumentation. Three patterns:
 *
 *   - a ScopedTimer temporary that is destroyed within the same full
 *     expression (times nothing — the RAII guard must be a named
 *     local, which is what LEMONS_OBS_SCOPED_TIMER expands to);
 *   - a ScopedTimer constructed inside a loop body, re-registering
 *     per iteration where one timer around the loop was intended
 *     (annotate LEMONS-TIDY-ALLOW(T005) when per-iteration timing is
 *     deliberate);
 *   - a metric registered under a namespace outside the documented
 *     dotted prefixes, which would silently fall out of every
 *     dashboard query and snapshot diff.
 *
 * Options:
 *   Namespaces  semicolon-separated list of sanctioned metric name
 *               prefixes (default the in-tree registry:
 *               "sim.;core.;rs.;shamir.;arch.;fleet.;wearout.").
 */

#ifndef LEMONS_TOOLS_TIDY_OBS_SCOPED_TIMER_CHECK_H_
#define LEMONS_TOOLS_TIDY_OBS_SCOPED_TIMER_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace lemons::tidy {

class ObsScopedTimerCheck : public clang::tidy::ClangTidyCheck
{
  public:
    ObsScopedTimerCheck(llvm::StringRef name,
                        clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &options)
        override;

  private:
    const std::string namespaceOption;
    std::vector<std::string> namespaces;
};

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_OBS_SCOPED_TIMER_CHECK_H_
