#include "DeterministicSimCheck.h"

#include "LemonsTidyUtils.h"

using namespace clang::ast_matchers;

namespace lemons::tidy {

namespace {

constexpr llvm::StringLiteral kCode("T002");

/** Whether @p type desugars to a std::unordered_* container. */
bool
isUnorderedContainer(clang::QualType type)
{
    const auto *record =
        type.getNonReferenceType().getCanonicalType()->getAsCXXRecordDecl();
    if (record == nullptr)
        return false;
    const std::string name = record->getQualifiedNameAsString();
    return name == "std::unordered_map" || name == "std::unordered_set" ||
           name == "std::unordered_multimap" ||
           name == "std::unordered_multiset";
}

} // namespace

DeterministicSimCheck::DeterministicSimCheck(
    llvm::StringRef name, clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      simFilePattern(
          Options.get("SimFilePattern", "(^|/)src/(sim|engine|fleet|arch)/")),
      simFiles(simFilePattern)
{
}

void
DeterministicSimCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &options)
{
    Options.store(options, "SimFilePattern", simFilePattern);
}

void
DeterministicSimCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        callExpr(callee(functionDecl(
                     hasAnyName("::std::rand", "::rand", "::std::srand",
                                "::srand", "::std::time", "::time",
                                "::std::clock", "::clock"))))
            .bind("libc"),
        this);
    finder->addMatcher(
        cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                             ofClass(hasName("::std::random_device")))))
            .bind("entropy"),
        this);
    finder->addMatcher(
        callExpr(callee(cxxMethodDecl(
                     hasName("now"),
                     ofClass(hasAnyName(
                         "::std::chrono::system_clock",
                         "::std::chrono::steady_clock",
                         "::std::chrono::high_resolution_clock")))))
            .bind("clock"),
        this);
    finder->addMatcher(cxxForRangeStmt().bind("range"), this);
}

void
DeterministicSimCheck::check(const MatchFinder::MatchResult &result)
{
    const clang::SourceManager &sm = *result.SourceManager;
    const CodeRow row = codeRow(kCode);

    const auto emit = [&](clang::SourceLocation begin, const char *what,
                          const char *fix) {
        const clang::SourceLocation loc = sm.getExpansionLoc(begin);
        if (sm.isInSystemHeader(loc) || !inFileMatching(sm, loc, simFiles) ||
            allowSuppressed(sm, loc, kCode))
            return;
        diag(loc, "%0: %1 breaks the bit-exact simulation contract; %2 [%3]")
            << row.id << what << fix << row.title;
    };

    if (const auto *libc = result.Nodes.getNodeAs<clang::CallExpr>("libc")) {
        emit(libc->getBeginLoc(),
             "libc global-state randomness/time",
             "draw from the sanctioned seeded streams: "
             "Rng::trialStream(seed, trial) for per-trial code, "
             "Rng(seed)/split for non-trial sampling");
        return;
    }
    if (const auto *entropy =
            result.Nodes.getNodeAs<clang::CXXConstructExpr>("entropy")) {
        emit(entropy->getBeginLoc(),
             "std::random_device hardware entropy",
             "derive per-trial streams from the campaign seed "
             "(Rng::trialStream / util/philox.h deriveKey)");
        return;
    }
    if (const auto *clock =
            result.Nodes.getNodeAs<clang::CallExpr>("clock")) {
        emit(clock->getBeginLoc(),
             "wall-clock now() feeding simulation code",
             "keep clocks out of trial state (deadline checks annotate "
             "LEMONS-TIDY-ALLOW(T002))");
        return;
    }
    if (const auto *range =
            result.Nodes.getNodeAs<clang::CXXForRangeStmt>("range")) {
        const clang::Expr *init = range->getRangeInit();
        if (init == nullptr || !isUnorderedContainer(init->getType()))
            return;
        emit(range->getBeginLoc(),
             "iteration over an unordered container (hash order can leak "
             "into merges and checkpoint payloads)",
             "iterate a sorted view or use an ordered container");
    }
}

} // namespace lemons::tidy
