#include "StatsAccumulationCheck.h"

#include <algorithm>

#include "LemonsTidyUtils.h"

using namespace clang::ast_matchers;

namespace lemons::tidy {

namespace {

constexpr llvm::StringLiteral kCode("T006");

/** Whether @p var is declared outside the lambda's call operator —
 *  i.e. it reaches the worker body only through a capture. */
bool
declaredOutsideLambda(const clang::VarDecl *var,
                      const clang::LambdaExpr *lambda)
{
    const clang::DeclContext *callOperator = lambda->getCallOperator();
    for (const clang::DeclContext *context = var->getDeclContext();
         context != nullptr; context = context->getParent())
        if (context == callOperator)
            return false;
    return true;
}

/** Whether the lambda captures @p var by reference. */
bool
capturedByReference(const clang::VarDecl *var,
                    const clang::LambdaExpr *lambda)
{
    for (const clang::LambdaCapture &capture : lambda->captures())
        if (capture.capturesVariable() &&
            capture.getCaptureKind() == clang::LCK_ByRef &&
            capture.getCapturedVar() == var)
            return true;
    return false;
}

} // namespace

StatsAccumulationCheck::StatsAccumulationCheck(
    llvm::StringRef name, clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      entryPointOption(Options.get("ParallelEntryPoints",
                                   "parallelFor;submit;runTrials;run"))
{
    llvm::SmallVector<llvm::StringRef, 8> parts;
    llvm::StringRef(entryPointOption).split(parts, ';', -1, false);
    for (llvm::StringRef part : parts)
        entryPoints.emplace_back(part.trim());
}

void
StatsAccumulationCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &options)
{
    Options.store(options, "ParallelEntryPoints", entryPointOption);
}

void
StatsAccumulationCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        binaryOperator(
            hasAnyOperatorName("+=", "-=", "*=", "/="),
            hasType(realFloatingPointType()),
            hasAncestor(
                lambdaExpr(hasAncestor(callExpr().bind("dispatch")))
                    .bind("lambda")))
            .bind("accumulate"),
        this);
}

void
StatsAccumulationCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *accumulate =
        result.Nodes.getNodeAs<clang::BinaryOperator>("accumulate");
    const auto *lambda =
        result.Nodes.getNodeAs<clang::LambdaExpr>("lambda");
    const auto *dispatch =
        result.Nodes.getNodeAs<clang::CallExpr>("dispatch");
    if (accumulate == nullptr || lambda == nullptr || dispatch == nullptr)
        return;

    // Only lambdas handed to a parallel dispatch entry point are
    // worker bodies; a lambda fed to std::accumulate may aggregate
    // freely.
    const clang::FunctionDecl *callee = dispatch->getDirectCallee();
    if (callee == nullptr)
        return;
    const std::string calleeName = callee->getNameAsString();
    if (std::find(entryPoints.begin(), entryPoints.end(), calleeName) ==
        entryPoints.end())
        return;

    const clang::Expr *lhs = accumulate->getLHS()->IgnoreParenImpCasts();
    bool crossThread = false;
    if (const auto *ref = llvm::dyn_cast<clang::DeclRefExpr>(lhs)) {
        if (const auto *var =
                llvm::dyn_cast<clang::VarDecl>(ref->getDecl()))
            crossThread = capturedByReference(var, lambda) ||
                          declaredOutsideLambda(var, lambda);
    } else if (const auto *member =
                   llvm::dyn_cast<clang::MemberExpr>(lhs)) {
        crossThread = llvm::isa<clang::CXXThisExpr>(
            member->getBase()->IgnoreParenImpCasts());
    }
    if (!crossThread)
        return;

    const clang::SourceManager &sm = *result.SourceManager;
    const clang::SourceLocation loc =
        sm.getExpansionLoc(accumulate->getBeginLoc());
    if (sm.isInSystemHeader(loc) || allowSuppressed(sm, loc, kCode))
        return;

    const CodeRow row = codeRow(kCode);
    diag(loc, "%0: floating-point accumulation into captured state from a "
              "parallel worker commits in thread arrival order; accumulate "
              "into a worker-local RunningStats and fold it in with the "
              "chunk-ordered merge [%1]")
        << row.id << row.title;
}

} // namespace lemons::tidy
