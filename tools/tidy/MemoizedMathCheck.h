/**
 * @file
 * T003 lemons-memoized-math: in hot-path TUs (src/core by default),
 * flag reliability math that has an exact memoized drop-in inside
 * engine::cache. The caches replicate the original expressions bit
 * for bit (engine/cache.h documents the contract), so routing through
 * them changes nothing numerically while the solver's repeated
 * (alpha, beta, x) / (n, k, p) probes turn into table hits. Flagged:
 *
 *   - wearout::Weibull::{reliability,logReliability,quantile}
 *     -> engine::cachedWeibull{Survival,LogSurvival,Quantile};
 *   - arch::ParallelStructure::{reliabilityAt,logReliabilityAt,
 *     logFailureAt} -> engine::cachedParallel*;
 *   - lemons::logBinomialTailAtLeast
 *     -> engine::cachedLogBinomialTailAtLeast;
 *   - raw std::pow / std::lgamma (and std::exp applied directly to
 *     one of the above) re-deriving Weibull/binomial terms inline.
 *
 * One-shot closed forms that cannot profit from memo keying annotate
 * LEMONS-TIDY-ALLOW(T003) with the reason.
 *
 * Options:
 *   HotFilePattern  regex of hot-path TUs (default "(^|/)src/core/").
 */

#ifndef LEMONS_TOOLS_TIDY_MEMOIZED_MATH_CHECK_H_
#define LEMONS_TOOLS_TIDY_MEMOIZED_MATH_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace lemons::tidy {

class MemoizedMathCheck : public clang::tidy::ClangTidyCheck
{
  public:
    MemoizedMathCheck(llvm::StringRef name,
                      clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &options)
        override;

  private:
    const std::string hotFilePattern;
    llvm::Regex hotFiles;
};

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_MEMOIZED_MATH_CHECK_H_
