#include "LemonsTidyUtils.h"

#include <cstring>

#include "llvm/ADT/SmallVector.h"

// The shared catalog. The X-macro row shape is
// X(enumerator, "id", DefaultSeverity, "title"); the severity argument
// is discarded here (clang-tidy has its own warning/error mapping via
// -warnings-as-errors), so the bare severity identifiers never need to
// resolve in this translation unit.
#include "lint/code_registry.h"

namespace lemons::tidy {

namespace {

constexpr CodeRow kCatalog[] = {
#define LEMONS_TIDY_ROW(enumerator, id, severity, title) {id, title},
    LEMONS_CODE_TABLE(LEMONS_TIDY_ROW)
#undef LEMONS_TIDY_ROW
};

/** Whether one physical line carries LEMONS-TIDY-ALLOW(<codes>) with
 *  @p code in the comma-separated code list. */
bool
lineAllows(llvm::StringRef line, llvm::StringRef code)
{
    static constexpr llvm::StringLiteral kMarker("LEMONS-TIDY-ALLOW(");
    const size_t at = line.find(kMarker);
    if (at == llvm::StringRef::npos)
        return false;
    const size_t open = at + kMarker.size();
    const size_t close = line.find(')', open);
    if (close == llvm::StringRef::npos)
        return false;
    llvm::SmallVector<llvm::StringRef, 4> codes;
    line.slice(open, close).split(codes, ',');
    for (llvm::StringRef candidate : codes)
        if (candidate.trim() == code)
            return true;
    return false;
}

/** The @p lineNumber-th (1-based) line of @p buffer, without newline. */
llvm::StringRef
bufferLine(llvm::StringRef buffer, unsigned lineNumber)
{
    unsigned current = 1;
    size_t start = 0;
    while (current < lineNumber) {
        const size_t next = buffer.find('\n', start);
        if (next == llvm::StringRef::npos)
            return llvm::StringRef();
        start = next + 1;
        ++current;
    }
    const size_t end = buffer.find('\n', start);
    return buffer.slice(start, end == llvm::StringRef::npos ? buffer.size()
                                                            : end);
}

} // namespace

CodeRow
codeRow(llvm::StringRef id)
{
    for (const CodeRow &row : kCatalog)
        if (id == row.id)
            return row;
    return {"T???", "unknown code (not in lint/code_registry.h)"};
}

bool
allowSuppressed(const clang::SourceManager &sm, clang::SourceLocation loc,
                llvm::StringRef code)
{
    if (loc.isInvalid())
        return false;
    const clang::SourceLocation expansion = sm.getExpansionLoc(loc);
    const clang::FileID file = sm.getFileID(expansion);
    bool invalid = false;
    const llvm::StringRef buffer = sm.getBufferData(file, &invalid);
    if (invalid)
        return false;
    const unsigned line = sm.getExpansionLineNumber(expansion);
    if (lineAllows(bufferLine(buffer, line), code))
        return true;
    return line > 1 && lineAllows(bufferLine(buffer, line - 1), code);
}

bool
inFileMatching(const clang::SourceManager &sm, clang::SourceLocation loc,
               const llvm::Regex &pattern)
{
    if (loc.isInvalid())
        return false;
    const llvm::StringRef path =
        sm.getFilename(sm.getExpansionLoc(loc));
    return !path.empty() && pattern.match(path);
}

} // namespace lemons::tidy
