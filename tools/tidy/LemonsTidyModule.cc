/**
 * @file
 * Registration of the lemons-* clang-tidy check family. Built as an
 * out-of-tree plugin module (liblemons_tidy.so) and loaded with
 *
 *     clang-tidy -load path/to/liblemons_tidy.so \
 *                -checks='-*,lemons-*' -p build src/...
 *
 * (scripts/run-tidy.sh --load-lemons wires this up, including the
 * suppression baseline). Each check diagnoses with a stable T-code
 * from src/lint/code_registry.h, the same catalog lemons-lint --codes
 * prints, so the five code families share one id space.
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "DeterministicSimCheck.h"
#include "GuardedMemberCheck.h"
#include "MemoizedMathCheck.h"
#include "NoRawThreadCheck.h"
#include "ObsScopedTimerCheck.h"
#include "StatsAccumulationCheck.h"

namespace lemons::tidy {

class LemonsTidyModule : public clang::tidy::ClangTidyModule
{
  public:
    void
    addCheckFactories(
        clang::tidy::ClangTidyCheckFactories &factories) override
    {
        factories.registerCheck<NoRawThreadCheck>("lemons-no-raw-thread");
        factories.registerCheck<DeterministicSimCheck>(
            "lemons-deterministic-sim");
        factories.registerCheck<MemoizedMathCheck>("lemons-memoized-math");
        factories.registerCheck<GuardedMemberCheck>("lemons-guarded-member");
        factories.registerCheck<ObsScopedTimerCheck>(
            "lemons-obs-scoped-timer");
        factories.registerCheck<StatsAccumulationCheck>(
            "lemons-stats-accumulation");
    }
};

} // namespace lemons::tidy

namespace clang::tidy {

// Register the module with the clang-tidy host binary's registry; the
// anchor keeps the static registration from being dead-stripped when
// the module is linked into a static tool instead of dlopened.
static ClangTidyModuleRegistry::Add<lemons::tidy::LemonsTidyModule>
    lemonsTidyModuleRegistration("lemons-module",
                                 "lemons determinism, concurrency, and "
                                 "instrumentation checks");

volatile int lemonsTidyModuleAnchorSource = 0;

} // namespace clang::tidy
