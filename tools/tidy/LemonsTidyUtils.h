/**
 * @file
 * Shared plumbing for the lemons-* clang-tidy checks.
 *
 * Every check diagnoses with a stable T-code drawn from the project's
 * shared X-macro catalog (src/lint/code_registry.h), the same registry
 * the lemons-lint CLI prints with --codes, so suppression baselines
 * and CI greps match on one id space across all five code families.
 *
 * Suppression: a finding on a line that carries (or whose previous
 * line carries) a `// LEMONS-TIDY-ALLOW(T00x): reason` comment is
 * dropped. The code list inside the parentheses is comma-separated;
 * the reason after the colon is mandatory by convention (reviewed, not
 * machine-checked).
 */

#ifndef LEMONS_TOOLS_TIDY_LEMONS_TIDY_UTILS_H_
#define LEMONS_TOOLS_TIDY_LEMONS_TIDY_UTILS_H_

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/Regex.h"

namespace lemons::tidy {

/** One row of the shared diagnostic-code catalog. */
struct CodeRow
{
    const char *id;
    const char *title;
};

/**
 * The registry row for a stable code id ("T001"); the id and title
 * come verbatim from lint/code_registry.h. Unknown ids return a row
 * with the queried id and an "unknown code" title rather than
 * crashing, so a half-migrated check still diagnoses usefully.
 */
CodeRow codeRow(llvm::StringRef id);

/**
 * Whether the physical line holding @p loc (or the line above it)
 * carries a LEMONS-TIDY-ALLOW(...) comment naming @p code.
 */
bool allowSuppressed(const clang::SourceManager &sm,
                     clang::SourceLocation loc, llvm::StringRef code);

/**
 * Whether @p loc expands in a file whose path matches @p pattern.
 * Invalid locations and unmatchable paths return false.
 */
bool inFileMatching(const clang::SourceManager &sm,
                    clang::SourceLocation loc, const llvm::Regex &pattern);

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_LEMONS_TIDY_UTILS_H_
