/**
 * @file
 * T001 lemons-no-raw-thread: ban raw std::thread / std::jthread
 * construction and std::async outside src/engine/. Every concurrent
 * workload must run on engine::ThreadPool::global(): the pool is what
 * keeps thread counts bounded under server load, makes chunk-ordered
 * deterministic merges possible, and gives the sim.mc.pool.* counters
 * their no-spawn-after-warmup guarantee. std::thread::detach is
 * banned everywhere — a detached thread outlives every checkpoint
 * and shutdown path the fleet layer reasons about.
 *
 * Options:
 *   EngineFilePattern  regex of paths where raw threads are the
 *                      pool's own implementation (default
 *                      "(^|/)src/engine/").
 */

#ifndef LEMONS_TOOLS_TIDY_NO_RAW_THREAD_CHECK_H_
#define LEMONS_TOOLS_TIDY_NO_RAW_THREAD_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace lemons::tidy {

class NoRawThreadCheck : public clang::tidy::ClangTidyCheck
{
  public:
    NoRawThreadCheck(llvm::StringRef name,
                     clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &options)
        override;

  private:
    const std::string engineFilePattern;
    llvm::Regex engineFiles;
};

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_NO_RAW_THREAD_CHECK_H_
