/**
 * @file
 * T006 lemons-stats-accumulation: inside a lambda handed to one of
 * the engine's parallel entry points (ThreadPool::parallelFor /
 * submit, engine::runTrials, MonteCarlo::run), a compound assignment
 * that accumulates into state captured by reference (or into a member
 * through the captured this) is flagged. Even when such an
 * accumulation is mutex-serialized it commits results in thread
 * arrival order, so float sums drift between runs — the sanctioned
 * pattern is a worker-local RunningStats folded in afterwards with
 * the chunk-ordered Chan merge. std::atomic members never match (their
 * operator+= is an overloaded call, and counters are order-safe for
 * integers), and locals declared inside the lambda stay legal.
 *
 * Options:
 *   ParallelEntryPoints  semicolon-separated callee names treated as
 *                        parallel dispatch (default
 *                        "parallelFor;submit;runTrials;run").
 */

#ifndef LEMONS_TOOLS_TIDY_STATS_ACCUMULATION_CHECK_H_
#define LEMONS_TOOLS_TIDY_STATS_ACCUMULATION_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace lemons::tidy {

class StatsAccumulationCheck : public clang::tidy::ClangTidyCheck
{
  public:
    StatsAccumulationCheck(llvm::StringRef name,
                           clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &options)
        override;

  private:
    const std::string entryPointOption;
    std::vector<std::string> entryPoints;
};

} // namespace lemons::tidy

#endif // LEMONS_TOOLS_TIDY_STATS_ACCUMULATION_CHECK_H_
