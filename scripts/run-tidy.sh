#!/usr/bin/env bash
# Run clang-tidy over src/ using the repo's .clang-tidy configuration.
#
# Usage: scripts/run-tidy.sh [options] [build-dir] [-- extra clang-tidy args]
#
#   --load-lemons         load liblemons_tidy.so and sweep the lemons-*
#                         check family instead of the .clang-tidy set
#                         (plugin path: $LEMONS_TIDY_PLUGIN, or
#                         <build-dir>/tools/tidy/liblemons_tidy.so)
#   --baseline FILE       suppress findings recorded in FILE (one
#                         "path:check" per line); only NEW findings
#                         fail the sweep
#   --update-baseline     rewrite the baseline FILE from this sweep's
#                         findings and exit 0
#
# Needs a compile_commands.json; pass the build dir that has one (the
# script configures a fresh export-only dir when none is given). The
# exit status is faithful under both run-clang-tidy and the fallback
# loop: 0 only when the sweep is clean (or fully baselined).
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

load_lemons=0
baseline_file=""
update_baseline=0
build_dir=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --load-lemons) load_lemons=1; shift ;;
        --baseline) baseline_file="${2:?--baseline needs a file}"; shift 2 ;;
        --update-baseline) update_baseline=1; shift ;;
        --) shift; break ;;
        -*) echo "error: unknown option $1" >&2; exit 2 ;;
        *)
            if [[ -n "$build_dir" ]]; then
                echo "error: more than one build dir ($build_dir, $1)" >&2
                exit 2
            fi
            build_dir="$1"; shift ;;
    esac
done
build_dir="${build_dir:-$repo_root/build-tidy}"

if [[ $update_baseline -eq 1 && -z "$baseline_file" ]]; then
    echo "error: --update-baseline needs --baseline FILE" >&2
    exit 2
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
    echo "error: $tidy_bin not found (set CLANG_TIDY to override)" >&2
    exit 2
fi

extra_args=("$@")
if [[ $load_lemons -eq 1 ]]; then
    plugin="${LEMONS_TIDY_PLUGIN:-$build_dir/tools/tidy/liblemons_tidy.so}"
    if [[ ! -f "$plugin" ]]; then
        echo "error: lemons plugin not found at $plugin" >&2
        echo "       build with -DLEMONS_BUILD_TIDY_PLUGIN=ON, or set" >&2
        echo "       LEMONS_TIDY_PLUGIN" >&2
        exit 2
    fi
    extra_args=(-load "$plugin" "-checks=-*,lemons-*" "${extra_args[@]}")
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "-- configuring $build_dir for compile_commands.json"
    cmake -S "$repo_root" -B "$build_dir" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=Release \
        -DLEMONS_BUILD_BENCH=OFF >/dev/null || exit 2
fi

# Everything under src/ except generated files — including the static
# verification layer (src/ir, src/verify) — is swept by the find below;
# tests and benches are exercised by the compiler warning gate instead.
mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)

log_file="$(mktemp)"
trap 'rm -f "$log_file"' EXIT

runner="$(command -v run-clang-tidy || true)"
tidy_status=0
if [[ -n "$runner" ]]; then
    # Tee the runner's output so findings can be diffed against the
    # baseline; its exit status must survive the pipe.
    "$runner" -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
        "${extra_args[@]}" "${sources[@]}" 2>&1 | tee "$log_file"
    tidy_status=${PIPESTATUS[0]}
else
    # Fallback without run-clang-tidy: one clang-tidy process per
    # core. xargs propagates child failures as its own non-zero exit.
    jobs="$(nproc 2>/dev/null || echo 4)"
    printf '%s\0' "${sources[@]}" |
        xargs -0 -n 1 -P "$jobs" \
            "$tidy_bin" -p "$build_dir" --quiet "${extra_args[@]}" \
            2>&1 | tee "$log_file"
    tidy_status=${PIPESTATUS[1]}
fi

# Normalize findings to "relative/path.cc:check-name" so the baseline
# is stable across checkouts and line-number churn.
findings_file="$(mktemp)"
trap 'rm -f "$log_file" "$findings_file"' EXIT
sed -n 's#^\([^ :]*\):[0-9]*:[0-9]*: \(warning\|error\): .*\[\([a-zA-Z0-9.,_-]*\)\]$#\1:\3#p' \
        "$log_file" |
    sed "s#^$repo_root/##" | sort -u >"$findings_file"
finding_count="$(wc -l <"$findings_file")"

if [[ $update_baseline -eq 1 ]]; then
    {
        echo "# clang-tidy suppression baseline (scripts/run-tidy.sh)."
        echo "# One normalized \"path:check\" finding per line; new"
        echo "# findings not listed here fail the sweep. Regenerate:"
        echo "#   scripts/run-tidy.sh --load-lemons \\"
        echo "#       --baseline $(basename "$baseline_file") --update-baseline"
        cat "$findings_file"
    } >"$baseline_file"
    echo "-- baseline updated: $finding_count finding(s) -> $baseline_file"
    exit 0
fi

if [[ -n "$baseline_file" ]]; then
    if [[ ! -f "$baseline_file" ]]; then
        echo "error: baseline $baseline_file not found" >&2
        exit 2
    fi
    new_findings="$(grep -v '^#' "$baseline_file" | sort -u |
        comm -23 "$findings_file" - || true)"
    stale="$(grep -v '^#' "$baseline_file" | grep -v '^$' | sort -u |
        comm -13 "$findings_file" - || true)"
    if [[ -n "$stale" ]]; then
        echo "-- note: baseline entries no longer seen (consider" \
             "--update-baseline):"
        sed 's/^/     /' <<<"$stale"
    fi
    if [[ -n "$new_findings" ]]; then
        echo "error: new clang-tidy findings not in $baseline_file:" >&2
        sed 's/^/     /' <<<"$new_findings" >&2
        exit 1
    fi
    echo "-- tidy clean: $finding_count finding(s), all baselined"
    exit 0
fi

if [[ $tidy_status -ne 0 || $finding_count -gt 0 ]]; then
    echo "error: clang-tidy reported $finding_count finding(s)" \
         "(exit $tidy_status)" >&2
    exit 1
fi
echo "-- tidy clean: no findings"
