#!/usr/bin/env bash
# Run clang-tidy over src/ using the repo's .clang-tidy configuration.
#
# Usage: scripts/run-tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Needs a compile_commands.json; pass the build dir that has one (the
# script configures a fresh export-only dir when none is given).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"
shift_count=0
if [[ -n "$build_dir" && "$build_dir" != "--" ]]; then
    shift_count=1
else
    build_dir="$repo_root/build-tidy"
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
    echo "error: $tidy_bin not found (set CLANG_TIDY to override)" >&2
    exit 2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "-- configuring $build_dir for compile_commands.json"
    cmake -S "$repo_root" -B "$build_dir" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=Release \
        -DLEMONS_BUILD_BENCH=OFF >/dev/null
fi

# Everything under src/ except generated files — including the static
# verification layer (src/ir, src/verify) — is swept by the find below;
# tests and benches are exercised by the compiler warning gate instead.
mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)

shift $shift_count || true
if [[ "${1:-}" == "--" ]]; then
    shift
fi

runner="$(command -v run-clang-tidy || true)"
if [[ -n "$runner" ]]; then
    "$runner" -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
        "$@" "${sources[@]}"
else
    status=0
    for src in "${sources[@]}"; do
        echo "-- tidy $src"
        "$tidy_bin" -p "$build_dir" --quiet "$@" "$src" || status=1
    done
    exit $status
fi
