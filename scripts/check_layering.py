#!/usr/bin/env python3
"""Enforce the module layering contract over the C++ source tree.

Reads the module DAG from a TOML config (default scripts/layering.toml)
and walks every .h/.cc under the source root, checking that

  1. every quoted #include crossing a module boundary is on the
     including module's allow list (or covered by a file-scoped
     [[waiver]] entry),
  2. the *allowed* module graph itself is acyclic, so the contract
     cannot be "fixed" by legalizing a cycle,
  3. the file-level include graph has no cycles,
  4. every module seen on disk is declared, and every waiver is used
     (a stale waiver is as misleading as a missing rule).

Exit status: 0 clean, 1 violations, 2 usage/config error, 77 when the
interpreter lacks tomllib (pre-3.11) so callers can skip, not fail.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    print("SKIP: python tomllib unavailable (need python >= 3.11)",
          file=sys.stderr)
    sys.exit(77)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SOURCE_SUFFIXES = (".h", ".cc")


def load_config(path):
    with open(path, "rb") as fh:
        config = tomllib.load(fh)
    allow = {m: set(deps) for m, deps in config.get("allow", {}).items()}
    files = dict(config.get("files", {}))
    waivers = []
    for entry in config.get("waiver", []):
        for key in ("file", "include", "reason"):
            if key not in entry:
                raise ValueError(f"waiver missing '{key}': {entry}")
        waivers.append((entry["file"], entry["include"]))
    for module, deps in allow.items():
        unknown = deps - allow.keys()
        if unknown:
            raise ValueError(
                f"[allow] {module} references undeclared modules: "
                f"{sorted(unknown)}")
    for module in files.values():
        if module not in allow:
            raise ValueError(f"[files] maps to undeclared module '{module}'")
    return allow, files, waivers


def scan_sources(root):
    """-> {relpath: [included relpaths]} for quoted project includes."""
    includes = {}
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_SUFFIXES):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            targets = []
            with open(path, encoding="utf-8", errors="replace") as fh:
                for line in fh:
                    match = INCLUDE_RE.match(line)
                    # Single-segment quoted includes ("foo.h") are
                    # same-directory helpers, never cross-module.
                    if match and "/" in match.group(1):
                        targets.append(match.group(1))
            includes[rel] = targets
    return includes


def module_of(rel, file_map):
    if rel in file_map:
        return file_map[rel]
    return rel.split("/", 1)[0]


def allowed_graph_cycles(allow):
    """-> one cycle (as a list of modules) in the allow graph, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in allow}
    stack = []

    def visit(module):
        color[module] = GRAY
        stack.append(module)
        for dep in sorted(allow[module]):
            if color[dep] == GRAY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[module] = BLACK
        return None

    for module in sorted(allow):
        if color[module] == WHITE:
            cycle = visit(module)
            if cycle:
                return cycle
    return None


def include_graph_cycles(includes):
    """-> one cycle in the file-level include graph, or None."""
    graph = {
        rel: [t for t in targets if t in includes]
        for rel, targets in includes.items()
    }
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in graph}
    stack = []

    def visit(rel):
        color[rel] = GRAY
        stack.append(rel)
        for dep in graph[rel]:
            if color[dep] == GRAY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[rel] = BLACK
        return None

    # Iterative depth is fine: the tree is a few hundred files deep at
    # most, well under the default recursion limit.
    for rel in sorted(graph):
        if color[rel] == WHITE:
            cycle = visit(rel)
            if cycle:
                return cycle
    return None


def main(argv):
    parser = argparse.ArgumentParser(
        description="check the module layering contract")
    parser.add_argument("root", nargs="?", default="src",
                        help="source root to scan (default: src)")
    parser.add_argument("--config", default=None,
                        help="layering TOML (default: <script dir>/"
                             "layering.toml)")
    options = parser.parse_args(argv)

    config_path = options.config or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "layering.toml")
    try:
        allow, file_map, waivers = load_config(config_path)
    except (OSError, ValueError, tomllib.TOMLDecodeError) as error:
        print(f"config error: {error}", file=sys.stderr)
        return 2
    if not os.path.isdir(options.root):
        print(f"no such source root: {options.root}", file=sys.stderr)
        return 2

    violations = []

    cycle = allowed_graph_cycles(allow)
    if cycle:
        violations.append(
            "the [allow] graph itself has a cycle: " + " -> ".join(cycle))

    includes = scan_sources(options.root)
    used_waivers = set()
    for rel in sorted(includes):
        src_module = module_of(rel, file_map)
        if src_module not in allow:
            violations.append(
                f"{rel}: module '{src_module}' is not declared in [allow]")
            continue
        for target in includes[rel]:
            dst_module = module_of(target, file_map)
            if dst_module == src_module:
                continue
            if dst_module in allow[src_module]:
                continue
            if (rel, target) in waivers:
                used_waivers.add((rel, target))
                continue
            violations.append(
                f"{rel}: includes {target} "
                f"({src_module} -> {dst_module} is not in [allow])")

    for waiver in waivers:
        if waiver not in used_waivers:
            violations.append(
                f"stale waiver: {waiver[0]} no longer includes {waiver[1]}")

    cycle = include_graph_cycles(includes)
    if cycle:
        violations.append(
            "include cycle: " + " -> ".join(cycle))

    if violations:
        for violation in violations:
            print(f"layering: {violation}")
        print(f"layering: {len(violations)} violation(s) in "
              f"{len(includes)} file(s)")
        return 1
    print(f"layering: OK ({len(includes)} files, "
          f"{len(allow)} modules, {len(waivers)} waivers)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
