#include "ir/graph.h"

#include <stdexcept>
#include <utility>

namespace lemons::ir {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
    case NodeKind::SecretSource:
        return "secret-source";
    case NodeKind::Device:
        return "device";
    case NodeKind::Series:
        return "series";
    case NodeKind::Parallel:
        return "parallel";
    case NodeKind::Replicate:
        return "replicate";
    case NodeKind::Store:
        return "store";
    case NodeKind::Sink:
        return "sink";
    }
    return "unknown";
}

NodeId
Graph::add(Node node)
{
    const NodeId id = static_cast<NodeId>(nodeList.size());
    nodeList.push_back(std::move(node));
    out.emplace_back();
    return id;
}

void
Graph::connect(NodeId from, NodeId to)
{
    if (from >= nodeList.size() || to >= nodeList.size())
        throw std::invalid_argument(
            "ir::Graph::connect: node id out of range");
    out[from].push_back(to);
}

void
Graph::addObligation(Obligation obligation)
{
    if (obligation.target >= nodeList.size())
        throw std::invalid_argument(
            "ir::Graph::addObligation: target out of range");
    obls.push_back(obligation);
}

std::vector<NodeId>
Graph::predecessors(NodeId id) const
{
    std::vector<NodeId> preds;
    for (NodeId from = 0; from < nodeList.size(); ++from) {
        for (const NodeId to : out[from]) {
            if (to == id)
                preds.push_back(from);
        }
    }
    return preds;
}

std::vector<NodeId>
Graph::topoOrder() const
{
    const size_t n = nodeList.size();
    std::vector<size_t> inDegree(n, 0);
    for (const auto &edges : out) {
        for (const NodeId to : edges)
            ++inDegree[to];
    }
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < n; ++id) {
        if (inDegree[id] == 0)
            ready.push_back(id);
    }
    std::vector<NodeId> order;
    order.reserve(n);
    while (!ready.empty()) {
        const NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (const NodeId to : out[id]) {
            if (--inDegree[to] == 0)
                ready.push_back(to);
        }
    }
    if (order.size() != n)
        return {}; // cycle
    return order;
}

} // namespace lemons::ir
