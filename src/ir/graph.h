/**
 * @file
 * Typed DAG intermediate representation for composed limited-use
 * architectures.
 *
 * Every architecture the library can fabricate — N serially consumed
 * k-out-of-n parallel structures, series chains, M-way replicated
 * modules, Shamir share stores, OTP decision trees — lowers into the
 * same small graph language, so whole-design analyses (bound
 * propagation, reachability, secret flow) are written once against
 * the IR instead of once per architecture class.
 *
 * Nodes are *symbolic*: a Device node stands for a bank of n i.i.d.
 * Weibull devices, a Parallel node for a k-of-n combinator over its
 * predecessor, a Replicate node for N serially consumed copies of the
 * subgraph feeding it. A paper-scale design (91,250 accesses, ~1e5
 * devices) is therefore a five-node graph, and the verifier's passes
 * run in microseconds — the point of the static layer versus the
 * Monte Carlo engines.
 *
 * Edges are directed access/data-flow: from the secret source,
 * through wearout gates and combinators, to the sink that represents
 * release of the reconstructed secret to the requester.
 */

#ifndef LEMONS_IR_GRAPH_H_
#define LEMONS_IR_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "wearout/device.h"

namespace lemons::ir {

/** What a node stands for. */
enum class NodeKind {
    SecretSource, ///< where key/share material enters the design
    Device,       ///< a bank of n i.i.d. Weibull wearout switches
    Series,       ///< a chain: all of `count` stages must survive
    Parallel,     ///< k-of-n combinator over the incoming bank
    Replicate,    ///< N serially consumed copies of the feeding subgraph
    Store,        ///< non-wearout storage (H-tree / shift register)
    Sink,         ///< the reconstructed secret leaves the hardware
};

/** Lowercase kind name ("device", "parallel", ...). */
const char *nodeKindName(NodeKind kind);

/** Node handle; dense indices in creation order. */
using NodeId = uint32_t;

/** One IR node. Fields are meaningful per kind (see NodeKind docs). */
struct Node
{
    NodeKind kind = NodeKind::Device;
    std::string label;

    /** Device/Series/Parallel: the Weibull technology. */
    wearout::DeviceSpec device{0.0, 0.0};

    /** Device: bank size; Parallel: width; SecretSource/Store: shares. */
    uint64_t n = 1;
    /** Parallel: reconstruction threshold. */
    uint64_t k = 1;
    /** Series: chain length; Replicate: serially consumed copies. */
    uint64_t count = 1;
    /** SecretSource: Shamir threshold over its outgoing share branches. */
    uint64_t shareThreshold = 1;

    /** Fault model attached to this node, when the spec declares one. */
    std::optional<fault::FaultPlan> faultPlan{};
};

/**
 * A proof obligation the verifier must certify against the design's
 * degradation criteria. Obligations anchor to the node whose survival
 * (or expected-access) bracket they constrain.
 */
struct Obligation
{
    enum class Kind {
        SurvivalFloor,   ///< P(target survives `access`) >= floor
        ResidualCeiling, ///< P(target survives `access`) <= ceiling
        ExpectedTotal,   ///< E[system total accesses] in [floor, ceiling]
        OtpBounds,       ///< OTP receiver floor / adversary ceiling
    };

    Kind kind = Kind::SurvivalFloor;
    NodeId target = 0;
    /** Access count the bound refers to (OtpBounds: tree height H). */
    double access = 0.0;
    double floor = 0.0;
    double ceiling = 0.0;
    bool hasFloor = false;
    bool hasCeiling = false;
};

/**
 * The architecture graph: nodes, directed edges, and obligations.
 *
 * Deliberately minimal — no mutation beyond append, no node removal —
 * so analyses can cache by NodeId without invalidation protocols.
 */
class Graph
{
  public:
    explicit Graph(std::string name) : graphName(std::move(name)) {}

    /** Append @p node; returns its dense id. */
    NodeId add(Node node);

    /** Add the directed edge @p from -> @p to (ids must exist). */
    void connect(NodeId from, NodeId to);

    /** Record @p obligation (its target must exist). */
    void addObligation(Obligation obligation);

    const std::string &name() const { return graphName; }
    size_t size() const { return nodeList.size(); }

    const Node &node(NodeId id) const { return nodeList.at(id); }
    /** Mutable access, for post-lowering annotation (fault plans). */
    Node &mutableNode(NodeId id) { return nodeList.at(id); }
    const std::vector<Node> &nodes() const { return nodeList; }
    const std::vector<Obligation> &obligations() const { return obls; }

    /** Out-edges of @p id. */
    const std::vector<NodeId> &successors(NodeId id) const
    {
        return out.at(id);
    }

    /** In-edges of @p id (computed; O(E)). */
    std::vector<NodeId> predecessors(NodeId id) const;

    /**
     * Kahn topological order. Returns an empty vector when the graph
     * contains a cycle (a lowering bug or a malicious spec) — callers
     * treat that as "not an architecture".
     */
    std::vector<NodeId> topoOrder() const;

  private:
    std::string graphName;
    std::vector<Node> nodeList;
    std::vector<std::vector<NodeId>> out;
    std::vector<Obligation> obls;
};

} // namespace lemons::ir

#endif // LEMONS_IR_GRAPH_H_
