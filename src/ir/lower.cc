#include "ir/lower.h"

#include <string>
#include <utility>

namespace lemons::ir {

namespace {

Node
makeNode(NodeKind kind, std::string label)
{
    Node node;
    node.kind = kind;
    node.label = std::move(label);
    return node;
}

} // namespace

Graph
lowerDesign(const core::DesignRequest &request, const core::Design &design)
{
    Graph graph("design");

    Node src = makeNode(NodeKind::SecretSource, "key");
    src.n = design.width;
    src.shareThreshold = design.threshold;
    const NodeId srcId = graph.add(std::move(src));

    Node bank = makeNode(NodeKind::Device, "nems-bank");
    bank.device = request.device;
    bank.n = design.width;
    const NodeId bankId = graph.add(std::move(bank));

    Node par = makeNode(NodeKind::Parallel, "k-of-n");
    par.device = request.device;
    par.n = design.width;
    par.k = design.threshold;
    const NodeId parId = graph.add(std::move(par));

    Node rep = makeNode(NodeKind::Replicate, "serial-copies");
    rep.count = design.copies;
    const NodeId repId = graph.add(std::move(rep));

    const NodeId sinkId = graph.add(makeNode(NodeKind::Sink, "release"));

    graph.connect(srcId, bankId);
    graph.connect(bankId, parId);
    graph.connect(parId, repId);
    graph.connect(repId, sinkId);

    Obligation survival;
    survival.kind = Obligation::Kind::SurvivalFloor;
    survival.target = parId;
    survival.access = static_cast<double>(design.perCopyBound);
    survival.floor = request.criteria.minReliability;
    survival.hasFloor = true;
    graph.addObligation(survival);

    if (!request.upperBoundTarget) {
        // With an explicit system-level upper-bound target the solver
        // replaces the per-copy residual criterion by the expected-
        // total ceiling below, so only emit the residual obligation in
        // the default regime.
        Obligation residual;
        residual.kind = Obligation::Kind::ResidualCeiling;
        residual.target = parId;
        residual.access = static_cast<double>(design.deathCheckAccess);
        residual.ceiling = request.criteria.maxResidualReliability;
        residual.hasCeiling = true;
        graph.addObligation(residual);
    }

    Obligation total;
    total.kind = Obligation::Kind::ExpectedTotal;
    total.target = repId;
    total.access = static_cast<double>(design.perCopyBound);
    total.floor = static_cast<double>(request.legitimateAccessBound);
    total.hasFloor = true;
    if (request.upperBoundTarget) {
        total.ceiling = static_cast<double>(*request.upperBoundTarget);
        total.hasCeiling = true;
    }
    graph.addObligation(total);

    return graph;
}

Graph
lowerStructure(const lint::StructureSpec &spec)
{
    const bool series = spec.kind == lint::StructureSpec::Kind::Series;
    Graph graph(series ? "series-structure" : "parallel-structure");

    Node src = makeNode(NodeKind::SecretSource, "secret");
    src.n = spec.n;
    src.shareThreshold = series ? spec.n : spec.k;
    const NodeId srcId = graph.add(std::move(src));

    Node bank = makeNode(NodeKind::Device, "device-bank");
    bank.device = spec.device;
    bank.n = spec.n;
    const NodeId bankId = graph.add(std::move(bank));

    NodeId structId = 0;
    if (series) {
        Node chain = makeNode(NodeKind::Series, "chain");
        chain.device = spec.device;
        chain.count = spec.n;
        structId = graph.add(std::move(chain));
    } else {
        Node par = makeNode(NodeKind::Parallel, "k-of-n");
        par.device = spec.device;
        par.n = spec.n;
        par.k = spec.k;
        structId = graph.add(std::move(par));
    }

    graph.connect(srcId, bankId);
    graph.connect(bankId, structId);

    NodeId tailId = structId;
    std::optional<NodeId> repId;
    if (spec.copies) {
        Node rep = makeNode(NodeKind::Replicate, "serial-copies");
        rep.count = *spec.copies;
        repId = graph.add(std::move(rep));
        graph.connect(tailId, *repId);
        tailId = *repId;
    }
    const NodeId sinkId = graph.add(makeNode(NodeKind::Sink, "release"));
    graph.connect(tailId, sinkId);

    if (spec.accessBound) {
        const double bound = static_cast<double>(*spec.accessBound);
        if (spec.minReliability) {
            Obligation survival;
            survival.kind = Obligation::Kind::SurvivalFloor;
            survival.target = structId;
            survival.access = bound;
            survival.floor = *spec.minReliability;
            survival.hasFloor = true;
            graph.addObligation(survival);
        }
        if (spec.maxResidual) {
            Obligation residual;
            residual.kind = Obligation::Kind::ResidualCeiling;
            residual.target = structId;
            residual.access = bound + 1.0;
            residual.ceiling = *spec.maxResidual;
            residual.hasCeiling = true;
            graph.addObligation(residual);
        }
        if (repId) {
            Obligation total;
            total.kind = Obligation::Kind::ExpectedTotal;
            total.target = *repId;
            total.access = bound;
            total.floor =
                static_cast<double>(*spec.copies) * bound;
            total.hasFloor = true;
            graph.addObligation(total);
        }
    }
    return graph;
}

Graph
lowerShares(const lint::ShareSpec &spec)
{
    Graph graph("share-layout");

    Node src = makeNode(NodeKind::SecretSource, "shares");
    src.n = spec.shares;
    src.shareThreshold = spec.threshold;
    const NodeId srcId = graph.add(std::move(src));
    const NodeId sinkId =
        graph.add(makeNode(NodeKind::Sink, "reconstruct"));

    const uint64_t guarded =
        spec.shares >= spec.unguarded ? spec.shares - spec.unguarded : 0;
    if (guarded > 0) {
        Node gate = makeNode(NodeKind::Device, "wearout-gate");
        gate.device = {10.0, 12.0}; // paper-default guard technology
        gate.n = guarded;
        const NodeId gateId = graph.add(std::move(gate));
        graph.connect(srcId, gateId);
        graph.connect(gateId, sinkId);
    }
    if (spec.unguarded > 0) {
        Node store = makeNode(NodeKind::Store, "bare-store");
        store.n = spec.unguarded;
        const NodeId storeId = graph.add(std::move(store));
        graph.connect(srcId, storeId);
        graph.connect(storeId, sinkId);
    }
    return graph;
}

Graph
lowerOtp(const core::OtpParams &params,
         std::optional<double> receiverFloor,
         std::optional<double> adversaryCeiling)
{
    Graph graph("one-time-pad");

    Node src = makeNode(NodeKind::SecretSource, "pad-shares");
    src.n = params.copies;
    src.shareThreshold = params.threshold;
    const NodeId srcId = graph.add(std::move(src));

    Node gate = makeNode(NodeKind::Device, "tree-switches");
    gate.device = params.device;
    gate.n = params.copies;
    const NodeId gateId = graph.add(std::move(gate));

    Node path = makeNode(NodeKind::Series, "root-to-leaf-path");
    path.device = params.device;
    path.count = params.height;
    const NodeId pathId = graph.add(std::move(path));

    Node par = makeNode(NodeKind::Parallel, "k-of-n-copies");
    par.device = params.device;
    par.n = params.copies;
    par.k = params.threshold;
    const NodeId parId = graph.add(std::move(par));

    const NodeId sinkId = graph.add(makeNode(NodeKind::Sink, "pad"));

    graph.connect(srcId, gateId);
    graph.connect(gateId, pathId);
    graph.connect(pathId, parId);
    graph.connect(parId, sinkId);

    Obligation otp;
    otp.kind = Obligation::Kind::OtpBounds;
    otp.target = parId;
    otp.access = static_cast<double>(params.height);
    otp.floor = receiverFloor.value_or(0.99);
    otp.ceiling = adversaryCeiling.value_or(1e-6);
    otp.hasFloor = true;
    otp.hasCeiling = true;
    graph.addObligation(otp);

    return graph;
}

std::vector<Graph>
lowerSpec(const lint::ParsedSpec &spec, lint::Report &report)
{
    std::vector<Graph> graphs;
    for (const lint::DesignSection &section : spec.designs) {
        try {
            const core::DesignSolver solver(section.request);
            const core::Design design = solver.solve();
            if (!design.feasible) {
                report.add(lint::Code::V901, "[design]", "",
                           "no architecture within the width/bound caps "
                           "meets the degradation criteria; nothing to "
                           "lower",
                           "relax the criteria or raise max_width");
                continue;
            }
            graphs.push_back(lowerDesign(section.request, design));
        } catch (const lint::LintError &error) {
            report.add(lint::Code::V901, "[design]", "",
                       std::string("design request rejected: ") +
                           error.what());
        }
    }
    for (const lint::StructureSpec &structure : spec.structures)
        graphs.push_back(lowerStructure(structure));
    for (const lint::ShareSpec &shares : spec.shares)
        graphs.push_back(lowerShares(shares));
    for (const lint::OtpSection &otp : spec.otps)
        graphs.push_back(lowerOtp(otp.params, otp.receiverFloor,
                                  otp.adversaryCeiling));
    if (!spec.faults.empty()) {
        // A [fault] section models the fabrication line: its plan
        // applies to every wearout device the file describes.
        for (Graph &graph : graphs) {
            for (NodeId id = 0; id < graph.size(); ++id) {
                if (graph.node(id).kind == NodeKind::Device)
                    graph.mutableNode(id).faultPlan = spec.faults.front();
            }
        }
    }
    return graphs;
}

} // namespace lemons::ir
