/**
 * @file
 * Lowering: from the library's architecture descriptions into the IR.
 *
 * Three entry points mirror the three ways a design reaches the
 * toolchain: a solved `core::Design`, a hand-written `StructureSpec`
 * (or share/OTP layout), and a parsed `.lemons` spec file. All produce
 * the same graph language, with proof obligations attached wherever
 * the source carried degradation criteria, so the verifier never
 * needs to know where a graph came from.
 *
 * Lowering is total for well-formed inputs and *graceful* for
 * questionable ones (a share layout with more unguarded shares than
 * shares still lowers, with the guarded bank clamped to zero — the
 * secret-flow pass will then condemn it). Only inputs that cannot
 * express an architecture at all (an infeasible design request) are
 * rejected, via V901 from lowerSpec.
 */

#ifndef LEMONS_IR_LOWER_H_
#define LEMONS_IR_LOWER_H_

#include <optional>
#include <vector>

#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "ir/graph.h"
#include "lint/diagnostics.h"
#include "lint/rules.h"
#include "lint/spec_file.h"

namespace lemons::ir {

/**
 * Lower a solved design: SecretSource -> Device bank -> k-of-n
 * Parallel -> Replicate(N) -> Sink, with the request's degradation
 * criteria as obligations. @p design must be feasible.
 */
Graph lowerDesign(const core::DesignRequest &request,
                  const core::Design &design);

/**
 * Lower a series/parallel structure spec; optional accessBound /
 * criteria fields become obligations.
 */
Graph lowerStructure(const lint::StructureSpec &spec);

/**
 * Lower a share layout: guarded shares behind a Device bank, any
 * unguarded shares through a bare Store branch (the secret-flow
 * pass's prey).
 */
Graph lowerShares(const lint::ShareSpec &spec);

/**
 * Lower an OTP architecture: per-copy path of H series switches, a
 * k-of-n Parallel over the copies, and an OtpBounds obligation
 * (receiver floor defaults to 0.99, adversary ceiling to 1e-6).
 */
Graph lowerOtp(const core::OtpParams &params,
               std::optional<double> receiverFloor = {},
               std::optional<double> adversaryCeiling = {});

/**
 * Lower every architecture-bearing section of a parsed spec file.
 * [design] sections are solved first (an infeasible request emits
 * V901 and is skipped); a [fault] section attaches its plan to every
 * Device node of the file's graphs. Lint-only sections ([mway],
 * [workload], [mixture]) do not lower.
 */
std::vector<Graph> lowerSpec(const lint::ParsedSpec &spec,
                             lint::Report &report);

} // namespace lemons::ir

#endif // LEMONS_IR_LOWER_H_
