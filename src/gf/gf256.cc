#include "gf/gf256.h"

#include <array>

#include "util/require.h"

namespace lemons::gf {

namespace {

struct Tables
{
    std::array<uint8_t, 512> expTable{};
    std::array<unsigned, 256> logTable{};
};

constexpr Tables
buildTables()
{
    Tables t{};
    unsigned x = 1;
    for (unsigned i = 0; i < groupOrder; ++i) {
        t.expTable[i] = static_cast<uint8_t>(x);
        t.logTable[x] = i;
        x <<= 1;
        if (x & 0x100)
            x ^= primitivePoly;
    }
    // Duplicate so exp(i + j) needs no modular reduction for i, j < 255.
    for (unsigned i = groupOrder; i < 512; ++i)
        t.expTable[i] = t.expTable[i - groupOrder];
    t.logTable[0] = 0; // unused sentinel; log(0) is rejected at runtime
    return t;
}

constexpr Tables tables = buildTables();

} // namespace

uint8_t
mul(uint8_t a, uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return tables.expTable[tables.logTable[a] + tables.logTable[b]];
}

uint8_t
inv(uint8_t a)
{
    requireArg(a != 0, "gf::inv: zero has no inverse");
    return tables.expTable[groupOrder - tables.logTable[a]];
}

uint8_t
div(uint8_t a, uint8_t b)
{
    requireArg(b != 0, "gf::div: division by zero");
    if (a == 0)
        return 0;
    return tables.expTable[tables.logTable[a] + groupOrder -
                           tables.logTable[b]];
}

uint8_t
pow(uint8_t a, uint64_t e)
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    const uint64_t reduced = (static_cast<uint64_t>(tables.logTable[a]) * e) %
                             groupOrder;
    return tables.expTable[reduced];
}

uint8_t
exp(unsigned e)
{
    return tables.expTable[e % groupOrder];
}

unsigned
log(uint8_t a)
{
    requireArg(a != 0, "gf::log: log of zero is undefined");
    return tables.logTable[a];
}

uint8_t
mulSlow(uint8_t a, uint8_t b)
{
    unsigned result = 0;
    unsigned aa = a;
    unsigned bb = b;
    while (bb) {
        if (bb & 1)
            result ^= aa;
        aa <<= 1;
        if (aa & 0x100)
            aa ^= primitivePoly;
        bb >>= 1;
    }
    return static_cast<uint8_t>(result);
}

} // namespace lemons::gf
