/**
 * @file
 * Arithmetic in GF(2^8), the field underlying the Reed-Solomon codes
 * and Shamir secret-sharing used for redundant encoding (paper
 * Section 4.1.4).
 *
 * Elements are bytes; addition is XOR; multiplication is polynomial
 * multiplication modulo the primitive polynomial
 *   x^8 + x^4 + x^3 + x^2 + 1  (0x11d),
 * the conventional choice for RS(255, k) codes. Multiplication and
 * inversion go through compile-time log/antilog tables over the
 * generator g = 0x02.
 */

#ifndef LEMONS_GF_GF256_H_
#define LEMONS_GF_GF256_H_

#include <cstdint>

namespace lemons::gf {

/** Field order. */
inline constexpr unsigned fieldSize = 256;
/** Multiplicative group order. */
inline constexpr unsigned groupOrder = 255;
/** Primitive reduction polynomial (degree-8 bits included). */
inline constexpr unsigned primitivePoly = 0x11d;

/** Field addition (== subtraction): XOR. */
constexpr uint8_t
add(uint8_t a, uint8_t b)
{
    return a ^ b;
}

/** Field subtraction; identical to addition in characteristic 2. */
constexpr uint8_t
sub(uint8_t a, uint8_t b)
{
    return a ^ b;
}

/** Field multiplication. */
uint8_t mul(uint8_t a, uint8_t b);

/**
 * Multiplicative inverse. @pre a != 0 (throws std::invalid_argument
 * otherwise — dividing by zero is a programming error).
 */
uint8_t inv(uint8_t a);

/** Field division a / b. @pre b != 0. */
uint8_t div(uint8_t a, uint8_t b);

/** a raised to the integer power @p e (e may exceed 255). pow(0,0)=1. */
uint8_t pow(uint8_t a, uint64_t e);

/** Antilog: g^e for the generator g = 2, with e taken mod 255. */
uint8_t exp(unsigned e);

/** Discrete log base g = 2. @pre a != 0. */
unsigned log(uint8_t a);

/**
 * Slow bitwise ("Russian peasant") multiplication used to validate the
 * table-driven fast path in tests.
 */
uint8_t mulSlow(uint8_t a, uint8_t b);

} // namespace lemons::gf

#endif // LEMONS_GF_GF256_H_
