/**
 * @file
 * Arithmetic in GF(2^16).
 *
 * The encoded designs of Fig 4b at high process variation (beta = 4)
 * need parallel structures thousands of devices wide — beyond the 255
 * share indices GF(2^8) offers. GF(2^16) supports up to 65,535 shares,
 * letting the runtime gate fabricate every design the solver emits.
 *
 * Elements are 16-bit words; addition is XOR; multiplication is
 * polynomial multiplication modulo the primitive polynomial
 *   x^16 + x^12 + x^3 + x + 1  (0x1100b).
 * Log/antilog tables (256 KiB) are built once at first use.
 */

#ifndef LEMONS_GF_GF65536_H_
#define LEMONS_GF_GF65536_H_

#include <cstdint>

namespace lemons::gf16 {

/** Field order. */
inline constexpr unsigned fieldSize = 65536;
/** Multiplicative group order. */
inline constexpr unsigned groupOrder = 65535;
/** Primitive reduction polynomial (degree-16 bit included). */
inline constexpr uint32_t primitivePoly = 0x1100b;

/** Field addition (== subtraction): XOR. */
constexpr uint16_t
add(uint16_t a, uint16_t b)
{
    return a ^ b;
}

/** Field subtraction; identical to addition in characteristic 2. */
constexpr uint16_t
sub(uint16_t a, uint16_t b)
{
    return a ^ b;
}

/** Field multiplication. */
uint16_t mul(uint16_t a, uint16_t b);

/** Multiplicative inverse. @pre a != 0. */
uint16_t inv(uint16_t a);

/** Field division a / b. @pre b != 0. */
uint16_t div(uint16_t a, uint16_t b);

/** a raised to the integer power @p e; pow(0, 0) = 1. */
uint16_t pow(uint16_t a, uint64_t e);

/** Antilog: g^e for the generator g = 2, e taken mod 65535. */
uint16_t exp(unsigned e);

/** Discrete log base g = 2. @pre a != 0. */
unsigned log(uint16_t a);

/** Bitwise reference multiplication for tests. */
uint16_t mulSlow(uint16_t a, uint16_t b);

} // namespace lemons::gf16

#endif // LEMONS_GF_GF65536_H_
