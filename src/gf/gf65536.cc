#include "gf/gf65536.h"

#include <array>
#include <vector>

#include "util/require.h"

namespace lemons::gf16 {

namespace {

struct Tables
{
    std::vector<uint16_t> expTable;
    std::vector<unsigned> logTable;

    Tables() : expTable(2 * groupOrder), logTable(fieldSize, 0)
    {
        uint32_t x = 1;
        for (unsigned i = 0; i < groupOrder; ++i) {
            expTable[i] = static_cast<uint16_t>(x);
            logTable[x] = i;
            x <<= 1;
            if (x & 0x10000)
                x ^= primitivePoly;
        }
        for (unsigned i = groupOrder; i < 2 * groupOrder; ++i)
            expTable[i] = expTable[i - groupOrder];
    }
};

const Tables &
tables()
{
    // Function-local static: built on first use, thread-safe since
    // C++11, and trivially destructible data inside a leaked-ok
    // singleton (the vectors live until program exit).
    static const Tables &instance = *new Tables();
    return instance;
}

} // namespace

uint16_t
mul(uint16_t a, uint16_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.expTable[t.logTable[a] + t.logTable[b]];
}

uint16_t
inv(uint16_t a)
{
    requireArg(a != 0, "gf16::inv: zero has no inverse");
    const Tables &t = tables();
    return t.expTable[groupOrder - t.logTable[a]];
}

uint16_t
div(uint16_t a, uint16_t b)
{
    requireArg(b != 0, "gf16::div: division by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.expTable[t.logTable[a] + groupOrder - t.logTable[b]];
}

uint16_t
pow(uint16_t a, uint64_t e)
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    const Tables &t = tables();
    const uint64_t reduced =
        (static_cast<uint64_t>(t.logTable[a]) * e) % groupOrder;
    return t.expTable[reduced];
}

uint16_t
exp(unsigned e)
{
    return tables().expTable[e % groupOrder];
}

unsigned
log(uint16_t a)
{
    requireArg(a != 0, "gf16::log: log of zero is undefined");
    return tables().logTable[a];
}

uint16_t
mulSlow(uint16_t a, uint16_t b)
{
    uint32_t result = 0;
    uint32_t aa = a;
    uint32_t bb = b;
    while (bb) {
        if (bb & 1)
            result ^= aa;
        aa <<= 1;
        if (aa & 0x10000)
            aa ^= primitivePoly;
        bb >>= 1;
    }
    return static_cast<uint16_t>(result);
}

} // namespace lemons::gf16
