/**
 * @file
 * Polynomials over GF(2^8).
 *
 * Shamir's scheme encodes a secret byte as the constant term of a
 * random degree-(k-1) polynomial (paper Eq. 7) and Reed-Solomon
 * encoding/decoding is polynomial evaluation/interpolation, so both
 * modules share this representation.
 */

#ifndef LEMONS_GF_POLY_H_
#define LEMONS_GF_POLY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace lemons::gf {

/**
 * Dense polynomial over GF(2^8), stored low-order-coefficient first:
 * coeffs[i] is the coefficient of x^i. The zero polynomial is the
 * empty coefficient vector (degree() == -1).
 */
class Poly
{
  public:
    /** The zero polynomial. */
    Poly() = default;

    /** From coefficients, low-order first; trailing zeros trimmed. */
    explicit Poly(std::vector<uint8_t> coefficients);

    /**
     * Random polynomial of degree *at most* @p degree with the given
     * constant term; used by Shamir splitting. All masking
     * coefficients are uniform over the field — including zero for the
     * leading coefficient. (Forcing the leading coefficient nonzero
     * would break perfect secrecy: shares could then never equal
     * certain values, which a chi-square test detects.)
     *
     * @param constantTerm Value of the polynomial at x = 0.
     * @param degree Maximum degree (>= 0).
     * @param rng Randomness source.
     */
    static Poly random(uint8_t constantTerm, size_t degree, Rng &rng);

    /** Degree; -1 for the zero polynomial. */
    int degree() const;

    /** Coefficient of x^i (0 beyond the stored length). */
    uint8_t coefficient(size_t i) const;

    /** Coefficients, low-order first (trailing zeros trimmed). */
    const std::vector<uint8_t> &coefficients() const { return coeffs; }

    /** Evaluate at @p x by Horner's rule. */
    uint8_t eval(uint8_t x) const;

    /** Polynomial addition (== subtraction over GF(2^8)). */
    Poly operator+(const Poly &other) const;

    /** Polynomial multiplication. */
    Poly operator*(const Poly &other) const;

    /** Scale every coefficient by @p s. */
    Poly scaled(uint8_t s) const;

    /** Structural equality (after trailing-zero trimming). */
    bool operator==(const Poly &other) const = default;

  private:
    std::vector<uint8_t> coeffs;

    void trim();
};

/** One evaluation point (x, y) used for interpolation. */
struct Point
{
    uint8_t x;
    uint8_t y;
};

/**
 * Lagrange interpolation: the unique polynomial of degree < points.size()
 * through all @p points. The x coordinates must be pairwise distinct.
 */
Poly interpolate(const std::vector<Point> &points);

/**
 * Lagrange interpolation evaluated only at x = 0 (the Shamir secret),
 * avoiding construction of the full polynomial. The x coordinates must
 * be pairwise distinct and nonzero.
 */
uint8_t interpolateAtZero(const std::vector<Point> &points);

} // namespace lemons::gf

#endif // LEMONS_GF_POLY_H_
