#include "gf/poly.h"

#include <algorithm>

#include "gf/gf256.h"
#include "util/require.h"

namespace lemons::gf {

Poly::Poly(std::vector<uint8_t> coefficients) : coeffs(std::move(coefficients))
{
    trim();
}

void
Poly::trim()
{
    while (!coeffs.empty() && coeffs.back() == 0)
        coeffs.pop_back();
}

Poly
Poly::random(uint8_t constantTerm, size_t degree, Rng &rng)
{
    std::vector<uint8_t> c(degree + 1);
    c[0] = constantTerm;
    for (size_t i = 1; i <= degree; ++i)
        c[i] = static_cast<uint8_t>(rng.nextBelow(256));
    return Poly(std::move(c));
}

int
Poly::degree() const
{
    return static_cast<int>(coeffs.size()) - 1;
}

uint8_t
Poly::coefficient(size_t i) const
{
    return i < coeffs.size() ? coeffs[i] : 0;
}

uint8_t
Poly::eval(uint8_t x) const
{
    uint8_t acc = 0;
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it)
        acc = add(mul(acc, x), *it);
    return acc;
}

Poly
Poly::operator+(const Poly &other) const
{
    std::vector<uint8_t> out(std::max(coeffs.size(), other.coeffs.size()), 0);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = add(coefficient(i), other.coefficient(i));
    return Poly(std::move(out));
}

Poly
Poly::operator*(const Poly &other) const
{
    if (coeffs.empty() || other.coeffs.empty())
        return Poly();
    std::vector<uint8_t> out(coeffs.size() + other.coeffs.size() - 1, 0);
    for (size_t i = 0; i < coeffs.size(); ++i) {
        if (coeffs[i] == 0)
            continue;
        for (size_t j = 0; j < other.coeffs.size(); ++j)
            out[i + j] = add(out[i + j], mul(coeffs[i], other.coeffs[j]));
    }
    return Poly(std::move(out));
}

Poly
Poly::scaled(uint8_t s) const
{
    std::vector<uint8_t> out(coeffs.size());
    for (size_t i = 0; i < coeffs.size(); ++i)
        out[i] = mul(coeffs[i], s);
    return Poly(std::move(out));
}

namespace {

void
checkDistinctX(const std::vector<Point> &points)
{
    for (size_t i = 0; i < points.size(); ++i)
        for (size_t j = i + 1; j < points.size(); ++j)
            requireArg(points[i].x != points[j].x,
                       "interpolate: duplicate x coordinate");
}

} // namespace

Poly
interpolate(const std::vector<Point> &points)
{
    requireArg(!points.empty(), "interpolate: need at least one point");
    checkDistinctX(points);

    Poly result;
    for (size_t i = 0; i < points.size(); ++i) {
        // Basis polynomial L_i(x) = prod_{j != i} (x - x_j)/(x_i - x_j),
        // scaled by y_i.
        Poly basis(std::vector<uint8_t>{1});
        uint8_t denom = 1;
        for (size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            basis = basis * Poly({points[j].x, 1}); // (x + x_j) == (x - x_j)
            denom = mul(denom, sub(points[i].x, points[j].x));
        }
        result = result + basis.scaled(div(points[i].y, denom));
    }
    return result;
}

uint8_t
interpolateAtZero(const std::vector<Point> &points)
{
    requireArg(!points.empty(),
               "interpolateAtZero: need at least one point");
    checkDistinctX(points);

    uint8_t secret = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        requireArg(points[i].x != 0,
                   "interpolateAtZero: x = 0 would leak the secret share");
        // L_i(0) = prod_{j != i} x_j / (x_j - x_i)
        uint8_t num = 1;
        uint8_t denom = 1;
        for (size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            num = mul(num, points[j].x);
            denom = mul(denom, sub(points[j].x, points[i].x));
        }
        secret = add(secret, mul(points[i].y, div(num, denom)));
    }
    return secret;
}

} // namespace lemons::gf
