#include "fleet/campaign.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "lint/diagnostics.h"
#include "obs/metrics.h"
#include "sim/workload.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "wearout/mixture.h"
#include "wearout/weibull.h"

namespace lemons::fleet {

namespace {

/** Canonical byte stream for fingerprinting and digests. */
class HashStream
{
  public:
    void u64(uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8)
            bytes.push_back(
                static_cast<uint8_t>((value >> shift) & 0xFFu));
    }

    void f64(double value) { u64(std::bit_cast<uint64_t>(value)); }

    void str(const std::string &value)
    {
        u64(value.size());
        bytes.insert(bytes.end(), value.begin(), value.end());
    }

    uint64_t fnv() const { return fnv1a64(bytes.data(), bytes.size()); }

  private:
    std::vector<uint8_t> bytes;
};

uint64_t
fingerprintSpec(const lint::FleetSpec &spec)
{
    HashStream h;
    h.u64(spec.devices);
    h.u64(spec.seed);
    h.u64(spec.chunkSize);
    h.u64(spec.checkpointEveryChunks);
    h.u64(spec.horizonDays);
    h.u64(spec.prematureDays);
    h.u64(spec.cohorts.size());
    for (const lint::FleetCohortSpec &cohort : spec.cohorts) {
        h.str(cohort.name);
        h.f64(cohort.weight);
        h.f64(cohort.staggerDays);
        h.u64(cohort.accessBound);
        h.f64(cohort.usage.meanPerDay);
        h.f64(cohort.usage.burstProbability);
        h.f64(cohort.usage.burstMultiplier);
        h.f64(cohort.lifetime.infantFraction);
        h.f64(cohort.lifetime.infant.alpha);
        h.f64(cohort.lifetime.infant.beta);
        h.f64(cohort.lifetime.main.alpha);
        h.f64(cohort.lifetime.main.beta);
        h.f64(cohort.reprovisionDay.value_or(-1.0));
        h.f64(cohort.reprovisionUsageScale);
    }
    return h.fnv();
}

/**
 * Largest-remainder apportionment of @p devices by cohort weight:
 * every cohort gets floor(weight * devices), then the leftover units
 * go to the largest fractional remainders (ties to the earlier
 * cohort). Sums exactly to devices, deterministically.
 */
std::vector<uint64_t>
apportion(const lint::FleetSpec &spec)
{
    const size_t n = spec.cohorts.size();
    std::vector<uint64_t> counts(n, 0);
    std::vector<std::pair<double, size_t>> remainders;
    remainders.reserve(n);
    uint64_t assigned = 0;
    for (size_t i = 0; i < n; ++i) {
        const double exact =
            spec.cohorts[i].weight * static_cast<double>(spec.devices);
        const double floored = std::floor(exact);
        counts[i] = static_cast<uint64_t>(floored);
        assigned += counts[i];
        remainders.emplace_back(exact - floored, i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    uint64_t leftover = spec.devices - assigned;
    for (size_t i = 0; leftover > 0 && i < remainders.size(); ++i) {
        ++counts[remainders[i].second];
        --leftover;
    }
    return counts;
}

/** Order-independent lifecycle tallies one cohort's trials feed. */
struct LifecycleCounters
{
    std::atomic<uint64_t> replaced{0};
    std::atomic<uint64_t> premature{0};
    std::atomic<uint64_t> reprovisioned{0};
};

/**
 * Simulate one device's lifetime; returns days of service delivered
 * (from entry into service until lockout or the horizon). All draws
 * come from the trial's own Rng, in a fixed order, so the sample — and
 * every counter increment — is a pure function of the trial seed.
 */
double
simulateDevice(Rng &rng, const lint::FleetSpec &spec,
               const lint::FleetCohortSpec &cohort,
               const wearout::BathtubModel &lifetime,
               LifecycleCounters &counters)
{
    // Provisioning stagger: the device enters service on a uniform day
    // within the cohort's rollout window.
    const double entryDay = cohort.staggerDays > 0.0
                                ? rng.nextDouble() * cohort.staggerDays
                                : 0.0;
    // The device dies at whichever comes first: the architecture's
    // limited-use bound, or physical wearout of the lot it came from.
    const double wearLife = lifetime.sample(rng);
    const double bound = static_cast<double>(cohort.accessBound);
    const uint64_t budget = static_cast<uint64_t>(
        std::max(0.0, std::min(bound, wearLife)));

    const uint64_t firstDay = static_cast<uint64_t>(entryDay);
    uint64_t spent = 0;
    bool reprovisionCounted = false;
    for (uint64_t day = firstDay; day < spec.horizonDays; ++day) {
        double mean = cohort.usage.meanPerDay;
        if (cohort.reprovisionDay &&
            static_cast<double>(day) >= *cohort.reprovisionDay) {
            if (!reprovisionCounted) {
                counters.reprovisioned.fetch_add(
                    1, std::memory_order_relaxed);
                reprovisionCounted = true;
            }
            mean *= cohort.reprovisionUsageScale;
        }
        if (cohort.usage.burstProbability > 0.0 &&
            rng.nextBernoulli(cohort.usage.burstProbability))
            mean *= cohort.usage.burstMultiplier;
        spent += sim::poissonSample(rng, mean);
        if (spent >= budget) {
            counters.replaced.fetch_add(1, std::memory_order_relaxed);
            if (day < spec.prematureDays)
                counters.premature.fetch_add(1,
                                             std::memory_order_relaxed);
            return static_cast<double>(day - firstDay);
        }
    }
    return static_cast<double>(spec.horizonDays - firstDay);
}

CohortRecord
toRecord(const CohortResult &result)
{
    CohortRecord record;
    record.name = result.name;
    record.devices = result.devices;
    record.serviceDays = result.serviceDays.state();
    record.replaced = result.replaced;
    record.premature = result.premature;
    record.reprovisioned = result.reprovisioned;
    return record;
}

CohortResult
fromRecord(const CohortRecord &record)
{
    CohortResult result;
    result.name = record.name;
    result.devices = record.devices;
    result.serviceDays = RunningStats::fromState(record.serviceDays);
    result.replaced = record.replaced;
    result.premature = record.premature;
    result.reprovisioned = record.reprovisioned;
    return result;
}

engine::EngineCheckpoint
toEngineCheckpoint(const EngineCursorRecord &cursor)
{
    engine::EngineCheckpoint checkpoint;
    checkpoint.seed = cursor.seed;
    checkpoint.requestedTrials = cursor.requestedTrials;
    checkpoint.chunkSize = cursor.chunkSize;
    checkpoint.executedChunks = cursor.executedChunks;
    checkpoint.streaming = RunningStats::fromState(cursor.streaming);
    checkpoint.failures = cursor.failures;
    checkpoint.nonFiniteTrials = cursor.nonFiniteTrials;
    return checkpoint;
}

EngineCursorRecord
fromEngineCheckpoint(const engine::EngineCheckpoint &checkpoint)
{
    EngineCursorRecord cursor;
    cursor.seed = checkpoint.seed;
    cursor.requestedTrials = checkpoint.requestedTrials;
    cursor.chunkSize = checkpoint.chunkSize;
    cursor.executedChunks = checkpoint.executedChunks;
    cursor.streaming = checkpoint.streaming.state();
    cursor.failures = checkpoint.failures;
    cursor.nonFiniteTrials = checkpoint.nonFiniteTrials;
    return cursor;
}

} // namespace

ProportionInterval
CohortResult::replacementInterval() const
{
    if (devices == 0)
        return {0.0, 0.0, 0.0};
    return wilsonInterval(replaced, devices);
}

ProportionInterval
CohortResult::prematureInterval() const
{
    if (devices == 0)
        return {0.0, 0.0, 0.0};
    return wilsonInterval(premature, devices);
}

uint64_t
FleetSummary::digest() const
{
    HashStream h;
    h.u64(cohorts.size());
    for (const CohortResult &cohort : cohorts) {
        h.str(cohort.name);
        h.u64(cohort.devices);
        const RunningStats::State state = cohort.serviceDays.state();
        h.u64(state.count);
        h.u64(state.nonFiniteCount);
        h.f64(state.mean);
        h.f64(state.m2);
        h.f64(state.min);
        h.f64(state.max);
        h.u64(cohort.replaced);
        h.u64(cohort.premature);
        h.u64(cohort.reprovisioned);
    }
    return h.fnv();
}

FleetCampaign::FleetCampaign(const lint::FleetSpec &spec) : fleetSpec(spec)
{
    const lint::Report report = lint::checkFleet(spec);
    if (report.hasErrors())
        throw std::invalid_argument("invalid fleet spec:\n" +
                                    report.format());
    fingerprint = fingerprintSpec(spec);
    trials = apportion(spec);
}

FleetSummary
FleetCampaign::run(const CampaignOptions &options) const
{
    LEMONS_OBS_SCOPED_TIMER("fleet.campaign.run");
    FleetSummary summary;

    // Resume state: which cohort to start at, and — when the
    // checkpoint caught a cohort mid-flight — its engine cursor and
    // lifecycle tallies at the cursor.
    size_t startCohort = 0;
    std::optional<engine::EngineCheckpoint> resumeCursor;
    uint64_t resumeReplaced = 0;
    uint64_t resumePremature = 0;
    uint64_t resumeReprovisioned = 0;

    if (options.resume && !options.checkpointPath.empty()) {
        const CheckpointLoadOutcome loaded =
            loadWithFallback(options.checkpointPath);
        summary.fellBack = loaded.fellBack;
        summary.warning = loaded.warning;
        if (loaded.checkpoint) {
            const FleetCheckpoint &checkpoint = *loaded.checkpoint;
            if (checkpoint.configFingerprint != fingerprint)
                throw CheckpointError(
                    options.checkpointPath + ": " +
                    lint::codeInfo(lint::Code::C105).id +
                    " config mismatch: checkpoint was written "
                    "by a campaign with a different configuration");
            for (const CohortRecord &record : checkpoint.completed)
                summary.cohorts.push_back(fromRecord(record));
            startCohort = checkpoint.completed.size();
            if (checkpoint.hasCursor) {
                resumeCursor = toEngineCheckpoint(checkpoint.cursor);
                resumeReplaced = checkpoint.partialReplaced;
                resumePremature = checkpoint.partialPremature;
                resumeReprovisioned = checkpoint.partialReprovisioned;
            }
            summary.resumed = true;
            LEMONS_OBS_INCREMENT("fleet.campaign.resumes");
        }
    }

    const Rng seedSource(fleetSpec.seed);
    for (size_t c = startCohort; c < fleetSpec.cohorts.size(); ++c) {
        const lint::FleetCohortSpec &cohortSpec = fleetSpec.cohorts[c];
        const uint64_t cohortDevices = trials[c];
        if (cohortDevices == 0) {
            CohortResult empty;
            empty.name = cohortSpec.name;
            summary.cohorts.push_back(empty);
            continue;
        }

        const wearout::BathtubModel lifetime(
            cohortSpec.lifetime.infantFraction,
            wearout::Weibull(cohortSpec.lifetime.infant.alpha,
                             cohortSpec.lifetime.infant.beta),
            wearout::Weibull(cohortSpec.lifetime.main.alpha,
                             cohortSpec.lifetime.main.beta));
        LifecycleCounters counters;
        const bool resumingThisCohort =
            c == startCohort && resumeCursor.has_value();
        if (resumingThisCohort) {
            counters.replaced.store(resumeReplaced,
                                    std::memory_order_relaxed);
            counters.premature.store(resumePremature,
                                     std::memory_order_relaxed);
            counters.reprovisioned.store(resumeReprovisioned,
                                         std::memory_order_relaxed);
        }

        // Cohort c's trial stream is independent of every other
        // cohort's: derived from the campaign seed, not shared.
        const uint64_t cohortSeed = seedSource.split(c).next();

        engine::McRunOptions runOptions;
        runOptions.trials = cohortDevices;
        runOptions.threads = options.threads;
        runOptions.chunkSize = fleetSpec.chunkSize;
        runOptions.keepSamples = false;
        runOptions.cancel = options.cancel;
        runOptions.deadline = options.deadline;
        runOptions.checkpointEveryChunks =
            fleetSpec.checkpointEveryChunks;
        if (resumingThisCohort)
            runOptions.resumeFrom = &*resumeCursor;
        if (!options.checkpointPath.empty()) {
            // The hook runs on the driving thread after the wave's
            // join, so the atomic tallies it reads are exactly the
            // executed chunks' — snapshot-consistent with the cursor.
            runOptions.checkpoint =
                [&](const engine::EngineCheckpoint &engineCheckpoint) {
                    FleetCheckpoint checkpoint;
                    checkpoint.configFingerprint = fingerprint;
                    for (const CohortResult &done : summary.cohorts)
                        checkpoint.completed.push_back(toRecord(done));
                    checkpoint.hasCursor = true;
                    checkpoint.cursor =
                        fromEngineCheckpoint(engineCheckpoint);
                    checkpoint.partialReplaced = counters.replaced.load(
                        std::memory_order_relaxed);
                    checkpoint.partialPremature =
                        counters.premature.load(
                            std::memory_order_relaxed);
                    checkpoint.partialReprovisioned =
                        counters.reprovisioned.load(
                            std::memory_order_relaxed);
                    writeCheckpointAtomic(options.checkpointPath,
                                          checkpoint);
                };
        }

        const engine::TrialReport report = engine::runTrials(
            cohortSeed, runOptions,
            [&](Rng &rng, uint64_t) {
                return simulateDevice(rng, fleetSpec, cohortSpec,
                                      lifetime, counters);
            });

        if (report.interrupted()) {
            // The engine already checkpointed at the interrupt
            // boundary (when a hook is configured); completed cohorts
            // stay final, the cursor lives on disk.
            summary.interrupt = report.interrupt;
            LEMONS_OBS_INCREMENT("fleet.campaign.interrupted");
            return summary;
        }

        CohortResult result;
        result.name = cohortSpec.name;
        result.devices = report.trials;
        result.serviceDays = report.stats;
        result.replaced =
            counters.replaced.load(std::memory_order_relaxed);
        result.premature =
            counters.premature.load(std::memory_order_relaxed);
        result.reprovisioned =
            counters.reprovisioned.load(std::memory_order_relaxed);
        summary.cohorts.push_back(result);
        LEMONS_OBS_COUNT("fleet.campaign.devices", result.devices);

        if (!options.checkpointPath.empty()) {
            // Cursor-less checkpoint: this cohort is sealed, a resume
            // starts cleanly at the next one.
            FleetCheckpoint checkpoint;
            checkpoint.configFingerprint = fingerprint;
            for (const CohortResult &done : summary.cohorts)
                checkpoint.completed.push_back(toRecord(done));
            writeCheckpointAtomic(options.checkpointPath, checkpoint);
        }
    }

    // Cohorts restored from the checkpoint never went through the
    // per-cohort accounting above.
    summary.devices = 0;
    for (const CohortResult &cohort : summary.cohorts)
        summary.devices += cohort.devices;
    LEMONS_OBS_INCREMENT("fleet.campaign.completed");
    return summary;
}

} // namespace lemons::fleet
