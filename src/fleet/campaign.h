/**
 * @file
 * Streaming fleet lifecycle campaigns with crash-safe checkpointing.
 *
 * The paper's deployment story (Section 5) provisions limited-use
 * devices by the million; what an operator actually wants to know is a
 * fleet-level question: across a heterogeneous population — lots with
 * different bathtub lifetime mixtures, staggered provisioning windows,
 * varied usage profiles, mid-life re-provisioning to second owners —
 * what is the replacement rate over the horizon, and what is the tail
 * risk of a *premature* lockout (a device exhausting its budget while
 * the owner still expected service)?
 *
 * FleetCampaign answers that by sharding the population across the
 * engine's deterministic chunked Monte Carlo: each cohort is one
 * engine::runTrials call whose per-device metric simulates a lifetime
 * day by day, and whose results stream through RunningStats in fixed
 * memory. Lifecycle tallies (replacements, premature lockouts,
 * re-provisionings) are order-independent atomic sums, so every number
 * the campaign reports is bit-identical at any thread count.
 *
 * Campaigns are resumable: when a checkpoint path is configured, the
 * engine's checkpoint hook persists a fleet-ckpt/1 file (see
 * checkpoint.h) at every wave boundary, and CampaignOptions::resume
 * picks the run back up from the last good checkpoint — bit-identical
 * to the uninterrupted run, which tests/test_chaos.cc enforces by
 * SIGKILLing campaigns at random points and comparing digests.
 */

#ifndef LEMONS_FLEET_CAMPAIGN_H_
#define LEMONS_FLEET_CAMPAIGN_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "fleet/checkpoint.h"
#include "lint/rules.h"
#include "util/stats.h"

namespace lemons::fleet {

/** Final results of one cohort's device-lifetime trials. */
struct CohortResult
{
    std::string name;
    /** Devices simulated in this cohort. */
    uint64_t devices = 0;
    /** Days of service delivered per device (streamed). */
    RunningStats serviceDays;
    /** Devices that locked out (budget exhausted) within the horizon. */
    uint64_t replaced = 0;
    /** Lockouts before FleetSpec::prematureDays absolute days. */
    uint64_t premature = 0;
    /** Devices that reached their re-provisioning day alive. */
    uint64_t reprovisioned = 0;

    /** Fraction of the cohort needing replacement within the horizon. */
    double replacementRate() const
    {
        return devices == 0
                   ? 0.0
                   : static_cast<double>(replaced) /
                         static_cast<double>(devices);
    }

    /** Wilson 95 % interval on the replacement rate. */
    ProportionInterval replacementInterval() const;

    /** Wilson 95 % interval on premature lockouts — the tail risk. */
    ProportionInterval prematureInterval() const;
};

/** Aggregate outcome of a fleet campaign. */
struct FleetSummary
{
    /** Per-cohort results, in spec order (partial when interrupted). */
    std::vector<CohortResult> cohorts;
    /** Devices simulated across completed cohorts. */
    uint64_t devices = 0;
    /** Why the campaign returned early, if it did. */
    engine::InterruptReason interrupt = engine::InterruptReason::None;
    /** Whether this run restored state from a checkpoint. */
    bool resumed = false;
    /** Whether a corrupt primary checkpoint forced a fallback load. */
    bool fellBack = false;
    /** Recovery note from the checkpoint loader; empty when clean. */
    std::string warning;

    /** Whether every cohort ran to completion. */
    bool complete() const
    {
        return interrupt == engine::InterruptReason::None;
    }

    /**
     * Order-sensitive FNV-1a fingerprint of the scientific results
     * (cohort names, counts, and exact statistic bit patterns).
     * Runtime circumstances — resumed, fellBack, warnings — are
     * excluded, so digest equality is exactly the
     * "resume-equals-uninterrupted" contract the chaos harness checks.
     */
    uint64_t digest() const;
};

/** Execution knobs for one campaign run. */
struct CampaignOptions
{
    /** Worker threads (engine semantics: 1 = inline, 0 = hardware). */
    unsigned threads = 1;
    /** Checkpoint file path; empty disables checkpointing. */
    std::string checkpointPath;
    /** Resume from checkpointPath's last good checkpoint if present. */
    bool resume = false;
    /** Cooperative cancellation; not owned, may be null. */
    const engine::CancelToken *cancel = nullptr;
    /** Wall-clock deadline for the whole campaign. */
    std::optional<std::chrono::steady_clock::time_point> deadline;
};

/**
 * One fleet lifecycle campaign over a lint::FleetSpec population.
 * Construction validates the spec with lint::checkFleet and throws
 * std::invalid_argument (with the formatted diagnostics) on any error,
 * so a campaign that constructs is a campaign that can run.
 */
class FleetCampaign
{
  public:
    explicit FleetCampaign(const lint::FleetSpec &spec);

    /** The validated specification this campaign runs. */
    const lint::FleetSpec &spec() const { return fleetSpec; }

    /**
     * FNV-1a fingerprint of the configuration (exact field bits).
     * Stored in checkpoints; a resume whose fingerprint differs fails
     * with CheckpointError C105 instead of silently mixing results
     * from two different experiments.
     */
    uint64_t configFingerprint() const { return fingerprint; }

    /**
     * Device counts per cohort (largest-remainder apportionment of
     * FleetSpec::devices by cohort weight; sums exactly to devices).
     */
    const std::vector<uint64_t> &cohortTrials() const { return trials; }

    /**
     * Run (or resume) the campaign. Interruption by cancellation or
     * deadline returns a partial summary whose completed cohorts are
     * final; the in-progress cohort's state lives in the checkpoint.
     */
    FleetSummary run(const CampaignOptions &options = {}) const;

  private:
    lint::FleetSpec fleetSpec;
    uint64_t fingerprint = 0;
    std::vector<uint64_t> trials;
};

} // namespace lemons::fleet

#endif // LEMONS_FLEET_CAMPAIGN_H_
