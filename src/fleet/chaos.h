/**
 * @file
 * Crash-injection harness for fleet campaigns.
 *
 * The checkpoint format's whole claim is "a SIGKILL at any instant
 * loses at most one wave of work and never corrupts the result". The
 * only honest way to test that claim is to actually kill processes:
 * runChaosCampaign() forks a child campaign, kills it at a randomized
 * point (alternating SIGKILL and SIGABRT, so both silent death and
 * abort-with-unwound-nothing are covered), resumes from the surviving
 * checkpoint, repeats until the campaign completes, and finally
 * asserts the resumed result's digest equals an uninterrupted
 * reference run's — bit-identical, at any thread count.
 *
 * It can also flip a byte in the primary checkpoint between rounds
 * (ChaosOptions::corruptPrimaryOnce), forcing the loader down its
 * detect-and-fall-back path so the fault-policy coverage is exercised
 * end to end, not just in unit tests.
 *
 * Fork-safety contract: the calling process must not have warmed the
 * global ThreadPool (forking a process with live worker threads risks
 * deadlock in the child). The harness honours the contract itself by
 * running *every* campaign — the uninterrupted reference included —
 * in forked children; the parent only forks, sleeps, kills, and reads
 * result files.
 */

#ifndef LEMONS_FLEET_CHAOS_H_
#define LEMONS_FLEET_CHAOS_H_

#include <cstdint>
#include <string>

#include "lint/rules.h"

namespace lemons::fleet {

/** Knobs for one chaos run. */
struct ChaosOptions
{
    /** Worker threads inside each child campaign. */
    unsigned threads = 1;
    /** Seed for the kill-point randomization (not the campaign's). */
    uint64_t seed = 1;
    /** Maximum kill/resume rounds before the final clean run. */
    int maxKillRounds = 6;
    /** Smallest delay before killing a child, in milliseconds. */
    uint64_t minKillDelayMs = 2;
    /** Kill-delay randomization span on top of the minimum, in ms. */
    uint64_t killDelaySpanMs = 60;
    /** Directory for checkpoints and result files (must exist). */
    std::string workDir = ".";
    /** Flip one checkpoint byte once, to exercise the fallback path. */
    bool corruptPrimaryOnce = true;
};

/** What one chaos run observed. */
struct ChaosResult
{
    /** Digest of the uninterrupted reference run. */
    uint64_t referenceDigest = 0;
    /** Digest of the killed-and-resumed run. */
    uint64_t resumedDigest = 0;
    /** Kill/resume rounds actually performed. */
    int kills = 0;
    /** Whether any resumed child reported restoring from disk. */
    bool resumeObserved = false;
    /** Whether the corrupt-primary fallback path was exercised. */
    bool fallbackExercised = false;
    /** Path of the last checkpoint file (CI failure artifact). */
    std::string checkpointPath;
    /** Human-readable round-by-round log. */
    std::string log;

    /** The contract under test: resume equals uninterrupted. */
    bool passed() const
    {
        return referenceDigest == resumedDigest && referenceDigest != 0;
    }
};

/**
 * Run the kill/resume/compare experiment described in the file
 * comment. @throws std::runtime_error on harness-level failures
 * (fork/exec plumbing, unreadable result files) — a digest mismatch
 * is NOT an exception, it is passed() == false so callers can report
 * both digests.
 */
ChaosResult runChaosCampaign(const lint::FleetSpec &spec,
                             const ChaosOptions &options);

/** A small heterogeneous two-cohort spec sized for chaos testing. */
lint::FleetSpec chaosDefaultSpec();

} // namespace lemons::fleet

#endif // LEMONS_FLEET_CHAOS_H_
