/**
 * @file
 * lemons-fleet — fleet lifecycle campaign runner CLI.
 *
 * Runs the [fleet]/[cohort] sections of a spec file (lint/spec_file.h
 * documents the format) as crash-safe Monte Carlo campaigns:
 *
 *     lemons-fleet run examples/configs/fleet_smartphone.lemons \
 *         --threads 8 --checkpoint /var/tmp/fleet.ckpt --resume
 *
 * With --checkpoint the campaign persists a fleet-ckpt/1 file at every
 * wave boundary; --resume picks an interrupted run back up from the
 * last good checkpoint, bit-identical to the uninterrupted run.
 * --deadline-ms bounds the wall clock (the run checkpoints and exits
 * with code 3 when the deadline fires, so a scheduler can re-invoke
 * with --resume).
 *
 * --chaos runs the crash-injection harness instead: fork a campaign,
 * SIGKILL/SIGABRT it at random points, resume, corrupt a checkpoint
 * once, and verify the final digest equals an uninterrupted run's.
 *
 * --json emits one `lemons-api/1` envelope for the whole invocation
 * ({schema, ok, diagnostics[], result: {fleets: [...]}} for run mode,
 * result: {chaos: {...}} for --chaos), matching lemonsd and
 * `lemons-lint --json`. The pre-envelope newline-delimited per-fleet
 * objects survive behind --json-legacy (deprecated).
 *
 * Exit codes: 0 success, 1 contract failure (chaos digest mismatch),
 * 2 usage/spec error, 3 interrupted by deadline (resumable).
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/codec.h"
#include "fleet/campaign.h"
#include "fleet/chaos.h"
#include "lint/diagnostics.h"
#include "lint/spec_file.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/argparse.h"

namespace {

struct Args
{
    bool chaos = false;
    std::string specFile;
    unsigned threads = 1;
    std::string checkpointPath;
    bool resume = false;
    std::optional<uint64_t> deadlineMs;
    bool json = false;
    bool jsonLegacy = false;
    bool metrics = false;
    uint64_t rounds = 6;
    std::string dir = ".";
    uint64_t seed = 1;
};

void
printCohort(const lemons::fleet::CohortResult &cohort)
{
    const lemons::ProportionInterval replacement =
        cohort.replacementInterval();
    const lemons::ProportionInterval premature =
        cohort.prematureInterval();
    std::cout << "  " << cohort.name << ": " << cohort.devices
              << " devices, replacement " << replacement.estimate
              << " [" << replacement.low << ", " << replacement.high
              << "], premature " << premature.estimate << " ["
              << premature.low << ", " << premature.high
              << "], reprovisioned " << cohort.reprovisioned
              << ", mean service days " << cohort.serviceDays.mean()
              << "\n";
}

void
printCohortJson(lemons::obs::JsonWriter &json,
                const lemons::fleet::CohortResult &cohort)
{
    const lemons::ProportionInterval replacement =
        cohort.replacementInterval();
    const lemons::ProportionInterval premature =
        cohort.prematureInterval();
    json.beginObject();
    json.key("name");
    json.value(cohort.name);
    json.key("devices");
    json.value(cohort.devices);
    json.key("replaced");
    json.value(cohort.replaced);
    json.key("replacement_rate");
    json.value(replacement.estimate);
    json.key("replacement_low");
    json.value(replacement.low);
    json.key("replacement_high");
    json.value(replacement.high);
    json.key("premature");
    json.value(cohort.premature);
    json.key("premature_rate");
    json.value(premature.estimate);
    json.key("premature_low");
    json.value(premature.low);
    json.key("premature_high");
    json.value(premature.high);
    json.key("reprovisioned");
    json.value(cohort.reprovisioned);
    json.key("mean_service_days");
    json.value(cohort.serviceDays.mean());
    json.endObject();
}

void
writeSummaryJson(lemons::obs::JsonWriter &json, uint64_t index,
                 const lemons::fleet::FleetSummary &summary)
{
    json.beginObject();
    json.key("fleet");
    json.value(index);
    json.key("devices");
    json.value(summary.devices);
    json.key("complete");
    json.value(summary.complete());
    json.key("resumed");
    json.value(summary.resumed);
    json.key("fell_back");
    json.value(summary.fellBack);
    json.key("digest");
    json.value(summary.digest());
    json.key("cohorts");
    json.beginArray();
    for (const lemons::fleet::CohortResult &cohort : summary.cohorts)
        printCohortJson(json, cohort);
    json.endArray();
    json.endObject();
}

int
runCampaigns(const Args &args)
{
    lemons::lint::Report report;
    const lemons::lint::ParsedSpec spec =
        lemons::lint::parseSpecFile(args.specFile, report);
    if (report.hasErrors()) {
        if (args.json)
            std::cout << lemons::api::renderEnvelope(report);
        else
            std::cerr << report.format();
        return 2;
    }
    if (spec.fleets.empty()) {
        std::cerr << "lemons-fleet: " << args.specFile
                  << " has no [fleet] section\n";
        return 2;
    }

    lemons::fleet::CampaignOptions options;
    options.threads = args.threads;
    options.checkpointPath = args.checkpointPath;
    options.resume = args.resume;
    if (args.deadlineMs)
        // LEMONS-TIDY-ALLOW(T002): anchors the --deadline-ms wall-clock
        // budget; campaign results never depend on it
        options.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(*args.deadlineMs);

    bool interrupted = false;
    std::vector<lemons::fleet::FleetSummary> summaries;
    for (size_t i = 0; i < spec.fleets.size(); ++i) {
        const lemons::fleet::FleetCampaign campaign(spec.fleets[i]);
        lemons::fleet::FleetSummary summary = campaign.run(options);
        if (!summary.warning.empty())
            std::cerr << "lemons-fleet: warning: " << summary.warning
                      << "\n";
        if (args.jsonLegacy) {
            lemons::obs::JsonWriter json(std::cout);
            writeSummaryJson(json, static_cast<uint64_t>(i), summary);
            std::cout << "\n";
        } else if (!args.json) {
            std::cout << "fleet " << i << ": " << summary.devices
                      << " devices"
                      << (summary.resumed ? " (resumed)" : "")
                      << (summary.complete() ? ""
                                             : " [interrupted]")
                      << "\n";
            for (const lemons::fleet::CohortResult &cohort :
                 summary.cohorts)
                printCohort(cohort);
        }
        interrupted |= !summary.complete();
        if (args.json)
            summaries.push_back(std::move(summary));
    }
    if (args.json) {
        std::cout << lemons::api::renderEnvelope(
            report, [&](lemons::obs::JsonWriter &json) {
                json.beginObject();
                json.key("interrupted");
                json.value(interrupted);
                json.key("fleets");
                json.beginArray();
                for (size_t i = 0; i < summaries.size(); ++i)
                    writeSummaryJson(json, static_cast<uint64_t>(i),
                                     summaries[i]);
                json.endArray();
                json.endObject();
            });
    }
    if (args.metrics)
        std::cerr << lemons::obs::Registry::global().toJson() << "\n";
    return interrupted ? 3 : 0;
}

int
runChaos(const Args &args)
{
    lemons::fleet::ChaosOptions options;
    options.threads = args.threads;
    options.seed = args.seed;
    options.maxKillRounds = static_cast<int>(args.rounds);
    options.workDir = args.dir;
    const lemons::fleet::ChaosResult result =
        lemons::fleet::runChaosCampaign(
            lemons::fleet::chaosDefaultSpec(), options);
    const auto writeChaos = [&result](lemons::obs::JsonWriter &json) {
        json.beginObject();
        json.key("passed");
        json.value(result.passed());
        json.key("reference_digest");
        json.value(result.referenceDigest);
        json.key("resumed_digest");
        json.value(result.resumedDigest);
        json.key("kills");
        json.value(static_cast<uint64_t>(result.kills));
        json.key("resume_observed");
        json.value(result.resumeObserved);
        json.key("fallback_exercised");
        json.value(result.fallbackExercised);
        json.key("checkpoint_path");
        json.value(result.checkpointPath);
        json.endObject();
    };
    if (args.json) {
        const lemons::lint::Report empty;
        std::cout << lemons::api::renderEnvelope(
            empty, [&](lemons::obs::JsonWriter &json) {
                json.beginObject();
                json.key("chaos");
                writeChaos(json);
                json.endObject();
            });
    } else if (args.jsonLegacy) {
        lemons::obs::JsonWriter json(std::cout);
        writeChaos(json);
        std::cout << "\n";
    } else {
        std::cout << result.log;
    }
    return result.passed() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    std::vector<std::string> positional;

    lemons::ArgParser parser(
        "lemons-fleet",
        "Runs [fleet]/[cohort] campaigns from a spec file through the\n"
        "Monte Carlo engine with crash-safe checkpointing.");
    parser.flag("--chaos", &args.chaos,
                "run the crash-injection harness on a built-in spec "
                "instead of a campaign");
    parser.value("--threads", &args.threads, "N",
                 "worker threads (default 1; 0 = all)");
    parser.value("--checkpoint", &args.checkpointPath, "PATH",
                 "write fleet-ckpt/1 checkpoints to PATH");
    parser.flag("--resume", &args.resume,
                "resume from the last good checkpoint");
    parser.value("--deadline-ms", &args.deadlineMs, "N",
                 "stop (checkpointed) after N ms; exit 3");
    parser.flag("--json", &args.json,
                "emit one lemons-api/1 envelope for the invocation");
    parser.flag("--json-legacy", &args.jsonLegacy,
                "deprecated: emit the pre-envelope newline-delimited "
                "per-fleet objects instead");
    parser.flag("--metrics", &args.metrics,
                "also dump the obs registry as JSON to stderr");
    parser.value("--rounds", &args.rounds, "N",
                 "chaos: kill/resume rounds (default 6)");
    parser.value("--dir", &args.dir, "PATH",
                 "chaos: working directory (default .)");
    parser.value("--seed", &args.seed, "N",
                 "chaos: kill-point randomization seed");
    parser.positionals("run <spec-file>", &positional,
                       "campaign subcommand and its spec file");
    parser.epilog("examples:\n"
                  "  lemons-fleet run fleet.lemons --threads 8 --json\n"
                  "  lemons-fleet --chaos --rounds 4 --dir /tmp");

    switch (parser.parse(argc, argv)) {
    case lemons::ArgParser::Outcome::Ok:
        break;
    case lemons::ArgParser::Outcome::Help:
        return 0;
    case lemons::ArgParser::Outcome::Error:
        std::cerr << parser.error() << '\n' << parser.helpText();
        return 2;
    }

    if (args.json && args.jsonLegacy) {
        std::cerr << "lemons-fleet: --json and --json-legacy are "
                     "mutually exclusive\n";
        return 2;
    }
    if (args.jsonLegacy)
        std::cerr << "lemons-fleet: warning: --json-legacy is "
                     "deprecated; migrate to the --json lemons-api/1 "
                     "envelope\n";

    try {
        if (args.chaos) {
            if (!positional.empty()) {
                std::cerr << "lemons-fleet: --chaos takes no spec "
                             "file (it uses a built-in one)\n";
                return 2;
            }
            return runChaos(args);
        }
        if (positional.size() != 2 || positional[0] != "run") {
            std::cerr << parser.helpText();
            return 2;
        }
        args.specFile = positional[1];
        return runCampaigns(args);
    } catch (const std::exception &error) {
        std::cerr << "lemons-fleet: " << error.what() << "\n";
        return 2;
    }
}
