/**
 * @file
 * lemons-fleet — fleet lifecycle campaign runner CLI.
 *
 * Runs the [fleet]/[cohort] sections of a spec file (lint/spec_file.h
 * documents the format) as crash-safe Monte Carlo campaigns:
 *
 *     lemons-fleet run examples/configs/fleet_smartphone.lemons \
 *         --threads 8 --checkpoint /var/tmp/fleet.ckpt --resume
 *
 * With --checkpoint the campaign persists a fleet-ckpt/1 file at every
 * wave boundary; --resume picks an interrupted run back up from the
 * last good checkpoint, bit-identical to the uninterrupted run.
 * --deadline-ms bounds the wall clock (the run checkpoints and exits
 * with code 3 when the deadline fires, so a scheduler can re-invoke
 * with --resume).
 *
 * --chaos runs the crash-injection harness instead: fork a campaign,
 * SIGKILL/SIGABRT it at random points, resume, corrupt a checkpoint
 * once, and verify the final digest equals an uninterrupted run's.
 *
 * Exit codes: 0 success, 1 contract failure (chaos digest mismatch),
 * 2 usage/spec error, 3 interrupted by deadline (resumable).
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fleet/campaign.h"
#include "fleet/chaos.h"
#include "lint/diagnostics.h"
#include "lint/spec_file.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace {

void
printUsage(std::ostream &out)
{
    out << "usage: lemons-fleet run <spec-file> [options]\n"
           "       lemons-fleet --chaos [options]\n"
           "\n"
           "Runs [fleet]/[cohort] campaigns from a spec file through\n"
           "the Monte Carlo engine with crash-safe checkpointing.\n"
           "\n"
           "options:\n"
           "  --threads N      worker threads (default 1; 0 = all)\n"
           "  --checkpoint P   write fleet-ckpt/1 checkpoints to P\n"
           "  --resume         resume from the last good checkpoint\n"
           "  --deadline-ms N  stop (checkpointed) after N ms\n"
           "  --json           machine-readable output\n"
           "  --metrics        also dump the obs registry as JSON\n"
           "chaos options:\n"
           "  --rounds N       kill/resume rounds (default 6)\n"
           "  --dir P          working directory (default .)\n"
           "  --seed N         kill-point randomization seed\n"
           "  --help           this text\n";
}

struct Args
{
    bool chaos = false;
    std::string specFile;
    unsigned threads = 1;
    std::string checkpointPath;
    bool resume = false;
    std::optional<uint64_t> deadlineMs;
    bool json = false;
    bool metrics = false;
    int rounds = 6;
    std::string dir = ".";
    uint64_t seed = 1;
};

void
printCohort(const lemons::fleet::CohortResult &cohort)
{
    const lemons::ProportionInterval replacement =
        cohort.replacementInterval();
    const lemons::ProportionInterval premature =
        cohort.prematureInterval();
    std::cout << "  " << cohort.name << ": " << cohort.devices
              << " devices, replacement " << replacement.estimate
              << " [" << replacement.low << ", " << replacement.high
              << "], premature " << premature.estimate << " ["
              << premature.low << ", " << premature.high
              << "], reprovisioned " << cohort.reprovisioned
              << ", mean service days " << cohort.serviceDays.mean()
              << "\n";
}

void
printCohortJson(lemons::obs::JsonWriter &json,
                const lemons::fleet::CohortResult &cohort)
{
    const lemons::ProportionInterval replacement =
        cohort.replacementInterval();
    const lemons::ProportionInterval premature =
        cohort.prematureInterval();
    json.beginObject();
    json.key("name");
    json.value(cohort.name);
    json.key("devices");
    json.value(cohort.devices);
    json.key("replaced");
    json.value(cohort.replaced);
    json.key("replacement_rate");
    json.value(replacement.estimate);
    json.key("replacement_low");
    json.value(replacement.low);
    json.key("replacement_high");
    json.value(replacement.high);
    json.key("premature");
    json.value(cohort.premature);
    json.key("premature_rate");
    json.value(premature.estimate);
    json.key("premature_low");
    json.value(premature.low);
    json.key("premature_high");
    json.value(premature.high);
    json.key("reprovisioned");
    json.value(cohort.reprovisioned);
    json.key("mean_service_days");
    json.value(cohort.serviceDays.mean());
    json.endObject();
}

int
runCampaigns(const Args &args)
{
    lemons::lint::Report report;
    const lemons::lint::ParsedSpec spec =
        lemons::lint::parseSpecFile(args.specFile, report);
    if (report.hasErrors()) {
        std::cerr << report.format();
        return 2;
    }
    if (spec.fleets.empty()) {
        std::cerr << "lemons-fleet: " << args.specFile
                  << " has no [fleet] section\n";
        return 2;
    }

    lemons::fleet::CampaignOptions options;
    options.threads = args.threads;
    options.checkpointPath = args.checkpointPath;
    options.resume = args.resume;
    if (args.deadlineMs)
        // LEMONS-TIDY-ALLOW(T002): anchors the --deadline-ms wall-clock
        // budget; campaign results never depend on it
        options.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(*args.deadlineMs);

    bool interrupted = false;
    for (size_t i = 0; i < spec.fleets.size(); ++i) {
        const lemons::fleet::FleetCampaign campaign(spec.fleets[i]);
        const lemons::fleet::FleetSummary summary =
            campaign.run(options);
        if (!summary.warning.empty())
            std::cerr << "lemons-fleet: warning: " << summary.warning
                      << "\n";
        if (args.json) {
            lemons::obs::JsonWriter json(std::cout);
            json.beginObject();
            json.key("fleet");
            json.value(static_cast<uint64_t>(i));
            json.key("devices");
            json.value(summary.devices);
            json.key("complete");
            json.value(summary.complete());
            json.key("resumed");
            json.value(summary.resumed);
            json.key("fell_back");
            json.value(summary.fellBack);
            json.key("digest");
            json.value(summary.digest());
            json.key("cohorts");
            json.beginArray();
            for (const lemons::fleet::CohortResult &cohort :
                 summary.cohorts)
                printCohortJson(json, cohort);
            json.endArray();
            json.endObject();
            std::cout << "\n";
        } else {
            std::cout << "fleet " << i << ": " << summary.devices
                      << " devices"
                      << (summary.resumed ? " (resumed)" : "")
                      << (summary.complete() ? ""
                                             : " [interrupted]")
                      << "\n";
            for (const lemons::fleet::CohortResult &cohort :
                 summary.cohorts)
                printCohort(cohort);
        }
        interrupted |= !summary.complete();
    }
    if (args.metrics)
        std::cerr << lemons::obs::Registry::global().toJson() << "\n";
    return interrupted ? 3 : 0;
}

int
runChaos(const Args &args)
{
    lemons::fleet::ChaosOptions options;
    options.threads = args.threads;
    options.seed = args.seed;
    options.maxKillRounds = args.rounds;
    options.workDir = args.dir;
    const lemons::fleet::ChaosResult result =
        lemons::fleet::runChaosCampaign(
            lemons::fleet::chaosDefaultSpec(), options);
    if (args.json) {
        lemons::obs::JsonWriter json(std::cout);
        json.beginObject();
        json.key("passed");
        json.value(result.passed());
        json.key("reference_digest");
        json.value(result.referenceDigest);
        json.key("resumed_digest");
        json.value(result.resumedDigest);
        json.key("kills");
        json.value(static_cast<uint64_t>(result.kills));
        json.key("resume_observed");
        json.value(result.resumeObserved);
        json.key("fallback_exercised");
        json.value(result.fallbackExercised);
        json.key("checkpoint_path");
        json.value(result.checkpointPath);
        json.endObject();
        std::cout << "\n";
    } else {
        std::cout << result.log;
    }
    return result.passed() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        // Accept both "--opt value" and "--opt=value" (the latter
        // matches lemons-bench, so the CLIs compose in scripts).
        std::string arg = argv[i];
        std::optional<std::string> inlineValue;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            const size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inlineValue = arg.substr(eq + 1);
                arg.resize(eq);
            }
        }
        const auto valueArg = [&](const char *name) -> std::string {
            if (inlineValue)
                return *inlineValue;
            if (i + 1 >= argc) {
                std::cerr << "lemons-fleet: " << name
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--chaos") {
            args.chaos = true;
        } else if (arg == "--threads") {
            args.threads = static_cast<unsigned>(
                std::stoul(valueArg("--threads")));
        } else if (arg == "--checkpoint") {
            args.checkpointPath = valueArg("--checkpoint");
        } else if (arg == "--resume") {
            args.resume = true;
        } else if (arg == "--deadline-ms") {
            args.deadlineMs = std::stoull(valueArg("--deadline-ms"));
        } else if (arg == "--json") {
            args.json = true;
        } else if (arg == "--metrics") {
            args.metrics = true;
        } else if (arg == "--rounds") {
            args.rounds = static_cast<int>(
                std::stol(valueArg("--rounds")));
        } else if (arg == "--dir") {
            args.dir = valueArg("--dir");
        } else if (arg == "--seed") {
            args.seed = std::stoull(valueArg("--seed"));
        } else if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "lemons-fleet: unknown option '" << arg
                      << "'\n";
            printUsage(std::cerr);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }

    try {
        if (args.chaos) {
            if (!positional.empty()) {
                std::cerr << "lemons-fleet: --chaos takes no spec "
                             "file (it uses a built-in one)\n";
                return 2;
            }
            return runChaos(args);
        }
        if (positional.size() != 2 || positional[0] != "run") {
            printUsage(std::cerr);
            return 2;
        }
        args.specFile = positional[1];
        return runCampaigns(args);
    } catch (const std::exception &error) {
        std::cerr << "lemons-fleet: " << error.what() << "\n";
        return 2;
    }
}
