#include "fleet/checkpoint.h"

#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include <fcntl.h>
#include <unistd.h>

#include "lint/diagnostics.h"
#include "obs/metrics.h"
#include "util/checksum.h"

namespace lemons::fleet {

namespace {

constexpr size_t kMagicSize = sizeof(kCheckpointMagic) - 1;
constexpr std::string_view kMagicFamily = "fleet-ckpt/";

/** "C104" etc., sourced from the shared registry so ids cannot drift. */
std::string
codeTag(lint::Code code)
{
    return lint::codeInfo(code).id;
}

/** Little-endian primitive serializer into a growable byte buffer. */
class ByteWriter
{
  public:
    void u8(uint8_t value) { bytes.push_back(value); }

    void u32(uint32_t value)
    {
        for (int shift = 0; shift < 32; shift += 8)
            bytes.push_back(
                static_cast<uint8_t>((value >> shift) & 0xFFu));
    }

    void u64(uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8)
            bytes.push_back(
                static_cast<uint8_t>((value >> shift) & 0xFFu));
    }

    /** Bit-exact double transport (no textual round-trip loss). */
    void f64(double value) { u64(std::bit_cast<uint64_t>(value)); }

    void str(const std::string &value)
    {
        u64(value.size());
        bytes.insert(bytes.end(), value.begin(), value.end());
    }

    void raw(const std::vector<uint8_t> &value)
    {
        bytes.insert(bytes.end(), value.begin(), value.end());
    }

    std::vector<uint8_t> take() { return std::move(bytes); }

  private:
    std::vector<uint8_t> bytes;
};

/** Bounds-checked little-endian reader over a payload slice. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size, std::string source)
        : begin(data), remaining(size), origin(std::move(source))
    {
    }

    uint8_t u8()
    {
        need(1);
        const uint8_t value = *begin;
        advance(1);
        return value;
    }

    uint32_t u32()
    {
        need(4);
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<uint32_t>(begin[i]) << (8 * i);
        advance(4);
        return value;
    }

    uint64_t u64()
    {
        need(8);
        uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<uint64_t>(begin[i]) << (8 * i);
        advance(8);
        return value;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const uint64_t size = u64();
        need(size);
        std::string value(reinterpret_cast<const char *>(begin),
                          static_cast<size_t>(size));
        advance(static_cast<size_t>(size));
        return value;
    }

    std::vector<uint8_t> raw(size_t size)
    {
        need(size);
        std::vector<uint8_t> value(begin, begin + size);
        advance(size);
        return value;
    }

    size_t left() const { return remaining; }

  private:
    void need(uint64_t size) const
    {
        if (size > remaining)
            throw CheckpointError(
                origin + ": " + codeTag(lint::Code::C106) +
                " malformed payload (field extends past "
                "the end of the checkpoint)");
    }

    void advance(size_t size)
    {
        begin += size;
        remaining -= size;
    }

    const uint8_t *begin;
    size_t remaining;
    std::string origin;
};

void
writeStats(ByteWriter &out, const RunningStats::State &state)
{
    out.u64(state.count);
    out.u64(state.nonFiniteCount);
    out.f64(state.mean);
    out.f64(state.m2);
    out.f64(state.min);
    out.f64(state.max);
}

RunningStats::State
readStats(ByteReader &in)
{
    RunningStats::State state;
    state.count = in.u64();
    state.nonFiniteCount = in.u64();
    state.mean = in.f64();
    state.m2 = in.f64();
    state.min = in.f64();
    state.max = in.f64();
    return state;
}

void
writeCohort(ByteWriter &out, const CohortRecord &record)
{
    out.str(record.name);
    out.u64(record.devices);
    writeStats(out, record.serviceDays);
    out.u64(record.replaced);
    out.u64(record.premature);
    out.u64(record.reprovisioned);
}

CohortRecord
readCohort(ByteReader &in)
{
    CohortRecord record;
    record.name = in.str();
    record.devices = in.u64();
    record.serviceDays = readStats(in);
    record.replaced = in.u64();
    record.premature = in.u64();
    record.reprovisioned = in.u64();
    return record;
}

/** RAII file descriptor so every error path closes. */
class Fd
{
  public:
    explicit Fd(int fd) : value(fd) {}
    ~Fd()
    {
        if (value >= 0)
            ::close(value);
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    int get() const { return value; }

  private:
    int value;
};

[[noreturn]] void
ioError(const std::string &path, const std::string &what)
{
    throw CheckpointError(path + ": " + codeTag(lint::Code::C107) +
                          " io error: " + what + " (" +
                          std::strerror(errno) + ")");
}

/** fsync the directory containing @p path so renames are durable. */
void
syncParentDir(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
    if (fd.get() >= 0)
        ::fsync(fd.get()); // best effort: some filesystems refuse
}

} // namespace

std::vector<uint8_t>
encodeCheckpoint(const FleetCheckpoint &checkpoint)
{
    ByteWriter payload;
    payload.u64(checkpoint.configFingerprint);
    payload.u64(checkpoint.completed.size());
    for (const CohortRecord &record : checkpoint.completed)
        writeCohort(payload, record);
    payload.u8(checkpoint.hasCursor ? 1 : 0);
    if (checkpoint.hasCursor) {
        const EngineCursorRecord &cursor = checkpoint.cursor;
        payload.u64(cursor.seed);
        payload.u64(cursor.requestedTrials);
        payload.u64(cursor.chunkSize);
        payload.u64(cursor.executedChunks);
        writeStats(payload, cursor.streaming);
        payload.u64(cursor.failures.size());
        for (const auto &[trial, what] : cursor.failures) {
            payload.u64(trial);
            payload.str(what);
        }
        payload.u64(cursor.nonFiniteTrials.size());
        for (uint64_t trial : cursor.nonFiniteTrials)
            payload.u64(trial);
        payload.u64(checkpoint.partialReplaced);
        payload.u64(checkpoint.partialPremature);
        payload.u64(checkpoint.partialReprovisioned);
    }
    payload.u64(checkpoint.extensions.size());
    for (const CheckpointExtension &extension : checkpoint.extensions) {
        payload.u32(extension.tag);
        payload.u64(extension.bytes.size());
        payload.raw(extension.bytes);
    }

    std::vector<uint8_t> body = payload.take();
    ByteWriter file;
    for (size_t i = 0; i < kMagicSize; ++i)
        file.u8(static_cast<uint8_t>(kCheckpointMagic[i]));
    file.u64(body.size());
    file.raw(body);
    file.u32(crc32c(body.data(), body.size()));
    return file.take();
}

FleetCheckpoint
decodeCheckpoint(const void *data, size_t size, const std::string &source)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    if (size < kMagicSize ||
        std::memcmp(bytes, kCheckpointMagic, kMagicSize) != 0) {
        // Distinguish "future version of our format" from "not ours".
        const std::string_view head(
            reinterpret_cast<const char *>(bytes),
            std::min(size, kMagicFamily.size()));
        if (head == kMagicFamily) {
            std::string_view rest(reinterpret_cast<const char *>(bytes),
                                  std::min<size_t>(size, 32));
            const size_t newline = rest.find('\n');
            throw CheckpointError(
                source + ": " + codeTag(lint::Code::C102) +
                " unsupported checkpoint version '" +
                std::string(newline == std::string_view::npos
                                ? rest
                                : rest.substr(0, newline)) +
                "' (this build reads fleet-ckpt/1)");
        }
        throw CheckpointError(source + ": " +
                              codeTag(lint::Code::C101) +
                              " bad magic: not a fleet-ckpt file");
    }

    ByteReader header(bytes + kMagicSize, size - kMagicSize, source);
    const uint64_t payloadSize = header.u64();
    if (header.left() < payloadSize + 4)
        throw CheckpointError(
            source + ": " + codeTag(lint::Code::C103) +
            " truncated checkpoint (payload of " +
            std::to_string(payloadSize) + " bytes, " +
            std::to_string(header.left()) + " available)");
    const std::vector<uint8_t> body =
        header.raw(static_cast<size_t>(payloadSize));
    const uint32_t stored = header.u32();
    const uint32_t computed = crc32c(body.data(), body.size());
    if (stored != computed)
        throw CheckpointError(
            source + ": " + codeTag(lint::Code::C104) +
            " checksum mismatch (stored " +
            std::to_string(stored) + ", computed " +
            std::to_string(computed) + "): torn or corrupted write");

    ByteReader in(body.data(), body.size(), source);
    FleetCheckpoint checkpoint;
    checkpoint.configFingerprint = in.u64();
    const uint64_t cohorts = in.u64();
    for (uint64_t i = 0; i < cohorts; ++i)
        checkpoint.completed.push_back(readCohort(in));
    checkpoint.hasCursor = in.u8() != 0;
    if (checkpoint.hasCursor) {
        EngineCursorRecord &cursor = checkpoint.cursor;
        cursor.seed = in.u64();
        cursor.requestedTrials = in.u64();
        cursor.chunkSize = in.u64();
        cursor.executedChunks = in.u64();
        cursor.streaming = readStats(in);
        const uint64_t failures = in.u64();
        for (uint64_t i = 0; i < failures; ++i) {
            const uint64_t trial = in.u64();
            cursor.failures.emplace_back(trial, in.str());
        }
        const uint64_t nonFinite = in.u64();
        for (uint64_t i = 0; i < nonFinite; ++i)
            cursor.nonFiniteTrials.push_back(in.u64());
        checkpoint.partialReplaced = in.u64();
        checkpoint.partialPremature = in.u64();
        checkpoint.partialReprovisioned = in.u64();
    }
    // Forward compatibility: preserve extension records this version
    // does not understand; a future fleet-ckpt/1 writer may append
    // tagged fields and a version-1 reader must still load cleanly.
    const uint64_t extensions = in.u64();
    for (uint64_t i = 0; i < extensions; ++i) {
        CheckpointExtension extension;
        extension.tag = in.u32();
        const uint64_t length = in.u64();
        extension.bytes = in.raw(static_cast<size_t>(length));
        checkpoint.extensions.push_back(std::move(extension));
    }
    return checkpoint;
}

void
writeCheckpointAtomic(const std::string &path,
                      const FleetCheckpoint &checkpoint)
{
    LEMONS_OBS_SCOPED_TIMER("fleet.checkpoint.write");
    const std::vector<uint8_t> bytes = encodeCheckpoint(checkpoint);
    const std::string temp = path + ".tmp";

    {
        const Fd fd(::open(temp.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                           0644));
        if (fd.get() < 0)
            ioError(temp, "open");
        size_t written = 0;
        while (written < bytes.size()) {
            const ssize_t n = ::write(fd.get(), bytes.data() + written,
                                      bytes.size() - written);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ioError(temp, "write");
            }
            written += static_cast<size_t>(n);
        }
        if (::fsync(fd.get()) != 0)
            ioError(temp, "fsync");
    }

    // Rotate the previous good checkpoint before exposing the new one,
    // so a corrupt-on-arrival primary always has a fallback.
    std::error_code ignored;
    if (std::filesystem::exists(path, ignored))
        std::filesystem::rename(path, path + ".prev", ignored);
    if (::rename(temp.c_str(), path.c_str()) != 0)
        ioError(path, "rename");
    syncParentDir(path);

    LEMONS_OBS_INCREMENT("fleet.checkpoint.writes");
    LEMONS_OBS_COUNT("fleet.checkpoint.bytes", bytes.size());
}

FleetCheckpoint
readCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError(path + ": " + codeTag(lint::Code::C107) +
                              " io error: cannot open");
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decodeCheckpoint(bytes.data(), bytes.size(), path);
}

CheckpointLoadOutcome
loadWithFallback(const std::string &path)
{
    const std::string previous = path + ".prev";
    std::error_code ignored;
    CheckpointLoadOutcome outcome;

    if (!std::filesystem::exists(path, ignored)) {
        if (std::filesystem::exists(previous, ignored)) {
            // Crash between the rotate and the final rename: the
            // previous checkpoint is the newest trustworthy state.
            outcome.checkpoint = readCheckpoint(previous);
            outcome.warning = path + ": missing primary checkpoint; "
                                     "resumed from " + previous;
        }
        return outcome; // fresh start when neither file exists
    }

    try {
        outcome.checkpoint = readCheckpoint(path);
        return outcome;
    } catch (const CheckpointError &error) {
        LEMONS_OBS_INCREMENT("fleet.checkpoint.corrupt_detected");
        if (std::filesystem::exists(previous, ignored)) {
            outcome.checkpoint = readCheckpoint(previous); // may throw
            outcome.fellBack = true;
            outcome.warning =
                std::string("corrupt checkpoint detected (") +
                error.what() + "); fell back to " + previous;
            LEMONS_OBS_INCREMENT("fleet.checkpoint.fallbacks");
            return outcome;
        }
        // No fallback: refuse to guess. Resuming from invented state
        // would silently break the resume-equals-uninterrupted
        // contract.
        throw;
    }
}

} // namespace lemons::fleet
