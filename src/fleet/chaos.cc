#include "fleet/chaos.h"

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/campaign.h"
#include "util/rng.h"

namespace lemons::fleet {

namespace {

/** Child-side fields the parent needs, written as key=value lines. */
struct ChildOutcome
{
    uint64_t digest = 0;
    bool resumed = false;
    bool fellBack = false;
    bool ok = false;
};

void
writeOutcome(const std::string &path, const FleetSummary &summary)
{
    // tmp+rename so a kill mid-write never leaves a half result the
    // parent could mistake for a finished run.
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        out << "digest=" << summary.digest() << "\n"
            << "resumed=" << (summary.resumed ? 1 : 0) << "\n"
            << "fellback=" << (summary.fellBack ? 1 : 0) << "\n"
            << "complete=" << (summary.complete() ? 1 : 0) << "\n";
    }
    std::error_code ignored;
    std::filesystem::rename(temp, path, ignored);
}

ChildOutcome
readOutcome(const std::string &path)
{
    ChildOutcome outcome;
    std::ifstream in(path);
    if (!in)
        return outcome;
    std::string line;
    while (std::getline(in, line)) {
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        if (key == "digest")
            outcome.digest = std::stoull(value);
        else if (key == "resumed")
            outcome.resumed = value == "1";
        else if (key == "fellback")
            outcome.fellBack = value == "1";
        else if (key == "complete")
            outcome.ok = value == "1";
    }
    return outcome;
}

/**
 * Fork a child that runs the campaign (resuming from @p checkpointPath
 * when non-empty) and writes its outcome to @p resultPath. Returns the
 * child pid. The child never returns: it _exit()s.
 */
pid_t
spawnCampaignChild(const lint::FleetSpec &spec, unsigned threads,
                   const std::string &checkpointPath,
                   const std::string &resultPath)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error(std::string("chaos: fork failed: ") +
                                 std::strerror(errno));
    if (pid != 0)
        return pid;

    // Child. SIGABRT rounds must not litter (or wait on) core dumps.
    struct rlimit noCore = {0, 0};
    ::setrlimit(RLIMIT_CORE, &noCore);
    try {
        const FleetCampaign campaign(spec);
        CampaignOptions options;
        options.threads = threads;
        options.checkpointPath = checkpointPath;
        options.resume = !checkpointPath.empty();
        const FleetSummary summary = campaign.run(options);
        writeOutcome(resultPath, summary);
        ::_exit(0);
    } catch (...) {
        ::_exit(3);
    }
}

void
logLine(std::string &log, const std::string &line)
{
    log += line;
    log += '\n';
}

} // namespace

lint::FleetSpec
chaosDefaultSpec()
{
    lint::FleetSpec spec;
    spec.devices = 6000;
    spec.seed = 20170624; // ISCA'17 talk date, arbitrary but stable
    // Checkpoint every 32-trial chunk: the first checkpoint lands
    // within milliseconds, so even the earliest kill leaves
    // resumable state for the next round to pick up.
    spec.chunkSize = 32;
    spec.checkpointEveryChunks = 1;
    spec.horizonDays = 1825;
    spec.prematureDays = 365;

    // Unit-scale lifetime mixtures: the main leg outlives the 91,250
    // LAB, the infant leg dies within the first ~months of use.
    lint::FleetCohortSpec retail;
    retail.name = "retail";
    retail.weight = 0.7;
    retail.staggerDays = 90.0;
    retail.accessBound = 91250;
    retail.usage.meanPerDay = 50.0;
    retail.usage.burstProbability = 0.05;
    retail.usage.burstMultiplier = 3.0;
    retail.lifetime.infantFraction = 0.02;
    retail.lifetime.infant = {9000.0, 0.8};
    retail.lifetime.main = {150000.0, 12.0};

    lint::FleetCohortSpec secondhand;
    secondhand.name = "secondhand";
    secondhand.weight = 0.3;
    secondhand.staggerDays = 30.0;
    secondhand.accessBound = 91250;
    secondhand.usage.meanPerDay = 40.0;
    secondhand.lifetime.infantFraction = 0.05;
    secondhand.lifetime.infant = {9000.0, 0.8};
    secondhand.lifetime.main = {150000.0, 12.0};
    secondhand.reprovisionDay = 900.0;
    secondhand.reprovisionUsageScale = 1.5;

    spec.cohorts = {retail, secondhand};
    return spec;
}

ChaosResult
runChaosCampaign(const lint::FleetSpec &spec, const ChaosOptions &options)
{
    namespace fs = std::filesystem;
    ChaosResult result;
    const std::string dir = options.workDir.empty() ? "." : options.workDir;
    const std::string referenceResult = dir + "/chaos-reference.result";
    const std::string chaosResult = dir + "/chaos-run.result";
    result.checkpointPath = dir + "/chaos-run.ckpt";

    std::error_code ignored;
    fs::remove(referenceResult, ignored);
    fs::remove(chaosResult, ignored);
    fs::remove(result.checkpointPath, ignored);
    fs::remove(result.checkpointPath + ".prev", ignored);

    const auto await = [](pid_t pid) {
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        return status;
    };

    // Uninterrupted reference, in a child (fork-safety contract: the
    // parent never runs a campaign, so it never warms a thread pool).
    {
        const pid_t pid = spawnCampaignChild(spec, options.threads,
                                             /*checkpointPath=*/"",
                                             referenceResult);
        const int status = await(pid);
        const ChildOutcome reference = readOutcome(referenceResult);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
            !reference.ok)
            throw std::runtime_error(
                "chaos: uninterrupted reference run failed");
        result.referenceDigest = reference.digest;
        logLine(result.log, "reference digest " +
                                std::to_string(reference.digest));
    }

    Rng rng(options.seed);
    for (int round = 0; round < options.maxKillRounds; ++round) {
        const pid_t pid =
            spawnCampaignChild(spec, options.threads,
                               result.checkpointPath, chaosResult);
        const uint64_t delayMs =
            options.minKillDelayMs +
            (options.killDelaySpanMs > 0
                 ? rng.nextBelow(options.killDelaySpanMs)
                 : 0);
        ::usleep(static_cast<useconds_t>(delayMs * 1000));
        const int signo = round % 2 == 0 ? SIGKILL : SIGABRT;
        ::kill(pid, signo);
        const int status = await(pid);

        const ChildOutcome outcome = readOutcome(chaosResult);
        if (outcome.ok) {
            // The child outran the killer: campaign already complete.
            result.resumedDigest = outcome.digest;
            result.resumeObserved |= outcome.resumed;
            result.fallbackExercised |= outcome.fellBack;
            logLine(result.log,
                    "round " + std::to_string(round) +
                        ": child finished before the kill landed");
            break;
        }
        ++result.kills;
        logLine(result.log,
                "round " + std::to_string(round) + ": killed with " +
                    (signo == SIGKILL ? "SIGKILL" : "SIGABRT") +
                    " after " + std::to_string(delayMs) + " ms (status " +
                    std::to_string(status) + ")");
    }

    // Corrupt the primary *after* the kill rounds, so the resume that
    // detects it (C104) and falls back to the .prev file is the one
    // guaranteed to run to completion and report the observation.
    bool finalRunNeeded = result.resumedDigest == 0;
    if (options.corruptPrimaryOnce &&
        fs::exists(result.checkpointPath, ignored) &&
        fs::exists(result.checkpointPath + ".prev", ignored)) {
        std::fstream file(result.checkpointPath,
                          std::ios::in | std::ios::out |
                              std::ios::binary);
        file.seekg(0, std::ios::end);
        const std::streamoff size = file.tellg();
        if (file && size > 32) {
            const std::streamoff target = static_cast<std::streamoff>(
                rng.nextBelow(static_cast<uint64_t>(size)));
            file.seekg(target);
            char byte = 0;
            file.read(&byte, 1);
            byte = static_cast<char>(byte ^ 0x5A);
            file.seekp(target);
            file.write(&byte, 1);
            finalRunNeeded = true;
            logLine(result.log, "flipped checkpoint byte at offset " +
                                    std::to_string(target));
        }
    }

    if (finalRunNeeded) {
        // One uninterrupted resume to completion (and through the
        // corruption fallback when a byte was flipped above).
        const pid_t pid =
            spawnCampaignChild(spec, options.threads,
                               result.checkpointPath, chaosResult);
        const int status = await(pid);
        const ChildOutcome outcome = readOutcome(chaosResult);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || !outcome.ok)
            throw std::runtime_error(
                "chaos: final resume run failed (checkpoint kept at " +
                result.checkpointPath + ")");
        result.resumedDigest = outcome.digest;
        result.resumeObserved |= outcome.resumed;
        result.fallbackExercised |= outcome.fellBack;
        logLine(result.log, "final resume digest " +
                                std::to_string(outcome.digest));
    }

    logLine(result.log,
            std::string("verdict: ") +
                (result.passed() ? "resume == uninterrupted"
                                 : "DIGEST MISMATCH"));
    return result;
}

} // namespace lemons::fleet
