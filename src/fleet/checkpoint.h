/**
 * @file
 * Crash-safe on-disk checkpoint format for fleet campaigns
 * ("fleet-ckpt/1").
 *
 * A multi-hour campaign must survive SIGKILL, preemption, and torn
 * writes without losing determinism: a run resumed from its last
 * checkpoint has to be bit-identical to the uninterrupted run. That
 * contract shapes every decision here:
 *
 *  - **Versioned magic.** Files start with the schema line
 *    "fleet-ckpt/1\n". A wrong magic or wrong version fails with a
 *    clear CheckpointError, never undefined behaviour.
 *  - **Checksummed payload.** The payload length and a CRC-32C
 *    trailer detect truncated and corrupted files before any field is
 *    trusted.
 *  - **Atomic replacement.** Writers serialize to a temp file, fsync
 *    it, rotate the previous checkpoint to "<path>.prev", rename the
 *    temp into place, and fsync the directory. A crash at any point
 *    leaves either the new file, the previous file, or both — never a
 *    half-written checkpoint at the primary path.
 *  - **Fallback, loudly.** loadWithFallback() falls back to the
 *    previous good checkpoint when the primary is corrupt, reporting
 *    the detection in its outcome (and in the fleet.checkpoint.*
 *    counters) — detection and recovery are never silent.
 *  - **Forward compatibility.** Trailing tagged extension records let
 *    future writers append fields; a version-1 reader skips (and
 *    preserves) tags it does not know.
 *
 * The payload captures everything a bit-identical continuation needs:
 * the configuration fingerprint, per-cohort result records
 * (RunningStats serialized exactly, via RunningStats::State), and the
 * in-progress cohort's engine cursor — seed, chunk position, streaming
 * statistics, and capture-mode fault logs. RNG stream positions are
 * implicit: trial i always draws from Rng::trialStream(seed, i) — a
 * counter-based Philox stream that is a pure function of (seed, i) —
 * so (seed, executedChunks) pins the stream exactly.
 */

#ifndef LEMONS_FLEET_CHECKPOINT_H_
#define LEMONS_FLEET_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace lemons::fleet {

/** Schema line at the start of every checkpoint file. */
inline constexpr char kCheckpointMagic[] = "fleet-ckpt/1\n";

/**
 * Thrown when a checkpoint file cannot be trusted: wrong magic, wrong
 * version, truncation, checksum mismatch, or a configuration
 * fingerprint that does not match the campaign trying to resume.
 * Messages carry a stable C-code prefix (C101 bad magic, C102 bad
 * version, C103 truncated, C104 checksum, C105 config mismatch, C106
 * malformed payload, C107 io) in the same spirit as lint's L-codes.
 */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialized result of one cohort (exact RunningStats image). */
struct CohortRecord
{
    std::string name;
    uint64_t devices = 0;
    RunningStats::State serviceDays{};
    uint64_t replaced = 0;
    uint64_t premature = 0;
    uint64_t reprovisioned = 0;
};

/** Serialized engine::EngineCheckpoint for the in-progress cohort. */
struct EngineCursorRecord
{
    uint64_t seed = 0;
    uint64_t requestedTrials = 0;
    uint64_t chunkSize = 0;
    uint64_t executedChunks = 0;
    RunningStats::State streaming{};
    std::vector<std::pair<uint64_t, std::string>> failures;
    std::vector<uint64_t> nonFiniteTrials;
};

/** One forward-compat extension record (unknown tags are preserved). */
struct CheckpointExtension
{
    uint32_t tag = 0;
    std::vector<uint8_t> bytes;
};

/** Everything a "fleet-ckpt/1" file stores. */
struct FleetCheckpoint
{
    /** Fingerprint of the producing campaign's configuration. */
    uint64_t configFingerprint = 0;
    /** Fully completed cohorts, in campaign order. */
    std::vector<CohortRecord> completed;
    /** Whether an in-progress cohort cursor follows. */
    bool hasCursor = false;
    /** Engine-resumable state of the in-progress cohort. */
    EngineCursorRecord cursor{};
    /** In-progress cohort's lifecycle counters at the cursor. */
    uint64_t partialReplaced = 0;
    uint64_t partialPremature = 0;
    uint64_t partialReprovisioned = 0;
    /** Trailing extension records (forward compatibility). */
    std::vector<CheckpointExtension> extensions;
};

/** Serialize @p checkpoint to the "fleet-ckpt/1" byte layout. */
std::vector<uint8_t> encodeCheckpoint(const FleetCheckpoint &checkpoint);

/**
 * Parse @p size bytes at @p data. @p source names the origin in error
 * messages. @throws CheckpointError on any integrity problem.
 */
FleetCheckpoint decodeCheckpoint(const void *data, size_t size,
                                 const std::string &source);

/**
 * Atomically replace the checkpoint at @p path: temp file + fsync +
 * rotate previous to "<path>.prev" + rename + directory fsync.
 * @throws CheckpointError (C107) on IO failure.
 */
void writeCheckpointAtomic(const std::string &path,
                           const FleetCheckpoint &checkpoint);

/**
 * Read and validate one checkpoint file.
 * @throws CheckpointError if the file is missing or untrustworthy.
 */
FleetCheckpoint readCheckpoint(const std::string &path);

/** Outcome of a fallback-aware checkpoint load. */
struct CheckpointLoadOutcome
{
    /** The loaded checkpoint; empty means fresh start (no file). */
    std::optional<FleetCheckpoint> checkpoint;
    /** Whether the primary was corrupt and the previous one was used. */
    bool fellBack = false;
    /** Human-readable detection/recovery note; empty when clean. */
    std::string warning;
};

/**
 * Load @p path, falling back to "<path>.prev" when the primary is
 * corrupt (with a warning in the outcome — never silently). A missing
 * primary with no previous file is a clean fresh start. A corrupt
 * primary with a missing or corrupt previous file rethrows the
 * primary's CheckpointError: resuming from guessed state is worse
 * than failing.
 */
CheckpointLoadOutcome loadWithFallback(const std::string &path);

} // namespace lemons::fleet

#endif // LEMONS_FLEET_CHECKPOINT_H_
