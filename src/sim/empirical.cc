#include "sim/empirical.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.h"

namespace lemons::sim {

SurvivalCurve::SurvivalCurve(std::vector<double> failureTimes)
    : times(std::move(failureTimes))
{
    requireArg(!times.empty(), "SurvivalCurve: need at least one sample");
    std::sort(times.begin(), times.end());
}

double
SurvivalCurve::reliability(double t) const
{
    // Count of samples strictly greater than t.
    const auto it = std::upper_bound(times.begin(), times.end(), t);
    const auto surviving = static_cast<double>(times.end() - it);
    return surviving / static_cast<double>(times.size());
}

double
SurvivalCurve::quantile(double q) const
{
    requireArg(q >= 0.0 && q <= 1.0, "SurvivalCurve::quantile: bad q");
    if (q <= 0.0)
        return times.front();
    const auto rank = static_cast<size_t>(
        std::min(static_cast<double>(times.size() - 1),
                 std::ceil(q * static_cast<double>(times.size())) - 1.0));
    return times[rank];
}

double
SurvivalCurve::mean() const
{
    return std::accumulate(times.begin(), times.end(), 0.0) /
           static_cast<double>(times.size());
}

double
SurvivalCurve::ksDistance(
    const std::function<double(double)> &referenceCdf) const
{
    const auto n = static_cast<double>(times.size());
    double worst = 0.0;
    for (size_t i = 0; i < times.size(); ++i) {
        const double ref = referenceCdf(times[i]);
        const double below = static_cast<double>(i) / n;
        const double atOrBelow = static_cast<double>(i + 1) / n;
        worst = std::max(worst, std::abs(ref - below));
        worst = std::max(worst, std::abs(ref - atOrBelow));
    }
    return worst;
}

} // namespace lemons::sim
