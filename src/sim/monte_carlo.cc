#include "sim/monte_carlo.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/require.h"

namespace lemons::sim {

MonteCarlo::MonteCarlo(uint64_t seed, uint64_t trials)
    : masterSeed(seed), trialCount(trials)
{
    requireArg(trials > 0, "MonteCarlo: need at least one trial");
}

RunningStats
MonteCarlo::runStats(const std::function<double(Rng &)> &metric) const
{
    const Rng parent(masterSeed);
    RunningStats stats;
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        stats.add(metric(rng));
    }
    return stats;
}

std::vector<double>
MonteCarlo::runSamples(const std::function<double(Rng &)> &metric) const
{
    const Rng parent(masterSeed);
    std::vector<double> samples;
    samples.reserve(trialCount);
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        samples.push_back(metric(rng));
    }
    return samples;
}

std::vector<double>
MonteCarlo::runSamplesParallel(const std::function<double(Rng &)> &metric,
                               unsigned threads) const
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    threads = static_cast<unsigned>(
        std::min<uint64_t>(threads, trialCount));

    const Rng parent(masterSeed);
    std::vector<double> samples(trialCount);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            // Strided partition: trial i is computed by thread
            // i % threads; every trial's generator depends only on
            // (seed, i), so the ordering is irrelevant.
            for (uint64_t i = w; i < trialCount; i += threads) {
                Rng rng = parent.split(i);
                samples[i] = metric(rng);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    return samples;
}

ProportionInterval
MonteCarlo::estimateProbability(const std::function<bool(Rng &)> &event) const
{
    const Rng parent(masterSeed);
    uint64_t successes = 0;
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        if (event(rng))
            ++successes;
    }
    return wilsonInterval(successes, trialCount);
}

} // namespace lemons::sim
