#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/require.h"
#include "util/thread_annotations.h"

namespace lemons::sim {

namespace {

/**
 * Lock-protected "lowest-indexed failure wins" cell shared by the
 * runSamplesParallel workers. Keeping only the minimum under the lock
 * makes the rethrown exception deterministic at any thread count.
 */
class FirstErrorCell
{
  public:
    explicit FirstErrorCell(uint64_t sentinel) : trial(sentinel) {}

    /** Record trial @p i's exception if it is the earliest so far. */
    void record(uint64_t i, std::exception_ptr e) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        if (i < trial) {
            trial = i;
            error = std::move(e);
        }
    }

    /** The winning exception, or null when no trial failed. */
    std::exception_ptr take() const LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        return error;
    }

  private:
    mutable Mutex mu;
    uint64_t trial LEMONS_GUARDED_BY(mu);
    std::exception_ptr error LEMONS_GUARDED_BY(mu);
};

/**
 * Shared failure/quarantine log for runSamplesReport. Workers append
 * under the lock; the driver sorts by trial index after the join so
 * the report is deterministic regardless of interleaving.
 */
class ReportCollector
{
  public:
    /** Record that trial @p i threw with message @p what. */
    void recordFailure(uint64_t i, std::string what) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        failures.emplace_back(i, std::move(what));
    }

    /** Record that trial @p i returned a non-finite sample. */
    void recordNonFinite(uint64_t i) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        nonFinite.push_back(i);
    }

    /** Move the sorted logs into @p report (call after the join). */
    void drainInto(TrialReport &report) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        std::sort(failures.begin(), failures.end());
        std::sort(nonFinite.begin(), nonFinite.end());
        report.failedTrials.reserve(failures.size());
        for (const auto &[trial, message] : failures)
            report.failedTrials.push_back(trial);
        if (!failures.empty())
            report.firstError = failures.front().second;
        report.nonFiniteTrials = std::move(nonFinite);
    }

  private:
    Mutex mu;
    std::vector<std::pair<uint64_t, std::string>>
        failures LEMONS_GUARDED_BY(mu);
    std::vector<uint64_t> nonFinite LEMONS_GUARDED_BY(mu);
};

} // namespace

MonteCarlo::MonteCarlo(uint64_t seed, uint64_t trials)
    : masterSeed(seed), trialCount(trials)
{
    requireArg(trials > 0, "MonteCarlo: need at least one trial");
}

RunningStats
MonteCarlo::runStats(const std::function<double(Rng &)> &metric) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.run_stats");
    LEMONS_OBS_COUNT("sim.mc.trials", trialCount);
    const Rng parent(masterSeed);
    RunningStats stats;
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        stats.add(metric(rng));
    }
    return stats;
}

std::vector<double>
MonteCarlo::runSamples(const std::function<double(Rng &)> &metric) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.run_samples");
    LEMONS_OBS_COUNT("sim.mc.trials", trialCount);
    const Rng parent(masterSeed);
    std::vector<double> samples;
    samples.reserve(trialCount);
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        samples.push_back(metric(rng));
    }
    return samples;
}

unsigned
MonteCarlo::resolveThreads(unsigned threads) const
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    return static_cast<unsigned>(std::min<uint64_t>(threads, trialCount));
}

std::vector<double>
MonteCarlo::runSamplesParallel(const std::function<double(Rng &)> &metric,
                               unsigned threads) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.run_samples_parallel");
    LEMONS_OBS_COUNT("sim.mc.trials", trialCount);
    threads = resolveThreads(threads);

    const Rng parent(masterSeed);
    std::vector<double> samples(trialCount);
    std::vector<std::thread> workers;
    // A metric exception must not escape the worker (that would call
    // std::terminate). Workers race their exceptions into a shared
    // lowest-trial-wins cell and stop; after the join, the winner is
    // rethrown on this thread so the behaviour is deterministic at any
    // thread count.
    FirstErrorCell firstError(trialCount);
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            // Strided partition: trial i is computed by thread
            // i % threads; every trial's generator depends only on
            // (seed, i), so the ordering is irrelevant.
            for (uint64_t i = w; i < trialCount; i += threads) {
                Rng rng = parent.split(i);
                try {
                    samples[i] = metric(rng);
                } catch (...) {
                    firstError.record(i, std::current_exception());
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    if (std::exception_ptr error = firstError.take())
        std::rethrow_exception(error);
    return samples;
}

RunningStats
MonteCarlo::runStatsParallel(const std::function<double(Rng &)> &metric,
                             unsigned threads) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.run_stats_parallel");
    LEMONS_OBS_COUNT("sim.mc.trials", trialCount);
    threads = resolveThreads(threads);

    const Rng parent(masterSeed);
    // Workers accumulate privately and publish once through the
    // lock-guarded aggregate; partials are folded in worker-id order
    // after the join so the merge sequence (hence the floating-point
    // rounding) is deterministic for a fixed thread count.
    std::vector<RunningStats> partials(threads);
    FirstErrorCell firstError(trialCount);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            RunningStats &local = partials[w];
            for (uint64_t i = w; i < trialCount; i += threads) {
                Rng rng = parent.split(i);
                try {
                    local.add(metric(rng));
                } catch (...) {
                    firstError.record(i, std::current_exception());
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    if (std::exception_ptr error = firstError.take())
        std::rethrow_exception(error);

    SharedRunningStats merged;
    for (const RunningStats &partial : partials)
        merged.mergeFrom(partial);
    return merged.snapshot();
}

TrialReport
MonteCarlo::runSamplesReport(
    const std::function<double(Rng &, uint64_t)> &metric,
    unsigned threads) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.run_report");
    LEMONS_OBS_COUNT("sim.mc.trials", trialCount);
    threads = resolveThreads(threads);

    const Rng parent(masterSeed);
    TrialReport report;
    report.trials = trialCount;
    report.samples.assign(trialCount,
                          std::numeric_limits<double>::quiet_NaN());

    ReportCollector collector;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            for (uint64_t i = w; i < trialCount; i += threads) {
                Rng rng = parent.split(i);
                try {
                    const double sample = metric(rng, i);
                    report.samples[i] = sample;
                    if (!std::isfinite(sample))
                        collector.recordNonFinite(i);
                } catch (const std::exception &e) {
                    collector.recordFailure(i, e.what());
                } catch (...) {
                    collector.recordFailure(i, "unknown exception");
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    // Trial-index sorting inside the collector keeps the report
    // (including firstError) deterministic at any thread count.
    collector.drainInto(report);
    LEMONS_OBS_COUNT("sim.mc.failed_trials", report.failedTrials.size());
    LEMONS_OBS_COUNT("sim.mc.quarantined_trials",
                     report.nonFiniteTrials.size());

    // RunningStats itself quarantines non-finite input, which also
    // covers the NaN placeholders of failed trials.
    for (double sample : report.samples)
        report.stats.add(sample);
    return report;
}

TrialReport
MonteCarlo::runSamplesReport(const std::function<double(Rng &)> &metric,
                             unsigned threads) const
{
    return runSamplesReport(
        [&metric](Rng &rng, uint64_t) { return metric(rng); }, threads);
}

ProportionInterval
MonteCarlo::estimateProbability(const std::function<bool(Rng &)> &event) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.estimate_probability");
    LEMONS_OBS_COUNT("sim.mc.trials", trialCount);
    const Rng parent(masterSeed);
    uint64_t successes = 0;
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        if (event(rng))
            ++successes;
    }
    return wilsonInterval(successes, trialCount);
}

} // namespace lemons::sim
