#include "sim/monte_carlo.h"

#include <algorithm>
#include <utility>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::sim {

MonteCarlo::MonteCarlo(uint64_t seed, uint64_t trials)
    : masterSeed(seed), trialCount(trials)
{
    requireArg(trials > 0, "MonteCarlo: need at least one trial");
}

TrialReport
MonteCarlo::run(const std::function<double(Rng &, uint64_t)> &metric,
                McRunOptions options) const
{
    if (options.trials == 0)
        options.trials = trialCount;
    return engine::runTrials(masterSeed, options, metric);
}

TrialReport
MonteCarlo::run(const std::function<double(Rng &)> &metric,
                McRunOptions options) const
{
    return run([&metric](Rng &rng, uint64_t) { return metric(rng); },
               options);
}

ProportionInterval
MonteCarlo::estimateProbability(
    const std::function<bool(Rng &)> &event) const
{
    LEMONS_OBS_SCOPED_TIMER("sim.mc.estimate_probability");
    TrialReport report = run(
        [&event](Rng &rng) { return event(rng) ? 1.0 : 0.0; },
        {.faults = FaultPolicy::Rethrow});
    const auto successes = static_cast<uint64_t>(std::count(
        report.samples.begin(), report.samples.end(), 1.0));
    return wilsonInterval(successes, report.trials);
}

// ----------------------------------------------------------------------
// Deprecated wrappers. Serial sample-keeping runs fold their statistics
// in trial order, so runStats/runSamples results stay bit-identical to
// the historical serial loops; the parallel wrappers inherit the
// engine's thread-count-invariant determinism, which is strictly
// stronger than what the old strided-worker implementations promised.
// ----------------------------------------------------------------------

RunningStats
MonteCarlo::runStats(const std::function<double(Rng &)> &metric) const
{
    return run(metric, {.faults = FaultPolicy::Rethrow}).stats;
}

std::vector<double>
MonteCarlo::runSamples(const std::function<double(Rng &)> &metric) const
{
    return std::move(run(metric, {.faults = FaultPolicy::Rethrow}).samples);
}

RunningStats
MonteCarlo::runStatsParallel(const std::function<double(Rng &)> &metric,
                             unsigned threads) const
{
    return run(metric, {.threads = threads,
                        .keepSamples = false,
                        .faults = FaultPolicy::Rethrow})
        .stats;
}

std::vector<double>
MonteCarlo::runSamplesParallel(const std::function<double(Rng &)> &metric,
                               unsigned threads) const
{
    return std::move(
        run(metric,
            {.threads = threads, .faults = FaultPolicy::Rethrow})
            .samples);
}

TrialReport
MonteCarlo::runSamplesReport(
    const std::function<double(Rng &, uint64_t)> &metric,
    unsigned threads) const
{
    return run(metric, {.threads = threads});
}

TrialReport
MonteCarlo::runSamplesReport(const std::function<double(Rng &)> &metric,
                             unsigned threads) const
{
    return run(metric, {.threads = threads});
}

} // namespace lemons::sim
