#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/require.h"

namespace lemons::sim {

MonteCarlo::MonteCarlo(uint64_t seed, uint64_t trials)
    : masterSeed(seed), trialCount(trials)
{
    requireArg(trials > 0, "MonteCarlo: need at least one trial");
}

RunningStats
MonteCarlo::runStats(const std::function<double(Rng &)> &metric) const
{
    const Rng parent(masterSeed);
    RunningStats stats;
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        stats.add(metric(rng));
    }
    return stats;
}

std::vector<double>
MonteCarlo::runSamples(const std::function<double(Rng &)> &metric) const
{
    const Rng parent(masterSeed);
    std::vector<double> samples;
    samples.reserve(trialCount);
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        samples.push_back(metric(rng));
    }
    return samples;
}

unsigned
MonteCarlo::resolveThreads(unsigned threads) const
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    return static_cast<unsigned>(std::min<uint64_t>(threads, trialCount));
}

std::vector<double>
MonteCarlo::runSamplesParallel(const std::function<double(Rng &)> &metric,
                               unsigned threads) const
{
    threads = resolveThreads(threads);

    const Rng parent(masterSeed);
    std::vector<double> samples(trialCount);
    std::vector<std::thread> workers;
    // A metric exception must not escape the worker (that would call
    // std::terminate). Each worker captures the exception of its
    // lowest-indexed throwing trial and stops; after the join, the
    // globally lowest-indexed one is rethrown on this thread so the
    // behaviour is deterministic at any thread count.
    std::vector<std::exception_ptr> workerError(threads);
    std::vector<uint64_t> workerErrorTrial(threads, trialCount);
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            // Strided partition: trial i is computed by thread
            // i % threads; every trial's generator depends only on
            // (seed, i), so the ordering is irrelevant.
            for (uint64_t i = w; i < trialCount; i += threads) {
                Rng rng = parent.split(i);
                try {
                    samples[i] = metric(rng);
                } catch (...) {
                    workerError[w] = std::current_exception();
                    workerErrorTrial[w] = i;
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    uint64_t firstFailed = trialCount;
    std::exception_ptr firstError;
    for (unsigned w = 0; w < threads; ++w) {
        if (workerError[w] && workerErrorTrial[w] < firstFailed) {
            firstFailed = workerErrorTrial[w];
            firstError = workerError[w];
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return samples;
}

TrialReport
MonteCarlo::runSamplesReport(
    const std::function<double(Rng &, uint64_t)> &metric,
    unsigned threads) const
{
    threads = resolveThreads(threads);

    const Rng parent(masterSeed);
    TrialReport report;
    report.trials = trialCount;
    report.samples.assign(trialCount,
                          std::numeric_limits<double>::quiet_NaN());

    struct WorkerLog
    {
        std::vector<uint64_t> failed;
        std::vector<std::string> messages; // parallel to failed
        std::vector<uint64_t> nonFinite;
    };
    std::vector<WorkerLog> logs(threads);

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            WorkerLog &log = logs[w];
            for (uint64_t i = w; i < trialCount; i += threads) {
                Rng rng = parent.split(i);
                try {
                    const double sample = metric(rng, i);
                    report.samples[i] = sample;
                    if (!std::isfinite(sample))
                        log.nonFinite.push_back(i);
                } catch (const std::exception &e) {
                    log.failed.push_back(i);
                    log.messages.emplace_back(e.what());
                } catch (...) {
                    log.failed.push_back(i);
                    log.messages.emplace_back("unknown exception");
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    // Merge per-worker logs in trial order so the report (including
    // firstError) is deterministic at any thread count.
    for (const WorkerLog &log : logs) {
        report.failedTrials.insert(report.failedTrials.end(),
                                   log.failed.begin(), log.failed.end());
        report.nonFiniteTrials.insert(report.nonFiniteTrials.end(),
                                      log.nonFinite.begin(),
                                      log.nonFinite.end());
    }
    std::sort(report.failedTrials.begin(), report.failedTrials.end());
    std::sort(report.nonFiniteTrials.begin(), report.nonFiniteTrials.end());
    if (!report.failedTrials.empty()) {
        const uint64_t first = report.failedTrials.front();
        for (const WorkerLog &log : logs) {
            for (size_t j = 0; j < log.failed.size(); ++j) {
                if (log.failed[j] == first)
                    report.firstError = log.messages[j];
            }
        }
    }

    // RunningStats itself quarantines non-finite input, which also
    // covers the NaN placeholders of failed trials.
    for (double sample : report.samples)
        report.stats.add(sample);
    return report;
}

TrialReport
MonteCarlo::runSamplesReport(const std::function<double(Rng &)> &metric,
                             unsigned threads) const
{
    return runSamplesReport(
        [&metric](Rng &rng, uint64_t) { return metric(rng); }, threads);
}

ProportionInterval
MonteCarlo::estimateProbability(const std::function<bool(Rng &)> &event) const
{
    const Rng parent(masterSeed);
    uint64_t successes = 0;
    for (uint64_t i = 0; i < trialCount; ++i) {
        Rng rng = parent.split(i);
        if (event(rng))
            ++successes;
    }
    return wilsonInterval(successes, trialCount);
}

} // namespace lemons::sim
