/**
 * @file
 * Usage-workload simulation for limited-use devices.
 *
 * The paper sizes the limited-use connection from a fixed assumption —
 * "a user may log into a smartphone a maximum of 50 times a day for 5
 * years" (Section 1). Real usage is stochastic: days vary, some days
 * burst. This module models daily access counts as a (optionally
 * bursty) Poisson process and answers the question the fixed budget
 * raises: with what probability does a given access budget survive a
 * usage profile over a calendar horizon — and how much budget does a
 * target survival probability need?
 */

#ifndef LEMONS_SIM_WORKLOAD_H_
#define LEMONS_SIM_WORKLOAD_H_

#include <cstdint>

#include "sim/monte_carlo.h"
#include "util/rng.h"

namespace lemons::sim {

/** Draw a Poisson(@p mean) sample (exact for small means, normal
 *  approximation above 64 where the error is negligible). */
uint64_t poissonSample(Rng &rng, double mean);

/** Stochastic daily usage profile. */
struct UsageProfile
{
    /** Mean accesses per ordinary day (Poisson rate, > 0). */
    double meanPerDay = 50.0;
    /** Probability a day is a burst day. */
    double burstProbability = 0.0;
    /** Rate multiplier on burst days (>= 1). */
    double burstMultiplier = 1.0;

    /** Long-run mean accesses per day including bursts. */
    double effectiveDailyMean() const;
};

/** Outcome of one simulated device lifetime under a profile. */
struct LifetimeOutcome
{
    bool survivedHorizon = false; ///< budget covered every access
    uint64_t daysServed = 0;      ///< full days before exhaustion
    uint64_t accessesServed = 0;  ///< accesses granted
};

/**
 * Simulate one device lifetime: each day draws a usage count from the
 * profile; the device grants accesses until @p budgetAccesses is
 * spent.
 *
 * @param profile Usage profile.
 * @param budgetAccesses The device's total access budget (e.g. the
 *        91,250 LAB, or M times it with replication).
 * @param horizonDays Calendar horizon (e.g. 5 * 365).
 * @param rng Randomness source.
 */
LifetimeOutcome simulateUsage(const UsageProfile &profile,
                              uint64_t budgetAccesses, uint64_t horizonDays,
                              Rng &rng);

/**
 * Monte Carlo estimate of P(budget survives the horizon) under
 * @p profile.
 */
ProportionInterval survivalProbability(const UsageProfile &profile,
                                       uint64_t budgetAccesses,
                                       uint64_t horizonDays,
                                       const MonteCarlo &engine);

/**
 * Smallest access budget whose survival probability reaches
 * @p targetProbability (point estimate), found by exponential +
 * binary search over Monte Carlo estimates. Deterministic given the
 * engine's seed.
 */
uint64_t budgetForSurvival(const UsageProfile &profile,
                           uint64_t horizonDays, double targetProbability,
                           const MonteCarlo &engine);

} // namespace lemons::sim

#endif // LEMONS_SIM_WORKLOAD_H_
