/**
 * @file
 * Empirical survival / reliability curves from Monte Carlo samples.
 *
 * Used to cross-validate the analytic reliability expressions (paper
 * Eq. 3, 6, 8) against simulated device populations.
 */

#ifndef LEMONS_SIM_EMPIRICAL_H_
#define LEMONS_SIM_EMPIRICAL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace lemons::sim {

/**
 * Empirical survival function built from failure-time samples:
 * reliability(t) = fraction of samples with failure time > t.
 */
class SurvivalCurve
{
  public:
    /** @param failureTimes Observed failure times (non-empty). */
    explicit SurvivalCurve(std::vector<double> failureTimes);

    /** Number of underlying samples. */
    size_t sampleCount() const { return times.size(); }

    /** Empirical P(T > t). */
    double reliability(double t) const;

    /** Empirical P(T <= t). */
    double cdf(double t) const { return 1.0 - reliability(t); }

    /**
     * Empirical quantile: smallest observed failure time t with
     * cdf(t) >= q. @pre 0 <= q <= 1.
     */
    double quantile(double q) const;

    /** Mean observed failure time. */
    double mean() const;

    /**
     * Largest absolute difference between this curve's CDF and
     * @p referenceCdf evaluated at every sample point (one-sample
     * Kolmogorov-Smirnov statistic). Lets tests assert that simulated
     * populations match the analytic model.
     */
    double ksDistance(const std::function<double(double)> &referenceCdf) const;

  private:
    std::vector<double> times; ///< sorted ascending
};

} // namespace lemons::sim

#endif // LEMONS_SIM_EMPIRICAL_H_
