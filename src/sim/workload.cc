#include "sim/workload.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::sim {

uint64_t
poissonSample(Rng &rng, double mean)
{
    requireArg(mean >= 0.0 && std::isfinite(mean),
               "poissonSample: mean must be finite and >= 0");
    LEMONS_OBS_INCREMENT("sim.poisson.samples");
    if (mean == 0.0)
        return 0;
    if (mean < 64.0) {
        // Knuth's product-of-uniforms method.
        LEMONS_OBS_INCREMENT("sim.poisson.exact");
        const double limit = std::exp(-mean);
        uint64_t count = 0;
        double product = rng.nextDoubleOpenLow();
        while (product > limit) {
            ++count;
            product *= rng.nextDoubleOpenLow();
        }
        return count;
    }
    // Normal approximation with continuity correction; relative error
    // is far below the Monte Carlo noise at mean >= 64.
    LEMONS_OBS_INCREMENT("sim.poisson.approx");
    const double sample =
        mean + std::sqrt(mean) * rng.nextGaussian() + 0.5;
    return sample <= 0.0 ? 0 : static_cast<uint64_t>(sample);
}

double
UsageProfile::effectiveDailyMean() const
{
    return meanPerDay *
           (1.0 + burstProbability * (burstMultiplier - 1.0));
}

LifetimeOutcome
simulateUsage(const UsageProfile &profile, uint64_t budgetAccesses,
              uint64_t horizonDays, Rng &rng)
{
    requireArg(profile.meanPerDay > 0.0,
               "simulateUsage: meanPerDay must be positive");
    requireArg(profile.burstProbability >= 0.0 &&
                   profile.burstProbability <= 1.0,
               "simulateUsage: burstProbability outside [0, 1]");
    requireArg(profile.burstMultiplier >= 1.0,
               "simulateUsage: burstMultiplier must be >= 1");
    requireArg(horizonDays >= 1, "simulateUsage: horizon must be >= 1 day");

    LifetimeOutcome outcome;
    uint64_t remaining = budgetAccesses;
    for (uint64_t day = 0; day < horizonDays; ++day) {
        double rate = profile.meanPerDay;
        if (profile.burstProbability > 0.0 &&
            rng.nextBernoulli(profile.burstProbability))
            rate *= profile.burstMultiplier;
        const uint64_t wanted = poissonSample(rng, rate);
        if (wanted > remaining) {
            outcome.accessesServed += remaining;
            outcome.daysServed = day;
            return outcome; // exhausted mid-day
        }
        remaining -= wanted;
        outcome.accessesServed += wanted;
    }
    outcome.survivedHorizon = true;
    outcome.daysServed = horizonDays;
    return outcome;
}

ProportionInterval
survivalProbability(const UsageProfile &profile, uint64_t budgetAccesses,
                    uint64_t horizonDays, const MonteCarlo &engine)
{
    return engine.estimateProbability([&](Rng &rng) {
        return simulateUsage(profile, budgetAccesses, horizonDays, rng)
            .survivedHorizon;
    });
}

uint64_t
budgetForSurvival(const UsageProfile &profile, uint64_t horizonDays,
                  double targetProbability, const MonteCarlo &engine)
{
    requireArg(targetProbability > 0.0 && targetProbability < 1.0,
               "budgetForSurvival: target outside (0, 1)");

    auto survives = [&](uint64_t budget) {
        return survivalProbability(profile, budget, horizonDays, engine)
                   .estimate >= targetProbability;
    };

    // Start near the deterministic mean and search outward.
    uint64_t hi = std::max<uint64_t>(
        1, static_cast<uint64_t>(profile.effectiveDailyMean() *
                                 static_cast<double>(horizonDays)));
    uint64_t lo = 0;
    while (!survives(hi)) {
        lo = hi;
        hi *= 2;
    }
    while (hi - lo > 1) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (survives(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace lemons::sim
