/**
 * @file
 * Reproducible Monte Carlo trial driver.
 *
 * Every trial receives its own Rng derived from (seed, trial index), so
 * results do not depend on evaluation order and any single trial can be
 * replayed in isolation — essential for debugging rare-event failures
 * in the security analyses.
 *
 * Execution is delegated to lemons::engine::runTrials, the batched
 * chunk-parallel engine: one run() entry point with an McRunOptions
 * struct replaces the old runStats / runSamples / runSamplesParallel /
 * runStatsParallel / runSamplesReport overload family, which survives
 * as [[deprecated]] one-line wrappers.
 */

#ifndef LEMONS_SIM_MONTE_CARLO_H_
#define LEMONS_SIM_MONTE_CARLO_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lemons::sim {

// The execution substrate lives in lemons::engine; sim re-exports the
// vocabulary types so call sites keep reading naturally.
using engine::EarlyStop;
using engine::FaultPolicy;
using engine::McRunOptions;
using engine::TrialReport;

/**
 * Monte Carlo driver configured with a master seed and trial count.
 */
class MonteCarlo
{
  public:
    /**
     * @param seed Master seed; trial i uses Rng::trialStream(seed, i).
     * @param trials Number of independent trials (> 0).
     */
    MonteCarlo(uint64_t seed, uint64_t trials);

    /** Number of trials this driver runs by default. */
    uint64_t trials() const { return trialCount; }
    /** The master seed. */
    uint64_t seed() const { return masterSeed; }

    /**
     * Run @p metric once per trial under the execution policy in
     * @p options (options.trials == 0 uses this driver's trial count).
     * Per-trial samples are bit-identical at any thread count and
     * chunk size; see engine::runTrials for the full contract.
     */
    TrialReport run(const std::function<double(Rng &, uint64_t)> &metric,
                    McRunOptions options = {}) const;

    /** Convenience overload for index-oblivious metrics. */
    TrialReport run(const std::function<double(Rng &)> &metric,
                    McRunOptions options = {}) const;

    /**
     * Estimate P(event) with a Wilson 95 % interval.
     */
    ProportionInterval
    estimateProbability(const std::function<bool(Rng &)> &event) const;

    // ------------------------------------------------------------------
    // Deprecated overload family. Each is a thin wrapper over run();
    // see the README migration table for the one-line replacements.
    // ------------------------------------------------------------------

    /** @deprecated Use run(metric, {.faults = Rethrow}).stats. */
    [[deprecated("use run(metric, {.faults = FaultPolicy::Rethrow}).stats")]]
    RunningStats
    runStats(const std::function<double(Rng &)> &metric) const;

    /** @deprecated Use run(metric, {.faults = Rethrow}).samples. */
    [[deprecated(
        "use run(metric, {.faults = FaultPolicy::Rethrow}).samples")]]
    std::vector<double>
    runSamples(const std::function<double(Rng &)> &metric) const;

    /**
     * @deprecated Use
     * run(metric, {.threads = N, .keepSamples = false,
     *              .faults = Rethrow}).stats.
     */
    [[deprecated("use run(metric, {.threads = N, .keepSamples = false, "
                 ".faults = FaultPolicy::Rethrow}).stats")]]
    RunningStats
    runStatsParallel(const std::function<double(Rng &)> &metric,
                     unsigned threads = 0) const;

    /**
     * @deprecated Use
     * run(metric, {.threads = N, .faults = Rethrow}).samples.
     */
    [[deprecated("use run(metric, {.threads = N, "
                 ".faults = FaultPolicy::Rethrow}).samples")]]
    std::vector<double>
    runSamplesParallel(const std::function<double(Rng &)> &metric,
                       unsigned threads = 0) const;

    /** @deprecated Use run(metric, {.threads = N}). */
    [[deprecated("use run(metric, {.threads = N})")]]
    TrialReport
    runSamplesReport(const std::function<double(Rng &, uint64_t)> &metric,
                     unsigned threads = 0) const;

    /** @deprecated Use run(metric, {.threads = N}). */
    [[deprecated("use run(metric, {.threads = N})")]]
    TrialReport
    runSamplesReport(const std::function<double(Rng &)> &metric,
                     unsigned threads = 0) const;

  private:
    uint64_t masterSeed;
    uint64_t trialCount;
};

} // namespace lemons::sim

#endif // LEMONS_SIM_MONTE_CARLO_H_
