/**
 * @file
 * Reproducible Monte Carlo trial engine.
 *
 * Every trial receives its own Rng derived from (seed, trial index), so
 * results do not depend on evaluation order and any single trial can be
 * replayed in isolation — essential for debugging rare-event failures
 * in the security analyses.
 */

#ifndef LEMONS_SIM_MONTE_CARLO_H_
#define LEMONS_SIM_MONTE_CARLO_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lemons::sim {

/**
 * Monte Carlo driver configured with a master seed and trial count.
 */
class MonteCarlo
{
  public:
    /**
     * @param seed Master seed; trial i uses Rng(seed).split(i).
     * @param trials Number of independent trials (> 0).
     */
    MonteCarlo(uint64_t seed, uint64_t trials);

    /** Number of trials this engine runs. */
    uint64_t trials() const { return trialCount; }
    /** The master seed. */
    uint64_t seed() const { return masterSeed; }

    /**
     * Run @p metric once per trial and accumulate streaming statistics.
     */
    RunningStats
    runStats(const std::function<double(Rng &)> &metric) const;

    /**
     * Run @p metric once per trial and keep every sample (for
     * quantiles / histograms). Memory is O(trials).
     */
    std::vector<double>
    runSamples(const std::function<double(Rng &)> &metric) const;

    /**
     * Estimate P(event) with a Wilson 95 % interval.
     */
    ProportionInterval
    estimateProbability(const std::function<bool(Rng &)> &event) const;

    /**
     * Multi-threaded runSamples. Because trial i's generator depends
     * only on (seed, i), the result is bit-identical to the serial
     * runSamples regardless of @p threads; the metric must be safe to
     * call concurrently from multiple threads (pure functions of the
     * Rng are).
     *
     * @param metric Per-trial metric.
     * @param threads Worker count (>= 1; 0 = hardware concurrency).
     */
    std::vector<double>
    runSamplesParallel(const std::function<double(Rng &)> &metric,
                       unsigned threads = 0) const;

  private:
    uint64_t masterSeed;
    uint64_t trialCount;
};

} // namespace lemons::sim

#endif // LEMONS_SIM_MONTE_CARLO_H_
