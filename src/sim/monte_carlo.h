/**
 * @file
 * Reproducible Monte Carlo trial engine.
 *
 * Every trial receives its own Rng derived from (seed, trial index), so
 * results do not depend on evaluation order and any single trial can be
 * replayed in isolation — essential for debugging rare-event failures
 * in the security analyses.
 */

#ifndef LEMONS_SIM_MONTE_CARLO_H_
#define LEMONS_SIM_MONTE_CARLO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lemons::sim {

/**
 * Outcome of a fault-tolerant Monte Carlo run. One bad trial out of a
 * million yields a degraded-but-complete report instead of a crash:
 * throwing trials are recorded (index + first error message) and
 * non-finite samples are quarantined rather than poisoning the
 * aggregate statistics.
 */
struct TrialReport
{
    /**
     * One sample per trial, in trial order. Failed (throwing) trials
     * hold NaN; quarantined trials hold the non-finite value the
     * metric actually returned.
     */
    std::vector<double> samples;

    /** Indices of trials whose metric threw, ascending. */
    std::vector<uint64_t> failedTrials;

    /** Indices of trials whose metric returned NaN/Inf, ascending. */
    std::vector<uint64_t> nonFiniteTrials;

    /**
     * what() of the exception from the lowest-indexed failed trial
     * (deterministic regardless of thread interleaving); empty when no
     * trial failed.
     */
    std::string firstError;

    /** Streaming statistics over clean (finite, non-throwing) samples. */
    RunningStats stats;

    /** Total trials attempted. */
    uint64_t trials = 0;

    /** Whether every trial produced a clean sample. */
    bool complete() const
    {
        return failedTrials.empty() && nonFiniteTrials.empty();
    }

    /** Trials that produced a clean sample. */
    uint64_t cleanTrials() const
    {
        return trials - failedTrials.size() - nonFiniteTrials.size();
    }
};

/**
 * Monte Carlo driver configured with a master seed and trial count.
 */
class MonteCarlo
{
  public:
    /**
     * @param seed Master seed; trial i uses Rng(seed).split(i).
     * @param trials Number of independent trials (> 0).
     */
    MonteCarlo(uint64_t seed, uint64_t trials);

    /** Number of trials this engine runs. */
    uint64_t trials() const { return trialCount; }
    /** The master seed. */
    uint64_t seed() const { return masterSeed; }

    /**
     * Run @p metric once per trial and accumulate streaming statistics.
     */
    RunningStats
    runStats(const std::function<double(Rng &)> &metric) const;

    /**
     * Run @p metric once per trial and keep every sample (for
     * quantiles / histograms). Memory is O(trials).
     */
    std::vector<double>
    runSamples(const std::function<double(Rng &)> &metric) const;

    /**
     * Multi-threaded runStats: constant memory at any trial count.
     * Each worker accumulates a private RunningStats over its strided
     * trials, then folds it into a SharedRunningStats under the lock.
     * Count, extrema, and the quarantine tally are identical to the
     * serial runStats; mean and variance agree up to floating-point
     * reassociation (partials are merged in worker-id order, so the
     * result is deterministic for a fixed thread count).
     *
     * @param metric Per-trial metric.
     * @param threads Worker count (>= 1; 0 = hardware concurrency).
     */
    RunningStats
    runStatsParallel(const std::function<double(Rng &)> &metric,
                     unsigned threads = 0) const;

    /**
     * Estimate P(event) with a Wilson 95 % interval.
     */
    ProportionInterval
    estimateProbability(const std::function<bool(Rng &)> &event) const;

    /**
     * Multi-threaded runSamples. Because trial i's generator depends
     * only on (seed, i), the result is bit-identical to the serial
     * runSamples regardless of @p threads; the metric must be safe to
     * call concurrently from multiple threads (pure functions of the
     * Rng are).
     *
     * An exception thrown by the metric is captured on the worker via
     * std::exception_ptr and rethrown on the calling thread after all
     * workers join (the exception of the lowest-indexed throwing trial,
     * for determinism) — it does not std::terminate the process.
     *
     * @param metric Per-trial metric.
     * @param threads Worker count (>= 1; 0 = hardware concurrency).
     */
    std::vector<double>
    runSamplesParallel(const std::function<double(Rng &)> &metric,
                       unsigned threads = 0) const;

    /**
     * Fault-tolerant multi-threaded engine: like runSamplesParallel
     * but throwing trials and non-finite samples are captured into a
     * TrialReport instead of aborting the run. The metric receives the
     * trial index alongside its Rng.
     *
     * @param metric Per-trial metric (rng, trial index).
     * @param threads Worker count (>= 1; 0 = hardware concurrency).
     */
    TrialReport
    runSamplesReport(const std::function<double(Rng &, uint64_t)> &metric,
                     unsigned threads = 0) const;

    /** Convenience overload for index-oblivious metrics. */
    TrialReport
    runSamplesReport(const std::function<double(Rng &)> &metric,
                     unsigned threads = 0) const;

  private:
    uint64_t masterSeed;
    uint64_t trialCount;

    /** Clamp the requested worker count to [1, trials]. */
    unsigned resolveThreads(unsigned threads) const;
};

} // namespace lemons::sim

#endif // LEMONS_SIM_MONTE_CARLO_H_
