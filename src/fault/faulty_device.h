/**
 * @file
 * Fault-injected device fabrication and the FaultyNemsSwitch wrapper.
 *
 * FaultyDeviceFactory mirrors wearout::DeviceFactory's interface
 * (sampleLifetime / fabricate / fabricateMany) but applies a FaultPlan
 * on top of the base factory's lot-level process variation.
 * FaultyNemsSwitch conforms to the wearout::NemsSwitch actuation
 * interface (actuate / failed / cyclesUsed / lifetime / aliveAt) and
 * adds stuck-closed and transient-glitch semantics, so every
 * architecture layer that consumes a switch can run under a fault plan
 * unchanged.
 */

#ifndef LEMONS_FAULT_FAULTY_DEVICE_H_
#define LEMONS_FAULT_FAULTY_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "util/rng.h"
#include "wearout/device.h"
#include "wearout/mixture.h"
#include "wearout/population.h"

namespace lemons::fault {

/**
 * A NEMS switch with non-ideal failure semantics.
 *
 * - Stuck-closed devices conduct on every actuation and never report
 *   failed(): the fail-short mode that silently breaks the attack
 *   bound.
 * - Transient glitches fail one actuation without consuming lifetime;
 *   the switch recovers on the next cycle.
 * - Healthy and infant-mortality devices behave exactly like
 *   wearout::NemsSwitch over their drawn lifetime.
 */
class FaultyNemsSwitch
{
  public:
    /** A healthy switch: indistinguishable from NemsSwitch. */
    explicit FaultyNemsSwitch(double lifetime);

    /**
     * @param fate Sampled lifetime + fault mode.
     * @param glitchRate Per-actuation transient misfire probability.
     * @param glitchSeed Seed of the private glitch stream (only used
     *        when glitchRate > 0).
     */
    FaultyNemsSwitch(const FaultyLifetime &fate, double glitchRate,
                     uint64_t glitchSeed);

    /**
     * Actuate once. Glitches fail the read without wearing the device;
     * stuck-closed devices always succeed; everything else follows the
     * NemsSwitch wearout contract.
     */
    bool actuate();

    /**
     * Whether the switch has permanently failed. Stuck-closed devices
     * never do (infinite lifetime).
     */
    bool failed() const { return inner.failed(); }

    /** Actuations attempted so far, including glitched ones. */
    uint64_t cyclesUsed() const { return inner.cyclesUsed() + glitches; }

    /** The drawn time-to-failure (+inf for stuck-closed devices). */
    double lifetime() const { return inner.lifetime(); }

    /** Whether the switch would close at the @p cycle -th wear cycle. */
    bool aliveAt(uint64_t cycle) const { return inner.aliveAt(cycle); }

    /** The fabrication fault this device carries. */
    DeviceFaultMode mode() const { return faultMode; }

    /** Whether the device is fail-short. */
    bool stuckClosed() const
    {
        return faultMode == DeviceFaultMode::StuckClosed;
    }

    /** Transient misfires so far. */
    uint64_t glitchCount() const { return glitches; }

    /**
     * Whether the next actuation would succeed barring a glitch: the
     * non-consuming health probe behind degraded-but-alive reporting.
     */
    bool alive() const;

  private:
    wearout::NemsSwitch inner;
    DeviceFaultMode faultMode = DeviceFaultMode::None;
    double glitchRate = 0.0;
    Rng glitchStream;
    uint64_t glitches = 0;
};

/**
 * Fault-injecting counterpart of wearout::DeviceFactory: wraps a base
 * factory and applies a FaultPlan per fabricated device.
 *
 * RNG contract: under a null plan every method takes the exact base-
 * factory code path, so results are bit-identical to the unfaulted
 * simulator for the same seed. Under a non-null plan, the per-device
 * draw sequence is fixed (lot spec, drift, stuck decision, infant
 * decision, one lifetime uniform) and the lifetime uniform is shared
 * across the candidate distributions, so plans that differ only in
 * their rates are coupled by common random numbers — which makes
 * monotonicity properties (e.g. attacker success non-decreasing in
 * the stuck-closed rate) hold per-trial, not just in expectation.
 */
class FaultyDeviceFactory
{
  public:
    /**
     * @param base Fabrication model (spec + lot variation).
     * @param plan Fault rates to inject (validated).
     */
    FaultyDeviceFactory(const wearout::DeviceFactory &base,
                        const FaultPlan &plan);

    /** The wrapped ideal-device factory. */
    const wearout::DeviceFactory &base() const { return baseFactory; }

    /** The injected fault plan. */
    const FaultPlan &plan() const { return faultPlan; }

    /** Draw one device fate (lifetime + fault mode). */
    FaultyLifetime sampleFaultyLifetime(Rng &rng) const;

    /**
     * Lifetime-only view for order-statistic sampling: stuck-closed
     * devices report +inf. Bit-identical to base().sampleLifetime()
     * under a null plan.
     */
    double sampleLifetime(Rng &rng) const;

    /**
     * Bathtub-mixture view of the mortal (non-stuck) population: the
     * fault plan's infant leg mixed with the nominal wearout model via
     * the existing wearout::BathtubModel. This is the classic analytic
     * approximation; it ignores that the competing-risks sampler caps
     * each infant lifetime at the wearout draw, so it upper-bounds the
     * exact reliability in the deep tail.
     */
    wearout::BathtubModel populationModel() const;

    /**
     * Exact analytic lifetime reliability P(T > x) of a fabricated
     * device, assuming no lot variation or parameter drift. Infant
     * devices fail at the earlier of the comonotone early/wearout
     * draws — reliability min(R_early, R_main) — and stuck-closed
     * devices never fail:
     *   R(x) = eps + (1 - eps) * (w * min(Re, Rm) + (1 - w) * Rm).
     */
    double populationReliability(double x) const;

    /** Fabricate one switch (wires up the glitch stream if enabled). */
    FaultyNemsSwitch fabricate(Rng &rng) const;

    /** Fabricate @p count switches. */
    std::vector<FaultyNemsSwitch> fabricateMany(Rng &rng,
                                                size_t count) const;

  private:
    wearout::DeviceFactory baseFactory;
    FaultPlan faultPlan;
};

} // namespace lemons::fault

#endif // LEMONS_FAULT_FAULTY_DEVICE_H_
