/**
 * @file
 * Fault-injection plans for non-ideal NEMS populations.
 *
 * The paper's security bounds (Sections 4-6) assume ideal fail-open
 * Weibull wearout: every device eventually opens, and opens forever.
 * Real nano-scale contacts misbehave in ways that threaten exactly
 * those bounds:
 *
 *  - infant mortality: a fraction of devices dies far earlier than the
 *    designed wearout distribution (bathtub early-life leg), eroding
 *    the legitimate access bound (LAB),
 *  - stuck-closed (fail-short) contacts: adhesion welds the contact
 *    shut, so the device conducts forever and never wears out —
 *    silently breaking the attack bound, because the share behind it
 *    stays readable,
 *  - transient actuation glitches: a misfire fails one read without
 *    consuming lifetime — availability noise, not wearout,
 *  - Weibull parameter drift: calibration uncertainty in (alpha,
 *    beta), modelled as a per-device lognormal perturbation on top of
 *    lot-level ProcessVariation.
 *
 * A FaultPlan bundles the rates of all four modes. FaultPlan::none()
 * is the ideal-device plan: every fault-aware code path is required to
 * be bit-identical to the unfaulted simulator under it (same seed,
 * same RNG draw sequence), so fault injection can be threaded through
 * every analysis without perturbing the paper's reproduced figures.
 */

#ifndef LEMONS_FAULT_FAULT_PLAN_H_
#define LEMONS_FAULT_FAULT_PLAN_H_

namespace lemons::fault {

/** Which fabrication-time fault befell one device. */
enum class DeviceFaultMode {
    None,            ///< ideal fail-open Weibull wearout
    InfantMortality, ///< early-failure mechanism competes with wearout
    StuckClosed,     ///< fail-short: conducts forever, never wears out
};

/**
 * Per-device fault rates for one fabricated population. All rates are
 * probabilities in [0, 1]; the default-constructed plan is all-zero
 * (ideal devices).
 */
struct FaultPlan
{
    /** epsilon: P(device is stuck-closed / fail-short). */
    double stuckClosedRate = 0.0;

    /** P(device belongs to the infant-mortality sub-population). */
    double infantFraction = 0.0;
    /** Infant Weibull scale as a fraction of the device's alpha. */
    double infantScaleFraction = 0.1;
    /** Infant Weibull shape (< 1: decreasing hazard). */
    double infantShape = 0.8;

    /**
     * Per-actuation probability of a transient misfire: the read
     * fails but no lifetime is consumed. Only affects runtime switch
     * objects (FaultyNemsSwitch); lifetime order statistics ignore it.
     */
    double glitchRate = 0.0;

    /** Lognormal sigma of per-device alpha drift (model uncertainty). */
    double alphaDriftSigma = 0.0;
    /** Lognormal sigma of per-device beta drift. */
    double betaDriftSigma = 0.0;

    /** The ideal-device plan (all rates zero). */
    static FaultPlan none() { return {}; }

    /** Convenience: only stuck-closed faults at rate @p epsilon. */
    static FaultPlan stuckClosed(double epsilon);

    /** Convenience: only infant mortality at fraction @p w. */
    static FaultPlan infantMortality(double w);

    /**
     * Whether the plan injects nothing. Null plans take the exact
     * unfaulted code path (bit-identical RNG draw sequence).
     */
    bool isNull() const;

    /** Throw std::invalid_argument on out-of-range rates. */
    void validate() const;
};

/**
 * One sampled device fate: the drawn time-to-failure plus the fault
 * mode it was drawn under. Stuck-closed devices report an infinite
 * lifetime — they conduct forever.
 */
struct FaultyLifetime
{
    double lifetime = 0.0;
    DeviceFaultMode mode = DeviceFaultMode::None;

    /** Whether this device can never wear out. */
    bool stuckClosed() const { return mode == DeviceFaultMode::StuckClosed; }
};

} // namespace lemons::fault

#endif // LEMONS_FAULT_FAULT_PLAN_H_
