#include "fault/faulty_device.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"
#include "wearout/weibull.h"

namespace lemons::fault {

FaultyNemsSwitch::FaultyNemsSwitch(double lifetime) : inner(lifetime) {}

FaultyNemsSwitch::FaultyNemsSwitch(const FaultyLifetime &fate,
                                   double glitchRate_, uint64_t glitchSeed)
    : inner(fate.lifetime), faultMode(fate.mode), glitchRate(glitchRate_),
      glitchStream(glitchSeed)
{
    requireArg(glitchRate_ >= 0.0 && glitchRate_ <= 1.0,
               "FaultyNemsSwitch: glitchRate outside [0, 1]");
}

bool
FaultyNemsSwitch::actuate()
{
    if (glitchRate > 0.0 && glitchStream.nextBernoulli(glitchRate)) {
        // Transient misfire: the read fails but the contact did not
        // cycle, so no lifetime is consumed and the switch recovers.
        ++glitches;
        return false;
    }
    return inner.actuate();
}

bool
FaultyNemsSwitch::alive() const
{
    if (stuckClosed())
        return true;
    return !inner.failed() && inner.aliveAt(inner.cyclesUsed() + 1);
}

FaultyDeviceFactory::FaultyDeviceFactory(const wearout::DeviceFactory &base,
                                         const FaultPlan &plan)
    : baseFactory(base), faultPlan(plan)
{
    faultPlan.validate();
}

FaultyLifetime
FaultyDeviceFactory::sampleFaultyLifetime(Rng &rng) const
{
    // Null plans must reproduce the unfaulted simulator bit for bit:
    // take the base path without consuming any extra draws.
    if (faultPlan.isNull())
        return {baseFactory.sampleLifetime(rng), DeviceFaultMode::None};

    wearout::DeviceSpec spec = baseFactory.sampleDeviceSpec(rng);
    if (faultPlan.alphaDriftSigma > 0.0)
        spec.alpha *= std::exp(faultPlan.alphaDriftSigma * rng.nextGaussian());
    if (faultPlan.betaDriftSigma > 0.0)
        spec.beta *= std::exp(faultPlan.betaDriftSigma * rng.nextGaussian());

    const bool stuck = faultPlan.stuckClosedRate > 0.0 &&
                       rng.nextDouble() < faultPlan.stuckClosedRate;
    const bool infant = faultPlan.infantFraction > 0.0 &&
                        rng.nextDouble() < faultPlan.infantFraction;

    // One shared uniform drives the lifetime regardless of which
    // distribution applies (and is drawn even for stuck-closed
    // devices): plans differing only in their rates then see identical
    // draw sequences, which couples them by common random numbers.
    const double u = rng.nextDoubleOpenLow();
    if (stuck) {
        return {std::numeric_limits<double>::infinity(),
                DeviceFaultMode::StuckClosed};
    }
    const double healthy =
        wearout::Weibull(spec.alpha, spec.beta).sampleFromUniform(u);
    if (infant) {
        // Competing risks: the defect adds an early-failure mechanism
        // on top of (not instead of) the wearout mechanism, so the
        // device dies at the earlier of the two. Taking the min also
        // keeps the infant leg's heavy tail (shape < 1) from letting a
        // "defective" device outlive its healthy counterpart.
        const wearout::Weibull early(
            faultPlan.infantScaleFraction * spec.alpha,
            faultPlan.infantShape);
        return {std::min(healthy, early.sampleFromUniform(u)),
                DeviceFaultMode::InfantMortality};
    }
    return {healthy, DeviceFaultMode::None};
}

double
FaultyDeviceFactory::sampleLifetime(Rng &rng) const
{
    if (faultPlan.isNull())
        return baseFactory.sampleLifetime(rng);
    return sampleFaultyLifetime(rng).lifetime;
}

wearout::BathtubModel
FaultyDeviceFactory::populationModel() const
{
    const wearout::DeviceSpec &spec = baseFactory.spec();
    const wearout::Weibull early(faultPlan.infantScaleFraction * spec.alpha,
                                 faultPlan.infantShape);
    return wearout::BathtubModel(faultPlan.infantFraction, early,
                                 baseFactory.nominalModel());
}

double
FaultyDeviceFactory::populationReliability(double x) const
{
    const wearout::BathtubModel bathtub = populationModel();
    const double rMain = bathtub.main().reliability(x);
    const double rInfant = std::min(bathtub.infant().reliability(x), rMain);
    const double rMortal = faultPlan.infantFraction * rInfant +
                           (1.0 - faultPlan.infantFraction) * rMain;
    return faultPlan.stuckClosedRate +
           (1.0 - faultPlan.stuckClosedRate) * rMortal;
}

FaultyNemsSwitch
FaultyDeviceFactory::fabricate(Rng &rng) const
{
    const FaultyLifetime fate = sampleFaultyLifetime(rng);
    if (faultPlan.glitchRate > 0.0)
        return FaultyNemsSwitch(fate, faultPlan.glitchRate, rng.next());
    return FaultyNemsSwitch(fate, 0.0, 0);
}

std::vector<FaultyNemsSwitch>
FaultyDeviceFactory::fabricateMany(Rng &rng, size_t count) const
{
    std::vector<FaultyNemsSwitch> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(fabricate(rng));
    return out;
}

} // namespace lemons::fault
