#include "fault/fault_plan.h"

#include "lint/rules.h"

namespace lemons::fault {

FaultPlan
FaultPlan::stuckClosed(double epsilon)
{
    FaultPlan plan;
    plan.stuckClosedRate = epsilon;
    plan.validate();
    return plan;
}

FaultPlan
FaultPlan::infantMortality(double w)
{
    FaultPlan plan;
    plan.infantFraction = w;
    plan.validate();
    return plan;
}

bool
FaultPlan::isNull() const
{
    return stuckClosedRate == 0.0 && infantFraction == 0.0 &&
           glitchRate == 0.0 && alphaDriftSigma == 0.0 &&
           betaDriftSigma == 0.0;
}

void
FaultPlan::validate() const
{
    // L4xx range rules; throws LintError (a std::invalid_argument)
    // naming the violated rule and field.
    lint::checkFaultPlanOrThrow(*this);
}

} // namespace lemons::fault
