#include "fault/fault_plan.h"

#include "util/require.h"

namespace lemons::fault {

FaultPlan
FaultPlan::stuckClosed(double epsilon)
{
    FaultPlan plan;
    plan.stuckClosedRate = epsilon;
    plan.validate();
    return plan;
}

FaultPlan
FaultPlan::infantMortality(double w)
{
    FaultPlan plan;
    plan.infantFraction = w;
    plan.validate();
    return plan;
}

bool
FaultPlan::isNull() const
{
    return stuckClosedRate == 0.0 && infantFraction == 0.0 &&
           glitchRate == 0.0 && alphaDriftSigma == 0.0 &&
           betaDriftSigma == 0.0;
}

void
FaultPlan::validate() const
{
    requireArg(stuckClosedRate >= 0.0 && stuckClosedRate <= 1.0,
               "FaultPlan: stuckClosedRate outside [0, 1]");
    requireArg(infantFraction >= 0.0 && infantFraction <= 1.0,
               "FaultPlan: infantFraction outside [0, 1]");
    requireArg(infantScaleFraction > 0.0,
               "FaultPlan: infantScaleFraction must be positive");
    requireArg(infantShape > 0.0, "FaultPlan: infantShape must be positive");
    requireArg(glitchRate >= 0.0 && glitchRate <= 1.0,
               "FaultPlan: glitchRate outside [0, 1]");
    requireArg(alphaDriftSigma >= 0.0 && betaDriftSigma >= 0.0,
               "FaultPlan: drift sigmas must be >= 0");
}

} // namespace lemons::fault
