#include "wearout/environment.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace lemons::wearout {

EnvironmentModel::EnvironmentModel(double referenceTempC, double decayScaleC,
                                   double minFactor)
    : referenceTemp(referenceTempC), decayScale(decayScaleC),
      floorFactor(minFactor)
{
    requireArg(decayScaleC > 0.0,
               "EnvironmentModel: decay scale must be positive");
    requireArg(minFactor > 0.0 && minFactor <= 1.0,
               "EnvironmentModel: minFactor must lie in (0, 1]");
}

double
EnvironmentModel::lifetimeFactor(double temperatureC) const
{
    if (temperatureC <= referenceTemp)
        return 1.0; // freezing does not help: fracture remains
    const double factor =
        std::exp(-(temperatureC - referenceTemp) / decayScale);
    return std::max(floorFactor, factor);
}

double
EnvironmentModel::cyclesPerActuation(double temperatureC) const
{
    return 1.0 / lifetimeFactor(temperatureC);
}

HarshEnvironmentSwitch::HarshEnvironmentSwitch(double lifetime,
                                               const EnvironmentModel &model)
    : budget(lifetime), environment(model)
{
    requireArg(lifetime >= 0.0,
               "HarshEnvironmentSwitch: lifetime must be >= 0");
}

HarshEnvironmentSwitch::HarshEnvironmentSwitch(const Weibull &wearout,
                                               Rng &rng,
                                               const EnvironmentModel &model)
    : budget(wearout.sample(rng)), environment(model)
{
}

bool
HarshEnvironmentSwitch::actuateAt(double temperatureC)
{
    if (isFailed)
        return false;
    consumed += environment.cyclesPerActuation(temperatureC);
    if (consumed > budget) {
        isFailed = true;
        return false;
    }
    return true;
}

} // namespace lemons::wearout
