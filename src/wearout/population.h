/**
 * @file
 * Device population factory with manufacturing process variation.
 *
 * The paper accommodates process variation by "introducing more
 * variations into the distribution" (Section 2.2): immature nano-scale
 * manufacturing lowers the effective shape parameter. We model this at
 * two levels:
 *  - lot-level: every fabricated device's (alpha, beta) is perturbed
 *    around the nominal spec (lognormal on alpha, lognormal on beta),
 *  - device-level: the lifetime itself is a Weibull draw from the
 *    device's own parameters.
 * With zero perturbation this degenerates to iid draws from the nominal
 * Weibull, which is the model the paper's equations use.
 */

#ifndef LEMONS_WEAROUT_POPULATION_H_
#define LEMONS_WEAROUT_POPULATION_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "wearout/device.h"
#include "wearout/weibull.h"

namespace lemons::wearout {

/**
 * Lot-level process variation: relative lognormal sigma applied to the
 * nominal alpha and beta of each fabricated device.
 */
struct ProcessVariation
{
    double alphaSigma = 0.0; ///< lognormal sigma on alpha (0 = exact).
    double betaSigma = 0.0;  ///< lognormal sigma on beta (0 = exact).

    /** No manufacturing spread: devices match the spec exactly. */
    static ProcessVariation none() { return {}; }
};

/**
 * Factory that fabricates simulated NEMS switches from a nominal spec.
 */
class DeviceFactory
{
  public:
    /**
     * @param spec Nominal (alpha, beta) of the fabricated devices.
     * @param variation Lot-level process variation.
     */
    DeviceFactory(const DeviceSpec &spec, const ProcessVariation &variation);

    /** Nominal wearout model (no lot variation applied). Cached at
     *  construction so per-trial kernels can grab it by reference. */
    const Weibull &nominalModel() const { return nominal; }

    /**
     * Draw one device's lot-perturbed (alpha, beta). This is the
     * fabrication-time half of sampleLifetime, split out so fault
     * injection (fault::FaultyDeviceFactory) can layer per-device
     * drift and fault modes on the same lot draw without duplicating
     * the lognormal perturbation logic.
     */
    DeviceSpec sampleDeviceSpec(Rng &rng) const;

    /** Fabricate one switch. */
    NemsSwitch fabricate(Rng &rng) const;

    /** Fabricate @p count switches. */
    std::vector<NemsSwitch> fabricateMany(Rng &rng, size_t count) const;

    /**
     * Draw just the lifetime of a hypothetical device; cheaper than
     * fabricating a NemsSwitch when only the failure time matters.
     */
    double sampleLifetime(Rng &rng) const;

    /** The nominal spec. */
    const DeviceSpec &spec() const { return nominalSpec; }
    /** The lot-level variation. */
    const ProcessVariation &variation() const { return lotVariation; }

  private:
    DeviceSpec nominalSpec;
    ProcessVariation lotVariation;
    Weibull nominal;
};

} // namespace lemons::wearout

#endif // LEMONS_WEAROUT_POPULATION_H_
