#include "wearout/weibull.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "util/fastmath.h"
#include "util/require.h"

namespace lemons::wearout {

Weibull::Weibull(double alpha, double beta)
    : scale(alpha), shape(beta), invShape(1.0 / beta)
{
    requireArg(alpha > 0.0 && std::isfinite(alpha),
               "Weibull: alpha must be positive and finite");
    requireArg(beta > 0.0 && std::isfinite(beta),
               "Weibull: beta must be positive and finite");
}

double
Weibull::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x == 0.0)
        return shape > 1.0 ? 0.0
                           : (shape == 1.0
                                  ? 1.0 / scale
                                  : std::numeric_limits<double>::infinity());
    const double z = x / scale;
    return (shape / scale) * std::pow(z, shape - 1.0) *
           std::exp(-std::pow(z, shape));
}

double
Weibull::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return -std::expm1(logReliability(x));
}

double
Weibull::reliability(double x) const
{
    if (x <= 0.0)
        return 1.0;
    return std::exp(logReliability(x));
}

double
Weibull::logReliability(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return -std::pow(x / scale, shape);
}

double
Weibull::hazard(double x) const
{
    requireArg(x >= 0.0, "Weibull::hazard: x must be non-negative");
    if (x == 0.0)
        return pdf(0.0);
    const double z = x / scale;
    return (shape / scale) * std::pow(z, shape - 1.0);
}

double
Weibull::quantile(double p) const
{
    requireArg(p >= 0.0 && p < 1.0, "Weibull::quantile: p outside [0, 1)");
    if (p == 0.0)
        return 0.0;
    return scale * std::pow(-std::log1p(-p), 1.0 / shape);
}

double
Weibull::mttf() const
{
    return scale * std::tgamma(1.0 + 1.0 / shape);
}

double
Weibull::lifetimeVariance() const
{
    const double g1 = std::tgamma(1.0 + 1.0 / shape);
    const double g2 = std::tgamma(1.0 + 2.0 / shape);
    return scale * scale * (g2 - g1 * g1);
}

double
Weibull::sample(Rng &rng) const
{
    LEMONS_OBS_INCREMENT("wearout.weibull.samples");
    return sampleFromUniform(rng.nextDoubleOpenLow());
}

double
Weibull::sampleFromUniform(double u) const
{
    // Inverse-CDF sampling: T = alpha * (-ln U)^(1/beta), U in (0, 1].
    // The transform runs on lemons::fastmath so the sampled stream is
    // pinned to a fixed operation sequence (libm-version independent)
    // and the engine's batched kernels can evaluate the identical
    // sequence four lanes at a time; the closed-form analytics above
    // stay on libm.
    requireArg(u > 0.0 && u <= 1.0,
               "Weibull::sampleFromUniform: u outside (0, 1]");
    return scale * fastmath::detPow(-fastmath::detLog(u), invShape);
}

void
Weibull::sampleFromUniformBatch(const double *u, size_t count,
                                double *out) const
{
    // Stage the scalar-identical sequence: b = -detLog(u), then the
    // four-lane pow batch (bit-identical to detPow per element), then
    // the same final scale multiply sampleFromUniform performs.
    for (size_t i = 0; i < count; ++i) {
        requireArg(u[i] > 0.0 && u[i] <= 1.0,
                   "Weibull::sampleFromUniformBatch: u outside (0, 1]");
        out[i] = -fastmath::detLog(u[i]);
    }
    fastmath::detPowBatch(out, count, invShape, out);
    for (size_t i = 0; i < count; ++i)
        out[i] = scale * out[i];
}

std::vector<double>
Weibull::sampleMany(Rng &rng, size_t count) const
{
    // Bulk path: one counter bump for the whole batch instead of one
    // per draw (the draws themselves go through the same inverse CDF).
    LEMONS_OBS_COUNT("wearout.weibull.samples", count);
    std::vector<double> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(sampleFromUniform(rng.nextDoubleOpenLow()));
    return out;
}

Weibull
Weibull::fit(const std::vector<double> &lifetimes)
{
    requireArg(lifetimes.size() >= 2,
               "Weibull::fit: need at least two observations");
    for (double t : lifetimes)
        requireArg(t > 0.0, "Weibull::fit: lifetimes must be positive");

    const auto n = static_cast<double>(lifetimes.size());
    std::vector<double> logs;
    logs.reserve(lifetimes.size());
    for (double t : lifetimes)
        logs.push_back(std::log(t));
    const double meanLog =
        std::accumulate(logs.begin(), logs.end(), 0.0) / n;

    // MLE profile equation for the shape b:
    //   g(b) = sum(t^b ln t)/sum(t^b) - 1/b - meanLog = 0.
    // t^b overflows for large b, so work with the scaled weights
    // exp(b (ln t - maxLog)) which stay in [0, 1]; the ratio is
    // unchanged. Solve by bisection on b in [1e-3, 1e3].
    const double maxLog = *std::max_element(logs.begin(), logs.end());
    auto g = [&](double b) {
        double sumW = 0.0, sumWLog = 0.0;
        for (double lt : logs) {
            const double w = std::exp(b * (lt - maxLog));
            sumW += w;
            sumWLog += w * lt;
        }
        return sumWLog / sumW - 1.0 / b - meanLog;
    };

    double lo = 1e-3, hi = 1e3;
    // g(lo) < 0 and g(hi) > 0 for non-degenerate data; fall back to the
    // bounds if the data is (nearly) constant.
    if (g(lo) > 0.0)
        return Weibull(std::exp(meanLog), hi);
    double b = 1.0;
    for (int iter = 0; iter < 100; ++iter) {
        const double value = g(b);
        if (std::abs(value) < 1e-12)
            break;
        if (value > 0.0)
            hi = b;
        else
            lo = b;
        b = 0.5 * (lo + hi);
    }

    // alpha = (sum t^b / n)^(1/b), with the same overflow-safe scaling:
    // ln a = maxLog + ln(sum exp(b (ln t - maxLog)) / n) / b.
    double sumW = 0.0;
    for (double lt : logs)
        sumW += std::exp(b * (lt - maxLog));
    const double a = std::exp(maxLog + std::log(sumW / n) / b);
    return Weibull(a, b);
}

} // namespace lemons::wearout
