/**
 * @file
 * Harsh-environment behaviour of NEMS switches (paper Section 2.1).
 *
 * The security argument needs one asymmetry: an attacker who controls
 * the operating environment can only *shorten* a switch's life, never
 * extend it. The paper grounds this in SiC NEMS data — more than 21
 * billion cycles at 25 C but only ~2 billion at 500 C (failure by
 * melting instead of fracture), and no life extension at low
 * temperature because fracture remains.
 *
 * We model this as a lifetime derating factor f(T) in (0, 1]:
 *   f(T) = 1                      for T <= 25 C (reference),
 *   f(T) = exp(-(T - 25) / tau)   above, calibrated so f(500 C) ~ 2/21
 *                                 (the paper's SiC anchor),
 * with a floor so extreme temperatures simply destroy the device
 * immediately rather than underflowing. Each actuation at temperature
 * T consumes 1 / f(T) >= 1 cycles of the device's reference-
 * temperature lifetime budget.
 */

#ifndef LEMONS_WEAROUT_ENVIRONMENT_H_
#define LEMONS_WEAROUT_ENVIRONMENT_H_

#include <cstdint>

#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::wearout {

/**
 * Temperature-derating model for switch lifetimes.
 */
class EnvironmentModel
{
  public:
    /**
     * @param referenceTempC Temperature the lifetime spec refers to.
     * @param decayScaleC Exponential derating scale in Celsius; the
     *        default 201.9 C fits the paper's SiC anchor
     *        f(500) = 2/21.
     * @param minFactor Floor of the derating factor.
     */
    explicit EnvironmentModel(double referenceTempC = 25.0,
                              double decayScaleC = 201.9,
                              double minFactor = 1e-6);

    /**
     * Lifetime derating factor at @p temperatureC: always in
     * [minFactor, 1]; exactly 1 at or below the reference temperature.
     * The <= 1 bound is the security property — no environment extends
     * device life.
     */
    double lifetimeFactor(double temperatureC) const;

    /** Reference-temperature cycles consumed by one actuation at T. */
    double cyclesPerActuation(double temperatureC) const;

  private:
    double referenceTemp;
    double decayScale;
    double floorFactor;
};

/**
 * A NEMS switch operated in a caller-controlled environment. The
 * lifetime budget is drawn once (at the reference temperature); every
 * actuation consumes 1 / f(T) cycles of it.
 */
class HarshEnvironmentSwitch
{
  public:
    /**
     * @param lifetime Reference-temperature time-to-failure in cycles.
     * @param model Temperature derating model.
     */
    HarshEnvironmentSwitch(double lifetime, const EnvironmentModel &model);

    /** Draw the lifetime from @p wearout. */
    HarshEnvironmentSwitch(const Weibull &wearout, Rng &rng,
                           const EnvironmentModel &model);

    /**
     * Actuate once at @p temperatureC.
     *
     * @return true when the switch still closes.
     */
    bool actuateAt(double temperatureC);

    /** Whether the switch has permanently failed. */
    bool failed() const { return isFailed; }

    /** Reference-temperature cycles consumed so far. */
    double cyclesConsumed() const { return consumed; }

    /** The drawn reference-temperature lifetime. */
    double lifetime() const { return budget; }

  private:
    double budget;
    double consumed = 0.0;
    bool isFailed = false;
    EnvironmentModel environment;
};

} // namespace lemons::wearout

#endif // LEMONS_WEAROUT_ENVIRONMENT_H_
