/**
 * @file
 * Bathtub-curve lifetime model: infant mortality mixed with wearout.
 *
 * Section 7 ("Limitations") notes that the Weibull model, however
 * parameterized, needs experimental validation — real populations may
 * deviate. The classic deviation in the reliability literature is the
 * bathtub curve: a fraction of devices dies early (decreasing hazard,
 * shape < 1) while the rest follow the designed wearout distribution.
 * This model lets the sensitivity benches ask: how badly do designs
 * solved under the pure-Weibull assumption degrade when the fab
 * actually ships a bathtub population?
 */

#ifndef LEMONS_WEAROUT_MIXTURE_H_
#define LEMONS_WEAROUT_MIXTURE_H_

#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::wearout {

/**
 * Two-component lifetime mixture:
 *   R(x) = w * R_infant(x) + (1 - w) * R_main(x).
 */
class BathtubModel
{
  public:
    /**
     * @param infantFraction Weight w of the infant-mortality component
     *        in [0, 1].
     * @param infant Early-failure distribution (typically shape < 1).
     * @param main The designed wearout distribution.
     */
    BathtubModel(double infantFraction, const Weibull &infant,
                 const Weibull &main);

    /** Mixture weight of the infant component. */
    double infantFraction() const { return weight; }
    /** The infant-mortality component. */
    const Weibull &infant() const { return infantComponent; }
    /** The wearout component. */
    const Weibull &main() const { return mainComponent; }

    /** Mixture reliability P(T > x). */
    double reliability(double x) const;

    /** Mixture CDF. */
    double cdf(double x) const { return 1.0 - reliability(x); }

    /** Mixture density. */
    double pdf(double x) const;

    /** Mixture mean time to failure. */
    double mttf() const;

    /** Draw one lifetime. */
    double sample(Rng &rng) const;

    /**
     * A convenience instance: fraction @p w of devices fail with
     * Exponential-ish infant mortality at 10 % of the main scale; the
     * rest follow @p main.
     */
    static BathtubModel withInfantMortality(const Weibull &main, double w);

  private:
    double weight;
    Weibull infantComponent;
    Weibull mainComponent;
};

} // namespace lemons::wearout

#endif // LEMONS_WEAROUT_MIXTURE_H_
