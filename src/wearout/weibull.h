/**
 * @file
 * Two-parameter Weibull wearout model (paper Section 2.2).
 *
 * The time-to-failure x of a wearout device follows
 *   pdf  f(x) = (beta/alpha) (x/alpha)^(beta-1) exp(-(x/alpha)^beta)
 *   cdf  F(x) = 1 - exp(-(x/alpha)^beta)
 *   rel  R(x) = exp(-(x/alpha)^beta)
 * where alpha (scale) approximates the mean time to failure and beta
 * (shape) captures the lifetime variation across devices: large beta
 * means consistent wearout, small beta means high process variation.
 */

#ifndef LEMONS_WEAROUT_WEIBULL_H_
#define LEMONS_WEAROUT_WEIBULL_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace lemons::wearout {

/**
 * Immutable two-parameter Weibull distribution.
 *
 * All probability queries are pure; sampling draws from a caller-owned
 * Rng so that every simulation stays reproducible.
 */
class Weibull
{
  public:
    /**
     * @param alpha Scale parameter (> 0), in access cycles.
     * @param beta Shape parameter (> 0).
     */
    Weibull(double alpha, double beta);

    /** Scale parameter. */
    double alpha() const { return scale; }
    /** Shape parameter. */
    double beta() const { return shape; }

    /** Probability density at @p x (0 for x < 0). */
    double pdf(double x) const;

    /** Cumulative probability P(T <= x). */
    double cdf(double x) const;

    /** Reliability R(x) = P(T > x) (paper Eq. 3). */
    double reliability(double x) const;

    /** log R(x) = -(x/alpha)^beta; avoids underflow deep in the tail. */
    double logReliability(double x) const;

    /** Hazard rate f(x) / R(x). */
    double hazard(double x) const;

    /**
     * Inverse CDF: the x with F(x) = @p p. @pre 0 <= p < 1.
     */
    double quantile(double p) const;

    /** Mean time to failure: alpha * Gamma(1 + 1/beta). */
    double mttf() const;

    /** Lifetime variance: alpha^2 [Gamma(1+2/b) - Gamma(1+1/b)^2]. */
    double lifetimeVariance() const;

    /** Draw one time-to-failure sample. */
    double sample(Rng &rng) const;

    /**
     * Inverse-CDF transform of a caller-supplied uniform @p u in
     * (0, 1]: sample(rng) == sampleFromUniform(rng.nextDoubleOpenLow()).
     * Lets fault injection share one uniform across candidate
     * distributions (common-random-numbers coupling). Evaluated on the
     * fixed-operation-sequence lemons::fastmath transforms, so sampled
     * streams are bit-stable across libm versions and identical between
     * the scalar and AVX2 kernel paths.
     */
    double sampleFromUniform(double u) const;

    /**
     * Batched inverse CDF: out[i] = sampleFromUniform(u[i]) for i in
     * [0, count), bit-identical to the scalar calls at any SIMD
     * dispatch level (the pow batch mirrors the scalar operation
     * sequence lane for lane). @p out may alias @p u. This is the
     * vectorized transform stage of the engine's trial kernels.
     */
    void sampleFromUniformBatch(const double *u, size_t count,
                                double *out) const;

    /** Draw @p count iid samples. */
    std::vector<double> sampleMany(Rng &rng, size_t count) const;

    /**
     * Fit a Weibull to lifetime observations by maximum likelihood
     * (Newton iteration on the shape profile equation). Intended for
     * validating that simulated device populations recover their
     * generating parameters.
     *
     * @param lifetimes Strictly positive observations (>= 2 of them).
     * @return Fitted distribution.
     */
    static Weibull fit(const std::vector<double> &lifetimes);

  private:
    double scale;
    double shape;
    /** 1 / shape, divided once at construction (the inverse-CDF
     *  exponent; keeps the division off the sampling hot path). */
    double invShape;
};

} // namespace lemons::wearout

#endif // LEMONS_WEAROUT_WEIBULL_H_
