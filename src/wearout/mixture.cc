#include "wearout/mixture.h"

#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::wearout {

BathtubModel::BathtubModel(double infantFraction, const Weibull &infant,
                           const Weibull &main)
    : weight(infantFraction), infantComponent(infant), mainComponent(main)
{
    requireArg(infantFraction >= 0.0 && infantFraction <= 1.0,
               "BathtubModel: infant fraction outside [0, 1]");
}

double
BathtubModel::reliability(double x) const
{
    return weight * infantComponent.reliability(x) +
           (1.0 - weight) * mainComponent.reliability(x);
}

double
BathtubModel::pdf(double x) const
{
    return weight * infantComponent.pdf(x) +
           (1.0 - weight) * mainComponent.pdf(x);
}

double
BathtubModel::mttf() const
{
    return weight * infantComponent.mttf() +
           (1.0 - weight) * mainComponent.mttf();
}

double
BathtubModel::sample(Rng &rng) const
{
    LEMONS_OBS_INCREMENT("wearout.mixture.samples");
    const bool infantDraw = rng.nextBernoulli(weight);
    return infantDraw ? infantComponent.sample(rng)
                      : mainComponent.sample(rng);
}

BathtubModel
BathtubModel::withInfantMortality(const Weibull &main, double w)
{
    // Shape 0.8 (decreasing hazard), scale 10% of the main lifetime:
    // the canonical early-failure leg of the bathtub.
    const Weibull infant(0.1 * main.alpha(), 0.8);
    return BathtubModel(w, infant, main);
}

} // namespace lemons::wearout
