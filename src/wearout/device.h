/**
 * @file
 * Simulated NEMS contact switch (paper Section 2.1).
 *
 * This is the hardware-substitution layer: we have no fabricated NEMS
 * switches, so a switch is modelled as a device with a pre-drawn
 * time-to-failure (in actuation cycles) from the Weibull wearout model.
 * The i-th actuation succeeds iff i <= lifetime; afterwards the switch
 * is permanently open (failed), which is exactly the failure semantics
 * the paper's analytic model assumes.
 */

#ifndef LEMONS_WEAROUT_DEVICE_H_
#define LEMONS_WEAROUT_DEVICE_H_

#include <cstdint>

#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::wearout {

/** Nominal device parameters (alpha, beta) used across the library. */
struct DeviceSpec
{
    double alpha; ///< Weibull scale in cycles (~ mean lifetime).
    double beta;  ///< Weibull shape (lifetime consistency).
};

/** MEMS fatigue fits from Slack et al. cited in the paper (Sec. 2.2). */
inline constexpr DeviceSpec specGeometricVariation{2.6e6, 12.94};
inline constexpr DeviceSpec specElasticityVariation{2.2e6, 7.2};
inline constexpr DeviceSpec specResistanceVariation{1.8e6, 8.58};

/**
 * One simulated NEMS contact switch.
 *
 * The switch's wearout is irreversible: once an actuation fails, all
 * subsequent actuations fail. This mirrors contact adhesion / fracture
 * failure modes, and means attacks that merely keep actuating the
 * switch can only destroy it faster (paper Section 7).
 */
class NemsSwitch
{
  public:
    /** Create a switch with an explicit time-to-failure in cycles. */
    explicit NemsSwitch(double lifetime);

    /** Create a switch whose lifetime is drawn from @p model. */
    NemsSwitch(const Weibull &model, Rng &rng);

    /**
     * Actuate the switch once.
     *
     * @return true when the actuation succeeded (switch still closes),
     *         false when the switch has worn out.
     */
    bool actuate();

    /** Actuations attempted so far (including failed ones). */
    uint64_t cyclesUsed() const { return cycles; }

    /** Whether the switch has permanently failed. */
    bool failed() const { return isFailed; }

    /**
     * The drawn time-to-failure. Exposed for analytics/tests; real
     * hardware would obviously not reveal this.
     */
    double lifetime() const { return timeToFailure; }

    /**
     * Whether the switch would still work at the @p cycle -th actuation
     * (1-based) if actuated that many times; pure query used by the
     * analytic cross-checks.
     */
    bool aliveAt(uint64_t cycle) const;

  private:
    double timeToFailure;
    uint64_t cycles = 0;
    bool isFailed = false;
};

} // namespace lemons::wearout

#endif // LEMONS_WEAROUT_DEVICE_H_
