#include "wearout/population.h"

#include <cmath>

#include "util/require.h"

namespace lemons::wearout {

DeviceFactory::DeviceFactory(const DeviceSpec &spec,
                             const ProcessVariation &variation)
    : nominalSpec(spec), lotVariation(variation),
      nominal(spec.alpha, spec.beta)
{
    requireArg(spec.alpha > 0.0, "DeviceFactory: alpha must be positive");
    requireArg(spec.beta > 0.0, "DeviceFactory: beta must be positive");
    requireArg(variation.alphaSigma >= 0.0 && variation.betaSigma >= 0.0,
               "DeviceFactory: variation sigmas must be >= 0");
}

DeviceSpec
DeviceFactory::sampleDeviceSpec(Rng &rng) const
{
    DeviceSpec spec = nominalSpec;
    if (lotVariation.alphaSigma > 0.0)
        spec.alpha *= std::exp(lotVariation.alphaSigma * rng.nextGaussian());
    if (lotVariation.betaSigma > 0.0)
        spec.beta *= std::exp(lotVariation.betaSigma * rng.nextGaussian());
    return spec;
}

double
DeviceFactory::sampleLifetime(Rng &rng) const
{
    const DeviceSpec spec = sampleDeviceSpec(rng);
    return Weibull(spec.alpha, spec.beta).sample(rng);
}

NemsSwitch
DeviceFactory::fabricate(Rng &rng) const
{
    return NemsSwitch(sampleLifetime(rng));
}

std::vector<NemsSwitch>
DeviceFactory::fabricateMany(Rng &rng, size_t count) const
{
    std::vector<NemsSwitch> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(fabricate(rng));
    return out;
}

} // namespace lemons::wearout
