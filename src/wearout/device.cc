#include "wearout/device.h"

#include "util/require.h"

namespace lemons::wearout {

NemsSwitch::NemsSwitch(double lifetime) : timeToFailure(lifetime)
{
    requireArg(lifetime >= 0.0, "NemsSwitch: lifetime must be >= 0");
}

NemsSwitch::NemsSwitch(const Weibull &model, Rng &rng)
    : timeToFailure(model.sample(rng))
{
}

bool
NemsSwitch::actuate()
{
    ++cycles;
    if (isFailed)
        return false;
    if (static_cast<double>(cycles) > timeToFailure) {
        isFailed = true;
        return false;
    }
    return true;
}

bool
NemsSwitch::aliveAt(uint64_t cycle) const
{
    return static_cast<double>(cycle) <= timeToFailure;
}

} // namespace lemons::wearout
