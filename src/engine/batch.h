/**
 * @file
 * Structure-of-arrays trial kernels for whole device banks.
 *
 * The generic simulation path draws n lifetimes through a per-device
 * virtual/std::function hop, materializes them in a freshly allocated
 * vector, and order-selects with one pow/log pair per device. These
 * kernels exploit the inverse-CDF structure of the iid-Weibull case:
 * the transform T(u) = alpha * (-ln u)^(1/beta) is monotone
 * non-increasing in u, so the k-th largest of n lifetimes is T applied
 * to the k-th smallest of the n uniforms. The kernel therefore
 * order-selects the raw uniforms first and pays for exactly ONE
 * pow/log transform per structure instead of n — bit-identical to the
 * legacy per-device path (monotone maps preserve order statistics, and
 * the selected uniform goes through the very same sampleFromUniform),
 * while consuming the identical RNG stream.
 *
 * On counter-based trial streams (Rng::trialStream) the uniforms are
 * bulk-generated through the dispatched Philox batch and the k == 1 /
 * k == n selections reduce with AVX2 min/max — both bit-identical to
 * the scalar path, so SIMD width never changes results (enforced by
 * the determinism suites).
 */

#ifndef LEMONS_ENGINE_BATCH_H_
#define LEMONS_ENGINE_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "util/rng.h"
#include "wearout/weibull.h"

namespace lemons::engine {

/**
 * Whole accesses a lifetime supports: floor(L), with huge lifetimes
 * clamped representably. Identical semantics to the arch simulation
 * layer (which now delegates here).
 */
uint64_t floorToAccesses(double lifetime);

/**
 * Survived accesses of one k-out-of-n parallel bank of iid
 * Weibull(@p model) devices: floor of the k-th largest lifetime.
 * Consumes exactly n uniforms from @p rng, in the same order as n
 * individual Weibull::sample calls, and returns a bit-identical
 * result — but with one transform instead of n.
 */
uint64_t sampleParallelBankSurvival(const wearout::Weibull &model, size_t n,
                                    size_t k, Rng &rng);

/**
 * Survived accesses of one n-device series bank: floor of the minimum
 * lifetime, i.e. the transform of the maximum uniform. Same stream
 * consumption and bit-identity guarantee as the parallel kernel.
 */
uint64_t sampleSeriesBankSurvival(const wearout::Weibull &model, size_t n,
                                  Rng &rng);

/**
 * Batched form: fill @p out[0..trials) with independent parallel-bank
 * survivals, drawing all randomness from @p rng in trial order. The
 * per-trial draws match `trials` sequential sampleParallelBankSurvival
 * calls exactly.
 */
void sampleParallelBankSurvivalMany(const wearout::Weibull &model, size_t n,
                                    size_t k, Rng &rng, uint64_t *out,
                                    size_t trials);

} // namespace lemons::engine

#endif // LEMONS_ENGINE_BATCH_H_
