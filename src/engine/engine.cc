#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "util/math.h"
#include "util/mutex.h"
#include "util/require.h"
#include "util/thread_annotations.h"

namespace lemons::engine {

namespace {

/**
 * Lock-protected "lowest-indexed failure wins" cell shared by the
 * chunk executors in rethrow mode. Keeping only the minimum under the
 * lock makes the rethrown exception deterministic at any thread count.
 */
class FirstErrorCell
{
  public:
    explicit FirstErrorCell(uint64_t sentinel) : trial(sentinel) {}

    /** Record trial @p i's exception if it is the earliest so far. */
    void record(uint64_t i, std::exception_ptr e) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        if (i < trial) {
            trial = i;
            error = std::move(e);
        }
    }

    /** The winning exception, or null when no trial failed. */
    std::exception_ptr take() const LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        return error;
    }

  private:
    mutable Mutex mu;
    uint64_t trial LEMONS_GUARDED_BY(mu);
    std::exception_ptr error LEMONS_GUARDED_BY(mu);
};

/**
 * Shared failure/quarantine log for capture mode. Executors append
 * under the lock; the driver sorts by trial index after the run so the
 * report is deterministic regardless of interleaving.
 */
class ReportCollector
{
  public:
    /** Record that trial @p i threw with message @p what. */
    void recordFailure(uint64_t i, std::string what) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        failures.emplace_back(i, std::move(what));
    }

    /** Record that trial @p i returned a non-finite sample. */
    void recordNonFinite(uint64_t i) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        nonFinite.push_back(i);
    }

    /** Move the sorted logs into @p report (call after the run). */
    void drainInto(TrialReport &report) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        std::sort(failures.begin(), failures.end());
        std::sort(nonFinite.begin(), nonFinite.end());
        report.failedTrials.reserve(failures.size());
        for (const auto &[trial, message] : failures)
            report.failedTrials.push_back(trial);
        if (!failures.empty())
            report.firstError = failures.front().second;
        report.nonFiniteTrials = std::move(nonFinite);
    }

    /** Sorted copies of both logs into @p checkpoint (wave boundary:
     *  no executors are running, but take the lock anyway). */
    void snapshotInto(EngineCheckpoint &checkpoint) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        checkpoint.failures = failures;
        checkpoint.nonFiniteTrials = nonFinite;
        std::sort(checkpoint.failures.begin(), checkpoint.failures.end());
        std::sort(checkpoint.nonFiniteTrials.begin(),
                  checkpoint.nonFiniteTrials.end());
    }

    /** Seed both logs from a checkpoint before a resumed run. */
    void restoreFrom(const EngineCheckpoint &checkpoint)
        LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        failures = checkpoint.failures;
        nonFinite = checkpoint.nonFiniteTrials;
    }

  private:
    Mutex mu;
    std::vector<std::pair<uint64_t, std::string>>
        failures LEMONS_GUARDED_BY(mu);
    std::vector<uint64_t> nonFinite LEMONS_GUARDED_BY(mu);
};

/** Lower @p cell to @p chunk if it is smaller (atomic fetch-min). */
void
lowerToChunk(std::atomic<uint64_t> &cell, uint64_t chunk)
{
    uint64_t seen = cell.load(std::memory_order_relaxed);
    while (chunk < seen &&
           !cell.compare_exchange_weak(seen, chunk,
                                       std::memory_order_acq_rel)) {
    }
}

unsigned
resolveThreads(unsigned requested, uint64_t chunkCount)
{
    if (requested == 0)
        requested = std::max(1u, std::thread::hardware_concurrency());
    // More executors than chunks would only idle.
    return static_cast<unsigned>(
        std::min<uint64_t>(requested, chunkCount));
}

} // namespace

TrialReport
runTrials(uint64_t seed, const McRunOptions &options,
          const TrialMetric &metric)
{
    requireArg(options.trials > 0,
               "engine::runTrials: need at least one trial");
    LEMONS_OBS_SCOPED_TIMER("sim.mc.run");

    const uint64_t trials = options.trials;
    const uint64_t chunkSize =
        options.chunkSize != 0 ? options.chunkSize : kDefaultChunkSize;
    const uint64_t chunkCount = ceilDiv(trials, chunkSize);
    const unsigned threads = resolveThreads(options.threads, chunkCount);
    const bool rethrow = options.faults == FaultPolicy::Rethrow;
    const double nan = std::numeric_limits<double>::quiet_NaN();

    if (options.resumeFrom != nullptr) {
        const EngineCheckpoint &resume = *options.resumeFrom;
        requireArg(!options.keepSamples,
                   "engine::runTrials: resuming requires keepSamples == "
                   "false (streaming statistics are the resumable "
                   "representation)");
        requireArg(resume.seed == seed &&
                       resume.requestedTrials == trials &&
                       resume.chunkSize == chunkSize,
                   "engine::runTrials: checkpoint does not belong to "
                   "this run (seed/trials/chunkSize mismatch)");
        requireArg(resume.executedChunks <= chunkCount,
                   "engine::runTrials: checkpoint cursor beyond the "
                   "chunk count");
    }

    TrialReport report;
    report.requestedTrials = trials;
    if (options.keepSamples)
        report.samples.assign(trials, nan);

    // Per-chunk partial statistics, merged in chunk order after each
    // wave: the merge sequence (hence the floating-point rounding) is
    // a function of the chunk layout alone, never the thread count.
    std::vector<RunningStats> chunkStats(chunkCount);
    ReportCollector collector;
    FirstErrorCell firstError(trials);
    std::atomic<uint64_t> firstFailingChunk{chunkCount};

    const auto runChunk = [&](uint64_t c) {
        // In rethrow mode chunks strictly after the earliest failing
        // chunk are dead work — their results get discarded when the
        // failure is rethrown — so skip them. Chunks at or before it
        // still run, which keeps the winning (lowest-indexed) failure
        // deterministic at any thread count.
        if (rethrow &&
            c > firstFailingChunk.load(std::memory_order_acquire))
            return;
        const uint64_t begin = c * chunkSize;
        const uint64_t end = std::min(trials, begin + chunkSize);
        RunningStats &local = chunkStats[c];
        for (uint64_t i = begin; i < end; ++i) {
            // The definitional trial stream: Philox keyed on
            // (seed, i, draw), so trial i's randomness is a pure
            // function of (seed, i) — independent of threads, chunks,
            // SIMD dispatch and resume cursors.
            Rng rng = Rng::trialStream(seed, i);
            try {
                const double sample = metric(rng, i);
                // Any non-finite RETURN is quarantined; a throwing
                // trial instead keeps its NaN placeholder and is
                // recorded as failed, never as quarantined.
                if (!std::isfinite(sample))
                    collector.recordNonFinite(i);
                if (options.keepSamples)
                    report.samples[i] = sample;
                local.add(sample); // RunningStats skips non-finite
            } catch (const std::exception &e) {
                if (rethrow) {
                    firstError.record(i, std::current_exception());
                    lowerToChunk(firstFailingChunk, c);
                    return; // abandon the chunk, like the legacy worker
                }
                collector.recordFailure(i, e.what());
            } catch (...) {
                if (rethrow) {
                    firstError.record(i, std::current_exception());
                    lowerToChunk(firstFailingChunk, c);
                    return;
                }
                collector.recordFailure(i, "unknown exception");
            }
        }
    };

    ThreadPool &pool = ThreadPool::global();
    RunningStats streaming;
    uint64_t executedChunks = 0;
    bool stoppedEarly = false;
    InterruptReason interrupt = InterruptReason::None;

    // Wave-boundary periods. Early-stop checks fire at multiples of
    // the EarlyStop period, checkpoints at multiples of the checkpoint
    // period; when both are present the wave length is their gcd so
    // every boundary either feature needs is an actual boundary and
    // neither shifts the other's deterministic trigger points.
    const uint64_t earlyStopEvery =
        options.earlyStop
            ? std::max<uint64_t>(1, options.earlyStop->checkEveryChunks)
            : 0;
    const uint64_t checkpointEvery =
        options.checkpoint ? (options.checkpointEveryChunks != 0
                                  ? options.checkpointEveryChunks
                                  : kDefaultCheckpointChunks)
                           : 0;
    uint64_t wave = earlyStopEvery;
    if (checkpointEvery != 0)
        wave = wave != 0 ? std::gcd(wave, checkpointEvery)
                         : checkpointEvery;
    if (wave == 0 &&
        (options.cancel != nullptr || options.deadline.has_value()))
        wave = kDefaultCheckpointChunks; // interrupt-poll granularity
    if (wave == 0)
        wave = chunkCount; // one uninterrupted wave

    if (options.resumeFrom != nullptr) {
        executedChunks = options.resumeFrom->executedChunks;
        streaming = options.resumeFrom->streaming;
        collector.restoreFrom(*options.resumeFrom);
        LEMONS_OBS_INCREMENT("sim.mc.resumes");
    }

    const auto takeCheckpoint = [&] {
        EngineCheckpoint snapshot;
        snapshot.seed = seed;
        snapshot.requestedTrials = trials;
        snapshot.chunkSize = chunkSize;
        snapshot.executedChunks = executedChunks;
        snapshot.streaming = streaming;
        collector.snapshotInto(snapshot);
        LEMONS_OBS_INCREMENT("sim.mc.checkpoints");
        options.checkpoint(snapshot);
    };

    while (executedChunks < chunkCount) {
        // Interrupt checks happen before dispatching a wave: a run
        // whose token is already cancelled (or whose deadline already
        // passed) does no further trial work.
        if (options.cancel != nullptr && options.cancel->cancelled()) {
            interrupt = InterruptReason::Cancelled;
            LEMONS_OBS_INCREMENT("sim.mc.cancelled");
        } else if (options.deadline.has_value() &&
                   // LEMONS-TIDY-ALLOW(T002): wall-clock deadline gate;
                   // never feeds trial state
                   std::chrono::steady_clock::now() >=
                       *options.deadline) {
            interrupt = InterruptReason::DeadlineExceeded;
            LEMONS_OBS_INCREMENT("sim.mc.deadline_exceeded");
        }
        if (interrupt != InterruptReason::None) {
            // Persist the freshest resumable state so the owner loses
            // at most the not-yet-run wave, then stop cleanly.
            if (options.checkpoint)
                takeCheckpoint();
            break;
        }

        const uint64_t waveBase = executedChunks;
        const uint64_t waveEnd =
            std::min(chunkCount, waveBase + wave);
        pool.parallelFor(waveEnd - waveBase, threads,
                         [&runChunk, waveBase](uint64_t offset) {
                             runChunk(waveBase + offset);
                         });
        for (uint64_t c = waveBase; c < waveEnd; ++c)
            streaming.merge(chunkStats[c]);
        executedChunks = waveEnd;
        LEMONS_OBS_COUNT("sim.mc.chunks", waveEnd - waveBase);

        if (rethrow && firstError.take())
            break; // rethrown below, after bookkeeping
        if (checkpointEvery != 0 &&
            executedChunks % checkpointEvery == 0)
            takeCheckpoint();
        if (options.earlyStop && executedChunks < chunkCount &&
            executedChunks % earlyStopEvery == 0 &&
            streaming.count() >= options.earlyStop->minTrials &&
            streaming.count() >= 2) {
            const double halfWidth = 1.96 * streaming.meanStdError();
            if (halfWidth <= options.earlyStop->relHalfWidth *
                                 std::abs(streaming.mean())) {
                stoppedEarly = true;
                LEMONS_OBS_INCREMENT("sim.mc.early_stops");
                break;
            }
        }
    }

    const uint64_t trialsRun =
        std::min(trials, executedChunks * chunkSize);
    report.trials = trialsRun;
    report.stoppedEarly = stoppedEarly;
    report.interrupt = interrupt;
    LEMONS_OBS_COUNT("sim.mc.trials", trialsRun);

    if (std::exception_ptr error = firstError.take())
        std::rethrow_exception(error);

    if (options.keepSamples) {
        if (trialsRun < trials)
            report.samples.resize(trialsRun);
        // Trial-order accumulation over the kept samples: bit-identical
        // to the legacy serial fold (RunningStats quarantines the NaN
        // placeholders of failed trials itself).
        for (double sample : report.samples)
            report.stats.add(sample);
    } else {
        report.stats = streaming;
    }

    collector.drainInto(report);
    LEMONS_OBS_COUNT("sim.mc.failed_trials", report.failedTrials.size());
    LEMONS_OBS_COUNT("sim.mc.quarantined_trials",
                     report.nonFiniteTrials.size());
    return report;
}

} // namespace lemons::engine
