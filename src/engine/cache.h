/**
 * @file
 * Memoization caches for the reliability math on the solver hot path.
 *
 * The design solver evaluates Weibull survival and binomial-tail
 * (regularized incomplete beta, the incomplete-gamma family) terms for
 * the same (alpha, beta, t) and (n, k, p) tuples thousands of times
 * while scanning per-copy bounds and binary-searching widths. Each
 * function here is a drop-in replacement for the direct evaluation:
 * on a miss it computes the value with exactly the same expressions as
 * wearout::Weibull / arch::ParallelStructure / util math (so results
 * are bit-identical, not merely close), stores it in a thread-local
 * table keyed by the exact operand bits, and serves every repeat from
 * the table.
 *
 * Caches are thread-local: no locks, no false sharing, and perfect
 * determinism — a cached value can only ever be the value the same
 * thread would recompute. Hit/miss totals are published through
 * lemons::obs as `sim.mc.cache.<name>.hits` / `.misses`.
 */

#ifndef LEMONS_ENGINE_CACHE_H_
#define LEMONS_ENGINE_CACHE_H_

#include <cstdint>

namespace lemons::engine {

/**
 * Memoized Weibull log-survival log R(x) = -(x/alpha)^beta (0 for
 * x <= 0), bit-identical to wearout::Weibull::logReliability.
 */
double cachedWeibullLogSurvival(double alpha, double beta, double x);

/**
 * Memoized Weibull survival R(x), bit-identical to
 * wearout::Weibull::reliability.
 */
double cachedWeibullSurvival(double alpha, double beta, double x);

/**
 * Memoized Weibull inverse CDF, bit-identical to
 * wearout::Weibull::quantile. @pre 0 <= p < 1.
 */
double cachedWeibullQuantile(double alpha, double beta, double p);

/**
 * Memoized log P(X >= k), X ~ Binomial(n, p) — the regularized
 * incomplete beta evaluation behind k-out-of-n reliability.
 * Bit-identical to lemons::logBinomialTailAtLeast.
 */
double cachedLogBinomialTailAtLeast(uint64_t n, uint64_t k, double p);

/**
 * Memoized k-out-of-n structure log-reliability at access x for iid
 * Weibull(alpha, beta) devices. Replicates
 * arch::ParallelStructure::logReliabilityAt expression-for-expression
 * (including the k == 1 closed form), so solver results are unchanged.
 */
double cachedParallelLogReliability(double alpha, double beta, uint64_t n,
                                    uint64_t k, double x);

/** exp of cachedParallelLogReliability; bit-identical to
 *  arch::ParallelStructure::reliabilityAt. */
double cachedParallelReliability(double alpha, double beta, uint64_t n,
                                 uint64_t k, double x);

/**
 * Memoized structure log-failure-probability at access x; replicates
 * arch::ParallelStructure::logFailureAt.
 */
double cachedParallelLogFailure(double alpha, double beta, uint64_t n,
                                uint64_t k, double x);

/**
 * Drop this thread's memo tables (they are also size-capped, so this
 * is only needed by tests that count hits and misses exactly).
 */
void clearThreadLocalCaches();

} // namespace lemons::engine

#endif // LEMONS_ENGINE_CACHE_H_
