#include "engine/cache.h"

#include <bit>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/math.h"
#include "util/require.h"
#include "wearout/weibull.h"

namespace lemons::engine {

namespace {

/**
 * Entry cap per table. The solver working set is a few thousand keys;
 * the cap only bounds degenerate workloads (e.g. continuously varying
 * x) so a long-lived thread cannot grow without limit. Clearing is
 * semantically invisible — a refilled entry recomputes the identical
 * value.
 */
constexpr size_t kMaxEntries = size_t{1} << 17;

/** SplitMix64 finalizer: cheap, well-mixed 64-bit hash step. */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Keyed by the exact operand bit patterns: no tolerance, no rounding. */
struct TripleKey
{
    uint64_t a, b, x;
    bool operator==(const TripleKey &) const = default;
};

struct TripleHash
{
    size_t operator()(const TripleKey &key) const
    {
        return static_cast<size_t>(
            mix64(key.a ^ mix64(key.b ^ mix64(key.x))));
    }
};

using TripleMap = std::unordered_map<TripleKey, double, TripleHash>;

TripleKey
tripleKey(double a, double b, double x)
{
    return {std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b),
            std::bit_cast<uint64_t>(x)};
}

struct TailKey
{
    uint64_t n, k, p;
    bool operator==(const TailKey &) const = default;
};

struct TailHash
{
    size_t operator()(const TailKey &key) const
    {
        return static_cast<size_t>(
            mix64(key.n ^ mix64(key.k ^ mix64(key.p))));
    }
};

using TailMap = std::unordered_map<TailKey, double, TailHash>;

thread_local TripleMap logSurvivalCache;
thread_local TripleMap quantileCache;
thread_local TailMap tailCache;

} // namespace

double
cachedWeibullLogSurvival(double alpha, double beta, double x)
{
    const TripleKey key = tripleKey(alpha, beta, x);
    const auto it = logSurvivalCache.find(key);
    if (it != logSurvivalCache.end()) {
        LEMONS_OBS_INCREMENT("sim.mc.cache.weibull_log_survival.hits");
        return it->second;
    }
    LEMONS_OBS_INCREMENT("sim.mc.cache.weibull_log_survival.misses");
    if (logSurvivalCache.size() >= kMaxEntries)
        logSurvivalCache.clear();
    // Delegating to the real Weibull keeps this bit-identical forever
    // (and revalidates alpha/beta once per distinct key).
    const double value =
        wearout::Weibull(alpha, beta).logReliability(x);
    logSurvivalCache.emplace(key, value);
    return value;
}

double
cachedWeibullSurvival(double alpha, double beta, double x)
{
    // Same branch structure as Weibull::reliability: the exp of the
    // cached log term is the identical expression.
    if (x <= 0.0) {
        static_cast<void>(
            wearout::Weibull(alpha, beta)); // preserve validation
        return 1.0;
    }
    return std::exp(cachedWeibullLogSurvival(alpha, beta, x));
}

double
cachedWeibullQuantile(double alpha, double beta, double p)
{
    const TripleKey key = tripleKey(alpha, beta, p);
    const auto it = quantileCache.find(key);
    if (it != quantileCache.end()) {
        LEMONS_OBS_INCREMENT("sim.mc.cache.weibull_quantile.hits");
        return it->second;
    }
    LEMONS_OBS_INCREMENT("sim.mc.cache.weibull_quantile.misses");
    if (quantileCache.size() >= kMaxEntries)
        quantileCache.clear();
    const double value = wearout::Weibull(alpha, beta).quantile(p);
    quantileCache.emplace(key, value);
    return value;
}

double
cachedLogBinomialTailAtLeast(uint64_t n, uint64_t k, double p)
{
    const TailKey key{n, k, std::bit_cast<uint64_t>(p)};
    const auto it = tailCache.find(key);
    if (it != tailCache.end()) {
        LEMONS_OBS_INCREMENT("sim.mc.cache.binomial_tail.hits");
        return it->second;
    }
    LEMONS_OBS_INCREMENT("sim.mc.cache.binomial_tail.misses");
    if (tailCache.size() >= kMaxEntries)
        tailCache.clear();
    const double value = logBinomialTailAtLeast(n, k, p);
    tailCache.emplace(key, value);
    return value;
}

double
cachedParallelLogReliability(double alpha, double beta, uint64_t n,
                             uint64_t k, double x)
{
    requireArg(n >= 1 && k >= 1 && k <= n,
               "cachedParallelLogReliability: need 1 <= k <= n");
    // Mirrors arch::ParallelStructure::logReliabilityAt exactly.
    const double logR = cachedWeibullLogSurvival(alpha, beta, x);
    if (k == 1) {
        const double logAllDead =
            static_cast<double>(n) * log1mExp(logR);
        return log1mExp(std::min(0.0, logAllDead));
    }
    return cachedLogBinomialTailAtLeast(n, k, std::exp(logR));
}

double
cachedParallelReliability(double alpha, double beta, uint64_t n, uint64_t k,
                          double x)
{
    return std::exp(cachedParallelLogReliability(alpha, beta, n, k, x));
}

double
cachedParallelLogFailure(double alpha, double beta, uint64_t n, uint64_t k,
                         double x)
{
    requireArg(n >= 1 && k >= 1 && k <= n,
               "cachedParallelLogFailure: need 1 <= k <= n");
    // Mirrors arch::ParallelStructure::logFailureAt exactly.
    const double logR = cachedWeibullLogSurvival(alpha, beta, x);
    if (k == 1)
        return static_cast<double>(n) * log1mExp(logR);
    const double deadProb = -std::expm1(logR);
    return cachedLogBinomialTailAtLeast(n, n - k + 1, deadProb);
}

void
clearThreadLocalCaches()
{
    logSurvivalCache.clear();
    quantileCache.clear();
    tailCache.clear();
}

} // namespace lemons::engine
