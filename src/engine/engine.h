/**
 * @file
 * Batched, cache-aware Monte Carlo execution engine.
 *
 * One entry point — runTrials — is the execution substrate behind
 * every simulation in the library (sim::MonteCarlo::run delegates
 * here). Trials are processed in contiguous chunks whose boundaries
 * depend only on the chunk size, never on the thread count, and trial
 * i always uses the counter-based stream Rng::trialStream(seed, i)
 * (Philox keyed on (seed, trial, draw)): per-trial results are
 * bit-identical at any parallelism and SIMD dispatch level, and the
 * streaming statistics are merged in chunk order so even the
 * reassociation-sensitive moments are reproducible at any thread
 * count.
 *
 * Execution runs on the persistent ThreadPool (no thread creation
 * after warmup) and can stop early once the confidence interval of the
 * running mean is tight enough — early-stop decisions happen at fixed
 * wave boundaries (multiples of checkEveryChunks chunks), so the
 * stopped trial count is deterministic too.
 */

#ifndef LEMONS_ENGINE_ENGINE_H_
#define LEMONS_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lemons::engine {

/** Chunk size used when McRunOptions::chunkSize is 0. */
constexpr uint64_t kDefaultChunkSize = 1024;

/** Checkpoint period used when McRunOptions::checkpointEveryChunks is
 *  0, and the interrupt-poll granularity when only cancellation or a
 *  deadline asks for wave boundaries. */
constexpr uint64_t kDefaultCheckpointChunks = 8;

/**
 * Optional CI-width early stopping: once at least minTrials clean
 * samples are in, the run stops at the next wave boundary where the
 * 95 % half-width of the mean is within relHalfWidth * |mean|.
 * Checks happen every checkEveryChunks chunks, so the stopping point
 * depends only on (seed, chunkSize, checkEveryChunks) — never on the
 * thread count.
 */
struct EarlyStop
{
    /** Target relative half-width (1.96 * SE <= this * |mean|). */
    double relHalfWidth = 0.01;
    /** Never stop before this many trials. */
    uint64_t minTrials = 1024;
    /** Wave length between checks, in chunks (>= 1). */
    uint64_t checkEveryChunks = 8;
};

/**
 * Cooperative cancellation flag shared between a run and its owner.
 * cancel() may be called from any thread (a signal-adjacent watchdog,
 * a server shutdown path); the engine observes it at wave boundaries,
 * finishes the in-flight wave, and returns a partial TrialReport
 * flagged InterruptReason::Cancelled. Cancellation never tears state:
 * every chunk either fully ran or never started, so a checkpoint taken
 * at the preceding boundary resumes bit-identically.
 */
class CancelToken
{
  public:
    /** Request cancellation (idempotent, thread-safe). */
    void cancel() { flag.store(true, std::memory_order_release); }

    /** Whether cancellation has been requested. */
    bool cancelled() const
    {
        return flag.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> flag{false};
};

/** Why a run returned before executing its requested trials. */
enum class InterruptReason {
    None,             ///< ran to completion (or stopped early by CI width)
    Cancelled,        ///< CancelToken fired
    DeadlineExceeded, ///< wall-clock deadline passed
};

/**
 * Wave-boundary snapshot of a run's resumable state. Everything a
 * bit-identical continuation needs is here: the RNG "position" is just
 * (seed, executedChunks) because trial i always draws from
 * Rng::trialStream(seed, i), and the streaming statistics carry the exact
 * chunk-ordered merge prefix. Consumed by lemons::fleet checkpoints
 * (and later by lemonsd request draining).
 */
struct EngineCheckpoint
{
    /** Seed the run was started with. */
    uint64_t seed = 0;
    /** Trials the run was asked for. */
    uint64_t requestedTrials = 0;
    /** Resolved chunk size (boundaries depend on it). */
    uint64_t chunkSize = 0;
    /** Chunks fully executed and merged, in chunk order. */
    uint64_t executedChunks = 0;
    /** Chunk-ordered streaming statistics over executed chunks. */
    RunningStats streaming;
    /** Capture-mode failure log so far: (trial, what()), ascending. */
    std::vector<std::pair<uint64_t, std::string>> failures;
    /** Trials that returned non-finite samples so far, ascending. */
    std::vector<uint64_t> nonFiniteTrials;
};

/**
 * Called at checkpoint boundaries with the resumable state. The hook
 * runs on the driving thread between waves (never concurrently with
 * trial execution), so it may do IO; keep it fast anyway — the run is
 * stalled while it executes.
 */
using CheckpointHook = std::function<void(const EngineCheckpoint &)>;

/** What to do with trials whose metric throws. */
enum class FaultPolicy {
    /** Record the trial in the report (NaN sample) and keep going. */
    Capture,
    /**
     * Finish in-flight chunks, then rethrow the exception of the
     * lowest-indexed failing trial on the caller — deterministic at
     * any thread count.
     */
    Rethrow,
};

/**
 * One options struct instead of an overload family: every knob of a
 * Monte Carlo run in a single place, with zero-means-default
 * semantics so call sites only spell what they change.
 */
struct McRunOptions
{
    /** Trial count; 0 = the caller's configured default. */
    uint64_t trials = 0;
    /** Executor count; 1 = inline on the caller, 0 = all hardware. */
    unsigned threads = 1;
    /** Trials per chunk; 0 = kDefaultChunkSize. Chunking changes only
     *  scheduling granularity and streaming-merge order — per-trial
     *  samples are bit-identical for any value. */
    uint64_t chunkSize = 0;
    /** Keep every sample (O(trials) memory, quantile-ready) or stream
     *  statistics only (constant memory). */
    bool keepSamples = true;
    /** Throwing-trial handling. */
    FaultPolicy faults = FaultPolicy::Capture;
    /** Optional CI-width early stopping. */
    std::optional<EarlyStop> earlyStop;

    /**
     * Cooperative cancellation. Checked at wave boundaries; when it
     * fires the run returns a partial report (interrupt ==
     * Cancelled). Not owned; must outlive the run. May be null.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Wall-clock deadline. Checked at wave boundaries; once passed the
     * run returns a partial report (interrupt == DeadlineExceeded).
     * Deadlines are a robustness device, not a determinism one — where
     * the run stops depends on machine speed, which is why resumable
     * checkpoints exist.
     */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /**
     * Invoked every checkpointEveryChunks executed chunks (and never
     * mid-wave) with the resumable state. Null disables checkpointing.
     */
    CheckpointHook checkpoint;

    /** Chunks between checkpoint-hook invocations; 0 = every 8. */
    uint64_t checkpointEveryChunks = 0;

    /**
     * Resume a previous run from its checkpoint instead of starting at
     * chunk 0. The checkpoint's seed/trials/chunkSize must match this
     * call's, and resuming requires keepSamples == false (streaming
     * statistics are the resumable representation). A resumed run is
     * bit-identical to the uninterrupted one at any thread count. Not
     * owned; must outlive the call. May be null.
     */
    const EngineCheckpoint *resumeFrom = nullptr;
};

/**
 * Outcome of a Monte Carlo run. One bad trial out of a million yields
 * a degraded-but-complete report instead of a crash: throwing trials
 * are recorded (index + first error message) and non-finite samples
 * are quarantined rather than poisoning the aggregate statistics.
 */
struct TrialReport
{
    /**
     * One sample per executed trial, in trial order (empty when the
     * run streamed with keepSamples = false). Failed (throwing) trials
     * hold NaN; quarantined trials hold the non-finite value the
     * metric actually returned.
     */
    std::vector<double> samples;

    /** Indices of trials whose metric threw, ascending. */
    std::vector<uint64_t> failedTrials;

    /** Indices of trials whose metric returned NaN/Inf, ascending. */
    std::vector<uint64_t> nonFiniteTrials;

    /**
     * what() of the exception from the lowest-indexed failed trial
     * (deterministic regardless of thread interleaving); empty when no
     * trial failed.
     */
    std::string firstError;

    /** Streaming statistics over clean (finite, non-throwing) samples. */
    RunningStats stats;

    /** Trials actually executed (== requestedTrials unless stopped). */
    uint64_t trials = 0;

    /** Trials the run was asked for. */
    uint64_t requestedTrials = 0;

    /** Whether CI-width early stopping ended the run. */
    bool stoppedEarly = false;

    /** Why the run returned before its requested trials, if it did. */
    InterruptReason interrupt = InterruptReason::None;

    /** Whether cancellation or a deadline cut the run short. */
    bool interrupted() const
    {
        return interrupt != InterruptReason::None;
    }

    /** Whether every executed trial produced a clean sample. */
    bool complete() const
    {
        return failedTrials.empty() && nonFiniteTrials.empty();
    }

    /** Executed trials that produced a clean sample. */
    uint64_t cleanTrials() const
    {
        return trials - failedTrials.size() - nonFiniteTrials.size();
    }
};

/** Per-trial metric: (trial's own Rng, trial index) -> sample. */
using TrialMetric = std::function<double(Rng &, uint64_t)>;

/**
 * Run @p metric for trials [0, options.trials) with trial i on the
 * counter-based stream Rng::trialStream(@p seed, i), under the
 * execution policy in @p options.
 * @pre options.trials > 0 (callers resolve their own defaults).
 */
TrialReport runTrials(uint64_t seed, const McRunOptions &options,
                      const TrialMetric &metric);

} // namespace lemons::engine

#endif // LEMONS_ENGINE_ENGINE_H_
