#include "engine/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lemons::engine {

namespace {

/**
 * Upper bound on pool size. Oversubscription tests ask for more
 * workers than cores on purpose, so the cap is generous; it only
 * guards against pathological thread counts leaking in from configs.
 */
constexpr unsigned kMaxWorkers = 64;

} // namespace

ThreadPool::ThreadPool()
{
    // Touch the metrics registry before any worker exists so it is
    // constructed first and therefore destroyed last: workers bump
    // counters until the pool destructor joins them at exit.
    static_cast<void>(obs::Registry::global());
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

unsigned
ThreadPool::workerCount() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return static_cast<unsigned>(workers.size());
}

void
ThreadPool::ensureWorkers(unsigned target)
{
    target = std::min(target, kMaxWorkers);
    const std::lock_guard<std::mutex> lock(mu);
    while (workers.size() < target) {
        workers.emplace_back([this] { workerLoop(); });
        LEMONS_OBS_INCREMENT("sim.mc.pool.threads_created");
    }
}

void
ThreadPool::runChunks(Job &job)
{
    // Copy the bound before the final completion signal: once the last
    // index completes, the owning parallelFor may return and destroy
    // the job, so nothing may touch it afterwards.
    const uint64_t total = job.count;
    uint64_t index = job.next.fetch_add(1, std::memory_order_relaxed);
    while (index < total) {
        (*job.body)(index);
        LEMONS_OBS_INCREMENT("sim.mc.pool.tasks");
        // Claim the next index before publishing this completion —
        // after the last completion the job must not be accessed.
        const uint64_t following =
            job.next.fetch_add(1, std::memory_order_relaxed);
        {
            const std::lock_guard<std::mutex> lock(job.mu);
            if (++job.completed == total)
                job.allDone.notify_all();
        }
        index = following;
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (stopping)
                return;
            // Take a reference, not ownership: several workers gang up
            // on the front job; the submitting thread retires it from
            // the queue once its index space is fully claimed.
            job = queue.front();
        }
        runChunks(*job);
    }
}

void
ThreadPool::parallelFor(uint64_t count, unsigned parallelism,
                        const std::function<void(uint64_t)> &body)
{
    if (count == 0)
        return;
    if (parallelism <= 1 || count == 1) {
        // Single-executor regions stay on the caller: same claim-free
        // loop the legacy serial paths ran, zero synchronization.
        LEMONS_OBS_INCREMENT("sim.mc.pool.inline_runs");
        for (uint64_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    LEMONS_OBS_INCREMENT("sim.mc.pool.jobs");
    const unsigned helpers = static_cast<unsigned>(
        std::min<uint64_t>(parallelism - 1, count - 1));
    ensureWorkers(helpers);

    const auto job = std::make_shared<Job>();
    job->count = count;
    job->body = &body;
    {
        const std::lock_guard<std::mutex> lock(mu);
        queue.push_back(job);
    }
    wake.notify_all();

    // The caller is always an executor, so progress never depends on
    // worker availability.
    runChunks(*job);

    // runChunks only returns once the index space is fully claimed, so
    // the job can be retired before waiting: late-waking workers then
    // never see it, and its shared_ptr keeps it alive for any worker
    // already holding a reference.
    {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = std::find(queue.begin(), queue.end(), job);
        if (it != queue.end())
            queue.erase(it);
    }

    std::unique_lock<std::mutex> lock(job->mu);
    job->allDone.wait(lock,
                      [&job] { return job->completed == job->count; });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

} // namespace lemons::engine
