#include "engine/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lemons::engine {

namespace {

/**
 * Upper bound on pool size. Oversubscription tests ask for more
 * workers than cores on purpose, so the cap is generous; it only
 * guards against pathological thread counts leaking in from configs.
 */
constexpr unsigned kMaxWorkers = 64;

} // namespace

ThreadPool::ThreadPool()
{
    // Touch the metrics registry before any worker exists so it is
    // constructed first and therefore destroyed last: workers bump
    // counters until the pool destructor joins them at exit.
    static_cast<void>(obs::Registry::global());
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

unsigned
ThreadPool::workerCount() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return static_cast<unsigned>(workers.size());
}

void
ThreadPool::ensureWorkers(unsigned target)
{
    target = std::min(target, kMaxWorkers);
    const std::lock_guard<std::mutex> lock(mu);
    while (workers.size() < target) {
        workers.emplace_back([this] { workerLoop(); });
        LEMONS_OBS_INCREMENT("sim.mc.pool.threads_created");
    }
}

void
ThreadPool::runChunks(Job &job)
{
    // Copy the bound before the final completion signal: once the last
    // index completes, the owning parallelFor may return and destroy
    // the job, so nothing may touch it afterwards.
    const uint64_t total = job.count;
    uint64_t index = job.next.fetch_add(1, std::memory_order_relaxed);
    while (index < total) {
        (*job.body)(index);
        LEMONS_OBS_INCREMENT("sim.mc.pool.tasks");
        // Claim the next index before publishing this completion —
        // after the last completion the job must not be accessed.
        const uint64_t following =
            job.next.fetch_add(1, std::memory_order_relaxed);
        {
            const std::lock_guard<std::mutex> lock(job.mu);
            if (++job.completed == total)
                job.allDone.notify_all();
        }
        index = following;
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            // Drain the queue even while stopping: submitted
            // (fire-and-forget) jobs have no caller waiting on them,
            // so dropping the queue would silently lose work.
            if (queue.empty()) {
                if (stopping)
                    return;
                continue;
            }
            // Take a reference, not ownership: several workers gang up
            // on the front job.
            job = queue.front();
        }
        runChunks(*job);
        // runChunks returns only once the index space is fully
        // claimed, so the job can be retired. parallelFor callers do
        // this themselves; for submitted jobs the workers must, or an
        // exhausted-but-queued job would busy-spin the pool. erase is
        // idempotent under the lock, so double retirement is fine.
        {
            const std::lock_guard<std::mutex> lock(mu);
            const auto it = std::find(queue.begin(), queue.end(), job);
            if (it != queue.end())
                queue.erase(it);
        }
    }
}

void
ThreadPool::submit(std::function<void()> task, unsigned parallelismHint)
{
    LEMONS_OBS_INCREMENT("sim.mc.pool.submitted");
    // At least one worker must exist or a fire-and-forget task would
    // sit queued until the next parallelFor happened to create one.
    ensureWorkers(std::max(1u, parallelismHint));
    const auto job = std::make_shared<Job>();
    job->count = 1;
    job->owned = [run = std::move(task)](uint64_t) { run(); };
    job->body = &job->owned;
    {
        const std::lock_guard<std::mutex> lock(mu);
        queue.push_back(job);
    }
    wake.notify_one();
}

void
ThreadPool::parallelFor(uint64_t count, unsigned parallelism,
                        const std::function<void(uint64_t)> &body)
{
    if (count == 0)
        return;
    if (parallelism <= 1 || count == 1) {
        // Single-executor regions stay on the caller: same claim-free
        // loop the legacy serial paths ran, zero synchronization.
        LEMONS_OBS_INCREMENT("sim.mc.pool.inline_runs");
        for (uint64_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    LEMONS_OBS_INCREMENT("sim.mc.pool.jobs");
    const unsigned helpers = static_cast<unsigned>(
        std::min<uint64_t>(parallelism - 1, count - 1));
    ensureWorkers(helpers);

    const auto job = std::make_shared<Job>();
    job->count = count;
    job->body = &body;
    {
        const std::lock_guard<std::mutex> lock(mu);
        queue.push_back(job);
    }
    wake.notify_all();

    // The caller is always an executor, so progress never depends on
    // worker availability.
    runChunks(*job);

    // runChunks only returns once the index space is fully claimed, so
    // the job can be retired before waiting: late-waking workers then
    // never see it, and its shared_ptr keeps it alive for any worker
    // already holding a reference.
    {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = std::find(queue.begin(), queue.end(), job);
        if (it != queue.end())
            queue.erase(it);
    }

    std::unique_lock<std::mutex> lock(job->mu);
    job->allDone.wait(lock,
                      [&job] { return job->completed == job->count; });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

} // namespace lemons::engine
