/**
 * @file
 * Persistent work-stealing thread pool behind the Monte Carlo engine.
 *
 * The pre-engine parallel paths spawned fresh std::threads on every
 * call, so small runs paid thread-creation latency that dwarfed the
 * work. The pool is created lazily on first use, grows on demand up to
 * a hard cap, and is then reused by every subsequent parallel region —
 * the `sim.mc.pool.threads_created` counter stays flat after warmup.
 *
 * Scheduling is work-stealing in the claim sense: a parallel region is
 * a shared index space and every executor (the calling thread plus any
 * idle workers) claims the next unprocessed index with one atomic
 * fetch-add, so a slow chunk never stalls the others. Results must be
 * position-addressed by the body; the pool guarantees nothing about
 * which executor runs which index, which is exactly why the engine's
 * per-trial (seed, index) RNG contract matters.
 */

#ifndef LEMONS_ENGINE_THREAD_POOL_H_
#define LEMONS_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lemons::engine {

/**
 * Process-wide pool of reusable worker threads.
 *
 * parallelFor may be called concurrently from multiple threads; each
 * call is an independent job and every caller participates in its own
 * job, so the pool can never deadlock on an empty worker set (with
 * zero workers parallelFor degenerates to an inline loop).
 *
 * This class intentionally uses std::mutex / std::condition_variable
 * rather than the annotated util::Mutex: the wait loops need a
 * condition variable, which the annotated wrapper does not expose.
 * All shared state is confined to this translation unit and the
 * ThreadSanitizer CI job covers the claim/complete protocol.
 */
class ThreadPool
{
  public:
    /** The lazily-created global pool shared by all simulations. */
    static ThreadPool &global();

    /**
     * Run @p body(i) for every i in [0, count) using up to
     * @p parallelism concurrent executors (the caller plus pool
     * workers). Blocks until every index has completed. With
     * parallelism <= 1 the loop runs inline on the caller — same code
     * path, no handoff, no thread creation.
     *
     * @p body must not throw (the engine catches per-trial exceptions
     * well below this layer); a throwing body terminates.
     */
    void parallelFor(uint64_t count, unsigned parallelism,
                     const std::function<void(uint64_t)> &body);

    /**
     * Enqueue @p task for asynchronous execution on a pool worker and
     * return immediately (fire-and-forget). This is the serving
     * layer's request-execution primitive: lemonsd admits a request,
     * submits its handler here, and the handler runs on whichever
     * persistent worker claims it — no per-request thread is ever
     * created. A submitted task may itself call parallelFor (the
     * worker running it participates in that region like any caller),
     * so Monte Carlo endpoints nest naturally.
     *
     * @p parallelismHint grows the worker set so at least that many
     * submitted tasks can run concurrently (capped like parallelFor;
     * at least one worker always exists after a submit).
     *
     * @p task must not throw (handlers translate their own failures
     * into responses); a throwing task terminates, same as parallelFor
     * bodies. Tasks still queued at pool destruction are executed
     * before the workers join: destruction happens at process exit,
     * after the server has drained, so the queue is empty in practice.
     */
    void submit(std::function<void()> task, unsigned parallelismHint = 1);

    /** Workers currently alive (grows on demand, never shrinks). */
    unsigned workerCount() const;

    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

  private:
    ThreadPool();

    /** One parallelFor invocation (or submitted task): a claimable
     *  index space. parallelFor jobs borrow the caller's body;
     *  submitted jobs own theirs in `owned` and self-retire. */
    struct Job
    {
        uint64_t count = 0;
        const std::function<void(uint64_t)> *body = nullptr;
        /** Owned callable backing `body` for submitted jobs. */
        std::function<void(uint64_t)> owned;
        std::atomic<uint64_t> next{0};
        std::mutex mu;
        std::condition_variable allDone;
        uint64_t completed = 0;
    };

    /** Grow the worker set to at least @p target threads (capped). */
    void ensureWorkers(unsigned target);
    void workerLoop();
    /** Claim and run indices of @p job until the space is exhausted. */
    static void runChunks(Job &job);

    mutable std::mutex mu;
    std::condition_variable wake;
    std::deque<std::shared_ptr<Job>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace lemons::engine

#endif // LEMONS_ENGINE_THREAD_POOL_H_
