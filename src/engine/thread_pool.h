/**
 * @file
 * Persistent work-stealing thread pool behind the Monte Carlo engine.
 *
 * The pre-engine parallel paths spawned fresh std::threads on every
 * call, so small runs paid thread-creation latency that dwarfed the
 * work. The pool is created lazily on first use, grows on demand up to
 * a hard cap, and is then reused by every subsequent parallel region —
 * the `sim.mc.pool.threads_created` counter stays flat after warmup.
 *
 * Scheduling is work-stealing in the claim sense: a parallel region is
 * a shared index space and every executor (the calling thread plus any
 * idle workers) claims the next unprocessed index with one atomic
 * fetch-add, so a slow chunk never stalls the others. Results must be
 * position-addressed by the body; the pool guarantees nothing about
 * which executor runs which index, which is exactly why the engine's
 * per-trial (seed, index) RNG contract matters.
 */

#ifndef LEMONS_ENGINE_THREAD_POOL_H_
#define LEMONS_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lemons::engine {

/**
 * Process-wide pool of reusable worker threads.
 *
 * parallelFor may be called concurrently from multiple threads; each
 * call is an independent job and every caller participates in its own
 * job, so the pool can never deadlock on an empty worker set (with
 * zero workers parallelFor degenerates to an inline loop).
 *
 * This class intentionally uses std::mutex / std::condition_variable
 * rather than the annotated util::Mutex: the wait loops need a
 * condition variable, which the annotated wrapper does not expose.
 * All shared state is confined to this translation unit and the
 * ThreadSanitizer CI job covers the claim/complete protocol.
 */
class ThreadPool
{
  public:
    /** The lazily-created global pool shared by all simulations. */
    static ThreadPool &global();

    /**
     * Run @p body(i) for every i in [0, count) using up to
     * @p parallelism concurrent executors (the caller plus pool
     * workers). Blocks until every index has completed. With
     * parallelism <= 1 the loop runs inline on the caller — same code
     * path, no handoff, no thread creation.
     *
     * @p body must not throw (the engine catches per-trial exceptions
     * well below this layer); a throwing body terminates.
     */
    void parallelFor(uint64_t count, unsigned parallelism,
                     const std::function<void(uint64_t)> &body);

    /** Workers currently alive (grows on demand, never shrinks). */
    unsigned workerCount() const;

    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

  private:
    ThreadPool();

    /** One parallelFor invocation: a claimable index space. */
    struct Job
    {
        uint64_t count = 0;
        const std::function<void(uint64_t)> *body = nullptr;
        std::atomic<uint64_t> next{0};
        std::mutex mu;
        std::condition_variable allDone;
        uint64_t completed = 0;
    };

    /** Grow the worker set to at least @p target threads (capped). */
    void ensureWorkers(unsigned target);
    void workerLoop();
    /** Claim and run indices of @p job until the space is exhausted. */
    static void runChunks(Job &job);

    mutable std::mutex mu;
    std::condition_variable wake;
    std::deque<std::shared_ptr<Job>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace lemons::engine

#endif // LEMONS_ENGINE_THREAD_POOL_H_
