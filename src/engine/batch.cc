#include "engine/batch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "util/require.h"
#include "util/simd.h"

#if defined(__x86_64__) && !defined(LEMONS_NO_SIMD)
#define LEMONS_BATCH_AVX2 1
#include <immintrin.h>
#endif

namespace lemons::engine {

namespace {

/**
 * Per-thread uniform scratch for banks wider than the stack buffer:
 * structure widths recur (every trial of a run uses the same n), so
 * one thread-local buffer removes the per-structure allocation the
 * legacy path paid.
 */
thread_local std::vector<double> uniformScratch;

/** Bank widths up to this stay in a stack buffer (4 KiB): no TLS-init
 *  guard, no resize bookkeeping on the per-trial hot path. */
constexpr size_t kStackBankWidth = 512;

/** Trials per transform batch in the Many kernel. */
constexpr size_t kManyBatch = 256;

double *
scratchFor(size_t n, double *stackBuf)
{
    if (n <= kStackBankWidth)
        return stackBuf;
    std::vector<double> &u = uniformScratch;
    if (u.size() < n)
        u.resize(n);
    return u.data();
}

#if defined(LEMONS_BATCH_AVX2)

/**
 * Horizontal min/max over positive finite doubles. Comparisons are
 * exact, the data has no NaNs and no signed zeros, so the reduction
 * returns the identical VALUE as the scalar loop regardless of the
 * association order — which is all the bit-identity contract needs
 * (the selected uniform, not any intermediate, feeds the transform).
 */
__attribute__((target("avx2"))) double
minOfAvx2(const double *values, size_t count)
{
    __m256d best = _mm256_loadu_pd(values);
    size_t i = 4;
    for (; i + 4 <= count; i += 4)
        best = _mm256_min_pd(best, _mm256_loadu_pd(values + i));
    const __m128d folded = _mm_min_pd(_mm256_castpd256_pd128(best),
                                      _mm256_extractf128_pd(best, 1));
    double lanes[2];
    _mm_storeu_pd(lanes, folded);
    double result = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
    for (; i < count; ++i)
        result = values[i] < result ? values[i] : result;
    return result;
}

__attribute__((target("avx2"))) double
maxOfAvx2(const double *values, size_t count)
{
    __m256d best = _mm256_loadu_pd(values);
    size_t i = 4;
    for (; i + 4 <= count; i += 4)
        best = _mm256_max_pd(best, _mm256_loadu_pd(values + i));
    const __m128d folded = _mm_max_pd(_mm256_castpd256_pd128(best),
                                      _mm256_extractf128_pd(best, 1));
    double lanes[2];
    _mm_storeu_pd(lanes, folded);
    double result = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
    for (; i < count; ++i)
        result = values[i] > result ? values[i] : result;
    return result;
}

#endif // LEMONS_BATCH_AVX2

double
minOf(const double *values, size_t count)
{
#if defined(LEMONS_BATCH_AVX2)
    if (count >= 4 && simd::activeLevel() == simd::Level::Avx2)
        return minOfAvx2(values, count);
#endif
    double result = values[0];
    for (size_t i = 1; i < count; ++i)
        result = values[i] < result ? values[i] : result;
    return result;
}

double
maxOf(const double *values, size_t count)
{
#if defined(LEMONS_BATCH_AVX2)
    if (count >= 4 && simd::activeLevel() == simd::Level::Avx2)
        return maxOfAvx2(values, count);
#endif
    double result = values[0];
    for (size_t i = 1; i < count; ++i)
        result = values[i] > result ? values[i] : result;
    return result;
}

/**
 * k-th smallest of @p u[0..n). The selected value is a member of the
 * input set, so ANY selection algorithm returns the same double: the
 * SIMD min/max reductions (the dominant k == 1 / k == n structure
 * configurations) and the scalar nth_element middle case are all
 * bit-identical by construction. Reorders @p u.
 */
double
selectKthSmallest(double *u, size_t n, size_t k)
{
    if (k == 1)
        return minOf(u, n);
    if (k == n)
        return maxOf(u, n);
    std::nth_element(u, u + (k - 1), u + n);
    return u[k - 1];
}

} // namespace

uint64_t
floorToAccesses(double lifetime)
{
    // A device with lifetime L serves floor(L) whole accesses (the
    // t-th access succeeds iff t <= L).
    if (lifetime <= 0.0)
        return 0;
    const double f = std::floor(lifetime);
    if (f >= static_cast<double>(std::numeric_limits<int64_t>::max()))
        return std::numeric_limits<uint64_t>::max() / 2;
    return static_cast<uint64_t>(f);
}

uint64_t
sampleParallelBankSurvival(const wearout::Weibull &model, size_t n, size_t k,
                           Rng &rng)
{
    requireArg(n >= 1, "sampleParallelBankSurvival: n must be >= 1");
    requireArg(k >= 1 && k <= n,
               "sampleParallelBankSurvival: need 1 <= k <= n");
    // Bulk-bump the same counter n individual Weibull::sample calls
    // would have incremented, keeping the atomic off the inner loop.
    LEMONS_OBS_COUNT("wearout.weibull.samples", n);
    // T(u) = alpha * (-ln u)^(1/beta) is monotone non-increasing, so
    // the k-th LARGEST lifetime is T of the k-th SMALLEST uniform:
    // select first, transform once. The dominant k == 1 configuration
    // reduces fused with generation (no uniform array at all).
    if (k == 1)
        return floorToAccesses(
            model.sampleFromUniform(rng.minUniformOpenLow(n)));
    double stackBuf[kStackBankWidth];
    double *u = scratchFor(n, stackBuf);
    rng.fillUniformOpenLow(u, n);
    return floorToAccesses(
        model.sampleFromUniform(selectKthSmallest(u, n, k)));
}

uint64_t
sampleSeriesBankSurvival(const wearout::Weibull &model, size_t n, Rng &rng)
{
    requireArg(n >= 1, "sampleSeriesBankSurvival: n must be >= 1");
    LEMONS_OBS_COUNT("wearout.weibull.samples", n);
    // min over lifetimes == T(max over uniforms), by the same
    // monotonicity argument as the parallel kernel; the max reduces
    // fused with generation.
    return floorToAccesses(
        model.sampleFromUniform(rng.maxUniformOpenLow(n)));
}

void
sampleParallelBankSurvivalMany(const wearout::Weibull &model, size_t n,
                               size_t k, Rng &rng, uint64_t *out,
                               size_t trials)
{
    requireArg(n >= 1, "sampleParallelBankSurvivalMany: n must be >= 1");
    requireArg(k >= 1 && k <= n,
               "sampleParallelBankSurvivalMany: need 1 <= k <= n");
    LEMONS_OBS_COUNT("wearout.weibull.samples", n * trials);
    double stackBuf[kStackBankWidth];
    double *u = scratchFor(n, stackBuf);
    // Select each trial's uniform, then push the order statistics
    // through the four-lane batched inverse CDF. Identical draws and
    // identical per-element operation sequence as `trials` sequential
    // sampleParallelBankSurvival calls, hence bit-identical results.
    double selected[kManyBatch];
    double lifetimes[kManyBatch];
    size_t done = 0;
    while (done < trials) {
        const size_t batch = std::min(kManyBatch, trials - done);
        for (size_t t = 0; t < batch; ++t) {
            if (k == 1) {
                selected[t] = rng.minUniformOpenLow(n);
            } else {
                rng.fillUniformOpenLow(u, n);
                selected[t] = selectKthSmallest(u, n, k);
            }
        }
        model.sampleFromUniformBatch(selected, batch, lifetimes);
        for (size_t t = 0; t < batch; ++t)
            out[done + t] = floorToAccesses(lifetimes[t]);
        done += batch;
    }
}

} // namespace lemons::engine
