#include "engine/batch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::engine {

namespace {

/**
 * Per-thread uniform scratch: structure widths recur (every trial of a
 * run uses the same n), so one thread-local buffer removes the
 * per-structure allocation the legacy path paid.
 */
thread_local std::vector<double> uniformScratch;

} // namespace

uint64_t
floorToAccesses(double lifetime)
{
    // A device with lifetime L serves floor(L) whole accesses (the
    // t-th access succeeds iff t <= L).
    if (lifetime <= 0.0)
        return 0;
    const double f = std::floor(lifetime);
    if (f >= static_cast<double>(std::numeric_limits<int64_t>::max()))
        return std::numeric_limits<uint64_t>::max() / 2;
    return static_cast<uint64_t>(f);
}

uint64_t
sampleParallelBankSurvival(const wearout::Weibull &model, size_t n, size_t k,
                           Rng &rng)
{
    requireArg(n >= 1, "sampleParallelBankSurvival: n must be >= 1");
    requireArg(k >= 1 && k <= n,
               "sampleParallelBankSurvival: need 1 <= k <= n");
    // Bulk-bump the same counter n individual Weibull::sample calls
    // would have incremented, keeping the atomic off the inner loop.
    LEMONS_OBS_COUNT("wearout.weibull.samples", n);
    std::vector<double> &u = uniformScratch;
    u.resize(n);
    for (size_t i = 0; i < n; ++i)
        u[i] = rng.nextDoubleOpenLow();
    // T(u) = alpha * (-ln u)^(1/beta) is monotone non-increasing, so
    // the k-th LARGEST lifetime is T of the k-th SMALLEST uniform:
    // select first, transform once.
    std::nth_element(u.begin(),
                     u.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     u.end());
    return floorToAccesses(model.sampleFromUniform(u[k - 1]));
}

uint64_t
sampleSeriesBankSurvival(const wearout::Weibull &model, size_t n, Rng &rng)
{
    requireArg(n >= 1, "sampleSeriesBankSurvival: n must be >= 1");
    LEMONS_OBS_COUNT("wearout.weibull.samples", n);
    // min over lifetimes == T(max over uniforms), by the same
    // monotonicity argument as the parallel kernel.
    double maxU = 0.0;
    for (size_t i = 0; i < n; ++i)
        maxU = std::max(maxU, rng.nextDoubleOpenLow());
    return floorToAccesses(model.sampleFromUniform(maxU));
}

void
sampleParallelBankSurvivalMany(const wearout::Weibull &model, size_t n,
                               size_t k, Rng &rng, uint64_t *out,
                               size_t trials)
{
    for (size_t t = 0; t < trials; ++t)
        out[t] = sampleParallelBankSurvival(model, n, k, rng);
}

} // namespace lemons::engine
