#include "core/forward_secrecy.h"

#include "crypto/hmac.h"
#include "crypto/otp.h"
#include "util/require.h"

namespace lemons::core {

wearout::DeviceSpec
SealedArchive::defaultDeviceSpec()
{
    // Near-single-cycle devices with tight wearout (Section 2.1 lists
    // NEMS switches working for "one cycle to several thousand").
    return {1.3, 12.0};
}

Design
SealedArchive::defaultSingleUseDesign()
{
    DesignRequest request;
    request.device = defaultDeviceSpec();
    request.legitimateAccessBound = 1;
    request.kFraction = 0.2;
    return DesignSolver(request).solve();
}

SealedArchive::SealedArchive(const wearout::DeviceFactory &factory,
                             uint64_t seed,
                             std::optional<Design> gateDesign)
    : deviceFactory(factory),
      design(gateDesign ? *gateDesign : defaultSingleUseDesign()),
      rng(seed)
{
    requireArg(design.feasible,
               "SealedArchive: single-use gate design is infeasible");
}

std::vector<uint8_t>
SealedArchive::applyKeystream(const std::vector<uint8_t> &data,
                              const std::vector<uint8_t> &key)
{
    const auto keystream = crypto::deriveKey(
        key, {}, "lemons.archive.keystream", data.size());
    std::vector<uint8_t> out(data.size());
    for (size_t i = 0; i < data.size(); ++i)
        out[i] = data[i] ^ keystream[i];
    return out;
}

size_t
SealedArchive::append(const std::string &plaintext)
{
    const std::vector<uint8_t> key = crypto::generatePad(rng, 32);
    const std::vector<uint8_t> bytes(plaintext.begin(), plaintext.end());
    entries.push_back(Entry{applyKeystream(bytes, key),
                            LimitedUseGate(design, deviceFactory, key,
                                           rng),
                            /*opened=*/false});
    // The plaintext key dies with this frame; only the gate holds it.
    return entries.size() - 1;
}

std::optional<std::string>
SealedArchive::hardwareRead(size_t index)
{
    const auto key = entries[index].keyGate.access();
    if (!key)
        return std::nullopt; // sealed forever
    const auto bytes = applyKeystream(entries[index].ciphertext, *key);
    return std::string(bytes.begin(), bytes.end());
}

std::optional<std::string>
SealedArchive::read(size_t index)
{
    requireArg(index < entries.size(), "SealedArchive::read: bad index");
    if (entries[index].opened)
        return std::nullopt; // software discipline; hardware backs it
    entries[index].opened = true;
    return hardwareRead(index);
}

bool
SealedArchive::sealed(size_t index) const
{
    requireArg(index < entries.size(), "SealedArchive::sealed: bad index");
    return entries[index].opened || entries[index].keyGate.exhausted();
}

std::vector<std::string>
SealedArchive::seizeAndDump()
{
    // The adversary ignores the software `opened` flags and drives the
    // hardware directly; only the wearout gates stand in the way.
    std::vector<std::string> recovered;
    for (size_t i = 0; i < entries.size(); ++i) {
        entries[i].opened = true;
        const auto plaintext = hardwareRead(i);
        if (plaintext)
            recovered.push_back(*plaintext);
    }
    return recovered;
}

} // namespace lemons::core
