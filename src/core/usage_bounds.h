/**
 * @file
 * Empirical system-level usage bounds via Monte Carlo (Section 4.3.3).
 *
 * The analytic solver guarantees the degradation criteria per copy;
 * this module simulates whole architectures (N serially-consumed
 * copies over sampled device populations) and reports the empirical
 * distribution of total accesses served — the quantity behind the
 * paper's "empirical access upper bound increases from 91,326 to
 * 92,028" observation (Fig 4c).
 */

#ifndef LEMONS_CORE_USAGE_BOUNDS_H_
#define LEMONS_CORE_USAGE_BOUNDS_H_

#include <cstdint>

#include "core/design_solver.h"
#include "wearout/population.h"

namespace lemons::core {

/** Empirical usage-bound estimates for one architecture. */
struct UsageBounds
{
    double meanTotalAccesses = 0.0; ///< mean accesses until exhaustion
    double minTotalAccesses = 0.0;  ///< smallest observed
    double maxTotalAccesses = 0.0;  ///< largest observed
    double q001 = 0.0;              ///< 0.1 % quantile (min-bound proxy)
    double q999 = 0.0;              ///< 99.9 % quantile (max-bound proxy)
    uint64_t trials = 0;
};

/**
 * Simulate @p trials full lifetimes of the architecture in @p design
 * (its N copies consumed serially) with devices drawn from
 * @p variation -perturbed populations.
 *
 * @param design A feasible design from DesignSolver.
 * @param variation Lot-level process variation (none() for the paper's
 *        baseline model).
 * @param trials Monte Carlo trials (> 0).
 * @param seed Master seed.
 */
UsageBounds estimateUsageBounds(const Design &design,
                                const wearout::DeviceSpec &device,
                                const wearout::ProcessVariation &variation,
                                uint64_t trials, uint64_t seed);

} // namespace lemons::core

#endif // LEMONS_CORE_USAGE_BOUNDS_H_
