#include "core/calibration.h"

#include "engine/cache.h"
#include "wearout/weibull.h"

namespace lemons::core {

CalibrationReport
calibrateAndRedesign(const std::vector<double> &observedLifetimes,
                     const DesignRequest &assumed)
{
    CalibrationReport report;

    const wearout::Weibull fitted =
        wearout::Weibull::fit(observedLifetimes);
    report.fitted = {fitted.alpha(), fitted.beta()};

    report.nominalDesign = DesignSolver(assumed).solve();
    if (report.nominalDesign.feasible) {
        report.nominalReliabilityAtBound = engine::cachedParallelReliability(
            fitted.alpha(), fitted.beta(), report.nominalDesign.width,
            report.nominalDesign.threshold,
            static_cast<double>(report.nominalDesign.perCopyBound));
        report.nominalResidualPastBound = engine::cachedParallelReliability(
            fitted.alpha(), fitted.beta(), report.nominalDesign.width,
            report.nominalDesign.threshold,
            static_cast<double>(report.nominalDesign.deathCheckAccess));
        report.nominalStillMeetsCriteria =
            report.nominalReliabilityAtBound >=
                assumed.criteria.minReliability &&
            report.nominalResidualPastBound <=
                assumed.criteria.maxResidualReliability;
    }

    DesignRequest refitted = assumed;
    refitted.device = report.fitted;
    report.recalibratedDesign = DesignSolver(refitted).solve();
    if (report.nominalDesign.feasible &&
        report.recalibratedDesign.feasible) {
        report.redesignCostRatio =
            static_cast<double>(report.recalibratedDesign.totalDevices) /
            static_cast<double>(report.nominalDesign.totalDevices);
    }
    return report;
}

} // namespace lemons::core
