#include "core/calibration.h"

#include "arch/structures.h"
#include "wearout/weibull.h"

namespace lemons::core {

CalibrationReport
calibrateAndRedesign(const std::vector<double> &observedLifetimes,
                     const DesignRequest &assumed)
{
    CalibrationReport report;

    const wearout::Weibull fitted =
        wearout::Weibull::fit(observedLifetimes);
    report.fitted = {fitted.alpha(), fitted.beta()};

    report.nominalDesign = DesignSolver(assumed).solve();
    if (report.nominalDesign.feasible) {
        const arch::ParallelStructure actual(
            fitted, report.nominalDesign.width,
            report.nominalDesign.threshold);
        report.nominalReliabilityAtBound = actual.reliabilityAt(
            static_cast<double>(report.nominalDesign.perCopyBound));
        report.nominalResidualPastBound = actual.reliabilityAt(
            static_cast<double>(report.nominalDesign.deathCheckAccess));
        report.nominalStillMeetsCriteria =
            report.nominalReliabilityAtBound >=
                assumed.criteria.minReliability &&
            report.nominalResidualPastBound <=
                assumed.criteria.maxResidualReliability;
    }

    DesignRequest refitted = assumed;
    refitted.device = report.fitted;
    report.recalibratedDesign = DesignSolver(refitted).solve();
    if (report.nominalDesign.feasible &&
        report.recalibratedDesign.feasible) {
        report.redesignCostRatio =
            static_cast<double>(report.recalibratedDesign.totalDevices) /
            static_cast<double>(report.nominalDesign.totalDevices);
    }
    return report;
}

} // namespace lemons::core
