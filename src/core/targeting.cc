#include "core/targeting.h"

#include "crypto/hmac.h"
#include "util/require.h"

namespace lemons::core {

namespace {

std::vector<uint8_t>
nonceBytes(uint64_t nonce)
{
    std::vector<uint8_t> out(8);
    for (size_t i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(nonce >> (56 - 8 * i));
    return out;
}

} // namespace

std::vector<uint8_t>
commandKeystream(const std::vector<uint8_t> &missionKey, uint64_t nonce,
                 size_t length)
{
    return crypto::deriveKey(missionKey, nonceBytes(nonce),
                             "lemons.targeting.keystream", length);
}

crypto::Digest
commandMac(const std::vector<uint8_t> &missionKey, uint64_t nonce,
           const std::vector<uint8_t> &ciphertext)
{
    std::vector<uint8_t> message;
    message.reserve(8 + ciphertext.size());
    for (size_t i = 0; i < 8; ++i)
        message.push_back(static_cast<uint8_t>(nonce >> (56 - 8 * i)));
    for (uint8_t byte : ciphertext)
        message.push_back(byte);
    return crypto::hmacSha256(missionKey, message);
}

CommandAuthority::CommandAuthority(std::vector<uint8_t> missionKey)
    : key(std::move(missionKey))
{
    requireArg(!key.empty(), "CommandAuthority: mission key is empty");
}

TargetingCommand
CommandAuthority::issueCommand(const std::string &plaintext)
{
    TargetingCommand cmd;
    cmd.nonce = ++nextNonce;
    const std::vector<uint8_t> keystream =
        commandKeystream(key, cmd.nonce, plaintext.size());
    cmd.ciphertext.resize(plaintext.size());
    for (size_t i = 0; i < plaintext.size(); ++i) {
        cmd.ciphertext[i] =
            static_cast<uint8_t>(plaintext[i]) ^ keystream[i];
    }
    cmd.mac = commandMac(key, cmd.nonce, cmd.ciphertext);
    return cmd;
}

LaunchStation::LaunchStation(const Design &design,
                             const wearout::DeviceFactory &factory,
                             std::vector<uint8_t> missionKey, Rng &rng)
    : gate(design, factory, std::move(missionKey), rng)
{
}

LaunchStation::LaunchStation(const Design &design,
                             const fault::FaultyDeviceFactory &factory,
                             std::vector<uint8_t> missionKey, Rng &rng)
    : gate(design, factory, std::move(missionKey), rng)
{
}

std::optional<std::string>
LaunchStation::executeCommand(const TargetingCommand &cmd)
{
    ++attempts;
    const auto missionKey = gate.access();
    if (!missionKey)
        return std::nullopt; // usage bound reached: station retired

    if (commandMac(*missionKey, cmd.nonce, cmd.ciphertext) != cmd.mac)
        return std::nullopt; // forged or corrupted command

    // Reject replays: nonces must be strictly increasing.
    if (anyExecuted && cmd.nonce <= highestNonceSeen)
        return std::nullopt;

    const std::vector<uint8_t> keystream =
        commandKeystream(*missionKey, cmd.nonce, cmd.ciphertext.size());
    std::string plaintext(cmd.ciphertext.size(), '\0');
    for (size_t i = 0; i < cmd.ciphertext.size(); ++i) {
        plaintext[i] =
            static_cast<char>(cmd.ciphertext[i] ^ keystream[i]);
    }
    highestNonceSeen = cmd.nonce;
    anyExecuted = true;
    ++executed;
    return plaintext;
}

} // namespace lemons::core
