/**
 * @file
 * The limited-use targeting system use case (paper Section 5).
 *
 * A launching station receives encrypted targeting commands over a
 * secured link. The command decryption key sits behind a LimitedUseGate
 * sized for the mission's expected usage (e.g. 100 commands) with
 * strict degradation criteria — "we do not want a single unintentional
 * targeting command to be executed" — so the station physically cannot
 * decrypt commands beyond the mission bound, whether the extra
 * commands come from an over-reaching operator or from an attacker
 * brute-forcing the link encryption.
 */

#ifndef LEMONS_CORE_TARGETING_H_
#define LEMONS_CORE_TARGETING_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/gate.h"
#include "crypto/sha256.h"

namespace lemons::core {

/** An encrypted, authenticated targeting command. */
struct TargetingCommand
{
    uint64_t nonce;                  ///< unique per command
    std::vector<uint8_t> ciphertext; ///< keystream-XORed payload
    crypto::Digest mac;              ///< HMAC over nonce || ciphertext
};

/**
 * Command-and-control side: encrypts commands under the mission key.
 * Purely software — the C2 system is not usage-limited.
 */
class CommandAuthority
{
  public:
    /** @param missionKey Shared mission key (non-empty). */
    explicit CommandAuthority(std::vector<uint8_t> missionKey);

    /** Encrypt and authenticate @p plaintext as the next command. */
    TargetingCommand issueCommand(const std::string &plaintext);

  private:
    std::vector<uint8_t> key;
    uint64_t nextNonce = 0;
};

/**
 * Launching-station side: every decryption traverses the limited-use
 * gate holding the mission key.
 */
class LaunchStation
{
  public:
    /**
     * @param design Feasible design sized for the mission bound.
     * @param factory Device fabrication model.
     * @param missionKey Shared mission key (provisioned at deployment).
     * @param rng Fabrication randomness.
     */
    LaunchStation(const Design &design, const wearout::DeviceFactory &factory,
                  std::vector<uint8_t> missionKey, Rng &rng);

    /**
     * Fault-injected deployment: the mission-key gate is fabricated
     * under @p factory 's fault plan — the scenario the paper's strict
     * degradation criteria care most about, since a stuck-closed gate
     * would keep decrypting targeting commands past the mission bound.
     */
    LaunchStation(const Design &design,
                  const fault::FaultyDeviceFactory &factory,
                  std::vector<uint8_t> missionKey, Rng &rng);

    /**
     * Decrypt, authenticate, and "execute" a command. Consumes one
     * gate traversal regardless of authenticity.
     *
     * @return The command plaintext on success; nullopt when the MAC
     *         fails, the command is replayed, or the hardware has
     *         reached its usage bound.
     */
    std::optional<std::string> executeCommand(const TargetingCommand &cmd);

    /** Commands executed successfully. */
    uint64_t executedCount() const { return executed; }

    /** Decryption attempts (including rejected / failed ones). */
    uint64_t attemptCount() const { return attempts; }

    /** Whether the station's key hardware has worn out. */
    bool decommissioned() const { return gate.exhausted(); }

    /** Degraded-but-alive condition of the key hardware. */
    GateHealth health() const { return gate.health(); }

  private:
    LimitedUseGate gate;
    uint64_t executed = 0;
    uint64_t attempts = 0;
    uint64_t highestNonceSeen = 0;
    bool anyExecuted = false;
};

/**
 * Derive the per-command keystream: HKDF(missionKey, nonce).
 * Shared by both sides; exposed for tests.
 */
std::vector<uint8_t> commandKeystream(const std::vector<uint8_t> &missionKey,
                                      uint64_t nonce, size_t length);

/** HMAC over nonce || ciphertext under the mission key. */
crypto::Digest commandMac(const std::vector<uint8_t> &missionKey,
                          uint64_t nonce,
                          const std::vector<uint8_t> &ciphertext);

} // namespace lemons::core

#endif // LEMONS_CORE_TARGETING_H_
