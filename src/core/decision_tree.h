/**
 * @file
 * Hardware one-time pads in NEMS decision trees (paper Section 6).
 *
 * A pad key is hidden at one leaf of a decision tree whose branches
 * are NEMS switches with near-one-cycle lifetimes. The receiver holds
 * the short path string and traverses once; the tree then degrades,
 * so adversaries can neither replay the traversal nor clone the chip
 * contents. Reliability for the receiver comes from n tree copies
 * carrying Shamir shares of the key (Section 6.3): the receiver needs
 * k surviving right-path traversals, while adversaries must *guess*
 * the path in at least k copies (Eq. 9-15).
 *
 * Naming follows the paper: a height-H tree has H switches on every
 * root-to-leaf path and 2^(H-1) leaves/paths (Eq. 11).
 */

#ifndef LEMONS_CORE_DECISION_TREE_H_
#define LEMONS_CORE_DECISION_TREE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/share_store.h"
#include "util/rng.h"
#include "wearout/population.h"

namespace lemons::core {

/** Parameters of a one-time-pad architecture. */
struct OtpParams
{
    unsigned height = 4;    ///< H: switches per path; 2^(H-1) paths.
    uint64_t copies = 128;  ///< n: tree copies per pad.
    uint64_t threshold = 8; ///< k: shares needed to recover the key.
    wearout::DeviceSpec device{10.0, 1.0}; ///< switch technology.
};

/**
 * Closed-form success probabilities (paper Eq. 9-15), computed in log
 * space so that "effectively zero" adversary probabilities at H >= 8
 * are still meaningfully comparable.
 */
class OtpAnalytics
{
  public:
    /** @param params Architecture parameters (validated). */
    explicit OtpAnalytics(const OtpParams &params);

    /** The parameters. */
    const OtpParams &params() const { return spec; }

    /** Eq. 9/12: P(one path of H switches survives its first access). */
    double pathSuccess() const;

    /** Eq. 10: receiver recovers >= k shares over n copies. */
    double receiverSuccess() const;

    /** Number of distinct paths: 2^(H-1) (Eq. 11 denominator). */
    double pathCount() const;

    /**
     * Eq. 13-15: adversary without the path string gets >= k *right*
     * shares by random path trials over n copies.
     */
    double adversarySuccess() const;

    /** log of adversarySuccess, useful when it underflows. */
    double logAdversarySuccess() const;

    /**
     * Eq. 12 path survival under a stuck-closed rate @p epsilon: each
     * switch on the path conducts with probability eps + (1-eps)R(1),
     * because a fail-short switch closes regardless of wearout.
     */
    double pathSuccessWithStuckClosed(double epsilon) const;

    /**
     * Eq. 13-15 with the stuck-closed-adjusted per-copy traversal
     * success: quantifies how fail-short contacts inflate the
     * adversary's pad-recovery probability (monotonically
     * non-decreasing in @p epsilon).
     */
    double adversarySuccessWithStuckClosed(double epsilon) const;

  private:
    OtpParams spec;
    double logPathSuccessValue; ///< H * log R(1)

    /** Eq. 13-15 body for an arbitrary per-copy success @p s. */
    double logAdversarySuccessAt(double s) const;
};

/**
 * One simulated decision tree: 2^H - 1 NEMS switches (one per node
 * across H levels) and 2^(H-1) read-destructive leaf registers.
 */
class DecisionTree
{
  public:
    /**
     * @param height H >= 1 (at most 20 in this runtime model).
     * @param leafPayloads One payload per leaf (size 2^(H-1)); the
     *        right leaf holds a key share, the rest hold decoys.
     * @param factory Switch fabrication model.
     * @param rng Fabrication randomness.
     */
    DecisionTree(unsigned height,
                 std::vector<std::vector<uint8_t>> leafPayloads,
                 const wearout::DeviceFactory &factory, Rng &rng);

    /**
     * Traverse the path selected by @p pathBits (H-1 bits, bit 0 = the
     * first branch; Fig 6: '0' = left, '1' = right). Actuates the H
     * switches along the path; on full success destructively reads the
     * leaf register.
     *
     * @return Leaf payload, or nullopt when any switch on the path has
     *         worn out or the leaf was already consumed.
     */
    std::optional<std::vector<uint8_t>> traverse(uint64_t pathBits);

    /** Tree height H. */
    unsigned height() const { return h; }

    /** Number of leaves = 2^(H-1). */
    uint64_t leafCount() const { return uint64_t{1} << (h - 1); }

    /** Traversal attempts so far (any path). */
    uint64_t traversalCount() const { return traversals; }

  private:
    unsigned h;
    /** Switches in level order: node (level, idx) at offset 2^level-1+idx. */
    std::vector<wearout::NemsSwitch> switches;
    std::vector<arch::ShareStore> leaves;
    uint64_t traversals = 0;
};

/**
 * One hardware one-time pad: n DecisionTree copies whose right-path
 * leaves carry Shamir shares of the pad key.
 */
class OneTimePad
{
  public:
    /**
     * @param params Architecture parameters; threshold <= copies <= 255.
     * @param padKey The pad key to protect (non-empty).
     * @param rightPath The secret path string shared with the receiver.
     * @param factory Switch fabrication model.
     * @param rng Fabrication randomness (also generates leaf decoys).
     */
    OneTimePad(const OtpParams &params, const std::vector<uint8_t> &padKey,
               uint64_t rightPath, const wearout::DeviceFactory &factory,
               Rng &rng);

    /**
     * Receiver retrieval: traverse every copy along @p pathBits and
     * combine >= k shares. One-shot by construction — the traversals
     * consume the trees.
     *
     * @return The pad key, or nullopt (wrong path, or hardware decayed
     *         below threshold).
     */
    std::optional<std::vector<uint8_t>> retrieve(uint64_t pathBits);

    /**
     * Adversary without the path string: traverses one uniformly
     * random path per copy (Eq. 13-14's model) and succeeds when at
     * least k right-leaf shares come back.
     *
     * @return The pad key if the attack succeeded, else nullopt.
     */
    std::optional<std::vector<uint8_t>> randomPathAttack(Rng &attackerRng);

    /** Number of tree copies. */
    uint64_t copies() const { return trees.size(); }

  private:
    OtpParams spec;
    uint64_t secretPath;
    size_t keySize;
    /**
     * Public hash commitment to the pad key, so retrieval can reject
     * decoy reconstructions without storing the key itself.
     */
    std::array<uint8_t, 32> keyCommitment;
    std::vector<DecisionTree> trees;

    /** Collect shares by traversing every copy along @p pathBits. */
    std::vector<std::vector<uint8_t>> collect(uint64_t pathBits);

    std::optional<std::vector<uint8_t>>
    combineShares(const std::vector<std::vector<uint8_t>> &payloads) const;
};

} // namespace lemons::core

#endif // LEMONS_CORE_DECISION_TREE_H_
