/**
 * @file
 * The limited-use connection use case (paper Section 4): smartphone
 * storage-key protection with hardware-bounded passcode attempts.
 *
 * Provisioning:
 *  - the chip holds a random chip secret reachable only through a
 *    LimitedUseGate,
 *  - the storage key is wrapped (XOR) with a key derived from
 *    (passcode, chip secret) via HKDF,
 *  - a verifier tag (HMAC of a fixed label under the storage key)
 *    allows unlock to detect wrong passcodes.
 *
 * Every unlock attempt — right or wrong — must traverse the gate to
 * obtain the chip secret, so the total number of passcode attempts is
 * physically bounded: unlike iOS's software counters (which NAND
 * mirroring and power-cut attacks bypassed, Section 4), there is no
 * counter to reset.
 */

#ifndef LEMONS_CORE_CONNECTION_H_
#define LEMONS_CORE_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/gate.h"

namespace lemons::core {

/**
 * A provisioned limited-use connection protecting one storage key.
 */
class LimitedUseConnection
{
  public:
    /**
     * Provision a connection.
     *
     * @param design Feasible design from DesignSolver.
     * @param factory Device fabrication model.
     * @param passcode The user's passcode.
     * @param storageKey Storage encryption key to protect (non-empty).
     * @param rng Randomness for fabrication / chip secret.
     */
    LimitedUseConnection(const Design &design,
                         const wearout::DeviceFactory &factory,
                         const std::string &passcode,
                         std::vector<uint8_t> storageKey, Rng &rng);

    /**
     * Fault-injected provisioning: the gate hardware is fabricated
     * under @p factory 's fault plan. Bit-identical to the ideal
     * constructor under a null plan (same seed).
     */
    LimitedUseConnection(const Design &design,
                         const fault::FaultyDeviceFactory &factory,
                         const std::string &passcode,
                         std::vector<uint8_t> storageKey, Rng &rng);

    /**
     * Attempt to unlock. Consumes one gate traversal regardless of
     * whether the passcode is right.
     *
     * @return The storage key when @p passcode is correct and the
     *         hardware still works; nullopt otherwise.
     */
    std::optional<std::vector<uint8_t>> unlock(const std::string &passcode);

    /**
     * Change the passcode: requires a successful unlock with the old
     * passcode (consuming one traversal plus one re-wrap traversal).
     *
     * @return true on success.
     */
    bool changePasscode(const std::string &oldPasscode,
                        const std::string &newPasscode);

    /** Total unlock attempts so far. */
    uint64_t attemptCount() const { return attempts; }

    /** Whether the hardware has worn out (device bricked). */
    bool bricked() const { return gate.exhausted(); }

    /** Access to the underlying gate (for instrumentation / tests). */
    const LimitedUseGate &hardware() const { return gate; }

    /** Degraded-but-alive condition of the gate hardware. */
    GateHealth health() const { return gate.health(); }

  private:
    LimitedUseGate gate;
    std::vector<uint8_t> wrappedKey;
    std::vector<uint8_t> verifierTag;
    uint64_t attempts = 0;

    /** Fabrication-time constructor with the chip secret in hand. */
    LimitedUseConnection(const Design &design,
                         const fault::FaultyDeviceFactory &factory,
                         const std::string &passcode,
                         std::vector<uint8_t> storageKey,
                         const std::vector<uint8_t> &chipSecret, Rng &rng);

    /** Derive the wrapping key from passcode and chip secret. */
    static std::vector<uint8_t>
    deriveWrapKey(const std::string &passcode,
                  const std::vector<uint8_t> &chipSecret, size_t length);

    /** Verifier tag binding the storage key. */
    static std::vector<uint8_t>
    makeVerifier(const std::vector<uint8_t> &storageKey);

    void wrap(const std::string &passcode,
              const std::vector<uint8_t> &chipSecret,
              const std::vector<uint8_t> &storageKey);
};

} // namespace lemons::core

#endif // LEMONS_CORE_CONNECTION_H_
