#include "core/design_solver.h"

#include <algorithm>
#include <cmath>

#include "engine/cache.h"
#include "lint/rules.h"
#include "obs/metrics.h"
#include "util/math.h"

namespace lemons::core {

namespace {

/** Widest structure the closed-form (k = 1) path will report. */
constexpr uint64_t unencodedWidthCap = 1'000'000'000'000'000ULL;

} // namespace

DesignSolver::DesignSolver(const DesignRequest &request) : spec(request)
{
    // Design-rule check (L0xx): bounds on device parameters, LAB,
    // encoding fraction, and degradation criteria. Throws LintError
    // (a std::invalid_argument) naming the violated rule.
    lint::checkDesignOrThrow(spec);
}

uint64_t
DesignSolver::thresholdFor(uint64_t n) const
{
    if (spec.kFraction == 0.0)
        return 1;
    const auto k = static_cast<uint64_t>(
        std::llround(spec.kFraction * static_cast<double>(n)));
    return std::clamp<uint64_t>(k, 1, n);
}

double
DesignSolver::copyReliability(uint64_t n, uint64_t k, double x) const
{
    // The memoized engine evaluator computes the exact
    // arch::ParallelStructure expressions; the solver probes the same
    // (alpha, beta, x) and binomial-tail keys thousands of times across
    // its width searches, so the cache turns repeats into lookups.
    return engine::cachedParallelReliability(spec.device.alpha,
                                             spec.device.beta, n, k, x);
}

double
DesignSolver::expectedOvershoot(uint64_t n, uint64_t k, uint64_t t) const
{
    // A width-n structure dies once the per-device reliability falls to
    // ~k/n (encoded) or ~1/n (plain parallel); bound the scan there
    // with generous margin.
    const double logWidth = std::log(static_cast<double>(n) + 2.0);
    const double deathScale =
        spec.device.alpha *
        // LEMONS-TIDY-ALLOW(T003): one pow per (n, k, t) scan setup,
        // dwarfed by the cached reliability loop below.
        std::pow(std::max(1.0, logWidth + 5.0), 1.0 / spec.device.beta);
    const auto cap = static_cast<uint64_t>(4.0 * deathScale) + t + 64;

    double overshoot = 0.0;
    for (uint64_t j = t + 1; j <= cap; ++j) {
        const double r = engine::cachedParallelReliability(
            spec.device.alpha, spec.device.beta, n, k,
            static_cast<double>(j));
        overshoot += r;
        if (r < 1e-12)
            break;
    }
    return overshoot;
}

bool
DesignSolver::meetsMinReliability(uint64_t n, uint64_t t) const
{
    const uint64_t k = thresholdFor(n);
    // Through the failure side so "reliability >= 0.9999999" targets
    // stay representable: P(dead at t) <= 1 - minReliability.
    const double logFailAtBound = engine::cachedParallelLogFailure(
        spec.device.alpha, spec.device.beta, n, k,
        static_cast<double>(t));
    return logFailAtBound <= std::log1p(-spec.criteria.minReliability);
}

bool
DesignSolver::feasibleWidth(uint64_t n, uint64_t t, uint64_t tDead) const
{
    if (!meetsMinReliability(n, t))
        return false;
    const uint64_t k = thresholdFor(n);
    const double logAliveAtDeath = engine::cachedParallelLogReliability(
        spec.device.alpha, spec.device.beta, n, k,
        static_cast<double>(tDead));
    return logAliveAtDeath <= std::log(spec.criteria.maxResidualReliability);
}

std::optional<uint64_t>
DesignSolver::minimalWidthUnencoded(uint64_t t, uint64_t tDead) const
{
    const double logRt = engine::cachedWeibullLogSurvival(
        spec.device.alpha, spec.device.beta, static_cast<double>(t));
    const double logRd = engine::cachedWeibullLogSurvival(
        spec.device.alpha, spec.device.beta, static_cast<double>(tDead));
    if (logRt == 0.0)
        return std::nullopt; // r_t == 1 exactly: degenerate
    const double logDeadT = log1mExp(logRt);  // ln(1 - r_t)
    const double logDeadD = log1mExp(logRd);  // ln(1 - r_d)

    // R(t) = 1 - (1 - r_t)^n >= minRel  <=>  n ln(1-r_t) <= ln(1-minRel)
    const double nMinReal =
        std::log1p(-spec.criteria.minReliability) / logDeadT;
    // R(tDead) <= p  <=>  (1 - r_d)^n >= 1 - p
    //            <=>  n ln(1-r_d) >= ln(1-p)
    if (logDeadD == 0.0)
        return std::nullopt; // r_d == 0 is impossible for finite tDead
    const double nMaxReal =
        std::log1p(-spec.criteria.maxResidualReliability) / logDeadD;

    const double nMin = std::max(1.0, std::ceil(nMinReal));
    const double nMax = std::floor(nMaxReal);
    if (nMin > nMax || nMin > static_cast<double>(unencodedWidthCap))
        return std::nullopt;
    return static_cast<uint64_t>(nMin);
}

std::optional<uint64_t>
DesignSolver::minimalWidth(uint64_t t, uint64_t tDead,
                           std::optional<double> overshootSlack) const
{
    if (spec.kFraction == 0.0) {
        if (!overshootSlack)
            return minimalWidthUnencoded(t, tDead);
        // With an upper-bound target, pick the smallest width meeting
        // the minimum-reliability criterion, then verify the overshoot
        // (which only grows with width in plain parallel structures).
        const double logRt = engine::cachedWeibullLogSurvival(
            spec.device.alpha, spec.device.beta, static_cast<double>(t));
        if (logRt == 0.0)
            return std::nullopt;
        const double nMinReal = std::log1p(-spec.criteria.minReliability) /
                                log1mExp(logRt);
        const double nMin = std::max(1.0, std::ceil(nMinReal));
        if (nMin > static_cast<double>(unencodedWidthCap))
            return std::nullopt;
        const auto n = static_cast<uint64_t>(nMin);
        if (expectedOvershoot(n, 1, t) > *overshootSlack)
            return std::nullopt;
        return n;
    }

    // Encoded case: both criteria improve with width once the
    // per-device survival straddles the encoding fraction, so the
    // feasible widths form (approximately) an up-set.
    const double rT = engine::cachedWeibullSurvival(
        spec.device.alpha, spec.device.beta, static_cast<double>(t));
    if (rT <= spec.kFraction)
        return std::nullopt;
    if (!overshootSlack) {
        const double rD = engine::cachedWeibullSurvival(
            spec.device.alpha, spec.device.beta,
            static_cast<double>(tDead));
        if (rD >= spec.kFraction)
            return std::nullopt;
    }

    auto feasible = [&](uint64_t n) {
        if (overshootSlack) {
            return meetsMinReliability(n, t) &&
                   expectedOvershoot(n, thresholdFor(n), t) <=
                       *overshootSlack;
        }
        return feasibleWidth(n, t, tDead);
    };

    uint64_t hi = std::max<uint64_t>(
        2, static_cast<uint64_t>(std::ceil(2.0 / spec.kFraction)));
    uint64_t lo = 0;
    while (hi <= spec.maxWidth && !feasible(hi)) {
        lo = hi;
        hi *= 2;
    }
    if (hi > spec.maxWidth)
        return std::nullopt;

    while (hi - lo > 1) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (mid == 0 || !feasible(mid))
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

Design
DesignSolver::solve() const
{
    LEMONS_OBS_SCOPED_TIMER("core.solver.solve");
    LEMONS_OBS_INCREMENT("core.solver.solves");
    const uint64_t tMax =
        spec.maxPerCopyBound != 0
            ? spec.maxPerCopyBound
            : static_cast<uint64_t>(std::ceil(3.0 * spec.device.alpha)) + 16;

    Design best;
    for (uint64_t t = 1; t <= tMax; ++t) {
        if (t > spec.legitimateAccessBound)
            break; // copies would outlive the whole LAB
        const uint64_t copies = ceilDiv(spec.legitimateAccessBound, t);
        const uint64_t tDead = t + 1;

        std::optional<double> overshootSlack;
        if (spec.upperBoundTarget) {
            // Expected system total N*(t + overshoot) must stay at or
            // below the target.
            const double slack =
                (static_cast<double>(*spec.upperBoundTarget) -
                 static_cast<double>(copies) * static_cast<double>(t)) /
                static_cast<double>(copies);
            if (slack <= 0.0)
                continue;
            overshootSlack = slack;
        }

        const std::optional<uint64_t> width =
            minimalWidth(t, tDead, overshootSlack);
        if (!width)
            continue;
        const uint64_t total = *width * copies;
        // Primary objective: fewest devices. Tie-break: smallest
        // nominal capacity N*t, i.e. the least attacker headroom above
        // the LAB.
        const bool better =
            !best.feasible || total < best.totalDevices ||
            (total == best.totalDevices &&
             copies * t < best.copies * best.perCopyBound);
        if (better) {
            const uint64_t k = thresholdFor(*width);
            best.feasible = true;
            best.perCopyBound = t;
            best.width = *width;
            best.threshold = k;
            best.copies = copies;
            best.totalDevices = total;
            best.deathCheckAccess = tDead;
            best.reliabilityAtBound =
                copyReliability(*width, k, static_cast<double>(t));
            best.reliabilityPastBound =
                copyReliability(*width, k, static_cast<double>(tDead));
            best.expectedSystemTotal =
                static_cast<double>(copies) *
                (static_cast<double>(t) + expectedOvershoot(*width, k, t));
        }
    }
    if (!best.feasible)
        LEMONS_OBS_INCREMENT("core.solver.infeasible");
    return best;
}

} // namespace lemons::core
