#include "core/software_baseline.h"

#include "util/require.h"

namespace lemons::core {

SoftwareCounterPhone::SoftwareCounterPhone(const std::string &passcode,
                                           std::vector<uint8_t> storageKey,
                                           uint32_t wipeThreshold)
    : correctPasscode(passcode), key(std::move(storageKey)),
      threshold(wipeThreshold)
{
    requireArg(!key.empty(),
               "SoftwareCounterPhone: storage key must be non-empty");
    requireArg(wipeThreshold >= 1,
               "SoftwareCounterPhone: wipe threshold must be >= 1");
}

std::optional<std::vector<uint8_t>>
SoftwareCounterPhone::validate(const std::string &passcode)
{
    ++attempts;
    if (isWiped)
        return std::nullopt;
    if (passcode == correctPasscode)
        return key;
    return std::nullopt;
}

std::optional<std::vector<uint8_t>>
SoftwareCounterPhone::unlock(const std::string &passcode)
{
    auto result = validate(passcode);
    if (isWiped)
        return std::nullopt;
    if (result) {
        failures = 0;
        return result;
    }
    if (!guardDisabled) {
        ++failures;
        // The wipe destroys the key *on the device*; the bytes remain
        // in the model so a NAND-mirroring restore (which re-writes
        // the pre-wipe image, key blob included) can resurrect them —
        // exactly the published attack.
        if (failures >= threshold)
            isWiped = true;
    }
    return std::nullopt;
}

std::optional<std::vector<uint8_t>>
SoftwareCounterPhone::unlockWithPowerCut(const std::string &passcode)
{
    // The validation result is observed, but the counter commit never
    // happens (power removed first) — the MDSec attack.
    return validate(passcode);
}

SoftwareCounterPhone::NandSnapshot
SoftwareCounterPhone::takeNandSnapshot() const
{
    return {failures, isWiped};
}

void
SoftwareCounterPhone::restoreNandSnapshot(const NandSnapshot &snapshot)
{
    failures = snapshot.failureCounter;
    isWiped = snapshot.wiped;
}

void
SoftwareCounterPhone::applyMaliciousFirmwareUpdate()
{
    // Firmware updates install without the passcode (the paper's third
    // bypass); the new build simply never enforces the guard.
    guardDisabled = true;
    failures = 0;
}

std::string
attackerGuess(uint64_t rank)
{
    return "guess-" + std::to_string(rank);
}

BruteForceOutcome
nandMirroringBruteForce(SoftwareCounterPhone &phone, uint64_t maxAttempts)
{
    BruteForceOutcome outcome;
    const auto snapshot = phone.takeNandSnapshot();
    uint64_t guess = 1;
    while (outcome.attempts < maxAttempts) {
        // Burn a batch of guesses, then roll the counter back before
        // the wipe threshold can trigger.
        for (int inBatch = 0; inBatch < 9 && outcome.attempts < maxAttempts;
             ++inBatch, ++guess) {
            ++outcome.attempts;
            if (phone.unlock(attackerGuess(guess))) {
                outcome.cracked = true;
                return outcome;
            }
        }
        phone.restoreNandSnapshot(snapshot);
    }
    outcome.deviceDisabled = phone.wiped();
    return outcome;
}

BruteForceOutcome
naiveBruteForce(SoftwareCounterPhone &phone, uint64_t maxAttempts)
{
    BruteForceOutcome outcome;
    for (uint64_t guess = 1; guess <= maxAttempts; ++guess) {
        ++outcome.attempts;
        if (phone.unlock(attackerGuess(guess))) {
            outcome.cracked = true;
            return outcome;
        }
        if (phone.wiped()) {
            outcome.deviceDisabled = true;
            return outcome;
        }
    }
    return outcome;
}

} // namespace lemons::core
