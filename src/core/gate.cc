#include "core/gate.h"

#include "shamir/shamir16.h"
#include "util/require.h"

namespace lemons::core {

namespace {

/**
 * Shared fabrication body: FactoryT is either the ideal
 * wearout::DeviceFactory or the fault-injected
 * fault::FaultyDeviceFactory; GuardedShare has a constructor for each.
 */
template <typename FactoryT>
std::vector<std::vector<arch::GuardedShare>>
fabricateCopies(const Design &design, const FactoryT &factory,
                const std::vector<uint8_t> &secret, Rng &rng)
{
    requireArg(design.feasible, "LimitedUseGate: design is infeasible");
    requireArg(design.width >= 1 && design.width <= 65535,
               "LimitedUseGate: runtime gates support widths up to "
               "65,535 (GF(2^16) share indices); use the analytic "
               "models for wider designs");
    requireArg(!secret.empty(), "LimitedUseGate: secret must be non-empty");

    const shamir::WideScheme scheme(design.threshold, design.width);
    std::vector<std::vector<arch::GuardedShare>> copies;
    copies.reserve(design.copies);
    for (uint64_t c = 0; c < design.copies; ++c) {
        const std::vector<shamir::WideShare> shares =
            scheme.split(secret, rng);
        std::vector<arch::GuardedShare> guarded;
        guarded.reserve(design.width);
        for (const shamir::WideShare &share : shares) {
            // Serialized form carries the share's x coordinate, so
            // reconstruction works even after neighbours vanish.
            guarded.emplace_back(share.toBytes(), factory,
                                 /*destructive=*/false, rng);
        }
        copies.push_back(std::move(guarded));
    }
    return copies;
}

} // namespace

LimitedUseGate::LimitedUseGate(const Design &design,
                               const wearout::DeviceFactory &factory,
                               std::vector<uint8_t> secret, Rng &rng)
    : gateDesign(design), secretSize(secret.size())
{
    copyShares = fabricateCopies(design, factory, secret, rng);
}

LimitedUseGate::LimitedUseGate(const Design &design,
                               const fault::FaultyDeviceFactory &factory,
                               std::vector<uint8_t> secret, Rng &rng)
    : gateDesign(design), secretSize(secret.size())
{
    copyShares = fabricateCopies(design, factory, secret, rng);
}

std::optional<std::vector<uint8_t>>
LimitedUseGate::accessCopy(size_t copyIndex)
{
    std::vector<shamir::WideShare> collected;
    for (arch::GuardedShare &guarded : copyShares[copyIndex]) {
        const auto payload = guarded.access();
        if (!payload)
            continue;
        auto share = shamir::WideShare::fromBytes(*payload);
        if (share)
            collected.push_back(std::move(*share));
    }
    if (collected.size() < gateDesign.threshold)
        return std::nullopt;
    const shamir::WideScheme scheme(gateDesign.threshold, gateDesign.width);
    return scheme.combine(collected, secretSize);
}

GateHealth
LimitedUseGate::health() const
{
    GateHealth report;
    report.exhausted = exhausted();
    report.copiesRemaining = copyShares.size() - currentCopy;
    for (size_t c = currentCopy; c < copyShares.size(); ++c) {
        uint64_t stuck = 0;
        uint64_t alive = 0;
        for (const arch::GuardedShare &guarded : copyShares[c]) {
            if (guarded.stuckClosed())
                ++stuck;
            if (guarded.switchAlive())
                ++alive;
        }
        if (c == currentCopy) {
            report.activeAliveShares = alive;
            report.activeStuckShares = stuck;
            report.degraded = alive < gateDesign.width &&
                              alive >= gateDesign.threshold;
        }
        // A stuck-dominated copy anywhere ahead means the gate will
        // eventually serve accesses forever.
        if (stuck >= gateDesign.threshold)
            report.attackBoundViolated = true;
    }
    return report;
}

std::optional<std::vector<uint8_t>>
LimitedUseGate::access()
{
    ++accesses;
    while (currentCopy < copyShares.size()) {
        auto secret = accessCopy(currentCopy);
        if (secret)
            return secret;
        // The copy has degraded below threshold; wearout is permanent,
        // so retire it and fall through to the next copy within the
        // same access.
        ++currentCopy;
    }
    return std::nullopt;
}

} // namespace lemons::core
