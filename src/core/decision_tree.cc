#include "core/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "crypto/sha256.h"
#include "engine/cache.h"
#include "shamir/shamir.h"
#include "util/math.h"
#include "util/require.h"

namespace lemons::core {

namespace {

void
validateParams(const OtpParams &p)
{
    requireArg(p.height >= 1 && p.height <= 20,
               "OtpParams: height must lie in [1, 20]");
    requireArg(p.copies >= 1, "OtpParams: need at least one copy");
    requireArg(p.threshold >= 1 && p.threshold <= p.copies,
               "OtpParams: threshold must satisfy 1 <= k <= copies");
    requireArg(p.device.alpha > 0.0 && p.device.beta > 0.0,
               "OtpParams: device parameters must be positive");
}

} // namespace

OtpAnalytics::OtpAnalytics(const OtpParams &params) : spec(params)
{
    validateParams(spec);
    logPathSuccessValue =
        static_cast<double>(spec.height) *
        engine::cachedWeibullLogSurvival(spec.device.alpha,
                                         spec.device.beta, 1.0);
}

double
OtpAnalytics::pathSuccess() const
{
    return std::exp(logPathSuccessValue);
}

double
OtpAnalytics::receiverSuccess() const
{
    return binomialTailAtLeast(spec.copies, spec.threshold, pathSuccess());
}

double
OtpAnalytics::pathCount() const
{
    return std::ldexp(1.0, static_cast<int>(spec.height) - 1);
}

double
OtpAnalytics::logAdversarySuccess() const
{
    return logAdversarySuccessAt(pathSuccess());
}

double
OtpAnalytics::pathSuccessWithStuckClosed(double epsilon) const
{
    requireArg(epsilon >= 0.0 && epsilon <= 1.0,
               "OtpAnalytics: stuck-closed rate outside [0, 1]");
    const double perSwitch =
        epsilon + (1.0 - epsilon) *
                      engine::cachedWeibullSurvival(spec.device.alpha,
                                                    spec.device.beta, 1.0);
    // LEMONS-TIDY-ALLOW(T003): base varies with caller-chosen epsilon,
    // so a memo keyed on exact operand bits would rarely hit.
    return std::pow(perSwitch, static_cast<double>(spec.height));
}

double
OtpAnalytics::adversarySuccessWithStuckClosed(double epsilon) const
{
    return std::exp(
        logAdversarySuccessAt(pathSuccessWithStuckClosed(epsilon)));
}

double
OtpAnalytics::logAdversarySuccessAt(double s) const
{
    // Eq. 15: sum over x (paths the adversary gets through) of
    //   P(x successes out of n) * P(>= k of those x are the right path)
    // with per-copy traversal success s (Eq. 12) and right-path
    // probability P = 2^-(H-1) (Eq. 11).
    const double pRight = 1.0 / pathCount();
    std::vector<double> terms;
    terms.reserve(spec.copies - spec.threshold + 1);
    for (uint64_t x = spec.threshold; x <= spec.copies; ++x) {
        const double logProbX = logBinomialPmf(spec.copies, x, s);
        const double logProbRight =
            engine::cachedLogBinomialTailAtLeast(x, spec.threshold, pRight);
        terms.push_back(logProbX + logProbRight);
    }
    return logSumExp(terms);
}

double
OtpAnalytics::adversarySuccess() const
{
    return std::exp(logAdversarySuccess());
}

DecisionTree::DecisionTree(unsigned height,
                           std::vector<std::vector<uint8_t>> leafPayloads,
                           const wearout::DeviceFactory &factory, Rng &rng)
    : h(height)
{
    requireArg(height >= 1 && height <= 20,
               "DecisionTree: height must lie in [1, 20]");
    requireArg(leafPayloads.size() == leafCount(),
               "DecisionTree: need exactly 2^(H-1) leaf payloads");

    const uint64_t switchCount = (uint64_t{1} << h) - 1;
    switches.reserve(switchCount);
    for (uint64_t i = 0; i < switchCount; ++i)
        switches.emplace_back(factory.sampleLifetime(rng));

    leaves.reserve(leafPayloads.size());
    for (auto &payload : leafPayloads)
        leaves.emplace_back(std::move(payload), /*destructive=*/true);
}

std::optional<std::vector<uint8_t>>
DecisionTree::traverse(uint64_t pathBits)
{
    requireArg(pathBits < leafCount(),
               "DecisionTree::traverse: path out of range");
    ++traversals;
    for (unsigned level = 0; level < h; ++level) {
        // Level 0 is the entry switch; the first l path bits select the
        // node at level l.
        const uint64_t nodeIndex =
            level == 0 ? 0 : (pathBits & ((uint64_t{1} << level) - 1));
        const uint64_t offset = (uint64_t{1} << level) - 1;
        if (!switches[offset + nodeIndex].actuate())
            return std::nullopt; // path broken; deeper switches untouched
    }
    return leaves[pathBits].read();
}

OneTimePad::OneTimePad(const OtpParams &params,
                       const std::vector<uint8_t> &padKey,
                       uint64_t rightPath,
                       const wearout::DeviceFactory &factory, Rng &rng)
    : spec(params), secretPath(rightPath), keySize(padKey.size()),
      keyCommitment(crypto::sha256(padKey))
{
    validateParams(spec);
    requireArg(spec.copies <= 255,
               "OneTimePad: runtime pads support at most 255 copies "
               "(GF(2^8) share indices)");
    requireArg(!padKey.empty(), "OneTimePad: pad key must be non-empty");
    const uint64_t paths = uint64_t{1} << (spec.height - 1);
    requireArg(rightPath < paths, "OneTimePad: right path out of range");

    const shamir::Scheme scheme(spec.threshold, spec.copies);
    const std::vector<shamir::Share> shares = scheme.split(padKey, rng);

    trees.reserve(spec.copies);
    for (uint64_t c = 0; c < spec.copies; ++c) {
        std::vector<std::vector<uint8_t>> leafPayloads(paths);
        for (uint64_t leaf = 0; leaf < paths; ++leaf) {
            std::vector<uint8_t> payload(keySize + 1);
            if (leaf == secretPath) {
                payload[0] = shares[c].index;
                std::copy(shares[c].payload.begin(),
                          shares[c].payload.end(), payload.begin() + 1);
            } else {
                // Decoy: indistinguishable random bytes.
                for (auto &byte : payload)
                    byte = static_cast<uint8_t>(rng.nextBelow(256));
            }
            leafPayloads[leaf] = std::move(payload);
        }
        trees.emplace_back(spec.height, std::move(leafPayloads), factory,
                           rng);
    }
}

std::vector<std::vector<uint8_t>>
OneTimePad::collect(uint64_t pathBits)
{
    std::vector<std::vector<uint8_t>> payloads;
    for (DecisionTree &tree : trees) {
        auto payload = tree.traverse(pathBits);
        if (payload)
            payloads.push_back(std::move(*payload));
    }
    return payloads;
}

std::optional<std::vector<uint8_t>>
OneTimePad::combineShares(
    const std::vector<std::vector<uint8_t>> &payloads) const
{
    std::vector<shamir::Share> shares;
    for (const auto &payload : payloads) {
        if (payload.size() != keySize + 1)
            continue;
        shamir::Share share;
        share.index = payload[0];
        share.payload.assign(payload.begin() + 1, payload.end());
        shares.push_back(std::move(share));
    }
    if (shares.size() < spec.threshold)
        return std::nullopt;
    const shamir::Scheme scheme(spec.threshold, spec.copies);
    auto key = scheme.combine(shares);
    if (!key || crypto::sha256(*key) != keyCommitment)
        return std::nullopt; // decoy / corrupted reconstruction
    return key;
}

std::optional<std::vector<uint8_t>>
OneTimePad::retrieve(uint64_t pathBits)
{
    return combineShares(collect(pathBits));
}

std::optional<std::vector<uint8_t>>
OneTimePad::randomPathAttack(Rng &attackerRng)
{
    // Eq. 13-14's adversary model: one uniformly random path trial per
    // copy. We even over-credit the attacker by assuming they can tell
    // genuine shares from decoys, so the simulated success rate upper-
    // bounds the analytic one.
    const uint64_t paths = uint64_t{1} << (spec.height - 1);
    std::vector<std::vector<uint8_t>> genuine;
    for (DecisionTree &tree : trees) {
        const uint64_t guess = attackerRng.nextBelow(paths);
        auto payload = tree.traverse(guess);
        if (payload && guess == secretPath)
            genuine.push_back(std::move(*payload));
    }
    if (genuine.size() < spec.threshold)
        return std::nullopt;
    return combineShares(genuine);
}

} // namespace lemons::core
