/**
 * @file
 * Field-programmable limited-use gate — the paper's future work
 * (Section 3), implemented.
 *
 * The baseline architectures assume the secret is burned in at
 * fabrication, which forces users to trust the fab with their keys.
 * This gate ships *blank*: the switches and write-once (anti-fuse)
 * component stores are fabricated, but no secret exists yet. The end
 * user performs one-time programming in the field — the gate splits
 * the supplied secret and burns the shares into the stores through a
 * programming port, then blows a global programming fuse. Afterwards:
 *
 *  - reprogramming is physically impossible (every cell's write fuse
 *    and the global fuse are blown),
 *  - reads behave exactly like the fabrication-programmed gate: every
 *    access traverses the wearout switches,
 *  - a *blank* stolen gate is worthless, and a programmed one carries
 *    no fab-known secret.
 */

#ifndef LEMONS_CORE_PROGRAMMABLE_GATE_H_
#define LEMONS_CORE_PROGRAMMABLE_GATE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/share_store.h"
#include "core/design_solver.h"
#include "util/rng.h"
#include "wearout/device.h"
#include "wearout/population.h"

namespace lemons::core {

/**
 * A limited-use gate fabricated blank and one-time programmable in
 * the field.
 */
class ProgrammableGate
{
  public:
    /**
     * Fabricate blank hardware for @p design.
     *
     * @param design Feasible design (width <= 65,535).
     * @param factory Switch fabrication model.
     * @param rng Fabrication randomness (switch lifetimes only — no
     *        secrets exist at fabrication).
     */
    ProgrammableGate(const Design &design,
                     const wearout::DeviceFactory &factory, Rng &rng);

    /** Whether the one-time programming has happened. */
    bool programmed() const { return fuseBlown; }

    /**
     * One-time field programming: split @p secret (Shamir over
     * GF(2^16)) and burn the shares into the write-once stores, then
     * blow the global programming fuse.
     *
     * @param secret Secret bytes (non-empty).
     * @param rng End-user randomness for the share polynomials.
     * @return true on the first successful call; false once the fuse
     *         is blown (reprogramming attack, or double call).
     */
    bool programSecret(const std::vector<uint8_t> &secret, Rng &rng);

    /**
     * Access the secret through the wearout switches; same semantics
     * as LimitedUseGate::access(). A blank gate always returns
     * nullopt (but the actuations still wear the switches).
     */
    std::optional<std::vector<uint8_t>> access();

    /** Total access() calls. */
    uint64_t accessCount() const { return accesses; }

    /** Whether every copy has worn out. */
    bool exhausted() const { return currentCopy >= copies.size(); }

    /** The design this gate was fabricated from. */
    const Design &design() const { return gateDesign; }

  private:
    /** One blank (then programmed) component cell. */
    struct Cell
    {
        wearout::NemsSwitch guard;
        arch::WriteOnceStore store;

        Cell(double lifetime, bool destructive)
            : guard(lifetime), store(destructive)
        {
        }
    };

    Design gateDesign;
    std::vector<std::vector<Cell>> copies;
    bool fuseBlown = false;
    size_t secretSize = 0;
    size_t currentCopy = 0;
    uint64_t accesses = 0;

    std::optional<std::vector<uint8_t>> accessCopy(size_t copyIndex);
};

} // namespace lemons::core

#endif // LEMONS_CORE_PROGRAMMABLE_GATE_H_
