/**
 * @file
 * Runtime limited-use gate: the hardware object every use case wraps.
 *
 * A gate holds a secret that can only be obtained by traversing
 * wearout hardware: N copies, each a k-out-of-n parallel structure of
 * NEMS-guarded share stores, consumed serially (Section 4.1). Every
 * access — legitimate or adversarial — actuates the current copy's
 * switches; once all copies have degraded below their threshold the
 * secret is gone forever.
 *
 * The secret is Shamir-split per copy, so fewer than k surviving
 * shares reveal nothing (Section 4.1.4).
 */

#ifndef LEMONS_CORE_GATE_H_
#define LEMONS_CORE_GATE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/share_store.h"
#include "core/design_solver.h"
#include "fault/faulty_device.h"
#include "util/rng.h"
#include "wearout/population.h"

namespace lemons::core {

/**
 * Degraded-but-alive condition of a gate. Binary dead/alive hides the
 * two states fault injection cares about: a gate eroded below full
 * redundancy but still serving, and a gate whose attack bound is gone
 * because enough fail-short shares survive forever.
 */
struct GateHealth
{
    /** No copy can reconstruct the secret any more. */
    bool exhausted = false;
    /** The active copy lost shares but still meets its threshold. */
    bool degraded = false;
    /** Copies not yet retired (including the active one). */
    uint64_t copiesRemaining = 0;
    /** Shares of the active copy whose switch would still close. */
    uint64_t activeAliveShares = 0;
    /** Fail-short shares of the active copy. */
    uint64_t activeStuckShares = 0;
    /**
     * Whether some remaining copy holds >= threshold stuck-closed
     * shares: the secret will stay reconstructible forever, so the
     * paper's access upper bound no longer holds.
     */
    bool attackBoundViolated = false;
};

/**
 * Hardware-enforced limited-use access to a secret.
 *
 * Construction fabricates all copies up front (as a real chip would at
 * manufacture time); memory is O(copies * width * secret size).
 */
class LimitedUseGate
{
  public:
    /**
     * @param design Feasible design from DesignSolver; width up to
     *        65,535 (shares are split over GF(2^16), covering even the
     *        widest beta = 4 encoded designs of Fig 4b).
     * @param factory Device fabrication model.
     * @param secret Secret bytes to protect (non-empty).
     * @param rng Randomness for fabrication and share splitting.
     */
    LimitedUseGate(const Design &design,
                   const wearout::DeviceFactory &factory,
                   std::vector<uint8_t> secret, Rng &rng);

    /**
     * Fault-injected fabrication: every guarding switch is drawn from
     * @p factory 's fault plan. Bit-identical to the ideal constructor
     * under a null plan (same seed).
     */
    LimitedUseGate(const Design &design,
                   const fault::FaultyDeviceFactory &factory,
                   std::vector<uint8_t> secret, Rng &rng);

    /**
     * One traversal of the gate: actuates every switch in the current
     * copy, reconstructs the secret from >= k surviving shares, and
     * falls through to the next copy when the current one has worn
     * out.
     *
     * @return The secret, or nullopt once every copy is exhausted.
     */
    std::optional<std::vector<uint8_t>> access();

    /** Total access() calls so far. */
    uint64_t accessCount() const { return accesses; }

    /** Copies already worn out. */
    uint64_t copiesExhausted() const { return currentCopy; }

    /** Whether the secret is still retrievable at all. */
    bool exhausted() const { return currentCopy >= copyShares.size(); }

    /**
     * Non-consuming health probe: reports the active copy's share
     * attrition and whether any remaining copy is stuck-closed-
     * dominated (attack bound gone). Costs no gate access.
     */
    GateHealth health() const;

    /** The design this gate was fabricated from. */
    const Design &design() const { return gateDesign; }

  private:
    Design gateDesign;
    /** copyShares[c][i]: guarded share i of copy c. */
    std::vector<std::vector<arch::GuardedShare>> copyShares;
    size_t currentCopy = 0;
    uint64_t accesses = 0;

    /** Try to reconstruct from the copy at @p copyIndex. */
    std::optional<std::vector<uint8_t>> accessCopy(size_t copyIndex);

    size_t secretSize;
};

} // namespace lemons::core

#endif // LEMONS_CORE_GATE_H_
