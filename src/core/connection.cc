#include "core/connection.h"

#include "crypto/hmac.h"
#include "util/require.h"

namespace lemons::core {

namespace {

/** Generate a random chip secret baked into the gate at fabrication. */
std::vector<uint8_t>
makeChipSecret(Rng &rng)
{
    std::vector<uint8_t> secret(32);
    for (auto &byte : secret)
        byte = static_cast<uint8_t>(rng.nextBelow(256));
    return secret;
}

} // namespace

LimitedUseConnection::LimitedUseConnection(
    const Design &design, const wearout::DeviceFactory &factory,
    const std::string &passcode, std::vector<uint8_t> storageKey, Rng &rng)
    : LimitedUseConnection(
          design, fault::FaultyDeviceFactory(factory, fault::FaultPlan::none()),
          passcode, std::move(storageKey), rng)
{
}

LimitedUseConnection::LimitedUseConnection(
    const Design &design, const fault::FaultyDeviceFactory &factory,
    const std::string &passcode, std::vector<uint8_t> storageKey, Rng &rng)
    : LimitedUseConnection(design, factory, passcode, std::move(storageKey),
                           makeChipSecret(rng), rng)
{
}

LimitedUseConnection::LimitedUseConnection(
    const Design &design, const fault::FaultyDeviceFactory &factory,
    const std::string &passcode, std::vector<uint8_t> storageKey,
    const std::vector<uint8_t> &chipSecret, Rng &rng)
    : gate(design, factory, chipSecret, rng)
{
    requireArg(!storageKey.empty(),
               "LimitedUseConnection: storage key must be non-empty");
    // Provisioning happens at fabrication time, when the chip secret
    // is still known outside the gate (Section 3: secrets are one-time
    // programmed at fabrication), so wrapping consumes no gate access.
    // The fabrication-time copy of the secret dies with this frame.
    wrap(passcode, chipSecret, storageKey);
    verifierTag = makeVerifier(storageKey);
}

std::vector<uint8_t>
LimitedUseConnection::deriveWrapKey(const std::string &passcode,
                                    const std::vector<uint8_t> &chipSecret,
                                    size_t length)
{
    const std::vector<uint8_t> ikm(passcode.begin(), passcode.end());
    return crypto::deriveKey(ikm, chipSecret, "lemons.connection.wrap",
                             length);
}

std::vector<uint8_t>
LimitedUseConnection::makeVerifier(const std::vector<uint8_t> &storageKey)
{
    const std::string label = "lemons.connection.verify";
    const crypto::Digest tag = crypto::hmacSha256(
        storageKey, std::vector<uint8_t>(label.begin(), label.end()));
    return {tag.begin(), tag.end()};
}

void
LimitedUseConnection::wrap(const std::string &passcode,
                           const std::vector<uint8_t> &chipSecret,
                           const std::vector<uint8_t> &storageKey)
{
    const std::vector<uint8_t> wrapKey =
        deriveWrapKey(passcode, chipSecret, storageKey.size());
    wrappedKey.resize(storageKey.size());
    for (size_t i = 0; i < storageKey.size(); ++i)
        wrappedKey[i] = storageKey[i] ^ wrapKey[i];
}

std::optional<std::vector<uint8_t>>
LimitedUseConnection::unlock(const std::string &passcode)
{
    ++attempts;
    const auto chipSecret = gate.access();
    if (!chipSecret)
        return std::nullopt; // hardware worn out: bricked forever

    const std::vector<uint8_t> wrapKey =
        deriveWrapKey(passcode, *chipSecret, wrappedKey.size());
    std::vector<uint8_t> candidate(wrappedKey.size());
    for (size_t i = 0; i < wrappedKey.size(); ++i)
        candidate[i] = wrappedKey[i] ^ wrapKey[i];

    if (makeVerifier(candidate) != verifierTag)
        return std::nullopt; // wrong passcode (attempt still consumed)
    return candidate;
}

bool
LimitedUseConnection::changePasscode(const std::string &oldPasscode,
                                     const std::string &newPasscode)
{
    const auto storageKey = unlock(oldPasscode);
    if (!storageKey)
        return false;
    const auto chipSecret = gate.access();
    if (!chipSecret)
        return false;
    wrap(newPasscode, *chipSecret, *storageKey);
    return true;
}

} // namespace lemons::core
