/**
 * @file
 * The software-guarded baseline the paper attacks (Section 4).
 *
 * iOS-style passcode protection: a retry counter in mutable storage,
 * escalating delays, and a wipe after 10 consecutive failures. The
 * paper cites three published bypasses, all of which this model
 * reproduces so the benchmarks can contrast them with the wearout
 * hardware:
 *
 *  - MDSec power-cut: cut power after the passcode check but before
 *    the counter increment is committed — the failure is never
 *    recorded,
 *  - NAND mirroring (Skorobogatov): snapshot the flash, attempt a few
 *    guesses, restore the snapshot — the counter rolls back,
 *  - firmware update: boot a build whose guard logic is disabled.
 *
 * None of these help against the limited-use connection: there is no
 * counter to skip, snapshot, or disable — the "counter" is the worn
 * state of physical devices.
 */

#ifndef LEMONS_CORE_SOFTWARE_BASELINE_H_
#define LEMONS_CORE_SOFTWARE_BASELINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lemons::core {

/**
 * A phone protected only by software policy around a passcode check.
 */
class SoftwareCounterPhone
{
  public:
    /**
     * @param passcode The user's passcode.
     * @param storageKey Key released on successful unlock (non-empty).
     * @param wipeThreshold Consecutive failures before the data wipe.
     */
    SoftwareCounterPhone(const std::string &passcode,
                         std::vector<uint8_t> storageKey,
                         uint32_t wipeThreshold = 10);

    /**
     * Normal unlock attempt through the official interface: counts
     * failures, wipes at the threshold.
     */
    std::optional<std::vector<uint8_t>> unlock(const std::string &passcode);

    /**
     * MDSec-style attempt: the passcode is validated but power is cut
     * before the counter commit, so a failure is never recorded.
     */
    std::optional<std::vector<uint8_t>>
    unlockWithPowerCut(const std::string &passcode);

    /** Snapshot of the mutable guard state (the "NAND image"). */
    struct NandSnapshot
    {
        uint32_t failureCounter;
        bool wiped;
    };

    /** Take a NAND snapshot (attacker with chip-off access). */
    NandSnapshot takeNandSnapshot() const;

    /** Restore a previously taken snapshot (NAND mirroring). */
    void restoreNandSnapshot(const NandSnapshot &snapshot);

    /**
     * Flash a firmware build without the guard logic: counter and
     * wipe are disabled from now on.
     */
    void applyMaliciousFirmwareUpdate();

    /** Whether the wipe has triggered (data gone). */
    bool wiped() const { return isWiped; }

    /** Consecutive failures currently recorded. */
    uint32_t failureCount() const { return failures; }

    /** Total attempts ever made (for reporting; not guard state). */
    uint64_t attemptCount() const { return attempts; }

  private:
    std::string correctPasscode;
    std::vector<uint8_t> key;
    uint32_t threshold;
    uint32_t failures = 0;
    bool isWiped = false;
    bool guardDisabled = false;
    uint64_t attempts = 0;

    std::optional<std::vector<uint8_t>>
    validate(const std::string &passcode);
};

/** Outcome of a brute-force campaign. */
struct BruteForceOutcome
{
    bool cracked = false;       ///< storage key obtained
    uint64_t attempts = 0;      ///< passcode validations performed
    bool deviceDisabled = false; ///< wiped (software) / bricked (HW)
};

/**
 * The attacker's i-th popularity-ordered guess string. Provision the
 * victim phone with attackerGuess(rank) to model a passcode that is
 * @p rank guesses deep in the attacker's list.
 */
std::string attackerGuess(uint64_t rank);

/**
 * Brute-force the software baseline using NAND mirroring: snapshot,
 * burn a batch of guesses, restore, repeat, up to @p maxAttempts.
 * The victim's passcode rank is realized by provisioning the phone
 * with attackerGuess(rank).
 */
BruteForceOutcome nandMirroringBruteForce(SoftwareCounterPhone &phone,
                                          uint64_t maxAttempts);

/**
 * The same campaign through the official interface (no bypass): the
 * wipe stops it at the threshold.
 */
BruteForceOutcome naiveBruteForce(SoftwareCounterPhone &phone,
                                  uint64_t maxAttempts);

} // namespace lemons::core

#endif // LEMONS_CORE_SOFTWARE_BASELINE_H_
