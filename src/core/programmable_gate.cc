#include "core/programmable_gate.h"

#include "shamir/shamir16.h"
#include "util/require.h"

namespace lemons::core {

ProgrammableGate::ProgrammableGate(const Design &design,
                                   const wearout::DeviceFactory &factory,
                                   Rng &rng)
    : gateDesign(design)
{
    requireArg(design.feasible, "ProgrammableGate: design is infeasible");
    requireArg(design.width >= 1 && design.width <= 65535,
               "ProgrammableGate: width must lie in [1, 65535]");

    copies.reserve(design.copies);
    for (uint64_t c = 0; c < design.copies; ++c) {
        std::vector<Cell> cells;
        cells.reserve(design.width);
        for (uint64_t i = 0; i < design.width; ++i) {
            cells.emplace_back(factory.sampleLifetime(rng),
                               /*destructive=*/false);
        }
        copies.push_back(std::move(cells));
    }
}

bool
ProgrammableGate::programSecret(const std::vector<uint8_t> &secret,
                                Rng &rng)
{
    requireArg(!secret.empty(),
               "ProgrammableGate::programSecret: secret must be non-empty");
    if (fuseBlown)
        return false; // global programming fuse already blown

    const shamir::WideScheme scheme(gateDesign.threshold, gateDesign.width);
    for (auto &cells : copies) {
        const std::vector<shamir::WideShare> shares =
            scheme.split(secret, rng);
        for (uint64_t i = 0; i < gateDesign.width; ++i) {
            const bool burned =
                cells[i].store.program(shares[i].toBytes());
            requireState(burned,
                         "ProgrammableGate: blank cell refused program");
        }
    }
    secretSize = secret.size();
    fuseBlown = true;
    return true;
}

std::optional<std::vector<uint8_t>>
ProgrammableGate::accessCopy(size_t copyIndex)
{
    std::vector<shamir::WideShare> collected;
    for (Cell &cell : copies[copyIndex]) {
        if (!cell.guard.actuate())
            continue;
        const auto payload = cell.store.read();
        if (!payload)
            continue;
        auto share = shamir::WideShare::fromBytes(*payload);
        if (share)
            collected.push_back(std::move(*share));
    }
    if (collected.size() < gateDesign.threshold)
        return std::nullopt;
    const shamir::WideScheme scheme(gateDesign.threshold, gateDesign.width);
    return scheme.combine(collected, secretSize);
}

std::optional<std::vector<uint8_t>>
ProgrammableGate::access()
{
    ++accesses;
    if (!fuseBlown) {
        // Blank gate: the traversal still wears the current copy's
        // switches (an attacker probing a blank gate burns its life),
        // but there is nothing to read.
        if (currentCopy < copies.size()) {
            bool anyAlive = false;
            for (Cell &cell : copies[currentCopy]) {
                if (cell.guard.actuate())
                    anyAlive = true;
            }
            if (!anyAlive)
                ++currentCopy;
        }
        return std::nullopt;
    }
    while (currentCopy < copies.size()) {
        auto secret = accessCopy(currentCopy);
        if (secret)
            return secret;
        ++currentCopy;
    }
    return std::nullopt;
}

} // namespace lemons::core
