/**
 * @file
 * A whole one-time-pad chip and the sender's matching pad book
 * (paper Sections 6.1, 6.5).
 *
 * "The chip that contains many decision trees (many random keys) is
 * our new set of one-time pads that should be delivered to the
 * receiver beforehand for many instances of potential message
 * transmission."
 *
 * Fabrication produces two artifacts:
 *  - OneTimePadChip — the hardware the courier carries: pad slots of
 *    n decision-tree copies each, sized to a die-area budget via the
 *    cost model,
 *  - PadBook — the sender's secret record: per-slot pad key and path
 *    string (the "short strings" transmitted over a separate
 *    channel).
 *
 * The chip-level API enforces the one-time-pad discipline: a slot is
 * spent on first retrieval, successful or not.
 */

#ifndef LEMONS_CORE_OTP_CHIP_H_
#define LEMONS_CORE_OTP_CHIP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/cost_model.h"
#include "core/decision_tree.h"
#include "util/rng.h"

namespace lemons::core {

/** The sender's per-slot secret record. */
struct PadRecord
{
    std::vector<uint8_t> key; ///< pad key (sender's copy)
    uint64_t path;            ///< short path string shared out-of-band

    /** Path bits rendered as the Fig 6 string ('0' left, '1' right). */
    std::string pathString(unsigned height) const;
};

/** The sender's book of pad records, indexed by chip slot. */
class PadBook
{
  public:
    /** Number of pads recorded. */
    size_t size() const { return records.size(); }

    /** Record for slot @p slot. @pre slot < size(). */
    const PadRecord &record(size_t slot) const;

    /** Append a record (used by fabrication). */
    void add(PadRecord record) { records.push_back(std::move(record)); }

  private:
    std::vector<PadRecord> records;
};

/**
 * The receiver-side chip: an array of one-time pads.
 */
class OneTimePadChip
{
  public:
    /**
     * Fabricate a chip with @p padCount pad slots.
     *
     * @param params Per-pad architecture (height, copies, threshold,
     *        device).
     * @param padCount Number of pad slots (>= 1).
     * @param keyBytes Pad key length in bytes (>= 1).
     * @param factory Switch fabrication model.
     * @param rng Fabrication randomness (keys, paths, lifetimes).
     * @param book Receives the sender-side records.
     */
    OneTimePadChip(const OtpParams &params, size_t padCount,
                   size_t keyBytes, const wearout::DeviceFactory &factory,
                   Rng &rng, PadBook &book);

    /** Number of pad slots on the chip. */
    size_t padCount() const { return pads.size(); }

    /** Whether slot @p slot has been consumed. */
    bool spent(size_t slot) const;

    /** Pad slots not yet consumed. */
    size_t remaining() const;

    /**
     * Retrieve the pad key of @p slot by traversing its decision
     * trees along @p pathBits. Marks the slot spent regardless of
     * outcome (the traversal consumed the hardware).
     *
     * @return The pad key, or nullopt (wrong path / degraded / spent).
     */
    std::optional<std::vector<uint8_t>> retrievePad(size_t slot,
                                                    uint64_t pathBits);

    /**
     * Adversarial random-path sweep over every unspent slot (the evil
     * maid with the whole chip for a night). Returns how many pad keys
     * the attacker actually recovered; all touched slots are spent.
     */
    size_t randomPathSweep(Rng &attackerRng);

    /** Die area of this chip under @p model (mm^2). */
    double areaMm2(const arch::CostModel &model) const;

    /** The per-pad architecture parameters. */
    const OtpParams &params() const { return spec; }

  private:
    OtpParams spec;
    std::vector<OneTimePad> pads;
    std::vector<bool> spentFlags;
};

/**
 * Fabricate the largest chip that fits @p dieAreaMm2 under @p model,
 * writing sender records into @p book. Returns nullopt when not even
 * one pad fits.
 */
std::optional<OneTimePadChip>
fabricateChipForArea(const OtpParams &params, double dieAreaMm2,
                     size_t keyBytes, const wearout::DeviceFactory &factory,
                     const arch::CostModel &model, Rng &rng, PadBook &book);

} // namespace lemons::core

#endif // LEMONS_CORE_OTP_CHIP_H_
