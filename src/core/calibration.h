/**
 * @file
 * Device-calibration workflow (paper Sections 2.2 and 7).
 *
 * "The two parameters can be estimated by fitting the lifetime data of
 * a large population of similar devices" (§2.2) and "we need
 * experimental data to validate the range of parameters" (§7). This
 * module closes that loop: given observed lifetimes from a fabricated
 * lot (qualification testing, returned units), it
 *
 *  1. fits a Weibull to the field data (maximum likelihood),
 *  2. evaluates whether the *nominal* design — solved under the
 *     assumed parameters — still meets its degradation criteria on
 *     the fitted population, and
 *  3. re-solves the design against the fitted parameters.
 *
 * The report quantifies the fabrication-cost / architecture-cost
 * trade-off: ship the lot with a recalibrated (possibly larger)
 * architecture, or reject the lot and pay for tighter fabrication.
 */

#ifndef LEMONS_CORE_CALIBRATION_H_
#define LEMONS_CORE_CALIBRATION_H_

#include <vector>

#include "core/design_solver.h"
#include "wearout/device.h"

namespace lemons::core {

/** Output of calibrateAndRedesign. */
struct CalibrationReport
{
    /** Parameters fitted to the observed lifetimes. */
    wearout::DeviceSpec fitted{0.0, 0.0};

    /** The design solved under the originally assumed parameters. */
    Design nominalDesign;

    /**
     * The nominal design's reliability at its access bound, evaluated
     * under the *fitted* device model (what the lot will actually do).
     */
    double nominalReliabilityAtBound = 0.0;

    /** Residual reliability past the bound under the fitted model. */
    double nominalResidualPastBound = 0.0;

    /** Whether the nominal design still meets the request's criteria
     *  on the fitted population. */
    bool nominalStillMeetsCriteria = false;

    /** The design re-solved against the fitted parameters. */
    Design recalibratedDesign;

    /**
     * Device-count ratio recalibrated / nominal — the architectural
     * price of the lot's drift (1.0 = no change; infeasible
     * recalibration leaves this at 0).
     */
    double redesignCostRatio = 0.0;
};

/**
 * Fit @p observedLifetimes, audit the nominal design, and re-solve.
 *
 * @param observedLifetimes Field lifetime data in cycles (>= 2
 *        positive observations; hundreds+ for meaningful fits).
 * @param assumed The original design request (its device field holds
 *        the assumed parameters).
 */
CalibrationReport
calibrateAndRedesign(const std::vector<double> &observedLifetimes,
                     const DesignRequest &assumed);

} // namespace lemons::core

#endif // LEMONS_CORE_CALIBRATION_H_
