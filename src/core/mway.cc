#include "core/mway.h"

#include "lint/rules.h"

namespace lemons::core {

MWayReplication::MWayReplication(uint64_t mFactor, const Design &design,
                                 const wearout::DeviceFactory &factory,
                                 const std::string &initialPasscode,
                                 std::vector<uint8_t> storageKey, Rng &rng)
    : MWayReplication(
          mFactor, design,
          fault::FaultyDeviceFactory(factory, fault::FaultPlan::none()),
          initialPasscode, std::move(storageKey), rng)
{
}

MWayReplication::MWayReplication(uint64_t mFactor, const Design &design,
                                 const fault::FaultyDeviceFactory &factory,
                                 const std::string &initialPasscode,
                                 std::vector<uint8_t> storageKey, Rng &rng)
    : m(mFactor), moduleDesign(design), deviceFactory(factory),
      fabricationRng(rng.split(0x4d574159)) // "MWAY"
{
    // L501: at least one module (composition limits, lint/rules.h).
    lint::checkMwayOrThrow(mFactor);
    // Module 0 is provisioned now; the storage key is then discarded —
    // afterwards it only ever exists transiently during unlock and
    // migration, as it would in a real system.
    current = std::make_unique<LimitedUseConnection>(
        moduleDesign, deviceFactory, initialPasscode, std::move(storageKey),
        fabricationRng);
}

std::optional<std::vector<uint8_t>>
MWayReplication::unlock(const std::string &passcode)
{
    if (dead)
        return std::nullopt;
    auto key = current->unlock(passcode);
    if (current->bricked() && active + 1 >= m)
        dead = true;
    return key;
}

bool
MWayReplication::migrate(const std::string &currentPasscode,
                         const std::string &newPasscode)
{
    if (dead || active + 1 >= m)
        return false;
    const auto key = current->unlock(currentPasscode);
    if (!key)
        return false;
    ++active;
    ++migrations;
    current = std::make_unique<LimitedUseConnection>(
        moduleDesign, deviceFactory, newPasscode, *key,
        fabricationRng);
    return true;
}

bool
MWayReplication::exhausted() const
{
    return dead || (current->bricked() && active + 1 >= m);
}

MWayHealth
MWayReplication::health() const
{
    MWayHealth report;
    report.exhausted = exhausted();
    report.activeModule = active;
    report.modulesRemaining = m - active;
    report.activeGate = current->health();
    return report;
}

uint64_t
MWayReplication::scaledDailyBound(uint64_t singleModuleDaily, uint64_t modules)
{
    return singleModuleDaily * modules;
}

} // namespace lemons::core
