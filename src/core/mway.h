/**
 * @file
 * M-way module replication (paper Section 4.1.5).
 *
 * A single limited-use connection supports ~50 accesses/day over the
 * device lifetime. Heavier users get M replicated modules consumed
 * serially: each module employs its own passcode, so an attacker can
 * only push each module to its own upper bound, while the legitimate
 * user enjoys the *sum* of the lower bounds. Migrating to the next
 * module requires choosing a new passcode and re-wrapping the storage
 * key (the paper's "re-encrypt storage every 6 months" example for
 * M = 10).
 */

#ifndef LEMONS_CORE_MWAY_H_
#define LEMONS_CORE_MWAY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/connection.h"

namespace lemons::core {

/** Degraded-but-alive condition of an M-way replicated system. */
struct MWayHealth
{
    /** Every module consumed or abandoned. */
    bool exhausted = false;
    /** Index of the active module. */
    uint64_t activeModule = 0;
    /** Modules not yet consumed or abandoned (including the active). */
    uint64_t modulesRemaining = 0;
    /** Gate condition of the active module. */
    GateHealth activeGate{};
};

/**
 * M serially-consumed limited-use connection modules sharing one
 * storage key.
 */
class MWayReplication
{
  public:
    /**
     * Fabricate @p m modules. Module 0 is provisioned with
     * @p initialPasscode; later modules are provisioned lazily at
     * migration time with the passcodes the user chooses then.
     *
     * @param m Replication factor (>= 1).
     * @param design Per-module design.
     * @param factory Device fabrication model.
     * @param initialPasscode Passcode for module 0.
     * @param storageKey The storage key every module protects.
     * @param rng Fabrication randomness.
     */
    MWayReplication(uint64_t m, const Design &design,
                    const wearout::DeviceFactory &factory,
                    const std::string &initialPasscode,
                    std::vector<uint8_t> storageKey, Rng &rng);

    /**
     * Fault-injected fabrication: every module (including ones
     * provisioned lazily at migration) is built under @p factory 's
     * fault plan.
     */
    MWayReplication(uint64_t m, const Design &design,
                    const fault::FaultyDeviceFactory &factory,
                    const std::string &initialPasscode,
                    std::vector<uint8_t> storageKey, Rng &rng);

    /**
     * Unlock through the active module. Consumes one of its accesses.
     */
    std::optional<std::vector<uint8_t>> unlock(const std::string &passcode);

    /**
     * Migrate to the next module with a fresh passcode. Requires a
     * successful unlock with the current passcode (the storage key
     * must be in hand to re-wrap it). The retired module is abandoned
     * even if it had residual life.
     *
     * @return true on success; false when the passcode is wrong, the
     *         active module is dead, or no modules remain.
     */
    bool migrate(const std::string &currentPasscode,
                 const std::string &newPasscode);

    /** Index of the active module (0-based). */
    uint64_t activeModule() const { return active; }

    /** Number of modules (fabricated + remaining blanks). */
    uint64_t moduleCount() const { return m; }

    /** Re-encryption (migration) events so far. */
    uint64_t migrationCount() const { return migrations; }

    /** Whether every module has been consumed or abandoned. */
    bool exhausted() const;

    /**
     * Degraded-but-alive report: module attrition plus the active
     * module's gate condition (share erosion, stuck-closed
     * compromise). Costs no accesses.
     */
    MWayHealth health() const;

    /**
     * Aggregate daily usage supported: M times the single-module
     * bound, the paper's headline scaling (e.g. 50 -> 500 per day at
     * M = 10).
     */
    static uint64_t scaledDailyBound(uint64_t singleModuleDaily, uint64_t modules);

  private:
    uint64_t m;
    Design moduleDesign;
    fault::FaultyDeviceFactory deviceFactory;
    Rng fabricationRng;
    std::unique_ptr<LimitedUseConnection> current;
    uint64_t active = 0;
    uint64_t migrations = 0;
    bool dead = false;
};

} // namespace lemons::core

#endif // LEMONS_CORE_MWAY_H_
