#include "core/usage_bounds.h"

#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "util/require.h"
#include "util/stats.h"

namespace lemons::core {

UsageBounds
estimateUsageBounds(const Design &design, const wearout::DeviceSpec &device,
                    const wearout::ProcessVariation &variation,
                    uint64_t trials, uint64_t seed)
{
    requireArg(design.feasible, "estimateUsageBounds: design is infeasible");
    const wearout::DeviceFactory factory(device, variation);
    const sim::MonteCarlo mc(seed, trials);

    const sim::TrialReport report = mc.run(
        [&](Rng &rng) {
            return static_cast<double>(arch::sampleSerialCopiesTotalAccesses(
                factory, design.width, design.threshold, design.copies,
                rng));
        },
        {.threads = 0, .faults = sim::FaultPolicy::Rethrow});

    UsageBounds bounds;
    bounds.meanTotalAccesses = report.stats.mean();
    bounds.minTotalAccesses = report.stats.min();
    bounds.maxTotalAccesses = report.stats.max();
    bounds.q001 = quantile(report.samples, 0.001);
    bounds.q999 = quantile(report.samples, 0.999);
    bounds.trials = trials;
    return bounds;
}

} // namespace lemons::core
