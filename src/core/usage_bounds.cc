#include "core/usage_bounds.h"

#include "arch/structures_sim.h"
#include "sim/monte_carlo.h"
#include "util/require.h"
#include "util/stats.h"

namespace lemons::core {

UsageBounds
estimateUsageBounds(const Design &design, const wearout::DeviceSpec &device,
                    const wearout::ProcessVariation &variation,
                    uint64_t trials, uint64_t seed)
{
    requireArg(design.feasible, "estimateUsageBounds: design is infeasible");
    const wearout::DeviceFactory factory(device, variation);
    const sim::MonteCarlo engine(seed, trials);

    const std::vector<double> samples =
        engine.runSamplesParallel([&](Rng &rng) {
            return static_cast<double>(arch::sampleSerialCopiesTotalAccesses(
                factory, design.width, design.threshold, design.copies,
                rng));
        });

    RunningStats stats;
    for (double s : samples)
        stats.add(s);

    UsageBounds bounds;
    bounds.meanTotalAccesses = stats.mean();
    bounds.minTotalAccesses = stats.min();
    bounds.maxTotalAccesses = stats.max();
    bounds.q001 = quantile(samples, 0.001);
    bounds.q999 = quantile(samples, 0.999);
    bounds.trials = trials;
    return bounds;
}

} // namespace lemons::core
