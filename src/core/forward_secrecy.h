/**
 * @file
 * Forward-secret sealed archive on single-use key gates — the paper's
 * introductory motivation (Section 1) as a library component.
 *
 * Each message is encrypted under its own random key; the key lives
 * behind a single-use wearout gate (LAB = 1). Reading a message
 * consumes its gate forever, so seizing the archive later reveals
 * nothing about already-read messages — forward secrecy enforced by
 * physics rather than by software key-deletion discipline (which
 * "cannot defend against reusing or stealthy replications of the
 * keys", Section 1).
 */

#ifndef LEMONS_CORE_FORWARD_SECRECY_H_
#define LEMONS_CORE_FORWARD_SECRECY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/design_solver.h"
#include "core/gate.h"
#include "util/rng.h"
#include "wearout/population.h"

namespace lemons::core {

/**
 * An append-only archive whose per-message keys are single-use.
 */
class SealedArchive
{
  public:
    /**
     * @param factory Switch fabrication model for the key gates.
     * @param seed Master seed for fabrication/keys.
     * @param gateDesign Optional design for the per-message gates;
     *        defaults to a strict single-use design on ~1.3-cycle
     *        devices. Must have legitimateAccessBound semantics of 1
     *        use per message read.
     */
    explicit SealedArchive(const wearout::DeviceFactory &factory,
                           uint64_t seed,
                           std::optional<Design> gateDesign = {});

    /** The default single-use gate design (LAB = 1). */
    static Design defaultSingleUseDesign();

    /** The device spec the default design assumes. */
    static wearout::DeviceSpec defaultDeviceSpec();

    /**
     * Encrypt and append @p plaintext; a fresh random key is burned
     * into a new single-use gate.
     *
     * @return The message's archive index.
     */
    size_t append(const std::string &plaintext);

    /** Number of archived messages. */
    size_t size() const { return entries.size(); }

    /**
     * Read message @p index: pulls the key through its gate (consuming
     * it), decrypts, and returns the plaintext. Subsequent reads of
     * the same message fail forever.
     */
    std::optional<std::string> read(size_t index);

    /**
     * Whether message @p index has been opened (its single-use key
     * consumed) or its gate has worn out — either way the ciphertext
     * is sealed forever.
     */
    bool sealed(size_t index) const;

    /**
     * Adversarial seizure: try to read every message (consuming all
     * remaining gates). Returns the plaintexts actually recovered —
     * exactly the never-read messages.
     */
    std::vector<std::string> seizeAndDump();

  private:
    struct Entry
    {
        std::vector<uint8_t> ciphertext;
        LimitedUseGate keyGate;
        bool opened = false;
    };

    wearout::DeviceFactory deviceFactory;
    Design design;
    Rng rng;
    std::vector<Entry> entries;

    static std::vector<uint8_t>
    applyKeystream(const std::vector<uint8_t> &data,
                   const std::vector<uint8_t> &key);

    /** Gate access + decrypt, bypassing the software opened flag. */
    std::optional<std::string> hardwareRead(size_t index);
};

} // namespace lemons::core

#endif // LEMONS_CORE_FORWARD_SECRECY_H_
