#include "core/otp_chip.h"

#include "crypto/otp.h"
#include "lint/rules.h"
#include "util/require.h"

namespace lemons::core {

std::string
PadRecord::pathString(unsigned height) const
{
    std::string bits;
    for (unsigned i = 0; i + 1 < height; ++i)
        bits.push_back((path >> i) & 1 ? '1' : '0');
    return bits.empty() ? "(root)" : bits;
}

const PadRecord &
PadBook::record(size_t slot) const
{
    requireArg(slot < records.size(), "PadBook::record: slot out of range");
    return records[slot];
}

OneTimePadChip::OneTimePadChip(const OtpParams &params, size_t padCount,
                               size_t keyBytes,
                               const wearout::DeviceFactory &factory,
                               Rng &rng, PadBook &book)
    : spec(params)
{
    // L3xx: tree height, copy/threshold bounds, GF(256) share limit,
    // device sanity — rejected before any pad is fabricated.
    lint::checkOtpOrThrow(spec);
    requireArg(padCount >= 1, "OneTimePadChip: need at least one pad");
    requireArg(keyBytes >= 1, "OneTimePadChip: key must be non-empty");

    const uint64_t paths = uint64_t{1} << (spec.height - 1);
    pads.reserve(padCount);
    spentFlags.assign(padCount, false);
    for (size_t slot = 0; slot < padCount; ++slot) {
        PadRecord record;
        record.key = crypto::generatePad(rng, keyBytes);
        record.path = rng.nextBelow(paths);
        pads.emplace_back(spec, record.key, record.path, factory, rng);
        book.add(std::move(record));
    }
}

bool
OneTimePadChip::spent(size_t slot) const
{
    requireArg(slot < pads.size(), "OneTimePadChip::spent: bad slot");
    return spentFlags[slot];
}

size_t
OneTimePadChip::remaining() const
{
    size_t unspent = 0;
    for (bool flag : spentFlags)
        if (!flag)
            ++unspent;
    return unspent;
}

std::optional<std::vector<uint8_t>>
OneTimePadChip::retrievePad(size_t slot, uint64_t pathBits)
{
    requireArg(slot < pads.size(), "OneTimePadChip::retrievePad: bad slot");
    if (spentFlags[slot])
        return std::nullopt;
    spentFlags[slot] = true;
    return pads[slot].retrieve(pathBits);
}

size_t
OneTimePadChip::randomPathSweep(Rng &attackerRng)
{
    size_t recovered = 0;
    for (size_t slot = 0; slot < pads.size(); ++slot) {
        if (spentFlags[slot])
            continue;
        spentFlags[slot] = true;
        if (pads[slot].randomPathAttack(attackerRng))
            ++recovered;
    }
    return recovered;
}

double
OneTimePadChip::areaMm2(const arch::CostModel &model) const
{
    return model.decisionTreeAreaMm2(spec.height) *
           static_cast<double>(spec.copies) *
           static_cast<double>(pads.size());
}

std::optional<OneTimePadChip>
fabricateChipForArea(const OtpParams &params, double dieAreaMm2,
                     size_t keyBytes, const wearout::DeviceFactory &factory,
                     const arch::CostModel &model, Rng &rng, PadBook &book)
{
    requireArg(dieAreaMm2 > 0.0,
               "fabricateChipForArea: area must be positive");
    const uint64_t capacity = static_cast<uint64_t>(
        dieAreaMm2 / model.decisionTreeAreaMm2(params.height) /
        static_cast<double>(params.copies));
    if (capacity == 0)
        return std::nullopt;
    return OneTimePadChip(params, static_cast<size_t>(capacity), keyBytes,
                          factory, rng, book);
}

} // namespace lemons::core
