/**
 * @file
 * Design-space solver for limited-use architectures (paper Sections
 * 4.1, 4.3, 5).
 *
 * Given a device technology (alpha, beta), a legitimate access bound
 * (LAB), an optional redundant-encoding fraction k/n, and degradation
 * criteria, the solver finds the cheapest N-copies-of-parallel-
 * structures architecture:
 *
 *  - each copy is a k-out-of-n parallel structure serving t accesses,
 *  - fast degradation criteria per copy (Section 4.3.3):
 *      R(t)      >= minReliability        (legitimate users succeed)
 *      R(tDead)  <= maxResidualReliability (attackers locked out)
 *    where tDead = t + 1 by default, or floor(U / N) when an explicit
 *    system-level upper-bound target U is given (Section 4.3.3,
 *    "stronger passcodes"),
 *  - N = ceil(LAB / t) copies used serially,
 *  - cost = total devices n * N, minimized over t and n.
 */

#ifndef LEMONS_CORE_DESIGN_SOLVER_H_
#define LEMONS_CORE_DESIGN_SOLVER_H_

#include <cstdint>
#include <optional>

#include "wearout/device.h"

namespace lemons::core {

/** Per-copy fast-degradation criteria (Section 4.3.3). */
struct DegradationCriteria
{
    /** Required reliability at the per-copy access bound t. */
    double minReliability = 0.99;
    /** Allowed residual reliability at the death-check access. */
    double maxResidualReliability = 0.01;
};

/** Input to the solver. */
struct DesignRequest
{
    /** Device technology (Weibull alpha in cycles, shape beta). */
    wearout::DeviceSpec device{10.0, 12.0};

    /** System-level legitimate access bound (LAB), e.g. 91,250. */
    uint64_t legitimateAccessBound = 91250;

    /**
     * Redundant-encoding fraction k/n; 0 disables encoding (plain
     * 1-out-of-n parallel structures, Fig 2c). Typical paper values:
     * 0.1, 0.2, 0.3 (Fig 4b).
     */
    double kFraction = 0.0;

    /** Fast-degradation criteria. */
    DegradationCriteria criteria{};

    /**
     * Optional system-level access upper-bound target U > LAB
     * (Fig 4d: 100,000 / 200,000 when software rejects the most
     * popular 1 % / 2 % of passwords). When set, the per-copy residual
     * criterion is replaced by a bound on the *expected empirical*
     * system total (the Fig 4c quantity): N * sum_j R(j) <= U. This
     * lets copies die lazily when the passcode tolerates extra
     * attempts, which dramatically shrinks the architecture.
     */
    std::optional<uint64_t> upperBoundTarget{};

    /** Cap on the per-copy structure width during the search. */
    uint64_t maxWidth = 50'000'000;

    /** Cap on the per-copy access bound t; 0 = auto (~3 alpha + 16). */
    uint64_t maxPerCopyBound = 0;
};

/** Solver output: the chosen architecture. */
struct Design
{
    bool feasible = false;
    uint64_t perCopyBound = 0;   ///< t: accesses each copy serves.
    uint64_t width = 0;          ///< n: devices per parallel structure.
    uint64_t threshold = 0;      ///< k: shares needed to reconstruct.
    uint64_t copies = 0;         ///< N: serially consumed copies.
    uint64_t totalDevices = 0;   ///< n * N.
    uint64_t deathCheckAccess = 0; ///< access where R <= residual holds.
    double reliabilityAtBound = 0.0;   ///< R(t).
    double reliabilityPastBound = 0.0; ///< R(deathCheckAccess).
    /**
     * Analytic expectation of the system-level total accesses
     * N * sum_j R(j) — the paper's "empirical access upper bound"
     * (Fig 4c reports 91,326 at p = 1 %, 92,028 at p = 10 %).
     */
    double expectedSystemTotal = 0.0;
};

/**
 * Exhaustive-in-t, binary-search-in-n design solver.
 *
 * Thread-compatible: solve() is const and deterministic.
 */
class DesignSolver
{
  public:
    /** @param request Fully specified design request. */
    explicit DesignSolver(const DesignRequest &request);

    /** The request being solved. */
    const DesignRequest &request() const { return spec; }

    /**
     * Find the minimum-device architecture meeting the request.
     * Design::feasible is false when no (t, n) within the caps
     * satisfies the criteria.
     */
    Design solve() const;

    /**
     * Reliability of one k-out-of-n copy at access @p x under the
     * request's device model (Eq. 6 / Eq. 8). Exposed for tests and
     * the explorer.
     */
    double copyReliability(uint64_t n, uint64_t k, double x) const;

    /**
     * Expected accesses a width-n copy survives *past* access t:
     * sum_{j > t} R(j), truncated once R underflows. The analytic
     * overshoot behind the empirical upper bound.
     */
    double expectedOvershoot(uint64_t n, uint64_t k, uint64_t t) const;

  private:
    DesignRequest spec;

    /** k for a given width under the request's encoding fraction. */
    uint64_t thresholdFor(uint64_t n) const;

    /** Does the minimum-reliability criterion hold at access t? */
    bool meetsMinReliability(uint64_t n, uint64_t t) const;

    /** Both criteria hold for a width-n copy at (t, tDead)? */
    bool feasibleWidth(uint64_t n, uint64_t t, uint64_t tDead) const;

    /**
     * Minimal feasible width for (t, tDead); nullopt when none exists
     * within maxWidth. When an upper-bound target is set,
     * @p overshootSlack is the allowed expected per-copy overshoot.
     */
    std::optional<uint64_t>
    minimalWidth(uint64_t t, uint64_t tDead,
                 std::optional<double> overshootSlack) const;

    /** Closed-form minimal width for the unencoded (k = 1) case. */
    std::optional<uint64_t> minimalWidthUnencoded(uint64_t t,
                                                  uint64_t tDead) const;
};

} // namespace lemons::core

#endif // LEMONS_CORE_DESIGN_SOLVER_H_
