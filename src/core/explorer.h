/**
 * @file
 * Engineering-space exploration drivers (paper Sections 4.3, 5, 6.4).
 *
 * Thin, deterministic sweep functions shared by the benchmark harness
 * (which prints the paper's figures) and the test suite (which asserts
 * on the trends the paper reports: exponential vs linear scaling,
 * encoding savings, criteria relaxation savings, ...).
 */

#ifndef LEMONS_CORE_EXPLORER_H_
#define LEMONS_CORE_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/decision_tree.h"
#include "core/design_solver.h"

namespace lemons::core {

/** One point of a device-count sweep (Figs 4a/4b/4c/4d/5a/5b). */
struct ConnectionSweepPoint
{
    double alpha = 0.0;
    double beta = 0.0;
    double kFraction = 0.0;
    Design design;
};

/**
 * Solve the limited-use architecture across a range of alphas for one
 * (beta, kFraction) configuration.
 *
 * @param alphas Device scale parameters to sweep.
 * @param beta Device shape parameter.
 * @param kFraction Redundant-encoding fraction (0 = none).
 * @param lab Legitimate access bound.
 * @param criteria Degradation criteria.
 * @param upperBound Optional system-level upper-bound target (Fig 4d).
 */
std::vector<ConnectionSweepPoint>
sweepDeviceCount(const std::vector<double> &alphas, double beta,
                 double kFraction, uint64_t lab,
                 const DegradationCriteria &criteria = {},
                 std::optional<uint64_t> upperBound = {});

/** One point of the OTP success grids (Figs 8 and 9). */
struct OtpGridPoint
{
    OtpParams params;
    double receiverSuccess = 0.0;
    double adversarySuccess = 0.0;
};

/**
 * Fig 8 grid: receiver / adversary success over (threshold k, height H)
 * at fixed device and copy count.
 */
std::vector<OtpGridPoint>
sweepOtpThresholdHeight(const std::vector<uint64_t> &thresholds,
                        const std::vector<unsigned> &heights,
                        uint64_t copies, const wearout::DeviceSpec &device);

/**
 * Fig 9 grid: receiver / adversary success over (alpha, height H) at
 * fixed threshold, copy count, and beta.
 */
std::vector<OtpGridPoint>
sweepOtpAlphaHeight(const std::vector<double> &alphas,
                    const std::vector<unsigned> &heights, uint64_t copies,
                    uint64_t threshold, double beta);

} // namespace lemons::core

#endif // LEMONS_CORE_EXPLORER_H_
