#include "core/explorer.h"

namespace lemons::core {

std::vector<ConnectionSweepPoint>
sweepDeviceCount(const std::vector<double> &alphas, double beta,
                 double kFraction, uint64_t lab,
                 const DegradationCriteria &criteria,
                 std::optional<uint64_t> upperBound)
{
    std::vector<ConnectionSweepPoint> points;
    points.reserve(alphas.size());
    for (double alpha : alphas) {
        DesignRequest request;
        request.device = {alpha, beta};
        request.legitimateAccessBound = lab;
        request.kFraction = kFraction;
        request.criteria = criteria;
        request.upperBoundTarget = upperBound;
        const DesignSolver solver(request);
        points.push_back({alpha, beta, kFraction, solver.solve()});
    }
    return points;
}

std::vector<OtpGridPoint>
sweepOtpThresholdHeight(const std::vector<uint64_t> &thresholds,
                        const std::vector<unsigned> &heights,
                        uint64_t copies, const wearout::DeviceSpec &device)
{
    std::vector<OtpGridPoint> grid;
    grid.reserve(thresholds.size() * heights.size());
    for (unsigned h : heights) {
        for (uint64_t k : thresholds) {
            OtpParams params;
            params.height = h;
            params.copies = copies;
            params.threshold = k;
            params.device = device;
            const OtpAnalytics analytics(params);
            grid.push_back({params, analytics.receiverSuccess(),
                            analytics.adversarySuccess()});
        }
    }
    return grid;
}

std::vector<OtpGridPoint>
sweepOtpAlphaHeight(const std::vector<double> &alphas,
                    const std::vector<unsigned> &heights, uint64_t copies,
                    uint64_t threshold, double beta)
{
    std::vector<OtpGridPoint> grid;
    grid.reserve(alphas.size() * heights.size());
    for (unsigned h : heights) {
        for (double alpha : alphas) {
            OtpParams params;
            params.height = h;
            params.copies = copies;
            params.threshold = threshold;
            params.device = {alpha, beta};
            const OtpAnalytics analytics(params);
            grid.push_back({params, analytics.receiverSuccess(),
                            analytics.adversarySuccess()});
        }
    }
    return grid;
}

} // namespace lemons::core
