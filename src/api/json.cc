#include "api/json.h"

#include <cmath>
#include <cstdlib>

namespace lemons::api {

const char *
JsonValue::kindName() const
{
    switch (tag) {
    case Kind::Null:
        return "null";
    case Kind::Bool:
        return "bool";
    case Kind::Number:
        return "number";
    case Kind::String:
        return "string";
    case Kind::Array:
        return "array";
    case Kind::Object:
        return "object";
    }
    return "unknown";
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (tag != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : fields)
        if (name == key)
            return &value;
    return nullptr;
}

bool
JsonValue::asUint64(uint64_t &out) const
{
    if (tag != Kind::Number || !std::isfinite(number) || number < 0.0)
        return false;
    if (number != std::floor(number))
        return false;
    // 2^53 is the last double-exact integer boundary.
    if (number > 9007199254740992.0)
        return false;
    out = static_cast<uint64_t>(number);
    return true;
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.tag = Kind::Bool;
    out.boolean = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out.tag = Kind::Number;
    out.number = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.tag = Kind::String;
    out.text = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue out;
    out.tag = Kind::Array;
    out.children = std::move(v);
    return out;
}

JsonValue
JsonValue::makeObject(Members v)
{
    JsonValue out;
    out.tag = Kind::Object;
    out.fields = std::move(v);
    return out;
}

namespace {

/** Recursive-descent parser state over the input bytes. */
class Parser
{
  public:
    Parser(std::string_view input, size_t maxDepth)
        : text(input), depthLimit(maxDepth)
    {
    }

    JsonParseResult run()
    {
        JsonParseResult result;
        skipWhitespace();
        if (!parseValue(result.value, 0)) {
            result.error = message;
            result.offset = errorAt;
            return result;
        }
        skipWhitespace();
        if (pos != text.size()) {
            result.error = "trailing bytes after the JSON value";
            result.offset = pos;
            return result;
        }
        result.ok = true;
        return result;
    }

  private:
    bool fail(const std::string &what)
    {
        // Keep the first (innermost) failure; outer frames re-fail as
        // the recursion unwinds and must not clobber the real cause.
        if (message.empty()) {
            message = what;
            errorAt = pos;
        }
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void skipWhitespace()
    {
        while (!atEnd()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos;
        }
    }

    bool consume(char expected)
    {
        if (atEnd() || text[pos] != expected)
            return fail(std::string("expected '") + expected + "'");
        ++pos;
        return true;
    }

    bool parseValue(JsonValue &out, size_t depth)
    {
        if (depth >= depthLimit)
            return fail("nesting deeper than the parser limit");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue::makeString(std::move(s));
            return true;
        }
        case 't':
            if (!literal("true"))
                return false;
            out = JsonValue::makeBool(true);
            return true;
        case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue::makeBool(false);
            return true;
        case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue::makeNull();
            return true;
        default:
            return parseNumber(out);
        }
    }

    bool literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool parseObject(JsonValue &out, size_t depth)
    {
        ++pos; // '{'
        JsonValue::Members members;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        for (;;) {
            skipWhitespace();
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto &[existing, ignored] : members) {
                static_cast<void>(ignored);
                if (existing == key)
                    return fail("duplicate object key \"" + key + "\"");
            }
            skipWhitespace();
            if (!consume(':'))
                return false;
            skipWhitespace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out, size_t depth)
    {
        ++pos; // '['
        std::vector<JsonValue> items;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos;
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        for (;;) {
            skipWhitespace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            items.push_back(std::move(value));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                out = JsonValue::makeArray(std::move(items));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    static void appendUtf8(std::string &out, uint32_t codepoint)
    {
        if (codepoint <= 0x7F) {
            out.push_back(static_cast<char>(codepoint));
        } else if (codepoint <= 0x7FF) {
            out.push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        } else if (codepoint <= 0xFFFF) {
            out.push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        }
    }

    bool parseHex4(uint32_t &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos + static_cast<size_t>(i)];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        pos += 4;
        out = value;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (atEnd() || peek() != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (!atEnd()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos;
                continue;
            }
            ++pos;
            if (atEnd())
                return fail("truncated escape");
            const char esc = text[pos];
            ++pos;
            switch (esc) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                uint32_t unit = 0;
                if (!parseHex4(unit))
                    return false;
                if (unit >= 0xD800 && unit <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    if (pos + 2 > text.size() || text[pos] != '\\' ||
                        text[pos + 1] != 'u')
                        return fail("unpaired high surrogate");
                    pos += 2;
                    uint32_t low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("invalid low surrogate");
                    const uint32_t codepoint = 0x10000 +
                        ((unit - 0xD800) << 10) + (low - 0xDC00);
                    appendUtf8(out, codepoint);
                } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
                    return fail("unpaired low surrogate");
                } else {
                    appendUtf8(out, unit);
                }
                break;
            }
            default:
                return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const size_t start = pos;
        if (!atEnd() && peek() == '-')
            ++pos;
        // RFC 8259 grammar: int frac? exp?, no leading zeros, no
        // leading '+', no bare '.'; strtod accepts more, so validate
        // the shape first and use strtod only for the value.
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("invalid number");
        if (peek() == '0') {
            ++pos;
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos;
        }
        if (!atEnd() && peek() == '.') {
            ++pos;
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("digit required after decimal point");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("digit required in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos;
        }
        const std::string token(text.substr(start, pos - start));
        const double value = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(value)) {
            pos = start;
            return fail("number out of double range");
        }
        out = JsonValue::makeNumber(value);
        return true;
    }

    std::string_view text;
    size_t pos = 0;
    size_t depthLimit;
    std::string message;
    size_t errorAt = 0;
};

} // namespace

JsonParseResult
parseJson(std::string_view text, size_t maxDepth)
{
    return Parser(text, maxDepth).run();
}

} // namespace lemons::api
