/**
 * @file
 * Strict JSON reader for the lemons::api request surface.
 *
 * The obs layer already owns the *writer* half (obs::JsonWriter); this
 * is the missing reader half, sized for request bodies rather than
 * data lakes: a recursive-descent parser over an owned value tree with
 * a hard nesting limit, full-token validation (trailing bytes after
 * the root value are an error), and no implicit coercions — a caller
 * asks a value what it is before asking what it holds.
 *
 * Deliberately rejected inputs that "lenient" parsers wave through:
 * comments, trailing commas, unquoted keys, single quotes, NaN/Inf
 * literals, control characters inside strings, and duplicate object
 * keys (the last-wins behaviour of most parsers is an injection
 * hazard for a security-facing API, so duplicates are an error).
 */

#ifndef LEMONS_API_JSON_H_
#define LEMONS_API_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lemons::api {

/** An owned, immutable-after-parse JSON value. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Ordered object members (insertion order, keys unique). */
    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;

    Kind kind() const { return tag; }
    bool isNull() const { return tag == Kind::Null; }
    bool isBool() const { return tag == Kind::Bool; }
    bool isNumber() const { return tag == Kind::Number; }
    bool isString() const { return tag == Kind::String; }
    bool isArray() const { return tag == Kind::Array; }
    bool isObject() const { return tag == Kind::Object; }

    /** Human-readable kind name ("null", "bool", "number", ...). */
    const char *kindName() const;

    /** @pre isBool(). */
    bool asBool() const { return boolean; }
    /** @pre isNumber(). */
    double asNumber() const { return number; }
    /** @pre isString(). */
    const std::string &asString() const { return text; }
    /** @pre isArray(). */
    const std::vector<JsonValue> &items() const { return children; }
    /** @pre isObject(). */
    const Members &members() const { return fields; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Number as an exact unsigned integer: true only when the value is
     * a number that is finite, non-negative, integral, and below 2^53
     * (the largest range a JSON double carries exactly).
     */
    bool asUint64(uint64_t &out) const;

    // Construction is the parser's business, but tests build values too.
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(Members v);

  private:
    Kind tag = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> children;
    Members fields;
};

/** Outcome of parseJson: the value, or where and why parsing failed. */
struct JsonParseResult
{
    bool ok = false;
    JsonValue value;
    /** Parse error description; empty on success. */
    std::string error;
    /** Byte offset of the error in the input; 0 on success. */
    size_t offset = 0;
};

/** Nesting limit guarding the recursive-descent stack. */
inline constexpr size_t kJsonMaxDepth = 64;

/**
 * Parse @p text as exactly one JSON value (any root kind). Strict:
 * UTF-8 \u escapes (including surrogate pairs) are decoded, anything
 * outside RFC 8259 is an error, and bytes after the root value (other
 * than trailing whitespace) fail the parse.
 */
JsonParseResult parseJson(std::string_view text,
                          size_t maxDepth = kJsonMaxDepth);

} // namespace lemons::api

#endif // LEMONS_API_JSON_H_
