/**
 * @file
 * JSON codec for the lemons-api/1 envelope: typed request parsing
 * with S-code diagnostics on one side, envelope rendering on the
 * other.
 *
 * Parsing is strict and total: every way a request body can be wrong
 * maps to a stable diagnostic (S001 not JSON, S002 schema mismatch —
 * wrong type, unknown member, missing required member — S011 value
 * out of range) rather than an exception, and a parse that reports an
 * error never half-fills the output struct in a way the caller may
 * act on.
 */

#ifndef LEMONS_API_CODEC_H_
#define LEMONS_API_CODEC_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/report.h"
#include "api/json.h"
#include "api/types.h"
#include "lint/diagnostics.h"

namespace lemons::obs {
class JsonWriter;
} // namespace lemons::obs

namespace lemons::api {

/** Writes the envelope's "result" member; null result when empty. */
using ResultWriter = std::function<void(obs::JsonWriter &)>;

/**
 * Render a complete lemons-api/1 envelope. `ok` is derived:
 * true iff @p diagnostics carries no error-severity finding.
 * Envelope diagnostics carry a "file" member (empty for API-level
 * findings) on top of the finding shape the analyze document uses.
 * The document ends with a newline.
 */
std::string renderEnvelope(const lint::Report &diagnostics,
                           const ResultWriter &result = {});

/**
 * Parse @p body as JSON, reporting S001 with the parser's message and
 * byte offset on failure. Returns false (and an untouched @p out) on
 * failure.
 */
bool parseBody(std::string_view body, JsonValue &out,
               lint::Report &diagnostics);

/**
 * Decode a /v1/solve request ({alpha, beta, lab, k_fraction,
 * min_reliability, max_residual_reliability, upper_bound_target,
 * max_width, max_per_copy_bound} — all optional, solver defaults
 * apply). Returns false after appending S002/S011 findings.
 */
bool parseSolveRequest(const JsonValue &root, SolveRequest &out,
                       lint::Report &diagnostics);

/** Decode a spec-bearing request ({spec, filename?}); spec required. */
bool parseSpecRequest(const JsonValue &root, SpecRequest &out,
                      lint::Report &diagnostics);

/** Decode a /v1/mc/run request ({spec, filename?, trials?, seed?,
 *  threads?}); bounds-checks trials/threads against the api caps. */
bool parseMcRunRequest(const JsonValue &root, McRunRequest &out,
                       lint::Report &diagnostics);

/** Write a solver Design as the current JSON value. */
void writeDesignJson(obs::JsonWriter &json, const core::Design &design);

/** Write a Monte Carlo structure result as the current JSON value. */
void writeMcStructureJson(obs::JsonWriter &json,
                          const McStructureResult &result);

/**
 * The lemons-api/1 rendering of a whole lint/verify/analyze run: the
 * merged findings become the envelope diagnostics, and the result is
 * {files: [<per-file analysis payload>...], errors, warnings}. This
 * is what `lemons-lint --json` emits.
 */
std::string
renderAnalysisEnvelope(const std::vector<analysis::AnalyzedFile> &files);

} // namespace lemons::api

#endif // LEMONS_API_CODEC_H_
