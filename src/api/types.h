/**
 * @file
 * Typed request/response vocabulary of the unified lemons::api facade.
 *
 * Every consumer of the library's analyses — the lemonsd HTTP server,
 * `lemons-lint --json`, `lemons-fleet --json` — speaks one versioned
 * JSON schema, `lemons-api/1`:
 *
 *   {
 *     "schema": "lemons-api/1",
 *     "ok": <bool>,                 // no error-severity diagnostics
 *     "diagnostics": [ {code, severity, object, field, message,
 *                       hint, file}, ... ],
 *     "result": <endpoint-specific object> | null
 *   }
 *
 * Diagnostics reuse the stable code registry (lint/code_registry.h):
 * the S-range names request-level failures (bad JSON, schema
 * mismatch, quota exhaustion), so a client distinguishes "your
 * request is malformed" (S-codes, HTTP 4xx) from "your design is
 * broken" (L/V/A-codes inside a 200 envelope) with the same machinery
 * it already uses for CI lint gating.
 *
 * Versioning contract: fields are append-only within `lemons-api/1`;
 * removing or retyping a field bumps the schema string. Clients must
 * ignore members they do not recognize.
 */

#ifndef LEMONS_API_TYPES_H_
#define LEMONS_API_TYPES_H_

#include <cstdint>
#include <string>

#include "core/design_solver.h"

namespace lemons::api {

/** The envelope schema identifier. */
inline constexpr const char *kApiSchema = "lemons-api/1";

/** POST /v1/solve: one design-solver request. */
struct SolveRequest
{
    core::DesignRequest request{};
};

/**
 * POST /v1/lint, /v1/verify, /v1/analyze: a spec file shipped inline.
 * The body carries the spec *text*, not a path — lemonsd never reads
 * the filesystem on behalf of a client.
 */
struct SpecRequest
{
    std::string spec;
    /** Stamp used on diagnostics (purely cosmetic). */
    std::string filename = "request.lemons";
};

/** Hard ceilings on what one /v1/mc/run request may ask for. */
inline constexpr uint64_t kMcMaxTrials = 1u << 20;
inline constexpr unsigned kMcMaxThreads = 16;

/**
 * POST /v1/mc/run: Monte Carlo over the [structure] sections of an
 * inline spec. Each section is simulated independently with the
 * engine's reproducible (seed, trial) streams, so re-posting the same
 * request yields bit-identical statistics.
 */
struct McRunRequest
{
    std::string spec;
    std::string filename = "request.lemons";
    /** Trials per structure section, in [1, kMcMaxTrials]. */
    uint64_t trials = 4096;
    /** Master seed for the counter-based trial streams. */
    uint64_t seed = 0;
    /** Executors per section run, in [1, kMcMaxThreads]. */
    unsigned threads = 1;
};

/** Per-[structure] outcome of a /v1/mc/run request. */
struct McStructureResult
{
    std::string kind;   ///< "series" | "parallel"
    uint64_t n = 0;     ///< width / chain length
    uint64_t k = 0;     ///< threshold (parallel; 0 for series)
    uint64_t trials = 0;      ///< trials actually executed
    bool interrupted = false; ///< cancelled or deadline-cut
    double meanAccesses = 0.0;
    double stddevAccesses = 0.0;
    double minAccesses = 0.0;
    double maxAccesses = 0.0;
};

} // namespace lemons::api

#endif // LEMONS_API_TYPES_H_
