#include "api/service.h"

#include <utility>
#include <vector>

#include "analysis/passes.h"
#include "analysis/report.h"
#include "api/codec.h"
#include "arch/structures_sim.h"
#include "lint/spec_file.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/monte_carlo.h"
#include "verify/verifier.h"
#include "wearout/population.h"

namespace lemons::api {

namespace {

/** 400 envelope for a body that failed to decode. */
ServiceResult
badRequest(const lint::Report &diagnostics)
{
    ServiceResult result;
    result.status = 400;
    result.ok = false;
    result.body = renderEnvelope(diagnostics);
    return result;
}

/** 200 envelope whose ok flag mirrors the findings. */
ServiceResult
processed(const lint::Report &diagnostics, const ResultWriter &writer = {})
{
    ServiceResult result;
    result.status = 200;
    result.ok = !diagnostics.hasErrors();
    result.body = renderEnvelope(diagnostics, writer);
    return result;
}

/** result: {errors, warnings} summary for the finding-only endpoints. */
ResultWriter
summaryWriter(const lint::Report &report)
{
    const uint64_t errors = report.errorCount();
    const uint64_t warnings = report.warningCount();
    return [errors, warnings](obs::JsonWriter &json) {
        json.beginObject();
        json.key("errors");
        json.value(errors);
        json.key("warnings");
        json.value(warnings);
        json.endObject();
    };
}

} // namespace

ServiceResult
Service::solve(std::string_view body) const
{
    LEMONS_OBS_INCREMENT("api.solve.requests");
    lint::Report diagnostics;
    JsonValue root;
    SolveRequest request;
    if (!parseBody(body, root, diagnostics) ||
        !parseSolveRequest(root, request, diagnostics))
        return badRequest(diagnostics);

    // The solver constructor throws on error-severity L0xx findings;
    // run the full rule pass up front instead so the envelope carries
    // every finding (including warnings on feasible requests).
    diagnostics.merge(lint::checkDesign(request.request));
    if (diagnostics.hasErrors())
        return processed(diagnostics);

    const core::Design design =
        core::DesignSolver(request.request).solve();
    return processed(diagnostics, [&design](obs::JsonWriter &json) {
        writeDesignJson(json, design);
    });
}

ServiceResult
Service::lint(std::string_view body) const
{
    LEMONS_OBS_INCREMENT("api.lint.requests");
    lint::Report diagnostics;
    JsonValue root;
    SpecRequest request;
    if (!parseBody(body, root, diagnostics) ||
        !parseSpecRequest(root, request, diagnostics))
        return badRequest(diagnostics);

    const lint::Report findings =
        lint::lintText(request.spec, request.filename);
    return processed(findings, summaryWriter(findings));
}

ServiceResult
Service::verify(std::string_view body) const
{
    LEMONS_OBS_INCREMENT("api.verify.requests");
    lint::Report diagnostics;
    JsonValue root;
    SpecRequest request;
    if (!parseBody(body, root, diagnostics) ||
        !parseSpecRequest(root, request, diagnostics))
        return badRequest(diagnostics);

    // Mirror the CLI's --verify mode: the L-range parse/rule findings
    // and the V-range verifier findings form one merged report.
    lint::Report findings =
        lint::lintText(request.spec, request.filename);
    findings.merge(verify::verifySpecText(request.spec, request.filename));
    return processed(findings, summaryWriter(findings));
}

ServiceResult
Service::analyze(std::string_view body) const
{
    LEMONS_OBS_INCREMENT("api.analyze.requests");
    lint::Report diagnostics;
    JsonValue root;
    SpecRequest request;
    if (!parseBody(body, root, diagnostics) ||
        !parseSpecRequest(root, request, diagnostics))
        return badRequest(diagnostics);

    // Full L + V + A merge, the same composition `lemons-lint --json`
    // performs, so a spec analyzed over HTTP and one analyzed in CI
    // produce identical envelopes.
    lint::Report findings =
        lint::lintText(request.spec, request.filename);
    findings.merge(verify::verifySpecText(request.spec, request.filename));
    analysis::FileAnalysis analysis =
        analysis::analyzeSpecText(request.spec, request.filename);
    {
        lint::Report aFindings = analysis.findings;
        findings.merge(std::move(aFindings));
    }

    std::vector<analysis::AnalyzedFile> files;
    files.push_back({findings, std::move(analysis)});

    ServiceResult result;
    result.status = 200;
    result.ok = !findings.hasErrors();
    result.body = renderAnalysisEnvelope(files);
    return result;
}

ServiceResult
Service::mcRun(std::string_view body, const McExecution &exec) const
{
    LEMONS_OBS_INCREMENT("api.mc.requests");
    lint::Report diagnostics;
    JsonValue root;
    McRunRequest request;
    if (!parseBody(body, root, diagnostics) ||
        !parseMcRunRequest(root, request, diagnostics))
        return badRequest(diagnostics);

    lint::Report findings;
    const lint::ParsedSpec parsed =
        lint::parseSpec(request.spec, request.filename, findings);
    if (findings.hasErrors())
        return processed(findings);
    if (parsed.structures.empty()) {
        findings.add(lint::Code::S010, "McRunRequest", "spec",
                     "the spec declares no [structure] section",
                     "add a [structure] section (kind, n, k, alpha, "
                     "beta) to simulate");
        ServiceResult result;
        result.status = 422;
        result.ok = false;
        result.body = renderEnvelope(findings);
        return result;
    }

    std::vector<McStructureResult> results;
    bool anyInterrupted = false;
    for (size_t index = 0; index < parsed.structures.size(); ++index) {
        const lint::StructureSpec &spec = parsed.structures[index];
        const wearout::DeviceFactory factory(
            spec.device, wearout::ProcessVariation::none());

        sim::McRunOptions options;
        options.trials = request.trials;
        options.threads = request.threads;
        options.keepSamples = false;
        options.cancel = exec.cancel;
        options.deadline = exec.deadline;

        const bool parallel =
            spec.kind == lint::StructureSpec::Kind::Parallel;
        const size_t n = spec.n;
        const size_t k = spec.k;
        const auto metric = [&factory, parallel, n, k](Rng &rng) {
            const uint64_t survived = parallel
                ? arch::sampleParallelSurvivedAccesses(factory, n, k, rng)
                : arch::sampleSeriesSurvivedAccesses(factory, n, rng);
            return static_cast<double>(survived);
        };

        // Distinct seeds per section keep the per-section streams
        // independent while the whole request stays reproducible.
        const sim::MonteCarlo mc(request.seed + index, request.trials);
        const sim::TrialReport report = mc.run(metric, options);

        McStructureResult out;
        out.kind = parallel ? "parallel" : "series";
        out.n = spec.n;
        out.k = parallel ? spec.k : 0;
        out.trials = report.trials;
        out.interrupted = report.interrupted();
        out.meanAccesses = report.stats.mean();
        out.stddevAccesses = report.stats.stddev();
        out.minAccesses = report.stats.min();
        out.maxAccesses = report.stats.max();
        const bool interrupted = out.interrupted;
        anyInterrupted = anyInterrupted || interrupted;
        results.push_back(std::move(out));

        if (interrupted && exec.cancel != nullptr &&
            exec.cancel->cancelled())
            break; // draining: report what ran, skip the rest
    }

    return processed(findings, [&](obs::JsonWriter &json) {
        json.beginObject();
        json.key("trials_requested");
        json.value(request.trials);
        json.key("seed");
        json.value(request.seed);
        json.key("interrupted");
        json.value(anyInterrupted);
        json.key("structures");
        json.beginArray();
        for (const McStructureResult &structure : results)
            writeMcStructureJson(json, structure);
        json.endArray();
        json.endObject();
    });
}

} // namespace lemons::api
