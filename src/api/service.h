/**
 * @file
 * The unified lemons::api service: five endpoint handlers mapping
 * request bodies to lemons-api/1 envelopes.
 *
 * This is the layer lemonsd routes into, but nothing here is
 * HTTP-specific — a handler takes the raw request body and returns
 * the envelope plus a *suggested* transport status, so the same
 * handlers back in-process callers and tests without a socket in
 * sight. Status semantics:
 *
 *   200  the request was understood and processed; "ok" in the
 *        envelope reflects the *analysis* outcome (a spec full of
 *        lint errors is still a successful lint request),
 *   400  the body was not a valid request (S001/S002/S011),
 *   422  the request was well-formed but names nothing the endpoint
 *        can run (S010: e.g. /v1/mc/run on a spec with no
 *        [structure] section).
 *
 * Handlers are const and share no mutable state, so one Service
 * instance serves any number of pool workers concurrently.
 */

#ifndef LEMONS_API_SERVICE_H_
#define LEMONS_API_SERVICE_H_

#include <chrono>
#include <optional>
#include <string>
#include <string_view>

#include "api/types.h"
#include "engine/engine.h"

namespace lemons::api {

/** A handler's outcome: envelope body plus suggested HTTP status. */
struct ServiceResult
{
    int status = 200;
    /** Envelope "ok" flag (also encoded in the body). */
    bool ok = true;
    /** Complete lemons-api/1 JSON document, newline-terminated. */
    std::string body;
};

/**
 * Execution policy the *server* injects into long-running handlers:
 * the drain cancel token and per-request deadline ride through here,
 * so an in-flight Monte Carlo run ends promptly (with a partial,
 * interrupted-flagged result) when lemonsd is asked to shut down.
 */
struct McExecution
{
    /** Observed at wave boundaries; not owned, may be null. */
    const engine::CancelToken *cancel = nullptr;
    /** Wall-clock cutoff for the whole request, when set. */
    std::optional<std::chrono::steady_clock::time_point> deadline;
};

class Service
{
  public:
    /** POST /v1/solve: run the design solver on one request. */
    ServiceResult solve(std::string_view body) const;

    /** POST /v1/lint: design-rule findings for an inline spec. */
    ServiceResult lint(std::string_view body) const;

    /** POST /v1/verify: static-verifier findings for an inline spec. */
    ServiceResult verify(std::string_view body) const;

    /** POST /v1/analyze: wear-budget analysis for an inline spec. */
    ServiceResult analyze(std::string_view body) const;

    /** POST /v1/mc/run: Monte Carlo over [structure] sections. */
    ServiceResult mcRun(std::string_view body,
                        const McExecution &exec = {}) const;
};

} // namespace lemons::api

#endif // LEMONS_API_SERVICE_H_
