#include "api/codec.h"

#include <optional>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace lemons::api {

namespace {

/** Envelope diagnostics: the analyze finding shape plus "file". */
void
writeEnvelopeDiagnostics(obs::JsonWriter &json,
                         const lint::Report &diagnostics)
{
    json.beginArray();
    for (const lint::Diagnostic &diagnostic : diagnostics.diagnostics()) {
        json.beginObject();
        json.key("code");
        json.value(diagnostic.id());
        json.key("severity");
        json.value(lint::severityName(diagnostic.severity));
        json.key("object");
        json.value(diagnostic.object);
        json.key("field");
        json.value(diagnostic.field);
        json.key("message");
        json.value(diagnostic.message);
        json.key("hint");
        json.value(diagnostic.hint);
        json.key("file");
        json.value(diagnostic.file);
        json.endObject();
    }
    json.endArray();
}

/** Fields every decoder shares: a member set with per-field checks. */
class FieldReader
{
  public:
    FieldReader(const JsonValue &root, std::string object,
                lint::Report &diagnostics)
        : value(root), name(std::move(object)), report(diagnostics)
    {
        if (!value.isObject()) {
            report.add(lint::Code::S002, name, "",
                       std::string("request body must be a JSON object, "
                                   "got ") +
                           value.kindName());
            failed = true;
        }
    }

    bool ok() const { return !failed; }

    /** Mark @p field as known; returns its value or nullptr. */
    const JsonValue *take(std::string_view field)
    {
        known.emplace_back(field);
        return value.find(field);
    }

    /** S002 for every member the decoder never asked about. */
    void rejectUnknown()
    {
        if (failed)
            return;
        for (const auto &[key, member] : value.members()) {
            static_cast<void>(member);
            bool recognized = false;
            for (const std::string &field : known)
                if (field == key)
                    recognized = true;
            if (!recognized) {
                report.add(lint::Code::S002, name, key,
                           "unknown request field \"" + key + "\"",
                           "remove it, or check the lemons-api/1 "
                           "schema for the spelling");
                failed = true;
            }
        }
    }

    void string(std::string_view field, std::string &out, bool required)
    {
        const JsonValue *member = take(field);
        if (member == nullptr) {
            if (required) {
                report.add(lint::Code::S002, name, std::string(field),
                           "required field is missing");
                failed = true;
            }
            return;
        }
        if (!member->isString()) {
            typeError(field, "a string", *member);
            return;
        }
        out = member->asString();
    }

    void number(std::string_view field, double &out)
    {
        const JsonValue *member = take(field);
        if (member == nullptr)
            return;
        if (!member->isNumber()) {
            typeError(field, "a number", *member);
            return;
        }
        out = member->asNumber();
    }

    void integer(std::string_view field, uint64_t &out)
    {
        const JsonValue *member = take(field);
        if (member == nullptr)
            return;
        uint64_t parsed = 0;
        if (!member->isNumber() || !member->asUint64(parsed)) {
            typeError(field, "a non-negative integer", *member);
            return;
        }
        out = parsed;
    }

    void optionalInteger(std::string_view field,
                         std::optional<uint64_t> &out)
    {
        const JsonValue *member = take(field);
        if (member == nullptr || member->isNull())
            return;
        uint64_t parsed = 0;
        if (!member->isNumber() || !member->asUint64(parsed)) {
            typeError(field, "a non-negative integer", *member);
            return;
        }
        out = parsed;
    }

    /** S011 unless lo <= value <= hi. */
    void requireRange(std::string_view field, double actual, double lo,
                      double hi)
    {
        if (actual >= lo && actual <= hi)
            return;
        std::ostringstream what;
        what << "value " << actual << " is outside [" << lo << ", " << hi
             << "]";
        report.add(lint::Code::S011, name, std::string(field),
                   what.str());
        failed = true;
    }

  private:
    void typeError(std::string_view field, const char *expected,
                   const JsonValue &member)
    {
        report.add(lint::Code::S002, name, std::string(field),
                   std::string("expected ") + expected + ", got " +
                       member.kindName());
        failed = true;
    }

    const JsonValue &value;
    std::string name;
    lint::Report &report;
    std::vector<std::string> known;
    bool failed = false;
};

} // namespace

std::string
renderEnvelope(const lint::Report &diagnostics, const ResultWriter &result)
{
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value(kApiSchema);
    json.key("ok");
    json.value(!diagnostics.hasErrors());
    json.key("diagnostics");
    writeEnvelopeDiagnostics(json, diagnostics);
    json.key("result");
    if (result)
        result(json);
    else
        json.null();
    json.endObject();
    out << '\n';
    return out.str();
}

bool
parseBody(std::string_view body, JsonValue &out,
          lint::Report &diagnostics)
{
    JsonParseResult parsed = parseJson(body);
    if (!parsed.ok) {
        std::ostringstream what;
        what << parsed.error << " (byte " << parsed.offset << ")";
        diagnostics.add(lint::Code::S001, "request", "", what.str());
        return false;
    }
    out = std::move(parsed.value);
    return true;
}

bool
parseSolveRequest(const JsonValue &root, SolveRequest &out,
                  lint::Report &diagnostics)
{
    SolveRequest decoded;
    core::DesignRequest &request = decoded.request;
    FieldReader fields(root, "SolveRequest", diagnostics);
    fields.number("alpha", request.device.alpha);
    fields.number("beta", request.device.beta);
    fields.integer("lab", request.legitimateAccessBound);
    fields.number("k_fraction", request.kFraction);
    fields.number("min_reliability", request.criteria.minReliability);
    fields.number("max_residual_reliability",
                  request.criteria.maxResidualReliability);
    fields.optionalInteger("upper_bound_target",
                           request.upperBoundTarget);
    fields.integer("max_width", request.maxWidth);
    fields.integer("max_per_copy_bound", request.maxPerCopyBound);
    fields.rejectUnknown();
    if (!fields.ok())
        return false;
    // Range rules beyond what the solver's own lint pass reports:
    // values the API refuses to even hand to the solver because they
    // would make it loop effectively forever.
    fields.requireRange("lab",
                        static_cast<double>(request.legitimateAccessBound),
                        1.0, 1e12);
    fields.requireRange("k_fraction", request.kFraction, 0.0, 1.0);
    if (!fields.ok())
        return false;
    out = std::move(decoded);
    return true;
}

bool
parseSpecRequest(const JsonValue &root, SpecRequest &out,
                 lint::Report &diagnostics)
{
    SpecRequest decoded;
    FieldReader fields(root, "SpecRequest", diagnostics);
    fields.string("spec", decoded.spec, /*required=*/true);
    fields.string("filename", decoded.filename, /*required=*/false);
    fields.rejectUnknown();
    if (!fields.ok())
        return false;
    out = std::move(decoded);
    return true;
}

bool
parseMcRunRequest(const JsonValue &root, McRunRequest &out,
                  lint::Report &diagnostics)
{
    McRunRequest decoded;
    FieldReader fields(root, "McRunRequest", diagnostics);
    fields.string("spec", decoded.spec, /*required=*/true);
    fields.string("filename", decoded.filename, /*required=*/false);
    fields.integer("trials", decoded.trials);
    fields.integer("seed", decoded.seed);
    uint64_t threads = decoded.threads;
    fields.integer("threads", threads);
    fields.rejectUnknown();
    if (!fields.ok())
        return false;
    fields.requireRange("trials", static_cast<double>(decoded.trials),
                        1.0, static_cast<double>(kMcMaxTrials));
    fields.requireRange("threads", static_cast<double>(threads), 1.0,
                        static_cast<double>(kMcMaxThreads));
    if (!fields.ok())
        return false;
    decoded.threads = static_cast<unsigned>(threads);
    out = std::move(decoded);
    return true;
}

void
writeDesignJson(obs::JsonWriter &json, const core::Design &design)
{
    json.beginObject();
    json.key("feasible");
    json.value(design.feasible);
    json.key("per_copy_bound");
    json.value(design.perCopyBound);
    json.key("width");
    json.value(design.width);
    json.key("threshold");
    json.value(design.threshold);
    json.key("copies");
    json.value(design.copies);
    json.key("total_devices");
    json.value(design.totalDevices);
    json.key("death_check_access");
    json.value(design.deathCheckAccess);
    json.key("reliability_at_bound");
    json.value(design.reliabilityAtBound);
    json.key("reliability_past_bound");
    json.value(design.reliabilityPastBound);
    json.key("expected_system_total");
    json.value(design.expectedSystemTotal);
    json.endObject();
}

void
writeMcStructureJson(obs::JsonWriter &json, const McStructureResult &result)
{
    json.beginObject();
    json.key("kind");
    json.value(result.kind);
    json.key("n");
    json.value(result.n);
    json.key("k");
    json.value(result.k);
    json.key("trials");
    json.value(result.trials);
    json.key("interrupted");
    json.value(result.interrupted);
    json.key("mean_accesses");
    json.value(result.meanAccesses);
    json.key("stddev_accesses");
    json.value(result.stddevAccesses);
    json.key("min_accesses");
    json.value(result.minAccesses);
    json.key("max_accesses");
    json.value(result.maxAccesses);
    json.endObject();
}

std::string
renderAnalysisEnvelope(const std::vector<analysis::AnalyzedFile> &files)
{
    lint::Report merged;
    size_t errors = 0;
    size_t warnings = 0;
    for (const analysis::AnalyzedFile &file : files) {
        errors += file.findings.errorCount();
        warnings += file.findings.warningCount();
        lint::Report copy = file.findings;
        copy.setFile(file.analysis.file);
        merged.merge(std::move(copy));
    }
    return renderEnvelope(merged, [&](obs::JsonWriter &json) {
        json.beginObject();
        json.key("files");
        json.beginArray();
        for (const analysis::AnalyzedFile &file : files)
            analysis::writeFileAnalysisJson(json, file);
        json.endArray();
        json.key("errors");
        json.value(static_cast<uint64_t>(errors));
        json.key("warnings");
        json.value(static_cast<uint64_t>(warnings));
        json.endObject();
    });
}

} // namespace lemons::api
