/**
 * @file
 * Prometheus text-exposition renderer for the metrics registry.
 *
 * lemonsd's GET /metrics endpoint (and anything else that wants to be
 * scraped) renders the process-global Registry in the Prometheus text
 * format, version 0.0.4:
 *
 *   # HELP lemons_sim_mc_trials lemons counter sim.mc.trials
 *   # TYPE lemons_sim_mc_trials counter
 *   lemons_sim_mc_trials 1048576
 *
 * Mapping rules (pinned by tests/test_prometheus.cc):
 *   - Counter           -> counter
 *   - Timer             -> summary: <name>_seconds_sum (seconds, not
 *                          nanoseconds — Prometheus wants base units)
 *                          and <name>_seconds_count
 *   - HistogramMetric   -> histogram: cumulative <name>_bucket lines
 *                          with le="<upper edge>" (underflow folds into
 *                          the first bucket because buckets are
 *                          cumulative from -Inf), an le="+Inf" bucket
 *                          equal to _count, plus _sum and _count
 *
 * Metric names are sanitized: every character outside
 * [a-zA-Z0-9_:] becomes '_' (dotted registry names therefore read as
 * underscore-joined), a leading digit gets a '_' prefix, and everything
 * is prefixed "lemons_" so scrapes from mixed fleets cannot collide.
 * The original dotted name is preserved in the HELP line.
 */

#ifndef LEMONS_OBS_PROMETHEUS_H_
#define LEMONS_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace lemons::obs {

/**
 * Sanitize one registry metric name into a legal Prometheus metric
 * name (without the "lemons_" prefix): [a-zA-Z0-9_:] kept, everything
 * else mapped to '_', leading digit prefixed with '_'.
 */
std::string prometheusName(std::string_view name);

/** Render @p snapshot in the Prometheus text exposition format. */
std::string toPrometheus(const Snapshot &snapshot);

} // namespace lemons::obs

#endif // LEMONS_OBS_PROMETHEUS_H_
