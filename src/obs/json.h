/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Backs the metrics-registry serialization and the benchmark harness's
 * BENCH_results.json. Emits strictly valid JSON: strings are escaped,
 * commas and nesting are managed by a state stack, and non-finite
 * doubles (which JSON cannot represent) become null.
 */

#ifndef LEMONS_OBS_JSON_H_
#define LEMONS_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lemons::obs {

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Stack-based JSON emitter. Usage:
 *   JsonWriter json(out);
 *   json.beginObject();
 *   json.key("name"); json.value("weibull");
 *   json.key("reps"); json.beginArray();
 *   json.value(1.5); json.value(2.5); json.endArray();
 *   json.endObject();
 *
 * Misuse (value without key inside an object, unbalanced end calls)
 * trips a requireArg check rather than emitting broken JSON.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &sink);

    /** Open / close a JSON object. */
    void beginObject();
    void endObject();

    /** Open / close a JSON array. */
    void beginArray();
    void endArray();

    /** Emit a member key; must be directly inside an object. */
    void key(std::string_view name);

    /** Emit a string value. */
    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }

    /** Emit a number; non-finite doubles are emitted as null. */
    void value(double number);
    void value(uint64_t number);
    void value(int number);

    /** Emit a boolean. */
    void value(bool flag);

    /** Emit null. */
    void null();

    /** Whether every begin has been matched by an end. */
    bool complete() const { return stack.empty() && wroteRoot; }

  private:
    enum class Scope { Object, Array };

    /** Pre-value bookkeeping: comma placement and key/value pairing. */
    void onValue();

    std::ostream &out;
    struct Level
    {
        Scope scope;
        bool hasMembers = false;
        bool keyPending = false;
    };
    std::vector<Level> stack;
    bool wroteRoot = false;
};

} // namespace lemons::obs

#endif // LEMONS_OBS_JSON_H_
