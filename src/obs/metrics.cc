#include "obs/metrics.h"

#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/prometheus.h"

namespace lemons::obs {

double
Timer::meanNs() const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    return static_cast<double>(totalNs()) / static_cast<double>(n);
}

HistogramMetric::HistogramMetric(double low, double high, size_t bins)
    : inner(low, high, bins)
{
}

void
HistogramMetric::add(double x)
{
    const MutexLock lock(mu);
    inner.add(x);
}

Histogram
HistogramMetric::snapshot() const
{
    const MutexLock lock(mu);
    return inner;
}

void
HistogramMetric::reset()
{
    const MutexLock lock(mu);
    // Histogram has no clear(); rebuild with the same layout.
    inner = Histogram(inner.binLow(0),
                      inner.binHigh(inner.binCount() - 1),
                      inner.binCount());
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(std::string_view name)
{
    const MutexLock lock(mu);
    auto it = counters.find(name);
    if (it == counters.end()) {
        it = counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Timer &
Registry::timer(std::string_view name)
{
    const MutexLock lock(mu);
    auto it = timers.find(name);
    if (it == timers.end()) {
        it = timers.emplace(std::string(name), std::make_unique<Timer>())
                 .first;
    }
    return *it->second;
}

HistogramMetric &
Registry::histogram(std::string_view name, double low, double high,
                    size_t bins)
{
    const MutexLock lock(mu);
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(std::string(name),
                          std::make_unique<HistogramMetric>(low, high,
                                                            bins))
                 .first;
    }
    return *it->second;
}

size_t
Registry::size() const
{
    const MutexLock lock(mu);
    return counters.size() + timers.size() + histograms.size();
}

bool
Registry::contains(std::string_view name) const
{
    const MutexLock lock(mu);
    return counters.find(name) != counters.end() ||
           timers.find(name) != timers.end() ||
           histograms.find(name) != histograms.end();
}

Snapshot
Registry::snapshot() const
{
    const MutexLock lock(mu);
    Snapshot snap;
    snap.counters.reserve(counters.size());
    for (const auto &[name, counter] : counters)
        snap.counters.push_back({name, counter->get()});
    snap.timers.reserve(timers.size());
    for (const auto &[name, timer] : timers)
        snap.timers.push_back({name, timer->count(), timer->totalNs()});
    snap.histograms.reserve(histograms.size());
    for (const auto &[name, histogram] : histograms)
        snap.histograms.push_back({name, histogram->snapshot()});
    return snap;
}

void
Registry::resetAll()
{
    const MutexLock lock(mu);
    for (const auto &[name, counter] : counters)
        counter->reset();
    for (const auto &[name, timer] : timers)
        timer->reset();
    for (const auto &[name, histogram] : histograms)
        histogram->reset();
}

std::vector<CounterSample>
Snapshot::countersSince(const Snapshot &base) const
{
    std::vector<CounterSample> deltas;
    // Both sides are name-sorted (std::map iteration order).
    size_t b = 0;
    for (const CounterSample &sample : counters) {
        while (b < base.counters.size() &&
               base.counters[b].name < sample.name)
            ++b;
        uint64_t before = 0;
        if (b < base.counters.size() &&
            base.counters[b].name == sample.name)
            before = base.counters[b].value;
        if (sample.value != before)
            deltas.push_back({sample.name, sample.value - before});
    }
    return deltas;
}

std::vector<TimerSample>
Snapshot::timersSince(const Snapshot &base) const
{
    std::vector<TimerSample> deltas;
    size_t b = 0;
    for (const TimerSample &sample : timers) {
        while (b < base.timers.size() && base.timers[b].name < sample.name)
            ++b;
        uint64_t beforeCount = 0;
        uint64_t beforeNs = 0;
        if (b < base.timers.size() && base.timers[b].name == sample.name) {
            beforeCount = base.timers[b].count;
            beforeNs = base.timers[b].totalNs;
        }
        if (sample.count != beforeCount || sample.totalNs != beforeNs) {
            deltas.push_back({sample.name, sample.count - beforeCount,
                              sample.totalNs - beforeNs});
        }
    }
    return deltas;
}

std::string
Registry::toJson() const
{
    const Snapshot snap = snapshot();
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();

    json.key("counters");
    json.beginObject();
    for (const CounterSample &sample : snap.counters) {
        json.key(sample.name);
        json.value(sample.value);
    }
    json.endObject();

    json.key("timers");
    json.beginObject();
    for (const TimerSample &sample : snap.timers) {
        json.key(sample.name);
        json.beginObject();
        json.key("count");
        json.value(sample.count);
        json.key("total_ns");
        json.value(sample.totalNs);
        json.endObject();
    }
    json.endObject();

    json.key("histograms");
    json.beginObject();
    for (const HistogramSample &sample : snap.histograms) {
        const Histogram &h = sample.histogram;
        json.key(sample.name);
        json.beginObject();
        json.key("low");
        json.value(h.binLow(0));
        json.key("high");
        json.value(h.binHigh(h.binCount() - 1));
        json.key("underflow");
        json.value(h.underflow());
        json.key("overflow");
        json.value(h.overflow());
        json.key("bins");
        json.beginArray();
        for (size_t i = 0; i < h.binCount(); ++i)
            json.value(h.binValue(i));
        json.endArray();
        json.endObject();
    }
    json.endObject();

    json.endObject();
    return out.str();
}

std::string
Registry::toPrometheus() const
{
    return obs::toPrometheus(snapshot());
}

} // namespace lemons::obs
