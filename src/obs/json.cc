#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/require.h"

namespace lemons::obs {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &sink) : out(sink) {}

void
JsonWriter::onValue()
{
    requireArg(!wroteRoot || !stack.empty(),
               "JsonWriter: only one root value allowed");
    if (stack.empty()) {
        wroteRoot = true;
        return;
    }
    Level &level = stack.back();
    if (level.scope == Scope::Object) {
        requireArg(level.keyPending,
                   "JsonWriter: object member needs a key first");
        level.keyPending = false;
    } else {
        if (level.hasMembers)
            out << ',';
        level.hasMembers = true;
    }
}

void
JsonWriter::beginObject()
{
    onValue();
    out << '{';
    stack.push_back({Scope::Object});
}

void
JsonWriter::endObject()
{
    requireArg(!stack.empty() && stack.back().scope == Scope::Object &&
                   !stack.back().keyPending,
               "JsonWriter: mismatched endObject");
    stack.pop_back();
    out << '}';
}

void
JsonWriter::beginArray()
{
    onValue();
    out << '[';
    stack.push_back({Scope::Array});
}

void
JsonWriter::endArray()
{
    requireArg(!stack.empty() && stack.back().scope == Scope::Array,
               "JsonWriter: mismatched endArray");
    stack.pop_back();
    out << ']';
}

void
JsonWriter::key(std::string_view name)
{
    requireArg(!stack.empty() && stack.back().scope == Scope::Object,
               "JsonWriter: key outside of object");
    Level &level = stack.back();
    requireArg(!level.keyPending, "JsonWriter: key already pending");
    if (level.hasMembers)
        out << ',';
    level.hasMembers = true;
    level.keyPending = true;
    out << '"' << jsonEscape(name) << "\":";
}

void
JsonWriter::value(std::string_view text)
{
    onValue();
    out << '"' << jsonEscape(text) << '"';
}

void
JsonWriter::value(double number)
{
    if (!std::isfinite(number)) {
        null();
        return;
    }
    onValue();
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.*g",
                  std::numeric_limits<double>::max_digits10, number);
    out << buffer;
}

void
JsonWriter::value(uint64_t number)
{
    onValue();
    out << number;
}

void
JsonWriter::value(int number)
{
    onValue();
    out << number;
}

void
JsonWriter::value(bool flag)
{
    onValue();
    out << (flag ? "true" : "false");
}

void
JsonWriter::null()
{
    onValue();
    out << "null";
}

} // namespace lemons::obs
