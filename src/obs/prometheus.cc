#include "obs/prometheus.h"

#include <cstdio>
#include <sstream>

namespace lemons::obs {

namespace {

/** Shortest round-trip-ish rendering for exposition values. */
std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.10g", value);
    return buffer;
}

bool
legalNameChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/** HELP text may not contain newlines or stray backslashes. */
std::string
escapeHelp(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
writeHeader(std::ostream &out, const std::string &name,
            const char *kind, const std::string &original)
{
    out << "# HELP " << name << " lemons " << kind << " "
        << escapeHelp(original) << "\n";
    out << "# TYPE " << name << " " << kind << "\n";
}

} // namespace

std::string
prometheusName(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 1);
    if (!name.empty() && name.front() >= '0' && name.front() <= '9')
        out += '_';
    for (char c : name)
        out += legalNameChar(c) ? c : '_';
    return out;
}

std::string
toPrometheus(const Snapshot &snapshot)
{
    std::ostringstream out;
    for (const CounterSample &counter : snapshot.counters) {
        const std::string name =
            "lemons_" + prometheusName(counter.name);
        writeHeader(out, name, "counter", counter.name);
        out << name << " " << counter.value << "\n";
    }
    for (const TimerSample &timer : snapshot.timers) {
        const std::string name =
            "lemons_" + prometheusName(timer.name) + "_seconds";
        writeHeader(out, name, "summary", timer.name);
        out << name << "_sum "
            << formatDouble(static_cast<double>(timer.totalNs) * 1e-9)
            << "\n";
        out << name << "_count " << timer.count << "\n";
    }
    for (const HistogramSample &sample : snapshot.histograms) {
        const std::string name =
            "lemons_" + prometheusName(sample.name);
        writeHeader(out, name, "histogram", sample.name);
        const Histogram &histogram = sample.histogram;
        // Buckets are cumulative from -Inf, so the underflow bucket
        // folds into every le line and overflow only shows in +Inf.
        uint64_t cumulative = histogram.underflow();
        for (size_t i = 0; i < histogram.binCount(); ++i) {
            cumulative += histogram.binValue(i);
            out << name << "_bucket{le=\""
                << formatDouble(histogram.binHigh(i)) << "\"} "
                << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << histogram.total()
            << "\n";
        out << name << "_sum " << formatDouble(histogram.sum()) << "\n";
        out << name << "_count " << histogram.total() << "\n";
    }
    return out.str();
}

} // namespace lemons::obs
