/**
 * @file
 * Low-overhead metrics registry: counters, timers, and histograms.
 *
 * Every hot path in the library (Monte Carlo trials, device sampling,
 * the design solver, the coding substrates) reports into a global
 * Registry through the LEMONS_OBS_* macros. A macro call site resolves
 * its metric once (a function-local static reference, one registry
 * lookup for the lifetime of the process) and then costs a single
 * relaxed atomic add — cheap enough to leave on in Release builds.
 *
 * Defining LEMONS_OBS_DISABLED (per translation unit, or build-wide
 * via -DLEMONS_OBS_DISABLE=ON) compiles every macro to nothing, so the
 * instrumentation can be proven free when it matters. The classes
 * below remain available either way; only the macros disappear.
 *
 * Snapshots are name-sorted and JSON-serializable (registry design and
 * schema documented in docs/ARCHITECTURE.md, "Observability").
 */

#ifndef LEMONS_OBS_METRICS_H_
#define LEMONS_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lemons::obs {

/**
 * Monotonically increasing event count. add() is wait-free (one
 * relaxed fetch_add); reads may observe a slightly stale value while
 * writers are active, which is fine for telemetry.
 */
class Counter
{
  public:
    /** Add @p delta events. */
    void add(uint64_t delta = 1)
    {
        value.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Current count. */
    uint64_t get() const { return value.load(std::memory_order_relaxed); }

    /** Reset to zero (between benchmark repetitions). */
    void reset() { value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value{0};
};

/**
 * Accumulated wall time of a scoped code region: total nanoseconds and
 * invocation count, both relaxed atomics.
 */
class Timer
{
  public:
    /** Record one invocation lasting @p ns nanoseconds. */
    void record(uint64_t ns)
    {
        totalNanos.fetch_add(ns, std::memory_order_relaxed);
        invocations.fetch_add(1, std::memory_order_relaxed);
    }

    /** Total accumulated nanoseconds. */
    uint64_t totalNs() const
    {
        return totalNanos.load(std::memory_order_relaxed);
    }

    /** Number of recorded invocations. */
    uint64_t count() const
    {
        return invocations.load(std::memory_order_relaxed);
    }

    /** Mean nanoseconds per invocation; 0 when never invoked. */
    double meanNs() const;

    /** Reset both accumulators. */
    void reset()
    {
        totalNanos.store(0, std::memory_order_relaxed);
        invocations.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> totalNanos{0};
    std::atomic<uint64_t> invocations{0};
};

/** RAII guard that records its own lifetime into a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &target)
        : timer(target), start(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count();
        timer.record(ns < 0 ? 0 : static_cast<uint64_t>(ns));
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer &timer;
    std::chrono::steady_clock::time_point start;
};

/**
 * A lemons::Histogram behind a mutex, so concurrent Monte Carlo
 * workers can feed one distribution metric. Coarser-grained than
 * Counter/Timer (one lock per add) — use for values worth a
 * distribution, not for per-device events.
 */
class HistogramMetric
{
  public:
    /** See Histogram: bins over [low, high), under/overflow counted. */
    HistogramMetric(double low, double high, size_t bins);

    /** Record one sample. */
    void add(double x) LEMONS_EXCLUDES(mu);

    /** Consistent copy of the histogram so far. */
    Histogram snapshot() const LEMONS_EXCLUDES(mu);

    /** Reset all bins (the bin layout is kept). */
    void reset() LEMONS_EXCLUDES(mu);

  private:
    mutable Mutex mu;
    Histogram inner LEMONS_GUARDED_BY(mu);
};

/** Name/value pair of one counter at snapshot time. */
struct CounterSample
{
    std::string name;
    uint64_t value;
};

/** One timer at snapshot time. */
struct TimerSample
{
    std::string name;
    uint64_t count;
    uint64_t totalNs;
};

/** One histogram at snapshot time. */
struct HistogramSample
{
    std::string name;
    Histogram histogram;
};

/** Name-sorted, point-in-time view of a Registry. */
struct Snapshot
{
    std::vector<CounterSample> counters;
    std::vector<TimerSample> timers;
    std::vector<HistogramSample> histograms;

    /**
     * Counters as (name, this.value - base.value), for metrics that
     * only exist in @p base with equal value the entry is dropped.
     * Used by the benchmark harness to report per-run activity.
     */
    std::vector<CounterSample> countersSince(const Snapshot &base) const;

    /** Timers as deltas against @p base (same convention). */
    std::vector<TimerSample> timersSince(const Snapshot &base) const;
};

/**
 * Registry of named metrics. Lookup-or-create is guarded by a mutex;
 * the returned references stay valid for the registry's lifetime, so
 * call sites resolve once and then touch only their own atomic.
 *
 * Names are dotted paths by convention ("sim.mc.trials"); the JSON
 * serialization keeps them flat.
 */
class Registry
{
  public:
    /** The process-wide registry the LEMONS_OBS_* macros use. */
    static Registry &global();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find or create the counter @p name. */
    Counter &counter(std::string_view name) LEMONS_EXCLUDES(mu);

    /** Find or create the timer @p name. */
    Timer &timer(std::string_view name) LEMONS_EXCLUDES(mu);

    /**
     * Find or create the histogram @p name. The bin layout is fixed by
     * the first caller; later calls with different parameters get the
     * existing instance.
     */
    HistogramMetric &histogram(std::string_view name, double low,
                               double high, size_t bins)
        LEMONS_EXCLUDES(mu);

    /** Number of registered metrics (counters + timers + histograms). */
    size_t size() const LEMONS_EXCLUDES(mu);

    /** Whether a metric of any kind named @p name exists. */
    bool contains(std::string_view name) const LEMONS_EXCLUDES(mu);

    /** Name-sorted copy of every metric's current value. */
    Snapshot snapshot() const LEMONS_EXCLUDES(mu);

    /**
     * Zero every metric (registrations are kept, so cached references
     * at call sites stay valid). Benchmark repetitions use this to
     * start from a clean slate.
     */
    void resetAll() LEMONS_EXCLUDES(mu);

    /**
     * Serialize the registry as a JSON object:
     * {"counters":{name:value},
     *  "timers":{name:{"count":c,"total_ns":t}},
     *  "histograms":{name:{"low":l,"high":h,"bins":[...],
     *                      "underflow":u,"overflow":o}}}
     */
    std::string toJson() const LEMONS_EXCLUDES(mu);

    /**
     * Serialize the registry in the Prometheus text exposition format
     * (see obs/prometheus.h for the mapping and sanitization rules).
     * Backs lemonsd's GET /metrics endpoint.
     */
    std::string toPrometheus() const LEMONS_EXCLUDES(mu);

  private:
    mutable Mutex mu;
    // std::map: stable addresses are provided by unique_ptr; ordered
    // iteration gives deterministic snapshots and JSON.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters LEMONS_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Timer>, std::less<>>
        timers LEMONS_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
        histograms LEMONS_GUARDED_BY(mu);
};

} // namespace lemons::obs

/*
 * Instrumentation macros. Discipline (docs/ARCHITECTURE.md):
 *  - call sites live in .cc files, never in public headers;
 *  - names are compile-time string literals, dotted, lowercase;
 *  - counters for events, timers for regions >= ~1 us (steady_clock
 *    reads are not free), histograms only off the hot path.
 */
#if defined(LEMONS_OBS_DISABLED)

#define LEMONS_OBS_COUNT(name, delta) static_cast<void>(0)
#define LEMONS_OBS_INCREMENT(name) static_cast<void>(0)
#define LEMONS_OBS_SCOPED_TIMER(name) static_cast<void>(0)

#else

/** Add @p delta to the counter @p name (string literal). */
#define LEMONS_OBS_COUNT(name, delta)                                      \
    do {                                                                   \
        static ::lemons::obs::Counter &lemonsObsCounter =                  \
            ::lemons::obs::Registry::global().counter(name);               \
        lemonsObsCounter.add(delta);                                       \
    } while (false)

/** Count one event on the counter @p name. */
#define LEMONS_OBS_INCREMENT(name) LEMONS_OBS_COUNT(name, 1)

#define LEMONS_OBS_CONCAT_INNER(a, b) a##b
#define LEMONS_OBS_CONCAT(a, b) LEMONS_OBS_CONCAT_INNER(a, b)

/** Time the rest of the enclosing scope into the timer @p name. */
#define LEMONS_OBS_SCOPED_TIMER(name)                                      \
    static ::lemons::obs::Timer &LEMONS_OBS_CONCAT(lemonsObsTimer,         \
                                                   __LINE__) =             \
        ::lemons::obs::Registry::global().timer(name);                     \
    const ::lemons::obs::ScopedTimer LEMONS_OBS_CONCAT(                    \
        lemonsObsTimerGuard, __LINE__)(                                    \
        LEMONS_OBS_CONCAT(lemonsObsTimer, __LINE__))

#endif // LEMONS_OBS_DISABLED

#endif // LEMONS_OBS_METRICS_H_
