/**
 * @file
 * Minimal CSV output (RFC 4180 quoting) so benches can emit
 * machine-readable data next to their human-readable tables — the
 * series behind each figure can then be plotted or diffed directly.
 */

#ifndef LEMONS_UTIL_CSV_H_
#define LEMONS_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace lemons {

/**
 * Quote a CSV field per RFC 4180: fields containing commas, quotes,
 * or newlines are wrapped in double quotes with inner quotes doubled.
 */
std::string csvEscape(const std::string &field);

/**
 * Row-oriented CSV writer over an owned output file.
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing (truncates). Check good() before use.
     */
    explicit CsvWriter(const std::string &path);

    /** Whether the underlying stream is healthy. */
    bool good() const { return out.good(); }

    /** Write one row. */
    void writeRow(const std::vector<std::string> &cells);

    /** Rows written so far. */
    size_t rowCount() const { return rows; }

  private:
    std::ofstream out;
    size_t rows = 0;
};

/**
 * Write @p rows to @p path in one call (used by benches to emit the
 * machine-readable series behind a figure).
 *
 * @return true when the file was written successfully.
 */
bool writeCsvFile(const std::string &path,
                  const std::vector<std::vector<std::string>> &rows);

} // namespace lemons

#endif // LEMONS_UTIL_CSV_H_
