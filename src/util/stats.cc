#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"

namespace lemons {

void
RunningStats::add(double x)
{
    if (!std::isfinite(x)) {
        ++nonFinite;
        return;
    }
    if (n == 0) {
        minValue = x;
        maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
    ++n;
    const double delta = x - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (x - runningMean);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0) {
        nonFinite += other.nonFinite;
        return;
    }
    if (n == 0) {
        const uint64_t quarantined = nonFinite;
        *this = other;
        nonFinite += quarantined;
        return;
    }
    nonFinite += other.nonFinite;
    const double nA = static_cast<double>(n);
    const double nB = static_cast<double>(other.n);
    const double delta = other.runningMean - runningMean;
    const double total = nA + nB;
    runningMean += delta * (nB / total);
    m2 += other.m2 + delta * delta * (nA * nB / total);
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
    n += other.n;
}

RunningStats::State
RunningStats::state() const
{
    State state;
    state.count = n;
    state.nonFiniteCount = nonFinite;
    state.mean = runningMean;
    state.m2 = m2;
    state.min = minValue;
    state.max = maxValue;
    return state;
}

RunningStats
RunningStats::fromState(const State &state)
{
    RunningStats stats;
    stats.n = state.count;
    stats.nonFinite = state.nonFiniteCount;
    stats.runningMean = state.mean;
    stats.m2 = state.m2;
    stats.minValue = state.min;
    stats.maxValue = state.max;
    return stats;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::meanStdError() const
{
    if (n < 2)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n));
}

double
quantile(std::vector<double> samples, double q)
{
    requireArg(!samples.empty(), "quantile: empty sample set");
    requireArg(q >= 0.0 && q <= 1.0, "quantile: q outside [0, 1]");
    std::sort(samples.begin(), samples.end());
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

ProportionInterval
wilsonInterval(uint64_t successes, uint64_t trials, double z)
{
    requireArg(trials > 0, "wilsonInterval: trials must be positive");
    requireArg(successes <= trials,
               "wilsonInterval: successes exceed trials");
    const double n = static_cast<double>(trials);
    const double pHat = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (pHat + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(pHat * (1.0 - pHat) / n + z2 / (4.0 * n * n)) / denom;
    return {pHat, std::max(0.0, center - half), std::min(1.0, center + half)};
}

} // namespace lemons
