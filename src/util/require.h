/**
 * @file
 * Precondition / invariant checking for programming errors.
 *
 * These checks guard API contracts (e.g. "k must satisfy 1 <= k <= n").
 * Violations are programming errors, not recoverable runtime conditions,
 * so they throw std::logic_error (std::invalid_argument for argument
 * checks) which terminates tests loudly and is trivially testable with
 * EXPECT_THROW.
 */

#ifndef LEMONS_UTIL_REQUIRE_H_
#define LEMONS_UTIL_REQUIRE_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace lemons {

/**
 * Throw std::invalid_argument unless @p condition holds.
 *
 * The const char* overloads are the ones string literals bind to: they
 * keep the success path free of std::string construction (a heap
 * allocation for every message longer than the SSO buffer), which
 * matters because these checks sit on per-trial Monte Carlo paths. The
 * exception message is materialized only on failure.
 *
 * @param condition Contract that must hold.
 * @param message Description of the violated contract.
 */
inline void
requireArg(bool condition, const char *message)
{
    if (!condition)
        throw std::invalid_argument(message);
}

inline void
requireArg(bool condition, const std::string &message)
{
    if (!condition)
        throw std::invalid_argument(message);
}

/**
 * Throw std::logic_error unless @p condition holds. Used for internal
 * invariants that callers cannot violate through the public API.
 */
inline void
requireState(bool condition, const char *message)
{
    if (!condition)
        throw std::logic_error(message);
}

inline void
requireState(bool condition, const std::string &message)
{
    if (!condition)
        throw std::logic_error(message);
}

} // namespace lemons

#endif // LEMONS_UTIL_REQUIRE_H_
