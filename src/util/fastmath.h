/**
 * @file
 * Deterministic elementary functions for the hot sampling transforms.
 *
 * libm's pow/log are correctly rounded-ish but implementation-defined:
 * different libc versions (or a future vector-math library) may round
 * the last ulp differently, which would silently shift every golden
 * number in the test suite. The Weibull inverse-CDF transform is the
 * one elementary-function call on the trial hot path, so the library
 * pins its own fixed-operation-sequence implementations here: detLog /
 * detExp / detPow execute the exact same IEEE double operations in the
 * same order on every platform, and the AVX2 four-lane batch mirrors
 * the scalar sequence operation for operation — so scalar and vector
 * dispatch are bit-identical by construction, not by luck.
 *
 * Accuracy is a few ulp (argument reduction + polynomial, no fused
 * multiply-adds), which the statistical suites bound end-to-end; these
 * are sampling transforms, not analytic kernels — the closed-form
 * Weibull analytics (cdf/quantile/mttf) stay on libm.
 *
 * Domain: strictly positive, finite, normal inputs (plus the exact
 * zero handled by detPow). The sampling pipeline guarantees this:
 * uniforms are in [2^-53, 1], so -detLog(u) is in [0, 53 ln 2].
 */

#ifndef LEMONS_UTIL_FASTMATH_H_
#define LEMONS_UTIL_FASTMATH_H_

#include <cstddef>

namespace lemons::fastmath {

/**
 * Natural logarithm of @p x.
 * @pre x is positive, finite and normal (>= DBL_MIN).
 */
double detLog(double x);

/**
 * e raised to @p x, for |x| <= 700 (result stays normal).
 */
double detExp(double x);

/**
 * @p base raised to @p exponent via detExp(exponent * detLog(base)).
 * base == 0 returns 0 (1 when exponent == 0), matching std::pow on
 * the sampling domain.
 * @pre base is zero or a positive normal double; exponent is finite
 *      and |exponent * detLog(base)| <= 700.
 */
double detPow(double base, double exponent);

/**
 * Batched power: out[i] = detPow(base[i], exponent) for i in
 * [0, count). Dispatches to the AVX2 four-lane kernel when
 * simd::activeLevel() allows; bit-identical to the scalar loop at any
 * dispatch level. @p out may alias @p base.
 */
void detPowBatch(const double *base, size_t count, double exponent,
                 double *out);

} // namespace lemons::fastmath

#endif // LEMONS_UTIL_FASTMATH_H_
