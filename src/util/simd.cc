#include "util/simd.h"

#include <atomic>
#include <cstdlib>

namespace lemons::simd {

namespace {

/** -1 = no override, otherwise the forced Level as an int. */
std::atomic<int> testOverride{-1};

Level
detect()
{
#if defined(LEMONS_NO_SIMD)
    return Level::Scalar;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") ? Level::Avx2 : Level::Scalar;
#else
    return Level::Scalar;
#endif
}

bool
envDisabled()
{
    const char *flag = std::getenv("LEMONS_NO_SIMD");
    return flag != nullptr && flag[0] != '\0';
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Avx2:
        return "avx2";
    case Level::Scalar:
        break;
    }
    return "scalar";
}

Level
detectedLevel()
{
    static const Level level = detect();
    return level;
}

Level
activeLevel()
{
    const int forced = testOverride.load(std::memory_order_relaxed);
    if (forced >= 0) {
        const Level requested = static_cast<Level>(forced);
        return requested < detectedLevel() ? requested : detectedLevel();
    }
    static const bool disabled = envDisabled();
    if (disabled)
        return Level::Scalar;
    return detectedLevel();
}

void
setLevelForTesting(Level level)
{
    testOverride.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
clearLevelForTesting()
{
    testOverride.store(-1, std::memory_order_relaxed);
}

} // namespace lemons::simd
