#include "util/philox.h"

#include "util/simd.h"

#if defined(__x86_64__) && !defined(LEMONS_NO_SIMD)
#define LEMONS_PHILOX_AVX2 1
#include <immintrin.h>
#endif

namespace lemons::philox {

namespace {

/** One multiply of a Philox round: 32x32 -> (hi, lo) 32-bit halves. */
inline uint32_t
mulHiLo(uint32_t a, uint32_t b, uint32_t &hi)
{
    const uint64_t product = static_cast<uint64_t>(a) * b;
    hi = static_cast<uint32_t>(product >> 32);
    return static_cast<uint32_t>(product);
}

/**
 * Domain tag ("philox4x" in ASCII) XORed into the seed before the
 * SplitMix64 key-derivation step; see deriveKey().
 */
constexpr uint64_t kKeyDomainTag = 0x7068696C6F783478ULL;

void
fillRaw64Scalar(Key key, uint64_t trial, uint64_t firstBlock, uint64_t *out,
                size_t blockCount)
{
    for (size_t i = 0; i < blockCount; ++i) {
        const Counter output = block(makeCounter(trial, firstBlock + i), key);
        const std::array<uint64_t, 2> draws = blockDraws(output);
        out[2 * i] = draws[0];
        out[2 * i + 1] = draws[1];
    }
}

/** Draw -> (0, 1] uniform, the library-wide 53-bit convention. */
inline double
toUniformOpenLow(uint64_t w)
{
    return static_cast<double>((w >> 11) + 1) * 0x1.0p-53;
}

void
fillUniformScalar(Key key, uint64_t trial, uint64_t firstBlock, double *out,
                  size_t blockCount)
{
    for (size_t i = 0; i < blockCount; ++i) {
        const std::array<uint64_t, 2> draws =
            blockDraws(block(makeCounter(trial, firstBlock + i), key));
        out[2 * i] = toUniformOpenLow(draws[0]);
        out[2 * i + 1] = toUniformOpenLow(draws[1]);
    }
}

#if defined(LEMONS_PHILOX_AVX2)

/**
 * Four Philox blocks at once: every counter/key word lives as a 32-bit
 * value in a 64-bit lane, so _mm256_mul_epu32 delivers the four
 * 32x32->64 products of one round in a single instruction. Pure
 * integer arithmetic, hence bit-identical to fillRaw64Scalar.
 */
/** Draws of four consecutive blocks, in stream order (4 per vector). */
struct DrawsX4
{
    __m256i first;  // draws 0..3 of the group
    __m256i second; // draws 4..7 of the group
};

/** One lane-parallel counter state (blocks b, b+1, b+2, b+3). */
struct StateX4
{
    __m256i c0, c1, c2, c3;
};

__attribute__((target("avx2"))) inline StateX4
philoxCountersX4Avx2(uint64_t trial, uint64_t firstBlock)
{
    const __m256i mask32 =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFULL));
    // Lane j holds block firstBlock + j. The block index spans counter
    // words 0 (low) and 1 (high).
    const __m256i blockIndex = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(firstBlock)),
        _mm256_set_epi64x(3, 2, 1, 0));
    return {_mm256_and_si256(blockIndex, mask32),
            _mm256_srli_epi64(blockIndex, 32),
            _mm256_set1_epi64x(static_cast<long long>(trial & 0xFFFFFFFFULL)),
            _mm256_set1_epi64x(static_cast<long long>(trial >> 32))};
}

__attribute__((target("avx2"))) inline StateX4
philoxRoundsX4Avx2(StateX4 s, Key key)
{
    const __m256i mult0 = _mm256_set1_epi64x(static_cast<long long>(kMult0));
    const __m256i mult1 = _mm256_set1_epi64x(static_cast<long long>(kMult1));
    // Weyl increments sit in the low dword of each lane so a plain
    // 32-bit lane add reproduces the scalar key bump's mod-2^32 wrap.
    const __m256i weyl0 = _mm256_set1_epi64x(static_cast<long long>(kWeyl0));
    const __m256i weyl1 = _mm256_set1_epi64x(static_cast<long long>(kWeyl1));
    const __m256i mask32 =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFULL));
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));

    for (int round = 0; round < kRounds; ++round) {
        if (round != 0) {
            k0 = _mm256_add_epi32(k0, weyl0);
            k1 = _mm256_add_epi32(k1, weyl1);
        }
        const __m256i product0 = _mm256_mul_epu32(s.c0, mult0);
        const __m256i product1 = _mm256_mul_epu32(s.c2, mult1);
        const __m256i hi0 = _mm256_srli_epi64(product0, 32);
        const __m256i lo0 = _mm256_and_si256(product0, mask32);
        const __m256i hi1 = _mm256_srli_epi64(product1, 32);
        const __m256i lo1 = _mm256_and_si256(product1, mask32);
        s.c0 = _mm256_xor_si256(_mm256_xor_si256(hi1, s.c1), k0);
        s.c1 = lo1;
        s.c2 = _mm256_xor_si256(_mm256_xor_si256(hi0, s.c3), k1);
        s.c3 = lo0;
    }
    return s;
}

__attribute__((target("avx2"))) inline DrawsX4
philoxDrawsX4Avx2(const StateX4 &s)
{
    // Per lane: draw0 = x0 | x1 << 32, draw1 = x2 | x3 << 32, then
    // interleave lanes into block order (d0_0 d1_0 d0_1 d1_1 ...).
    const __m256i draw0 =
        _mm256_or_si256(s.c0, _mm256_slli_epi64(s.c1, 32));
    const __m256i draw1 =
        _mm256_or_si256(s.c2, _mm256_slli_epi64(s.c3, 32));
    const __m256i evenPairs = _mm256_unpacklo_epi64(draw0, draw1);
    const __m256i oddPairs = _mm256_unpackhi_epi64(draw0, draw1);
    return {_mm256_permute2x128_si256(evenPairs, oddPairs, 0x20),
            _mm256_permute2x128_si256(evenPairs, oddPairs, 0x31)};
}

__attribute__((target("avx2"))) inline DrawsX4
philoxBlocksX4Avx2(Key key, uint64_t trial, uint64_t firstBlock)
{
    return philoxDrawsX4Avx2(
        philoxRoundsX4Avx2(philoxCountersX4Avx2(trial, firstBlock), key));
}

/**
 * Two independent four-block groups with their round loops interleaved
 * in one body: the ten-round chain of one group is latency-bound (each
 * round's multiplies wait on the previous round), so pairing it with a
 * second, data-independent chain roughly doubles multiplier
 * utilization. Bit-identical to two philoxBlocksX4Avx2 calls.
 */
__attribute__((target("avx2"))) inline void
philoxBlocksX8Avx2(Key key, uint64_t trial, uint64_t firstBlock, DrawsX4 &a,
                   DrawsX4 &b)
{
    const __m256i mult0 = _mm256_set1_epi64x(static_cast<long long>(kMult0));
    const __m256i mult1 = _mm256_set1_epi64x(static_cast<long long>(kMult1));
    const __m256i weyl0 = _mm256_set1_epi64x(static_cast<long long>(kWeyl0));
    const __m256i weyl1 = _mm256_set1_epi64x(static_cast<long long>(kWeyl1));
    const __m256i mask32 =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFULL));
    StateX4 sa = philoxCountersX4Avx2(trial, firstBlock);
    StateX4 sb = philoxCountersX4Avx2(trial, firstBlock + 4);
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));

    for (int round = 0; round < kRounds; ++round) {
        if (round != 0) {
            k0 = _mm256_add_epi32(k0, weyl0);
            k1 = _mm256_add_epi32(k1, weyl1);
        }
        const __m256i pa0 = _mm256_mul_epu32(sa.c0, mult0);
        const __m256i pb0 = _mm256_mul_epu32(sb.c0, mult0);
        const __m256i pa1 = _mm256_mul_epu32(sa.c2, mult1);
        const __m256i pb1 = _mm256_mul_epu32(sb.c2, mult1);
        const __m256i hia0 = _mm256_srli_epi64(pa0, 32);
        const __m256i hib0 = _mm256_srli_epi64(pb0, 32);
        const __m256i loa0 = _mm256_and_si256(pa0, mask32);
        const __m256i lob0 = _mm256_and_si256(pb0, mask32);
        const __m256i hia1 = _mm256_srli_epi64(pa1, 32);
        const __m256i hib1 = _mm256_srli_epi64(pb1, 32);
        const __m256i loa1 = _mm256_and_si256(pa1, mask32);
        const __m256i lob1 = _mm256_and_si256(pb1, mask32);
        sa.c0 = _mm256_xor_si256(_mm256_xor_si256(hia1, sa.c1), k0);
        sb.c0 = _mm256_xor_si256(_mm256_xor_si256(hib1, sb.c1), k0);
        sa.c1 = loa1;
        sb.c1 = lob1;
        sa.c2 = _mm256_xor_si256(_mm256_xor_si256(hia0, sa.c3), k1);
        sb.c2 = _mm256_xor_si256(_mm256_xor_si256(hib0, sb.c3), k1);
        sa.c3 = loa0;
        sb.c3 = lob0;
    }
    a = philoxDrawsX4Avx2(sa);
    b = philoxDrawsX4Avx2(sb);
}

/**
 * Three independent four-block groups (12 blocks): the sweet spot for
 * short latency-sensitive reductions — 12 state vectors plus two key
 * vectors and the two multipliers fill the sixteen ymm registers
 * exactly, so the 10-round loop runs spill-free with three chains
 * hiding each other's multiply latency. Bit-identical to three X4
 * calls.
 */
__attribute__((target("avx2"))) inline void
philoxBlocksX12Avx2(Key key, uint64_t trial, uint64_t firstBlock,
                    DrawsX4 &a, DrawsX4 &b, DrawsX4 &c)
{
    const __m256i mult0 = _mm256_set1_epi64x(static_cast<long long>(kMult0));
    const __m256i mult1 = _mm256_set1_epi64x(static_cast<long long>(kMult1));
    const __m256i weyl0 = _mm256_set1_epi64x(static_cast<long long>(kWeyl0));
    const __m256i weyl1 = _mm256_set1_epi64x(static_cast<long long>(kWeyl1));
    const __m256i mask32 =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFULL));
    StateX4 sa = philoxCountersX4Avx2(trial, firstBlock);
    StateX4 sb = philoxCountersX4Avx2(trial, firstBlock + 4);
    StateX4 sc = philoxCountersX4Avx2(trial, firstBlock + 8);
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));

    for (int round = 0; round < kRounds; ++round) {
        if (round != 0) {
            k0 = _mm256_add_epi32(k0, weyl0);
            k1 = _mm256_add_epi32(k1, weyl1);
        }
        const __m256i pa0 = _mm256_mul_epu32(sa.c0, mult0);
        const __m256i pb0 = _mm256_mul_epu32(sb.c0, mult0);
        const __m256i pc0 = _mm256_mul_epu32(sc.c0, mult0);
        const __m256i pa1 = _mm256_mul_epu32(sa.c2, mult1);
        const __m256i pb1 = _mm256_mul_epu32(sb.c2, mult1);
        const __m256i pc1 = _mm256_mul_epu32(sc.c2, mult1);
        sa.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pa1, 32), sa.c1), k0);
        sb.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pb1, 32), sb.c1), k0);
        sc.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pc1, 32), sc.c1), k0);
        sa.c1 = _mm256_and_si256(pa1, mask32);
        sb.c1 = _mm256_and_si256(pb1, mask32);
        sc.c1 = _mm256_and_si256(pc1, mask32);
        sa.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pa0, 32), sa.c3), k1);
        sb.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pb0, 32), sb.c3), k1);
        sc.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pc0, 32), sc.c3), k1);
        sa.c3 = _mm256_and_si256(pa0, mask32);
        sb.c3 = _mm256_and_si256(pb0, mask32);
        sc.c3 = _mm256_and_si256(pc0, mask32);
    }
    a = philoxDrawsX4Avx2(sa);
    b = philoxDrawsX4Avx2(sb);
    c = philoxDrawsX4Avx2(sc);
}

/**
 * Four independent four-block groups (16 blocks) with interleaved
 * round bodies. Two chains (the X8 body) still leave the multipliers
 * idle for most of each round's latency; four chains get within ~2x of
 * multiply throughput on the 10-round chain while still (just) fitting
 * the sixteen ymm registers. Bit-identical to four X4 calls.
 */
__attribute__((target("avx2"))) inline void
philoxBlocksX16Avx2(Key key, uint64_t trial, uint64_t firstBlock,
                    DrawsX4 &a, DrawsX4 &b, DrawsX4 &c, DrawsX4 &d)
{
    const __m256i mult0 = _mm256_set1_epi64x(static_cast<long long>(kMult0));
    const __m256i mult1 = _mm256_set1_epi64x(static_cast<long long>(kMult1));
    const __m256i weyl0 = _mm256_set1_epi64x(static_cast<long long>(kWeyl0));
    const __m256i weyl1 = _mm256_set1_epi64x(static_cast<long long>(kWeyl1));
    const __m256i mask32 =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFULL));
    StateX4 sa = philoxCountersX4Avx2(trial, firstBlock);
    StateX4 sb = philoxCountersX4Avx2(trial, firstBlock + 4);
    StateX4 sc = philoxCountersX4Avx2(trial, firstBlock + 8);
    StateX4 sd = philoxCountersX4Avx2(trial, firstBlock + 12);
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));

    for (int round = 0; round < kRounds; ++round) {
        if (round != 0) {
            k0 = _mm256_add_epi32(k0, weyl0);
            k1 = _mm256_add_epi32(k1, weyl1);
        }
        const __m256i pa0 = _mm256_mul_epu32(sa.c0, mult0);
        const __m256i pb0 = _mm256_mul_epu32(sb.c0, mult0);
        const __m256i pc0 = _mm256_mul_epu32(sc.c0, mult0);
        const __m256i pd0 = _mm256_mul_epu32(sd.c0, mult0);
        const __m256i pa1 = _mm256_mul_epu32(sa.c2, mult1);
        const __m256i pb1 = _mm256_mul_epu32(sb.c2, mult1);
        const __m256i pc1 = _mm256_mul_epu32(sc.c2, mult1);
        const __m256i pd1 = _mm256_mul_epu32(sd.c2, mult1);
        sa.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pa1, 32), sa.c1), k0);
        sb.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pb1, 32), sb.c1), k0);
        sc.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pc1, 32), sc.c1), k0);
        sd.c0 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pd1, 32), sd.c1), k0);
        sa.c1 = _mm256_and_si256(pa1, mask32);
        sb.c1 = _mm256_and_si256(pb1, mask32);
        sc.c1 = _mm256_and_si256(pc1, mask32);
        sd.c1 = _mm256_and_si256(pd1, mask32);
        sa.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pa0, 32), sa.c3), k1);
        sb.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pb0, 32), sb.c3), k1);
        sc.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pc0, 32), sc.c3), k1);
        sd.c2 = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(pd0, 32), sd.c3), k1);
        sa.c3 = _mm256_and_si256(pa0, mask32);
        sb.c3 = _mm256_and_si256(pb0, mask32);
        sc.c3 = _mm256_and_si256(pc0, mask32);
        sd.c3 = _mm256_and_si256(pd0, mask32);
    }
    a = philoxDrawsX4Avx2(sa);
    b = philoxDrawsX4Avx2(sb);
    c = philoxDrawsX4Avx2(sc);
    d = philoxDrawsX4Avx2(sd);
}

__attribute__((target("avx2"))) void
fillRaw64Avx2(Key key, uint64_t trial, uint64_t firstBlock, uint64_t *out,
              size_t blockCount)
{
    size_t i = 0;
    for (; i + 16 <= blockCount; i += 16) {
        DrawsX4 a, b, c, d;
        philoxBlocksX16Avx2(key, trial, firstBlock + i, a, b, c, d);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i),
                            a.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 4),
                            a.second);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 8),
                            b.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 12),
                            b.second);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 16),
                            c.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 20),
                            c.second);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 24),
                            d.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 28),
                            d.second);
    }
    if (i + 8 <= blockCount) {
        DrawsX4 a, b;
        philoxBlocksX8Avx2(key, trial, firstBlock + i, a, b);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i),
                            a.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 4),
                            a.second);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 8),
                            b.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 12),
                            b.second);
        i += 8;
    }
    if (i + 4 <= blockCount) {
        const DrawsX4 draws = philoxBlocksX4Avx2(key, trial, firstBlock + i);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i),
                            draws.first);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 2 * i + 4),
                            draws.second);
        i += 4;
    }
    if (i < blockCount)
        fillRaw64Scalar(key, trial, firstBlock + i, out + 2 * i,
                        blockCount - i);
}

/**
 * Exact uint64 -> double conversion of v = (w >> 11) + 1 <= 2^53,
 * vectorized: both 32-bit halves convert exactly via the 2^52
 * exponent-bias trick, and hi * 2^32 + lo is exact because the sum is
 * an integer <= 2^53. Bit-identical to static_cast<double>(v).
 */
__attribute__((target("avx2"))) inline __m256d
drawsToUniformAvx2(__m256i w)
{
    const __m256i mask32 =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFULL));
    const __m256i bias = _mm256_set1_epi64x(0x4330000000000000LL); // 2^52
    const __m256d biasD = _mm256_castsi256_pd(bias);
    const __m256i v =
        _mm256_add_epi64(_mm256_srli_epi64(w, 11), _mm256_set1_epi64x(1));
    const __m256i hi = _mm256_srli_epi64(v, 32);
    const __m256i lo = _mm256_and_si256(v, mask32);
    const __m256d hiD =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, bias)), biasD);
    const __m256d loD =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo, bias)), biasD);
    const __m256d value =
        _mm256_add_pd(_mm256_mul_pd(hiD, _mm256_set1_pd(0x1.0p32)), loD);
    return _mm256_mul_pd(value, _mm256_set1_pd(0x1.0p-53));
}

/** Fused generate-and-reduce: min (Max = false) or max (Max = true)
 *  of all 2 * blockCount uniforms of the given block range. */
template <bool Max>
__attribute__((target("avx2"))) double
extremeUniformAvx2(Key key, uint64_t trial, uint64_t firstBlock,
                   size_t blockCount)
{
    // Uniforms lie in (0, 1]: 1.0 is an identity for min, and any
    // generated draw replaces the 0.0 max seed.
    __m256d acc = _mm256_set1_pd(Max ? 0.0 : 1.0);
    size_t i = 0;
    for (; i + 12 <= blockCount; i += 12) {
        DrawsX4 a, b, c;
        philoxBlocksX12Avx2(key, trial, firstBlock + i, a, b, c);
        const __m256d u0 = drawsToUniformAvx2(a.first);
        const __m256d u1 = drawsToUniformAvx2(a.second);
        const __m256d u2 = drawsToUniformAvx2(b.first);
        const __m256d u3 = drawsToUniformAvx2(b.second);
        const __m256d u4 = drawsToUniformAvx2(c.first);
        const __m256d u5 = drawsToUniformAvx2(c.second);
        if (Max) {
            acc = _mm256_max_pd(acc, _mm256_max_pd(u0, u1));
            acc = _mm256_max_pd(acc, _mm256_max_pd(u2, u3));
            acc = _mm256_max_pd(acc, _mm256_max_pd(u4, u5));
        } else {
            acc = _mm256_min_pd(acc, _mm256_min_pd(u0, u1));
            acc = _mm256_min_pd(acc, _mm256_min_pd(u2, u3));
            acc = _mm256_min_pd(acc, _mm256_min_pd(u4, u5));
        }
    }
    if (i + 8 <= blockCount) {
        DrawsX4 a, b;
        philoxBlocksX8Avx2(key, trial, firstBlock + i, a, b);
        const __m256d u0 = drawsToUniformAvx2(a.first);
        const __m256d u1 = drawsToUniformAvx2(a.second);
        const __m256d u2 = drawsToUniformAvx2(b.first);
        const __m256d u3 = drawsToUniformAvx2(b.second);
        if (Max) {
            acc = _mm256_max_pd(acc, _mm256_max_pd(u0, u1));
            acc = _mm256_max_pd(acc, _mm256_max_pd(u2, u3));
        } else {
            acc = _mm256_min_pd(acc, _mm256_min_pd(u0, u1));
            acc = _mm256_min_pd(acc, _mm256_min_pd(u2, u3));
        }
        i += 8;
    }
    if (i + 4 <= blockCount) {
        const DrawsX4 draws = philoxBlocksX4Avx2(key, trial, firstBlock + i);
        const __m256d u0 = drawsToUniformAvx2(draws.first);
        const __m256d u1 = drawsToUniformAvx2(draws.second);
        acc = Max ? _mm256_max_pd(acc, _mm256_max_pd(u0, u1))
                  : _mm256_min_pd(acc, _mm256_min_pd(u0, u1));
        i += 4;
    }
    const __m128d folded =
        Max ? _mm_max_pd(_mm256_castpd256_pd128(acc),
                         _mm256_extractf128_pd(acc, 1))
            : _mm_min_pd(_mm256_castpd256_pd128(acc),
                         _mm256_extractf128_pd(acc, 1));
    double lanes[2];
    _mm_storeu_pd(lanes, folded);
    double result = Max ? (lanes[0] > lanes[1] ? lanes[0] : lanes[1])
                        : (lanes[0] < lanes[1] ? lanes[0] : lanes[1]);
    for (; i < blockCount; ++i) {
        const std::array<uint64_t, 2> draws =
            blockDraws(block(makeCounter(trial, firstBlock + i), key));
        for (const uint64_t w : draws) {
            const double u = toUniformOpenLow(w);
            if (Max ? (u > result) : (u < result))
                result = u;
        }
    }
    return result;
}

__attribute__((target("avx2"))) void
fillUniformAvx2(Key key, uint64_t trial, uint64_t firstBlock, double *out,
                size_t blockCount)
{
    size_t i = 0;
    for (; i + 16 <= blockCount; i += 16) {
        DrawsX4 a, b, c, d;
        philoxBlocksX16Avx2(key, trial, firstBlock + i, a, b, c, d);
        _mm256_storeu_pd(out + 2 * i, drawsToUniformAvx2(a.first));
        _mm256_storeu_pd(out + 2 * i + 4, drawsToUniformAvx2(a.second));
        _mm256_storeu_pd(out + 2 * i + 8, drawsToUniformAvx2(b.first));
        _mm256_storeu_pd(out + 2 * i + 12, drawsToUniformAvx2(b.second));
        _mm256_storeu_pd(out + 2 * i + 16, drawsToUniformAvx2(c.first));
        _mm256_storeu_pd(out + 2 * i + 20, drawsToUniformAvx2(c.second));
        _mm256_storeu_pd(out + 2 * i + 24, drawsToUniformAvx2(d.first));
        _mm256_storeu_pd(out + 2 * i + 28, drawsToUniformAvx2(d.second));
    }
    if (i + 8 <= blockCount) {
        DrawsX4 a, b;
        philoxBlocksX8Avx2(key, trial, firstBlock + i, a, b);
        _mm256_storeu_pd(out + 2 * i, drawsToUniformAvx2(a.first));
        _mm256_storeu_pd(out + 2 * i + 4, drawsToUniformAvx2(a.second));
        _mm256_storeu_pd(out + 2 * i + 8, drawsToUniformAvx2(b.first));
        _mm256_storeu_pd(out + 2 * i + 12, drawsToUniformAvx2(b.second));
        i += 8;
    }
    if (i + 4 <= blockCount) {
        const DrawsX4 draws = philoxBlocksX4Avx2(key, trial, firstBlock + i);
        _mm256_storeu_pd(out + 2 * i, drawsToUniformAvx2(draws.first));
        _mm256_storeu_pd(out + 2 * i + 4, drawsToUniformAvx2(draws.second));
        i += 4;
    }
    for (; i < blockCount; ++i) {
        const std::array<uint64_t, 2> draws =
            blockDraws(block(makeCounter(trial, firstBlock + i), key));
        out[2 * i] = toUniformOpenLow(draws[0]);
        out[2 * i + 1] = toUniformOpenLow(draws[1]);
    }
}

#endif // LEMONS_PHILOX_AVX2

} // namespace

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
deriveKey(uint64_t seed)
{
    uint64_t x = seed ^ kKeyDomainTag;
    return splitMix64(x);
}

Key
keyWords(uint64_t key)
{
    return Key{static_cast<uint32_t>(key), static_cast<uint32_t>(key >> 32)};
}

Counter
makeCounter(uint64_t trial, uint64_t block)
{
    return Counter{static_cast<uint32_t>(block),
                   static_cast<uint32_t>(block >> 32),
                   static_cast<uint32_t>(trial),
                   static_cast<uint32_t>(trial >> 32)};
}

Counter
block(Counter counter, Key key)
{
    // Random123 reference structure: bump the key before every round
    // but the first, then apply the S-box round.
    for (int round = 0; round < kRounds; ++round) {
        if (round != 0) {
            key[0] += kWeyl0;
            key[1] += kWeyl1;
        }
        uint32_t hi0 = 0;
        uint32_t hi1 = 0;
        const uint32_t lo0 = mulHiLo(kMult0, counter[0], hi0);
        const uint32_t lo1 = mulHiLo(kMult1, counter[2], hi1);
        counter = Counter{hi1 ^ counter[1] ^ key[0], lo1,
                          hi0 ^ counter[3] ^ key[1], lo0};
    }
    return counter;
}

std::array<uint64_t, 2>
blockDraws(const Counter &output)
{
    return {static_cast<uint64_t>(output[0]) |
                (static_cast<uint64_t>(output[1]) << 32),
            static_cast<uint64_t>(output[2]) |
                (static_cast<uint64_t>(output[3]) << 32)};
}

void
fillRaw64(Key key, uint64_t trial, uint64_t firstBlock, uint64_t *out,
          size_t blockCount)
{
#if defined(LEMONS_PHILOX_AVX2)
    if (simd::activeLevel() == simd::Level::Avx2) {
        fillRaw64Avx2(key, trial, firstBlock, out, blockCount);
        return;
    }
#endif
    fillRaw64Scalar(key, trial, firstBlock, out, blockCount);
}

void
fillUniformOpenLow(Key key, uint64_t trial, uint64_t firstBlock, double *out,
                   size_t blockCount)
{
#if defined(LEMONS_PHILOX_AVX2)
    if (simd::activeLevel() == simd::Level::Avx2) {
        fillUniformAvx2(key, trial, firstBlock, out, blockCount);
        return;
    }
#endif
    fillUniformScalar(key, trial, firstBlock, out, blockCount);
}

double
minUniformOpenLow(Key key, uint64_t trial, uint64_t firstBlock,
                  size_t blockCount)
{
#if defined(LEMONS_PHILOX_AVX2)
    if (simd::activeLevel() == simd::Level::Avx2)
        return extremeUniformAvx2<false>(key, trial, firstBlock, blockCount);
#endif
    double result = 1.0;
    for (size_t i = 0; i < blockCount; ++i) {
        const std::array<uint64_t, 2> draws =
            blockDraws(block(makeCounter(trial, firstBlock + i), key));
        for (const uint64_t w : draws) {
            const double u = toUniformOpenLow(w);
            if (u < result)
                result = u;
        }
    }
    return result;
}

double
maxUniformOpenLow(Key key, uint64_t trial, uint64_t firstBlock,
                  size_t blockCount)
{
#if defined(LEMONS_PHILOX_AVX2)
    if (simd::activeLevel() == simd::Level::Avx2)
        return extremeUniformAvx2<true>(key, trial, firstBlock, blockCount);
#endif
    double result = 0.0;
    for (size_t i = 0; i < blockCount; ++i) {
        const std::array<uint64_t, 2> draws =
            blockDraws(block(makeCounter(trial, firstBlock + i), key));
        for (const uint64_t w : draws) {
            const double u = toUniformOpenLow(w);
            if (u > result)
                result = u;
        }
    }
    return result;
}

} // namespace lemons::philox
