#include "util/fastmath.h"

#include <bit>
#include <cstdint>
#include <iterator>

#include "util/simd.h"

#if defined(__x86_64__) && !defined(LEMONS_NO_SIMD)
#define LEMONS_FASTMATH_AVX2 1
#include <immintrin.h>
#endif

namespace lemons::fastmath {

namespace {

// ln 2 split into a 32-bit-exact head and a tail (fdlibm split), so
// n * kLn2Hi is exact for |n| < 2^20 during argument reduction.
constexpr double kLn2Hi = 0x1.62e42feep-1;
constexpr double kLn2Lo = 0x1.a39ef35793c76p-33;
constexpr double kLog2E = 0x1.71547652b82fep+0;
constexpr double kSqrtHalf = 0x1.6a09e667f3bcdp-1;
// 1.5 * 2^52: adding then subtracting rounds to the nearest integer
// and leaves that integer in the low mantissa bits (two's complement).
constexpr double kShifter = 6755399441055744.0;
// 2^52 + 1022: subtracting from (2^52 | exponent-field) yields the
// unbiased exponent of a [0.5, 1) mantissa split, exactly.
constexpr double kExpBias = 4503599627370496.0 + 1022.0;

// exp(r) Taylor coefficients 1/k! for k = 0 .. 13, lowest first.
// |r| <= ln2/2 after reduction, so truncation is below 1 ulp. Both
// evaluators (scalar and four-lane) use the SAME fixed Estrin
// grouping — see expPoly below — so lanes stay bit-identical to
// scalar calls while the dependency chain is ~3x shorter than
// Horner's.
constexpr double kExpC[] = {
    1.0,           1.0,           1.0 / 2.0,       1.0 / 6.0,
    1.0 / 24.0,    1.0 / 120.0,   1.0 / 720.0,     1.0 / 5040.0,
    1.0 / 40320.0, 1.0 / 362880.0, 1.0 / 3628800.0, 1.0 / 39916800.0,
    1.0 / 479001600.0, 1.0 / 6227020800.0,
};

// atanh series for log(m) = s * (2 + z * P(z)), s = (m-1)/(m+1),
// z = s^2 <= 0.0295 on [sqrt(1/2), sqrt(2)); coefficients 2/(2k+3)
// for z^k, lowest order first. Same fixed Estrin grouping in both
// evaluators (logPoly below).
constexpr double kLogC[] = {
    2.0 / 3.0,  2.0 / 5.0,  2.0 / 7.0,  2.0 / 9.0,  2.0 / 11.0,
    2.0 / 13.0, 2.0 / 15.0, 2.0 / 17.0, 2.0 / 19.0, 2.0 / 21.0,
    2.0 / 23.0, 2.0 / 25.0,
};

/**
 * Degree-13 Estrin evaluation of sum kExpC[i] * r^i. The grouping
 * (and hence the rounding sequence) is part of the deterministic
 * contract; detExp4 mirrors it operation for operation.
 */
inline double
expPoly(double r)
{
    const double r2 = r * r;
    const double r4 = r2 * r2;
    const double r8 = r4 * r4;
    const double a = kExpC[1] * r + kExpC[0];
    const double b = kExpC[3] * r + kExpC[2];
    const double c = kExpC[5] * r + kExpC[4];
    const double d = kExpC[7] * r + kExpC[6];
    const double e = kExpC[9] * r + kExpC[8];
    const double f = kExpC[11] * r + kExpC[10];
    const double g = kExpC[13] * r + kExpC[12];
    const double q0 = a + r2 * b;
    const double q1 = c + r2 * d;
    const double q2 = (e + r2 * f) + r4 * g;
    return (q0 + r4 * q1) + r8 * q2;
}

/** Degree-11 Estrin evaluation of sum kLogC[i] * z^i (see expPoly). */
inline double
logPoly(double z)
{
    const double z2 = z * z;
    const double z4 = z2 * z2;
    const double z8 = z4 * z4;
    const double a = kLogC[1] * z + kLogC[0];
    const double b = kLogC[3] * z + kLogC[2];
    const double c = kLogC[5] * z + kLogC[4];
    const double d = kLogC[7] * z + kLogC[6];
    const double e = kLogC[9] * z + kLogC[8];
    const double f = kLogC[11] * z + kLogC[10];
    const double q0 = a + z2 * b;
    const double q1 = c + z2 * d;
    const double q2 = e + z2 * f;
    return (q0 + z4 * q1) + z8 * q2;
}

#if defined(LEMONS_FASTMATH_AVX2)

/**
 * Four-lane mirrors of detLog/detExp: every lane executes the same
 * IEEE operation sequence as the scalar functions (no FMA — the
 * translation unit builds with contraction off), so each lane's result
 * is bit-identical to the scalar call on the same input.
 */

/** Lane mirror of expPoly: same Estrin grouping, same rounding. */
/** (hi * x + lo) on four lanes — the Estrin coefficient-pair step. */
__attribute__((target("avx2"))) inline __m256d
coeffPair4(__m256d x, double hi, double lo)
{
    return _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(hi), x),
                         _mm256_set1_pd(lo));
}

__attribute__((target("avx2"))) inline __m256d
expPoly4(__m256d r)
{
    const __m256d r2 = _mm256_mul_pd(r, r);
    const __m256d r4 = _mm256_mul_pd(r2, r2);
    const __m256d r8 = _mm256_mul_pd(r4, r4);
    const __m256d a = coeffPair4(r, kExpC[1], kExpC[0]);
    const __m256d b = coeffPair4(r, kExpC[3], kExpC[2]);
    const __m256d c = coeffPair4(r, kExpC[5], kExpC[4]);
    const __m256d d = coeffPair4(r, kExpC[7], kExpC[6]);
    const __m256d e = coeffPair4(r, kExpC[9], kExpC[8]);
    const __m256d f = coeffPair4(r, kExpC[11], kExpC[10]);
    const __m256d g = coeffPair4(r, kExpC[13], kExpC[12]);
    const __m256d q0 = _mm256_add_pd(a, _mm256_mul_pd(r2, b));
    const __m256d q1 = _mm256_add_pd(c, _mm256_mul_pd(r2, d));
    const __m256d q2 = _mm256_add_pd(
        _mm256_add_pd(e, _mm256_mul_pd(r2, f)), _mm256_mul_pd(r4, g));
    return _mm256_add_pd(_mm256_add_pd(q0, _mm256_mul_pd(r4, q1)),
                         _mm256_mul_pd(r8, q2));
}

/** Lane mirror of logPoly: same Estrin grouping, same rounding. */
__attribute__((target("avx2"))) inline __m256d
logPoly4(__m256d z)
{
    const __m256d z2 = _mm256_mul_pd(z, z);
    const __m256d z4 = _mm256_mul_pd(z2, z2);
    const __m256d z8 = _mm256_mul_pd(z4, z4);
    const __m256d a = coeffPair4(z, kLogC[1], kLogC[0]);
    const __m256d b = coeffPair4(z, kLogC[3], kLogC[2]);
    const __m256d c = coeffPair4(z, kLogC[5], kLogC[4]);
    const __m256d d = coeffPair4(z, kLogC[7], kLogC[6]);
    const __m256d e = coeffPair4(z, kLogC[9], kLogC[8]);
    const __m256d f = coeffPair4(z, kLogC[11], kLogC[10]);
    const __m256d q0 = _mm256_add_pd(a, _mm256_mul_pd(z2, b));
    const __m256d q1 = _mm256_add_pd(c, _mm256_mul_pd(z2, d));
    const __m256d q2 = _mm256_add_pd(e, _mm256_mul_pd(z2, f));
    return _mm256_add_pd(_mm256_add_pd(q0, _mm256_mul_pd(z4, q1)),
                         _mm256_mul_pd(z8, q2));
}

__attribute__((target("avx2"))) inline __m256d
detLog4(__m256d x)
{
    const __m256i bits = _mm256_castpd_si256(x);
    const __m256i mantissaMask =
        _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFFFFFFFULL));
    const __m256i halfBits =
        _mm256_set1_epi64x(static_cast<long long>(0x3FE0000000000000ULL));
    const __m256i expField = _mm256_srli_epi64(bits, 52);
    // (2^52 | exponent) - (2^52 + 1022) == unbiased exponent, exactly.
    const __m256d eRaw = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(
            expField, _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52)))),
        _mm256_set1_pd(kExpBias));
    const __m256d mRaw = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, mantissaMask), halfBits));
    const __m256d low =
        _mm256_cmp_pd(mRaw, _mm256_set1_pd(kSqrtHalf), _CMP_LT_OQ);
    const __m256d m =
        _mm256_blendv_pd(mRaw, _mm256_add_pd(mRaw, mRaw), low);
    const __m256d e = _mm256_blendv_pd(
        eRaw, _mm256_sub_pd(eRaw, _mm256_set1_pd(1.0)), low);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d s = _mm256_div_pd(_mm256_sub_pd(m, one),
                                    _mm256_add_pd(m, one));
    const __m256d z = _mm256_mul_pd(s, s);
    const __m256d p = logPoly4(z);
    const __m256d logm = _mm256_mul_pd(
        s, _mm256_add_pd(_mm256_set1_pd(2.0), _mm256_mul_pd(z, p)));
    return _mm256_add_pd(
        _mm256_mul_pd(e, _mm256_set1_pd(kLn2Hi)),
        _mm256_add_pd(_mm256_mul_pd(e, _mm256_set1_pd(kLn2Lo)), logm));
}

__attribute__((target("avx2"))) inline __m256d
detExp4(__m256d x)
{
    const __m256d shifter = _mm256_set1_pd(kShifter);
    const __m256d t = _mm256_add_pd(
        _mm256_mul_pd(x, _mm256_set1_pd(kLog2E)), shifter);
    const __m256d n = _mm256_sub_pd(t, shifter);
    __m256d r =
        _mm256_sub_pd(x, _mm256_mul_pd(n, _mm256_set1_pd(kLn2Hi)));
    r = _mm256_sub_pd(r, _mm256_mul_pd(n, _mm256_set1_pd(kLn2Lo)));
    const __m256d p = expPoly4(r);
    // n is exactly integral, so the int conversion is exact at any
    // rounding mode; build 2^n as bits and scale.
    const __m256i ni = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
    const __m256i scaleBits = _mm256_slli_epi64(
        _mm256_add_epi64(ni, _mm256_set1_epi64x(1023)), 52);
    return _mm256_mul_pd(p, _mm256_castsi256_pd(scaleBits));
}

__attribute__((target("avx2"))) void
detPowBatchAvx2(const double *base, size_t count, double exponent,
                double *out)
{
    const double zeroResult = exponent == 0.0 ? 1.0 : 0.0;
    const __m256d zeroFill = _mm256_set1_pd(zeroResult);
    const __m256d exponent4 = _mm256_set1_pd(exponent);
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256d b = _mm256_loadu_pd(base + i);
        // Zero lanes run detLog on garbage and get blended away below.
        const __m256d isZero =
            _mm256_cmp_pd(b, _mm256_setzero_pd(), _CMP_EQ_OQ);
        const __m256d powed =
            detExp4(_mm256_mul_pd(exponent4, detLog4(b)));
        _mm256_storeu_pd(out + i,
                         _mm256_blendv_pd(powed, zeroFill, isZero));
    }
    for (; i < count; ++i)
        out[i] = detPow(base[i], exponent);
}

#endif // LEMONS_FASTMATH_AVX2

} // namespace

double
detLog(double x)
{
    const uint64_t bits = std::bit_cast<uint64_t>(x);
    // x = m * 2^e with m in [0.5, 1), then renormalize m into
    // [sqrt(1/2), sqrt(2)) so the atanh series argument stays small.
    double e = static_cast<double>(
        static_cast<int64_t>((bits >> 52) & 0x7FF) - 1022);
    double m = std::bit_cast<double>((bits & 0xFFFFFFFFFFFFFULL) |
                                     0x3FE0000000000000ULL);
    if (m < kSqrtHalf) {
        m = m + m;
        e = e - 1.0;
    }
    const double s = (m - 1.0) / (m + 1.0);
    const double z = s * s;
    const double logm = s * (2.0 + z * logPoly(z));
    return e * kLn2Hi + (e * kLn2Lo + logm);
}

double
detExp(double x)
{
    // Round n = x / ln2 to nearest via the shifter trick, reduce to
    // r = x - n ln2 with |r| <= ln2 / 2, then Taylor and rescale.
    const double t = x * kLog2E + kShifter;
    const double n = t - kShifter;
    const auto ni = static_cast<int32_t>(
        static_cast<uint32_t>(std::bit_cast<uint64_t>(t)));
    double r = x - n * kLn2Hi;
    r = r - n * kLn2Lo;
    const double p = expPoly(r);
    const uint64_t scaleBits = static_cast<uint64_t>(1023 + ni) << 52;
    return p * std::bit_cast<double>(scaleBits);
}

double
detPow(double base, double exponent)
{
    if (base == 0.0)
        return exponent == 0.0 ? 1.0 : 0.0;
    return detExp(exponent * detLog(base));
}

void
detPowBatch(const double *base, size_t count, double exponent, double *out)
{
#if defined(LEMONS_FASTMATH_AVX2)
    if (simd::activeLevel() == simd::Level::Avx2) {
        detPowBatchAvx2(base, count, exponent, out);
        return;
    }
#endif
    for (size_t i = 0; i < count; ++i)
        out[i] = detPow(base[i], exponent);
}

} // namespace lemons::fastmath
