/**
 * @file
 * Numerically stable math used by the reliability analytics.
 *
 * The design solver evaluates binomial tail probabilities with very
 * small per-device survival probabilities (down to ~1e-12) and very
 * wide structures (n up to millions), so everything here works in
 * log space.
 */

#ifndef LEMONS_UTIL_MATH_H_
#define LEMONS_UTIL_MATH_H_

#include <cstdint>
#include <vector>

namespace lemons {

/** log(n choose k); returns -inf for k outside [0, n]. */
double logBinomCoeff(uint64_t n, uint64_t k);

/** log(exp(a) + exp(b)) without overflow; handles -inf inputs. */
double logSumExp(double a, double b);

/** log(exp(a) - exp(b)) for a >= b; returns -inf when a == b. */
double logDiffExp(double a, double b);

/**
 * log(1 - exp(x)) for x <= 0, accurate both when x is tiny (where
 * 1 - e^x ~ -x) and when x is very negative (where e^x underflows).
 */
double log1mExp(double x);

/**
 * Binomial upper tail P(X >= k) for X ~ Binomial(n, p), computed by
 * log-space summation so that probabilities down to ~1e-300 survive.
 *
 * This is the workhorse behind the k-out-of-n structure reliability
 * (paper Eq. 6 and Eq. 8).
 *
 * @param n Number of trials. @param k Tail threshold.
 * @param p Per-trial success probability in [0, 1].
 * @return P(X >= k) in [0, 1].
 */
double binomialTailAtLeast(uint64_t n, uint64_t k, double p);

/** log of binomialTailAtLeast, for probabilities below double range. */
double logBinomialTailAtLeast(uint64_t n, uint64_t k, double p);

/**
 * log of the regularized incomplete beta function I_x(a, b), computed
 * with Lentz's continued fraction on the rapidly convergent side. This
 * is the O(1)-per-call backbone of the binomial tails: for
 * X ~ Binomial(n, p), P(X >= k) = I_p(k, n - k + 1).
 *
 * @pre a > 0, b > 0, 0 <= x <= 1.
 */
double logBetaIncRegularized(double a, double b, double x);

/**
 * Reference O(n - k) log-space summation of the binomial upper tail.
 * Exposed so tests can cross-validate the incomplete-beta fast path;
 * production code should call logBinomialTailAtLeast.
 */
double logBinomialTailAtLeastBySum(uint64_t n, uint64_t k, double p);

/** Binomial lower tail P(X <= k). */
double binomialTailAtMost(uint64_t n, uint64_t k, double p);

/** log P(X == k) for X ~ Binomial(n, p). */
double logBinomialPmf(uint64_t n, uint64_t k, double p);

/** log(exp(x1)+...+exp(xn)) over a vector; empty input yields -inf. */
double logSumExp(const std::vector<double> &xs);

/** Integer ceiling division for positive integers. */
constexpr uint64_t
ceilDiv(uint64_t numerator, uint64_t denominator)
{
    return (numerator + denominator - 1) / denominator;
}

} // namespace lemons

#endif // LEMONS_UTIL_MATH_H_
