/**
 * @file
 * Fixed-width-bin histogram for lifetime distributions.
 */

#ifndef LEMONS_UTIL_HISTOGRAM_H_
#define LEMONS_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lemons {

/**
 * Histogram over [low, high) with equal-width bins. Out-of-range
 * samples are counted in underflow/overflow buckets so nothing is
 * silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param low Inclusive lower edge of the first bin.
     * @param high Exclusive upper edge of the last bin (> low).
     * @param bins Number of bins (> 0).
     */
    Histogram(double low, double high, size_t bins);

    /** Record one sample. */
    void add(double x);

    /** Number of bins (excluding under/overflow). */
    size_t binCount() const { return counts.size(); }
    /** Count in bin @p i. @pre i < binCount(). */
    uint64_t binValue(size_t i) const;
    /** Inclusive lower edge of bin @p i. */
    double binLow(size_t i) const;
    /** Exclusive upper edge of bin @p i. */
    double binHigh(size_t i) const;
    /** Center of bin @p i. */
    double binCenter(size_t i) const;
    /** Samples below the histogram range. */
    uint64_t underflow() const { return underflowCount; }
    /** Samples at or above the histogram range. */
    uint64_t overflow() const { return overflowCount; }
    /** Total samples recorded, including under/overflow. */
    uint64_t total() const { return totalCount; }

    /**
     * Sum of every recorded sample, including under/overflow. Backs
     * the Prometheus histogram exposition (`<name>_sum`), where the
     * sum/count pair lets a dashboard derive the running mean.
     */
    double sum() const { return sampleSum; }

    /**
     * Density estimate for bin @p i: count / (total * width), i.e. the
     * empirical PDF, comparable against an analytic density.
     */
    double density(size_t i) const;

    /**
     * Render an ASCII bar chart, one bin per line, scaled so the
     * fullest bin spans @p width characters.
     */
    std::string render(size_t width = 50) const;

  private:
    double lowEdge;
    double highEdge;
    double binWidth;
    std::vector<uint64_t> counts;
    uint64_t underflowCount = 0;
    uint64_t overflowCount = 0;
    uint64_t totalCount = 0;
    double sampleSum = 0.0;
};

} // namespace lemons

#endif // LEMONS_UTIL_HISTOGRAM_H_
