/**
 * @file
 * Capability-annotated mutex wrapper for Clang Thread Safety Analysis.
 *
 * std::mutex carries no capability attributes, so -Wthread-safety
 * cannot reason about it. Mutex is a drop-in std::mutex wrapper marked
 * LEMONS_CAPABILITY; MutexLock is the scoped RAII guard. All users of
 * shared mutable state in the library (the Monte Carlo parallel path,
 * SharedRunningStats) go through these so the lock discipline is
 * machine-checked on every Clang build.
 */

#ifndef LEMONS_UTIL_MUTEX_H_
#define LEMONS_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace lemons {

/** A std::mutex that Clang's thread-safety analysis can track. */
class LEMONS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Block until the capability is held. */
    void lock() LEMONS_ACQUIRE() { inner.lock(); }

    /** Release the capability. */
    void unlock() LEMONS_RELEASE() { inner.unlock(); }

    /** Acquire without blocking; true when the capability was taken. */
    bool tryLock() LEMONS_TRY_ACQUIRE(true) { return inner.try_lock(); }

  private:
    std::mutex inner;
};

/** Scoped lock guard over Mutex (the only sanctioned way to lock). */
class LEMONS_SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquire @p mutex for the guard's lifetime. */
    explicit MutexLock(Mutex &mutex) LEMONS_ACQUIRE(mutex) : held(mutex)
    {
        held.lock();
    }

    ~MutexLock() LEMONS_RELEASE() { held.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &held;
};

} // namespace lemons

#endif // LEMONS_UTIL_MUTEX_H_
