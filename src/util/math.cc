#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"

namespace lemons {

namespace {

constexpr double negInf = -std::numeric_limits<double>::infinity();

} // namespace

double
logBinomCoeff(uint64_t n, uint64_t k)
{
    if (k > n)
        return negInf;
    const double nd = static_cast<double>(n);
    const double kd = static_cast<double>(k);
    return std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) -
           std::lgamma(nd - kd + 1.0);
}

double
logSumExp(double a, double b)
{
    if (a == negInf)
        return b;
    if (b == negInf)
        return a;
    const double hi = std::max(a, b);
    const double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

double
logDiffExp(double a, double b)
{
    requireArg(a >= b, "logDiffExp: requires a >= b");
    if (b == negInf)
        return a;
    if (a == b)
        return negInf;
    return a + log1mExp(b - a);
}

double
log1mExp(double x)
{
    requireArg(x <= 0.0, "log1mExp: requires x <= 0");
    if (x == 0.0)
        return negInf;
    // Split at -ln 2 per Maechler (2012) for best accuracy.
    if (x > -0.6931471805599453)
        return std::log(-std::expm1(x));
    return std::log1p(-std::exp(x));
}

double
logBinomialPmf(uint64_t n, uint64_t k, double p)
{
    requireArg(p >= 0.0 && p <= 1.0, "logBinomialPmf: p outside [0, 1]");
    if (k > n)
        return negInf;
    if (p == 0.0)
        return k == 0 ? 0.0 : negInf;
    if (p == 1.0)
        return k == n ? 0.0 : negInf;
    const double kd = static_cast<double>(k);
    const double nd = static_cast<double>(n);
    return logBinomCoeff(n, k) + kd * std::log(p) +
           (nd - kd) * std::log1p(-p);
}

namespace {

/**
 * Continued fraction for the incomplete beta function (Lentz's
 * algorithm, cf. Numerical Recipes "betacf"). Converges quickly when
 * x < (a + 1) / (a + b + 2).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int maxIterations = 500;
    constexpr double epsilon = 3e-16;
    constexpr double tiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= maxIterations; ++m) {
        const double md = static_cast<double>(m);
        const double m2 = 2.0 * md;
        double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < epsilon)
            break;
    }
    return h;
}

double
logBeta(double a, double b)
{
    return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

} // namespace

double
logBetaIncRegularized(double a, double b, double x)
{
    requireArg(a > 0.0 && b > 0.0,
               "logBetaIncRegularized: a and b must be positive");
    requireArg(x >= 0.0 && x <= 1.0,
               "logBetaIncRegularized: x outside [0, 1]");
    if (x == 0.0)
        return negInf;
    if (x == 1.0)
        return 0.0;

    // log of the prefactor x^a (1-x)^b / (a B(a, b)).
    const double logFront = a * std::log(x) + b * std::log1p(-x) -
                            std::log(a) - logBeta(a, b);
    if (x < (a + 1.0) / (a + b + 2.0)) {
        const double cf = betaContinuedFraction(a, b, x);
        return logFront + std::log(cf);
    }
    // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the convergent
    // side; the complement's prefactor mirrors a <-> b, x <-> 1-x.
    const double logFrontC = b * std::log1p(-x) + a * std::log(x) -
                             std::log(b) - logBeta(a, b);
    const double cfC = betaContinuedFraction(b, a, 1.0 - x);
    const double logComplement = logFrontC + std::log(cfC);
    if (logComplement >= 0.0)
        return negInf; // complement rounded to 1: tail is ~0
    return log1mExp(logComplement);
}

double
logBinomialTailAtLeastBySum(uint64_t n, uint64_t k, double p)
{
    requireArg(p >= 0.0 && p <= 1.0,
               "logBinomialTailAtLeastBySum: p outside [0, 1]");
    if (k == 0)
        return 0.0;
    if (k > n)
        return negInf;
    if (p == 0.0)
        return negInf;
    if (p == 1.0)
        return 0.0;

    // Sum PMF terms from i = k upward using the ratio recurrence
    //   pmf(i+1)/pmf(i) = (n-i)/(i+1) * p/(1-p)
    // in log space. Terms past k eventually decay geometrically, so we
    // can stop once they no longer contribute; when the mean np is far
    // above k the tail is ~1 and the summation still terminates at n.
    const double logRatioBase = std::log(p) - std::log1p(-p);
    double logTerm = logBinomialPmf(n, k, p);
    double logSum = logTerm;
    for (uint64_t i = k; i < n; ++i) {
        const double id = static_cast<double>(i);
        const double nd = static_cast<double>(n);
        logTerm += std::log(nd - id) - std::log(id + 1.0) + logRatioBase;
        const double newSum = logSumExp(logSum, logTerm);
        // Converged: remaining terms cannot move the sum.
        if (newSum == logSum && logTerm < logSum - 745.0)
            break;
        logSum = newSum;
    }
    return std::min(logSum, 0.0);
}

double
logBinomialTailAtLeast(uint64_t n, uint64_t k, double p)
{
    requireArg(p >= 0.0 && p <= 1.0,
               "logBinomialTailAtLeast: p outside [0, 1]");
    if (k == 0)
        return 0.0;
    if (k > n)
        return negInf;
    if (p == 0.0)
        return negInf;
    if (p == 1.0)
        return 0.0;
    // P(X >= k) = I_p(k, n - k + 1); the continued fraction keeps each
    // call O(1) even for structures millions of devices wide.
    return logBetaIncRegularized(static_cast<double>(k),
                                 static_cast<double>(n - k + 1), p);
}

double
binomialTailAtLeast(uint64_t n, uint64_t k, double p)
{
    // When the tail is close to 1, compute the complement instead so
    // that values like 1 - 1e-18 do not round to exactly 1 needlessly:
    // callers that need high-reliability checks use the complement via
    // binomialTailAtMost(n, k-1, p) themselves when required.
    return std::exp(logBinomialTailAtLeast(n, k, p));
}

double
binomialTailAtMost(uint64_t n, uint64_t k, double p)
{
    if (k >= n)
        return 1.0;
    // P(X <= k) = P(n - X >= n - k) with success/failure swapped.
    return binomialTailAtLeast(n, n - k, 1.0 - p);
}

double
logSumExp(const std::vector<double> &xs)
{
    double hi = negInf;
    for (double x : xs)
        hi = std::max(hi, x);
    if (hi == negInf)
        return negInf;
    double sum = 0.0;
    for (double x : xs)
        sum += std::exp(x - hi);
    return hi + std::log(sum);
}

} // namespace lemons
