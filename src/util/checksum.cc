#include "util/checksum.h"

#include <array>

namespace lemons {

namespace {

/** Byte-at-a-time CRC-32C lookup table, built once at first use. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        // Reflected Castagnoli polynomial.
        constexpr uint32_t poly = 0x82F63B78u;
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc & 1u) != 0 ? (crc >> 1) ^ poly : crc >> 1;
            t[i] = crc;
        }
        return t;
    }();
    return table;
}

} // namespace

uint32_t
crc32c(const void *data, size_t size, uint32_t seed)
{
    const std::array<uint32_t, 256> &table = crcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
    return ~crc;
}

uint64_t
fnv1a64(const void *data, size_t size, uint64_t seed)
{
    constexpr uint64_t prime = 0x100000001b3ULL;
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= prime;
    }
    return hash;
}

} // namespace lemons
