#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.h"

namespace lemons {

Histogram::Histogram(double low, double high, size_t bins)
    : lowEdge(low), highEdge(high),
      binWidth((high - low) / static_cast<double>(bins)),
      counts(bins, 0)
{
    requireArg(high > low, "Histogram: high must exceed low");
    requireArg(bins > 0, "Histogram: need at least one bin");
}

void
Histogram::add(double x)
{
    ++totalCount;
    sampleSum += x;
    if (x < lowEdge) {
        ++underflowCount;
        return;
    }
    if (x >= highEdge) {
        ++overflowCount;
        return;
    }
    auto bin = static_cast<size_t>((x - lowEdge) / binWidth);
    bin = std::min(bin, counts.size() - 1); // guard FP edge rounding
    ++counts[bin];
}

uint64_t
Histogram::binValue(size_t i) const
{
    requireArg(i < counts.size(), "Histogram::binValue: bin out of range");
    return counts[i];
}

double
Histogram::binLow(size_t i) const
{
    requireArg(i < counts.size(), "Histogram::binLow: bin out of range");
    return lowEdge + static_cast<double>(i) * binWidth;
}

double
Histogram::binHigh(size_t i) const
{
    return binLow(i) + binWidth;
}

double
Histogram::binCenter(size_t i) const
{
    return binLow(i) + 0.5 * binWidth;
}

double
Histogram::density(size_t i) const
{
    requireArg(i < counts.size(), "Histogram::density: bin out of range");
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(counts[i]) /
           (static_cast<double>(totalCount) * binWidth);
}

std::string
Histogram::render(size_t width) const
{
    uint64_t peak = 0;
    for (uint64_t c : counts)
        peak = std::max(peak, c);
    std::ostringstream out;
    for (size_t i = 0; i < counts.size(); ++i) {
        const size_t bar =
            peak == 0 ? 0
                      : static_cast<size_t>(std::llround(
                            static_cast<double>(counts[i]) * // NOLINT
                            static_cast<double>(width) /
                            static_cast<double>(peak)));
        out << "[" << binLow(i) << ", " << binHigh(i) << ") "
            << std::string(bar, '#') << " " << counts[i] << "\n";
    }
    return out.str();
}

} // namespace lemons
