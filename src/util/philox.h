/**
 * @file
 * Philox4x32-10 counter-based random number generation.
 *
 * Philox (Salmon et al., "Parallel Random Numbers: As Easy as 1, 2, 3",
 * SC'11 — the Random123 library) is a keyed bijection: ten rounds of
 * 32x32->64 multiplies and Weyl-sequence key bumps map a 128-bit
 * counter to a 128-bit output block. Because the output is a pure
 * function of (key, counter), any draw of any trial can be computed
 * independently — no sequential stream state, no chunk-order coupling,
 * and embarrassingly parallel generation.
 *
 * The library keys trial streams on (seed, trial, draw):
 *
 *   key     = SplitMix64(seed XOR domain tag)      (64 bits, split 2x32)
 *   counter = (block lo32, block hi32, trial lo32, trial hi32)
 *
 * where `block` indexes consecutive 128-bit output blocks of one trial
 * and each block yields two 64-bit draws. Rng::trialStream wraps this
 * layout behind the ordinary Rng interface; the raw entry points here
 * exist for the known-answer tests and the batched kernels.
 */

#ifndef LEMONS_UTIL_PHILOX_H_
#define LEMONS_UTIL_PHILOX_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace lemons::philox {

/** Weyl-sequence key increments (Random123 PHILOX_W32_0/1). */
inline constexpr uint32_t kWeyl0 = 0x9E3779B9u;
inline constexpr uint32_t kWeyl1 = 0xBB67AE85u;
/** Round multipliers (Random123 PHILOX_M4x32_0/1). */
inline constexpr uint32_t kMult0 = 0xD2511F53u;
inline constexpr uint32_t kMult1 = 0xCD9E8D57u;
/** Round count of the recommended ("-10") variant. */
inline constexpr int kRounds = 10;

/** 128-bit counter/output block, word 0 first (Random123 order). */
using Counter = std::array<uint32_t, 4>;
/** 64-bit key as two 32-bit words. */
using Key = std::array<uint32_t, 2>;

/**
 * SplitMix64 step: advances @p x by the golden-ratio increment and
 * returns a scrambled output. The single mixing primitive shared by
 * xoshiro seeding, child-stream derivation and Philox key derivation.
 */
uint64_t splitMix64(uint64_t &x);

/**
 * Derive the 64-bit Philox key for master seed @p seed: one SplitMix64
 * step of seed XOR a fixed domain tag. The tag keeps the key schedule
 * disjoint from the xoshiro state words Rng(seed) derives from the
 * undisturbed SplitMix64 chain of the same seed.
 */
uint64_t deriveKey(uint64_t seed);

/** Split a 64-bit key into Philox key words (low word first). */
Key keyWords(uint64_t key);

/** Counter for block @p block of trial @p trial (block words low). */
Counter makeCounter(uint64_t trial, uint64_t block);

/** The Philox4x32-10 bijection: one 128-bit block from (counter, key). */
Counter block(Counter counter, Key key);

/** The two 64-bit draws of one output block (word pairs, low word first). */
std::array<uint64_t, 2> blockDraws(const Counter &output);

/**
 * Write the 64-bit draws of @p blockCount consecutive blocks
 * [firstBlock, firstBlock + blockCount) of stream (key, trial) to
 * @p out[0 .. 2*blockCount). Dispatches to the AVX2 four-block batch
 * when simd::activeLevel() allows; the output is bit-identical either
 * way (Philox is pure integer arithmetic).
 */
void fillRaw64(Key key, uint64_t trial, uint64_t firstBlock, uint64_t *out,
               size_t blockCount);

/**
 * Like fillRaw64, but convert every draw w to the (0, 1] uniform
 * ((w >> 11) + 1) * 2^-53 on the fly: out[0 .. 2*blockCount) gets the
 * uniforms of blocks [firstBlock, firstBlock + blockCount) in draw
 * order. The AVX2 conversion is exact (53-bit integers assemble from
 * exact 32-bit halves), so every uniform is bit-identical to the
 * scalar static_cast path at any dispatch level.
 */
void fillUniformOpenLow(Key key, uint64_t trial, uint64_t firstBlock,
                        double *out, size_t blockCount);

/**
 * Minimum / maximum of the 2 * blockCount uniforms fillUniformOpenLow
 * would write, without materializing them. The extrema of a set of
 * exact doubles are order-independent, so the fused AVX2 reduction
 * returns the identical VALUE as a scalar pass over the filled array —
 * the property the k = 1 / k = n order-statistic kernels need.
 */
double minUniformOpenLow(Key key, uint64_t trial, uint64_t firstBlock,
                         size_t blockCount);
double maxUniformOpenLow(Key key, uint64_t trial, uint64_t firstBlock,
                         size_t blockCount);

} // namespace lemons::philox

#endif // LEMONS_UTIL_PHILOX_H_
