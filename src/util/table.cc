#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/require.h"

namespace lemons {

std::string
formatGeneral(double v, int precision)
{
    std::ostringstream out;
    out << std::setprecision(precision) << v;
    return out.str();
}

std::string
formatSci(double v, int precision)
{
    std::ostringstream out;
    out << std::scientific << std::setprecision(precision) << v;
    return out.str();
}

std::string
formatCount(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string result;
    size_t sinceSep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (sinceSep == 3) {
            result.push_back(',');
            sinceSep = 0;
        }
        result.push_back(*it);
        ++sinceSep;
    }
    std::reverse(result.begin(), result.end());
    return result;
}

Table::Table(std::vector<std::string> headers)
    : columnHeaders(std::move(headers))
{
    requireArg(!columnHeaders.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    requireArg(cells.size() == columnHeaders.size(),
               "Table::addRow: cell count does not match header count");
    rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<size_t> widths(columnHeaders.size());
    for (size_t c = 0; c < columnHeaders.size(); ++c)
        widths[c] = columnHeaders[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c];
            if (c + 1 < cells.size())
                out << "  ";
        }
        out << "\n";
    };

    printRow(columnHeaders);
    size_t total = 0;
    for (size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        printRow(row);
}

} // namespace lemons
