/**
 * @file
 * Shared command-line option parser for the lemons CLIs.
 *
 * Before this header, lemons-lint, lemons-fleet, and lemons-bench each
 * hand-rolled an argv loop with its own quirks (one accepted
 * "--opt=value" only, one accepted "--opt value" only, one of them
 * both), so flags behaved differently across binaries that are meant
 * to compose in scripts. ArgParser gives them one grammar:
 *
 *   - boolean flags:            --werror
 *   - valued options:           --threads 8   or   --threads=8
 *   - optional-value options:   --json        or   --json=out.json
 *   - repeated options:         --define a --define b
 *   - positional operands:      spec files, subcommands
 *
 * --help output is generated from the registered options, so the usage
 * text can never drift from what the binary actually accepts. Unknown
 * options and malformed values are hard errors: parse() returns
 * Outcome::Error with a one-line message, and the caller exits 2 (the
 * shared usage-error exit code across the CLIs).
 *
 * The parser is deliberately small: no subcommand trees, no short-flag
 * bundling, no locale-dependent number parsing. Numeric values go
 * through std::strtoull / std::strtod with full-token validation, so
 * "--threads 8x" is rejected instead of silently parsing as 8.
 */

#ifndef LEMONS_UTIL_ARGPARSE_H_
#define LEMONS_UTIL_ARGPARSE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace lemons {

/**
 * Declarative argv parser. Register options against caller-owned
 * targets, then call parse(); targets are written only for options
 * that actually appear, so defaults live in the caller's struct.
 */
class ArgParser
{
  public:
    /** How a parse() call ended. */
    enum class Outcome {
        Ok,    ///< all argv consumed; targets updated
        Help,  ///< --help/-h seen; help text printed to stdout
        Error, ///< unknown option or malformed value; see error()
    };

    /**
     * @param program Binary name for usage/error lines ("lemons-lint").
     * @param summary One-paragraph description printed under usage.
     */
    ArgParser(std::string program, std::string summary);

    /** Boolean flag: presence sets @p target to true. */
    ArgParser &flag(std::string name, bool *target, std::string help);

    /** Valued option (string). Accepts --name value and --name=value. */
    ArgParser &value(std::string name, std::string *target,
                     std::string metavar, std::string help);

    /** Valued option parsed as an unsigned 64-bit integer. */
    ArgParser &value(std::string name, uint64_t *target,
                     std::string metavar, std::string help);

    /** Valued option parsed as an unsigned int (thread counts). */
    ArgParser &value(std::string name, unsigned *target,
                     std::string metavar, std::string help);

    /** Valued option parsed as a double. */
    ArgParser &value(std::string name, double *target,
                     std::string metavar, std::string help);

    /** Valued option into an optional (distinguishes "absent"). */
    ArgParser &value(std::string name, std::optional<uint64_t> *target,
                     std::string metavar, std::string help);

    /**
     * Flag with an optional inline value: "--json" sets @p present,
     * "--json=path" additionally overwrites @p valueTarget. A separate
     * "--json path" is NOT consumed as a value (the next token stays
     * positional), matching the historical lemons-bench grammar.
     */
    ArgParser &optionalValue(std::string name, bool *present,
                             std::string *valueTarget, std::string metavar,
                             std::string help);

    /** Repeated valued option; every occurrence appends. */
    ArgParser &repeated(std::string name, std::vector<std::string> *target,
                        std::string metavar, std::string help);

    /**
     * Declare the positional operands line for usage ("<spec-file>...")
     * and where to collect them. Without this, positionals are errors.
     */
    ArgParser &positionals(std::string metavar,
                           std::vector<std::string> *target,
                           std::string help);

    /** Extra free-form lines appended to the help text (examples). */
    ArgParser &epilog(std::string text);

    /**
     * Parse argv. On Outcome::Error, error() holds a one-line message
     * (already prefixed with the program name) and usage went nowhere —
     * the caller decides whether to print help.
     */
    Outcome parse(int argc, const char *const *argv);

    /** The failure message after Outcome::Error. */
    const std::string &error() const { return failure; }

    /** The generated --help text. */
    std::string helpText() const;

  private:
    enum class Kind { Flag, Value, OptionalValue, Repeated };

    struct Option
    {
        std::string name; ///< including leading dashes ("--werror")
        Kind kind = Kind::Flag;
        std::string metavar;
        std::string help;
        bool *flagTarget = nullptr;
        /** Value sink; receives the raw token, returns false when
         *  malformed (the parser prefixes the error context). */
        std::function<bool(const std::string &)> sink;
    };

    Option *find(const std::string &name);
    ArgParser &add(Option option);
    Outcome fail(std::string message);

    std::string program;
    std::string summary;
    std::string extra;
    std::vector<Option> options;
    std::string positionalMetavar;
    std::string positionalHelp;
    std::vector<std::string> *positionalTarget = nullptr;
    std::string failure;
};

} // namespace lemons

#endif // LEMONS_UTIL_ARGPARSE_H_
