#include "util/rng.h"

#include <cmath>

#include "util/require.h"

namespace lemons {

namespace {

/** SplitMix64 step: advances @p x and returns a scrambled output. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : seedValue(seed), cachedGaussian(0.0)
{
    // xoshiro state must not be all zero; SplitMix64 guarantees a
    // well-mixed nonzero state from any seed.
    uint64_t sm = seed;
    for (auto &word : state)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 top bits -> uniform in [0, 1) on the double grid.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDoubleOpenLow()
{
    // (u + 1) / 2^53 lies in (0, 1]; u + 1 cannot overflow 53 bits + 1.
    return static_cast<double>((next() >> 11) + 1) * 0x1.0p-53;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    requireArg(bound > 0, "Rng::nextBelow: bound must be positive");
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) mod bound
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::nextBernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cachedGaussian = v * factor;
    hasCachedGaussian = true;
    return u * factor;
}

Rng
Rng::split(uint64_t index) const
{
    // Mix the parent seed with the child index through SplitMix64 twice
    // so that (seed, index) pairs map to well-separated child seeds.
    uint64_t x = seedValue ^ (0x9e3779b97f4a7c15ULL + index);
    uint64_t child = splitMix64(x);
    child ^= splitMix64(x);
    return Rng(child);
}

} // namespace lemons
