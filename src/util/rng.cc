#include "util/rng.h"

#include <cmath>

#include "util/philox.h"
#include "util/require.h"

namespace lemons {

namespace {

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** The (u >> 11) + 1 grid point in (0, 1]; shared by every uniform path. */
inline double
toDoubleOpenLow(uint64_t word)
{
    // (u + 1) / 2^53 lies in (0, 1]; u + 1 cannot overflow 53 bits + 1.
    return static_cast<double>((word >> 11) + 1) * 0x1.0p-53;
}

/**
 * Child-seed/key derivation shared by both modes: mix (parent, index)
 * through SplitMix64 twice so nearby pairs map to well-separated
 * children.
 */
uint64_t
deriveChild(uint64_t parent, uint64_t index)
{
    uint64_t x = parent ^ (0x9e3779b97f4a7c15ULL + index);
    uint64_t child = philox::splitMix64(x);
    child ^= philox::splitMix64(x);
    return child;
}

} // namespace

Rng::Rng(uint64_t seed) : seedValue(seed), cachedGaussian(0.0)
{
    // xoshiro state must not be all zero; SplitMix64 guarantees a
    // well-mixed nonzero state from any seed.
    uint64_t sm = seed;
    for (auto &word : state)
        word = philox::splitMix64(sm);
}

Rng::Rng(uint64_t key, uint64_t trial, Mode)
    : state{key, trial, 0, 0}, seedValue(key), cachedGaussian(0.0),
      mode(Mode::Philox)
{
}

Rng
Rng::trialStream(uint64_t seed, uint64_t trial)
{
    return Rng(philox::deriveKey(seed), trial, Mode::Philox);
}

uint64_t
Rng::next()
{
    if (mode == Mode::Philox) {
        if (hasBufferedDraw) {
            hasBufferedDraw = false;
            return state[kBufferedWord];
        }
        const std::array<uint64_t, 2> draws = philox::blockDraws(
            philox::block(philox::makeCounter(state[kTrialWord],
                                              state[kBlockWord]),
                          philox::keyWords(state[kKeyWord])));
        ++state[kBlockWord];
        state[kBufferedWord] = draws[1];
        hasBufferedDraw = true;
        return draws[0];
    }

    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 top bits -> uniform in [0, 1) on the double grid.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDoubleOpenLow()
{
    return toDoubleOpenLow(next());
}

void
Rng::fillUniformOpenLow(double *out, size_t count)
{
    if (mode != Mode::Philox) {
        for (size_t i = 0; i < count; ++i)
            out[i] = nextDoubleOpenLow();
        return;
    }

    size_t filled = 0;
    if (hasBufferedDraw && filled < count) {
        hasBufferedDraw = false;
        out[filled++] = toDoubleOpenLow(state[kBufferedWord]);
    }

    // Bulk-generate whole blocks (two draws each) straight into the
    // output through the dispatched Philox batch with its fused (and
    // exact) uniform conversion; the stream position advances exactly
    // as sequential next() calls would.
    const philox::Key key = philox::keyWords(state[kKeyWord]);
    const size_t wholeBlocks = (count - filled) / 2;
    if (wholeBlocks > 0) {
        philox::fillUniformOpenLow(key, state[kTrialWord], state[kBlockWord],
                                   out + filled, wholeBlocks);
        state[kBlockWord] += wholeBlocks;
        filled += 2 * wholeBlocks;
    }

    if (filled < count) {
        // Odd tail: consume the first draw of one more block and leave
        // its second draw buffered, like next() does.
        uint64_t raw[2];
        philox::fillRaw64(key, state[kTrialWord], state[kBlockWord], raw, 1);
        ++state[kBlockWord];
        out[filled] = toDoubleOpenLow(raw[0]);
        state[kBufferedWord] = raw[1];
        hasBufferedDraw = true;
    }
}

double
Rng::minUniformOpenLow(size_t count)
{
    requireArg(count > 0, "Rng::minUniformOpenLow: count must be > 0");
    if (mode != Mode::Philox) {
        double result = 1.0;
        for (size_t i = 0; i < count; ++i)
            result = std::min(result, nextDoubleOpenLow());
        return result;
    }
    double result = 1.0;
    size_t remaining = count;
    if (hasBufferedDraw) {
        hasBufferedDraw = false;
        result = toDoubleOpenLow(state[kBufferedWord]);
        --remaining;
    }
    const philox::Key key = philox::keyWords(state[kKeyWord]);
    const size_t wholeBlocks = remaining / 2;
    if (wholeBlocks > 0) {
        result = std::min(
            result, philox::minUniformOpenLow(key, state[kTrialWord],
                                              state[kBlockWord],
                                              wholeBlocks));
        state[kBlockWord] += wholeBlocks;
        remaining -= 2 * wholeBlocks;
    }
    if (remaining > 0)
        result = std::min(result, nextDoubleOpenLow());
    return result;
}

double
Rng::maxUniformOpenLow(size_t count)
{
    requireArg(count > 0, "Rng::maxUniformOpenLow: count must be > 0");
    if (mode != Mode::Philox) {
        double result = 0.0;
        for (size_t i = 0; i < count; ++i)
            result = std::max(result, nextDoubleOpenLow());
        return result;
    }
    double result = 0.0;
    size_t remaining = count;
    if (hasBufferedDraw) {
        hasBufferedDraw = false;
        result = toDoubleOpenLow(state[kBufferedWord]);
        --remaining;
    }
    const philox::Key key = philox::keyWords(state[kKeyWord]);
    const size_t wholeBlocks = remaining / 2;
    if (wholeBlocks > 0) {
        result = std::max(
            result, philox::maxUniformOpenLow(key, state[kTrialWord],
                                              state[kBlockWord],
                                              wholeBlocks));
        state[kBlockWord] += wholeBlocks;
        remaining -= 2 * wholeBlocks;
    }
    if (remaining > 0)
        result = std::max(result, nextDoubleOpenLow());
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    requireArg(bound > 0, "Rng::nextBelow: bound must be positive");
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) mod bound
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::nextBernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cachedGaussian = v * factor;
    hasCachedGaussian = true;
    return u * factor;
}

Rng
Rng::split(uint64_t index) const
{
    if (mode == Mode::Philox) {
        // A fresh key gives an independent Philox permutation; the
        // trial word carries over so children of different trials stay
        // on disjoint streams even if their derived keys collided.
        return Rng(deriveChild(state[kKeyWord], index), state[kTrialWord],
                   Mode::Philox);
    }
    return Rng(deriveChild(seedValue, index));
}

} // namespace lemons
