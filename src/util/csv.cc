#include "util/csv.h"

namespace lemons {

std::string
csvEscape(const std::string &field)
{
    const bool needsQuotes =
        field.find_first_of(",\"\r\n") != std::string::npos;
    if (!needsQuotes)
        return field;
    std::string out;
    out.reserve(field.size() + 2);
    out.push_back('"');
    for (char c : field) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

CsvWriter::CsvWriter(const std::string &path) : out(path)
{
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ',';
        out << csvEscape(cells[i]);
    }
    out << '\n';
    ++rows;
}

bool
writeCsvFile(const std::string &path,
             const std::vector<std::vector<std::string>> &rows)
{
    CsvWriter writer(path);
    if (!writer.good())
        return false;
    for (const auto &row : rows)
        writer.writeRow(row);
    return writer.good();
}

} // namespace lemons
