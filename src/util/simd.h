/**
 * @file
 * Runtime SIMD dispatch for the trial kernels.
 *
 * The counter-based RNG and the batched Weibull transforms ship both a
 * portable scalar implementation and an AVX2 one compiled with a
 * per-function target attribute (no global -mavx2 required). Which one
 * runs is decided once at startup from, in priority order:
 *
 *   1. the LEMONS_NO_SIMD compile-time macro (vector code compiled out),
 *   2. the LEMONS_NO_SIMD environment variable (any non-empty value),
 *   3. CPUID feature detection.
 *
 * Every vector kernel in the library is bit-identical to its scalar
 * fallback by construction (integer Philox blocks, exact IEEE uniform
 * conversion, order-insensitive selections, and mirrored operation
 * sequences in lemons::fastmath), so the dispatch level never changes
 * simulation results — only throughput. Tests enforce this via
 * setLevelForTesting().
 */

#ifndef LEMONS_UTIL_SIMD_H_
#define LEMONS_UTIL_SIMD_H_

namespace lemons::simd {

/** Instruction-set tiers the dispatcher can select. */
enum class Level {
    Scalar = 0, ///< portable C++ fallback, always available
    Avx2 = 1,   ///< AVX2 batches (x86-64 only)
};

/** Human-readable tier name ("scalar" / "avx2") for logs and bench metadata. */
const char *levelName(Level level);

/**
 * Highest tier this build AND this machine support: Scalar when
 * compiled with LEMONS_NO_SIMD or on non-x86 targets, otherwise the
 * CPUID-detected maximum. Detection runs once and is cached.
 */
Level detectedLevel();

/**
 * Tier the kernels actually dispatch on: detectedLevel() clamped by the
 * LEMONS_NO_SIMD environment variable and any test override.
 */
Level activeLevel();

/**
 * Test hook: force activeLevel() to @p level (clamped to
 * detectedLevel(), so requesting Avx2 on a scalar-only machine stays
 * Scalar). The SIMD-vs-scalar bit-equality suites flip this to run both
 * paths in one process. Not thread-safe against concurrently running
 * kernels; call between runs only.
 */
void setLevelForTesting(Level level);

/** Drop the test override and return to environment/CPUID dispatch. */
void clearLevelForTesting();

} // namespace lemons::simd

#endif // LEMONS_UTIL_SIMD_H_
