/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * All stochastic code in the library draws from lemons::Rng so that
 * every simulation is reproducible from a single 64-bit seed. Two
 * generator modes live behind the one interface:
 *
 *  - xoshiro256** (Blackman & Vigna), seeded through SplitMix64: the
 *    default for ad-hoc / non-trial randomness (fault injection setup,
 *    attacker models, calibration, tests).
 *  - Philox4x32-10 counter mode (Random123): the definitional stream
 *    for Monte Carlo trials. Rng::trialStream(seed, trial) keys the
 *    generator on (seed, trial) and counts draws, so any draw of any
 *    trial is independently computable — the engine's trial kernels
 *    are embarrassingly parallel with zero chunk-order coupling, and
 *    the batched fillUniformOpenLow path can generate blocks with
 *    AVX2 while staying bit-identical to sequential next() calls.
 *
 * See util/philox.h for the counter layout and ARCHITECTURE.md for the
 * stream contract.
 */

#ifndef LEMONS_UTIL_RNG_H_
#define LEMONS_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace lemons {

/**
 * Pseudo-random generator: xoshiro256** with SplitMix64 seeding, or
 * Philox4x32-10 counter mode for trial streams.
 *
 * Satisfies the subset of the UniformRandomBitGenerator concept the
 * library needs; not intended for cryptographic use (the crypto module
 * documents its own randomness requirements).
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct an xoshiro generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

    /**
     * The counter-based stream of Monte Carlo trial @p trial under
     * master @p seed: Philox4x32-10 keyed on (seed, trial, draw). This
     * is the engine's definitional trial stream — bit-identical
     * regardless of thread count, chunk size, SIMD dispatch or
     * checkpoint/resume, because draw i of trial t is a pure function
     * of (seed, t, i).
     */
    static Rng trialStream(uint64_t seed, uint64_t trial);

    /** True when this generator runs in Philox counter mode. */
    bool isCounterBased() const { return mode == Mode::Philox; }

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~uint64_t{0}; }

    /** Next raw 64-bit output. */
    uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Uniform double in (0, 1]; never returns exactly zero, which makes
     * it safe as input to logarithms (e.g. inverse-CDF sampling).
     */
    double nextDoubleOpenLow();

    /**
     * Fill @p out[0 .. count) with uniforms in (0, 1], bit-identical to
     * @p count sequential nextDoubleOpenLow() calls (the generator
     * state advances exactly as if they had been made). In counter
     * mode the Philox blocks are generated in bulk — with AVX2 when
     * the runtime dispatch allows — which is the fast path of the
     * engine's structure-of-arrays kernels.
     */
    void fillUniformOpenLow(double *out, size_t count);

    /**
     * Minimum / maximum of the next @p count uniforms in (0, 1],
     * advancing the stream exactly as fillUniformOpenLow(out, count)
     * would, without materializing the array. The extremum of a set of
     * exact doubles does not depend on reduction order, so the value
     * equals a scalar min/max over the filled array at any SIMD
     * dispatch level — the fused fast path of the k = 1 / k = n
     * order-statistic kernels. @pre count > 0.
     */
    double minUniformOpenLow(size_t count);
    double maxUniformOpenLow(size_t count);

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool nextBernoulli(double p);

    /** Standard normal draw (Marsaglia polar method). */
    double nextGaussian();

    /**
     * Derive the @p index -th child stream. Children of the same parent
     * with distinct indices are statistically independent streams, and
     * deriving is order-independent, so parallel Monte Carlo trials stay
     * reproducible. A counter-mode parent derives counter-mode children
     * (fresh key, draw counter reset); an xoshiro parent derives
     * xoshiro children.
     */
    Rng split(uint64_t index) const;

  private:
    enum class Mode : uint8_t { Xoshiro, Philox };

    /** Counter-mode constructor: see trialStream(). */
    Rng(uint64_t key, uint64_t trial, Mode tag);

    /**
     * Mode-dependent state layout. Xoshiro: the four xoshiro256**
     * state words. Philox: [key, trial, next block index, buffered
     * second draw of the last block].
     */
    std::array<uint64_t, 4> state;
    static constexpr size_t kKeyWord = 0;
    static constexpr size_t kTrialWord = 1;
    static constexpr size_t kBlockWord = 2;
    static constexpr size_t kBufferedWord = 3;

    /** Seed material retained so split() can derive children. */
    uint64_t seedValue;
    /** Cached second output of the polar method, NaN when empty. */
    double cachedGaussian;
    Mode mode = Mode::Xoshiro;
    bool hasCachedGaussian = false;
    /** Philox mode: second draw of the current block is pending. */
    bool hasBufferedDraw = false;
};

} // namespace lemons

#endif // LEMONS_UTIL_RNG_H_
