/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * All stochastic code in the library draws from lemons::Rng so that
 * every simulation is reproducible from a single 64-bit seed. The
 * generator is xoshiro256** (Blackman & Vigna), seeded through
 * SplitMix64 so that nearby seeds produce unrelated streams. Rng also
 * supports deriving independent child streams, which the Monte Carlo
 * engine uses to give every trial its own generator regardless of
 * execution order.
 */

#ifndef LEMONS_UTIL_RNG_H_
#define LEMONS_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace lemons {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Satisfies the subset of the UniformRandomBitGenerator concept the
 * library needs; not intended for cryptographic use (the crypto module
 * documents its own randomness requirements).
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct a generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~uint64_t{0}; }

    /** Next raw 64-bit output. */
    uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Uniform double in (0, 1]; never returns exactly zero, which makes
     * it safe as input to logarithms (e.g. inverse-CDF sampling).
     */
    double nextDoubleOpenLow();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool nextBernoulli(double p);

    /** Standard normal draw (Marsaglia polar method). */
    double nextGaussian();

    /**
     * Derive the @p index -th child stream. Children of the same parent
     * with distinct indices are statistically independent streams, and
     * deriving is order-independent, so parallel Monte Carlo trials stay
     * reproducible.
     */
    Rng split(uint64_t index) const;

  private:
    std::array<uint64_t, 4> state;
    /** Seed material retained so split() can derive children. */
    uint64_t seedValue;
    /** Cached second output of the polar method, NaN when empty. */
    double cachedGaussian;
    bool hasCachedGaussian = false;
};

} // namespace lemons

#endif // LEMONS_UTIL_RNG_H_
