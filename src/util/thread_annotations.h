/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * Compile-time lock-discipline checking: data members carry
 * LEMONS_GUARDED_BY(mu), functions declare LEMONS_REQUIRES(mu) /
 * LEMONS_EXCLUDES(mu), and building with Clang's -Wthread-safety turns
 * every missed lock into a compiler warning (error under
 * LEMONS_WERROR). Under GCC and other compilers the macros expand to
 * nothing, so the annotations are pure documentation there.
 *
 * The macro set mirrors the capability vocabulary from the Clang
 * documentation; only the subset the codebase uses is defined, to keep
 * the surface auditable.
 */

#ifndef LEMONS_UTIL_THREAD_ANNOTATIONS_H_
#define LEMONS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define LEMONS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define LEMONS_THREAD_ANNOTATION__(x) // no-op outside Clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define LEMONS_CAPABILITY(x) LEMONS_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII class that acquires a capability for its lifetime. */
#define LEMONS_SCOPED_CAPABILITY LEMONS_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define LEMONS_GUARDED_BY(x) LEMONS_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose pointee is guarded by @p x. */
#define LEMONS_PT_GUARDED_BY(x) LEMONS_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function that acquires the listed capabilities and does not release. */
#define LEMONS_ACQUIRE(...)                                                  \
    LEMONS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define LEMONS_RELEASE(...)                                                  \
    LEMONS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function that acquires the capability only when returning @p ... . */
#define LEMONS_TRY_ACQUIRE(...)                                              \
    LEMONS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/** Caller must already hold the listed capabilities. */
#define LEMONS_REQUIRES(...)                                                 \
    LEMONS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define LEMONS_EXCLUDES(...)                                                 \
    LEMONS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the capability guarding its result. */
#define LEMONS_RETURN_CAPABILITY(x)                                          \
    LEMONS_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch for code the analysis cannot model; use sparingly. */
#define LEMONS_NO_THREAD_SAFETY_ANALYSIS                                     \
    LEMONS_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // LEMONS_UTIL_THREAD_ANNOTATIONS_H_
