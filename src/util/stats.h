/**
 * @file
 * Descriptive statistics for Monte Carlo results.
 */

#ifndef LEMONS_UTIL_STATS_H_
#define LEMONS_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lemons {

/**
 * Streaming mean / variance / extrema accumulator (Welford's method).
 * Constant memory; suitable for millions of Monte Carlo trials.
 *
 * Non-finite observations (NaN, +/-Inf) are quarantined: they are
 * counted in nonFiniteCount() but excluded from every aggregate, so a
 * single poisoned trial cannot turn the mean of a million-trial run
 * into NaN.
 */
class RunningStats
{
  public:
    /**
     * Exact serializable image of an accumulator. Round-tripping
     * through State is bit-preserving (the doubles are copied, never
     * recomputed), which is what lets the fleet checkpoint format
     * persist per-shard accumulators and resume a run bit-identically.
     */
    struct State
    {
        uint64_t count = 0;
        uint64_t nonFiniteCount = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };

    /** Add one observation; non-finite values are quarantined. */
    void add(double x);

    /**
     * Fold another accumulator into this one (Chan et al. pairwise
     * Welford combination). The result is exactly what a single
     * accumulator would hold up to floating-point reassociation:
     * count/min/max/quarantine are identical, mean/variance agree to
     * rounding. Enables parallel reduction: one RunningStats per
     * worker, merged after the join.
     */
    void merge(const RunningStats &other);

    /** Number of finite observations accumulated so far. */
    uint64_t count() const { return n; }
    /** Number of non-finite observations excluded so far. */
    uint64_t nonFiniteCount() const { return nonFinite; }
    /** Sample mean; 0 when empty. */
    double mean() const { return runningMean; }
    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest observation; +inf when empty. */
    double min() const { return minValue; }
    /** Largest observation; -inf when empty. */
    double max() const { return maxValue; }
    /** Standard error of the mean; 0 with fewer than two samples. */
    double meanStdError() const;

    /** Exact snapshot of the accumulator for serialization. */
    State state() const;

    /** Rebuild an accumulator from a snapshot (exact inverse). */
    static RunningStats fromState(const State &state);

  private:
    uint64_t n = 0;
    uint64_t nonFinite = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    // Identity-element defaults (+inf / -inf) keep min()/max() and the
    // serialized State well-defined even for an accumulator that only
    // ever quarantined non-finite samples — reading them must never be
    // undefined behaviour once shards are checkpointed to disk.
    double minValue = std::numeric_limits<double>::infinity();
    double maxValue = -std::numeric_limits<double>::infinity();
};

/**
 * A RunningStats safe to feed from many threads at once.
 *
 * The inner accumulator is guarded by a capability-annotated Mutex, so
 * Clang's -Wthread-safety proves every access takes the lock. Workers
 * that produce samples in bulk should accumulate into a local
 * RunningStats and mergeFrom() once — one lock acquisition per worker
 * instead of per sample.
 */
class SharedRunningStats
{
  public:
    /** Thread-safe RunningStats::add. */
    void add(double x) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        inner.add(x);
    }

    /** Fold a worker-local accumulator in under the lock. */
    void mergeFrom(const RunningStats &partial) LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        inner.merge(partial);
    }

    /** Consistent copy of the aggregate so far. */
    RunningStats snapshot() const LEMONS_EXCLUDES(mu)
    {
        const MutexLock lock(mu);
        return inner;
    }

  private:
    mutable Mutex mu;
    RunningStats inner LEMONS_GUARDED_BY(mu);
};

/**
 * The @p q quantile (0 <= q <= 1) of @p samples by linear interpolation
 * between order statistics. The input is copied; the original order is
 * preserved. @pre samples is non-empty.
 */
double quantile(std::vector<double> samples, double q);

/** Result of a binomial proportion interval estimate. */
struct ProportionInterval
{
    double estimate; ///< successes / trials
    double low;      ///< lower bound
    double high;     ///< upper bound
};

/**
 * Wilson score interval for a binomial proportion.
 *
 * @param successes Number of successes observed.
 * @param trials Number of trials (> 0).
 * @param z Normal quantile for the confidence level (1.96 ~ 95 %).
 */
ProportionInterval wilsonInterval(uint64_t successes, uint64_t trials,
                                  double z = 1.96);

} // namespace lemons

#endif // LEMONS_UTIL_STATS_H_
