#include "util/argparse.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>

namespace lemons {

namespace {

/** Full-token strtoull: rejects "8x", "-1", and empty strings. */
bool
parseUint64(const std::string &token, uint64_t &out)
{
    if (token.empty() || token.front() == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(token.c_str(), &end, 0);
    if (errno != 0 || end == token.c_str() || *end != '\0')
        return false;
    out = parsed;
    return true;
}

/** Full-token strtod: rejects trailing garbage and empty strings. */
bool
parseDouble(const std::string &token, double &out)
{
    if (token.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == token.c_str() || *end != '\0')
        return false;
    out = parsed;
    return true;
}

} // namespace

ArgParser::ArgParser(std::string programName, std::string summaryText)
    : program(std::move(programName)), summary(std::move(summaryText))
{
}

ArgParser &
ArgParser::add(Option option)
{
    options.push_back(std::move(option));
    return *this;
}

ArgParser &
ArgParser::flag(std::string name, bool *target, std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Flag;
    option.help = std::move(help);
    option.flagTarget = target;
    return add(std::move(option));
}

ArgParser &
ArgParser::value(std::string name, std::string *target,
                 std::string metavar, std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Value;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.sink = [target](const std::string &token) {
        *target = token;
        return true;
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::value(std::string name, uint64_t *target, std::string metavar,
                 std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Value;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.sink = [target](const std::string &token) {
        return parseUint64(token, *target);
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::value(std::string name, unsigned *target, std::string metavar,
                 std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Value;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.sink = [target](const std::string &token) {
        uint64_t wide = 0;
        if (!parseUint64(token, wide) ||
            wide > std::numeric_limits<unsigned>::max())
            return false;
        *target = static_cast<unsigned>(wide);
        return true;
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::value(std::string name, double *target, std::string metavar,
                 std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Value;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.sink = [target](const std::string &token) {
        return parseDouble(token, *target);
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::value(std::string name, std::optional<uint64_t> *target,
                 std::string metavar, std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Value;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.sink = [target](const std::string &token) {
        uint64_t parsed = 0;
        if (!parseUint64(token, parsed))
            return false;
        *target = parsed;
        return true;
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::optionalValue(std::string name, bool *present,
                         std::string *valueTarget, std::string metavar,
                         std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::OptionalValue;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.flagTarget = present;
    option.sink = [valueTarget](const std::string &token) {
        *valueTarget = token;
        return true;
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::repeated(std::string name, std::vector<std::string> *target,
                    std::string metavar, std::string help)
{
    Option option;
    option.name = std::move(name);
    option.kind = Kind::Repeated;
    option.metavar = std::move(metavar);
    option.help = std::move(help);
    option.sink = [target](const std::string &token) {
        target->push_back(token);
        return true;
    };
    return add(std::move(option));
}

ArgParser &
ArgParser::positionals(std::string metavar,
                       std::vector<std::string> *target, std::string help)
{
    positionalMetavar = std::move(metavar);
    positionalHelp = std::move(help);
    positionalTarget = target;
    return *this;
}

ArgParser &
ArgParser::epilog(std::string text)
{
    extra = std::move(text);
    return *this;
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    const auto it = std::find_if(
        options.begin(), options.end(),
        [&](const Option &option) { return option.name == name; });
    return it == options.end() ? nullptr : &*it;
}

ArgParser::Outcome
ArgParser::fail(std::string message)
{
    failure = program + ": " + std::move(message);
    return Outcome::Error;
}

ArgParser::Outcome
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << helpText();
            return Outcome::Help;
        }
        if (arg.empty() || arg.front() != '-' || arg == "-") {
            if (positionalTarget == nullptr)
                return fail("unexpected operand '" + arg + "'");
            positionalTarget->push_back(std::move(arg));
            continue;
        }

        // Split "--name=value" once; inlineValue survives the lookup.
        std::optional<std::string> inlineValue;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            inlineValue = arg.substr(eq + 1);
            arg.resize(eq);
        }

        Option *option = find(arg);
        if (option == nullptr)
            return fail("unknown option '" + arg + "'");

        switch (option->kind) {
        case Kind::Flag:
            if (inlineValue)
                return fail("option '" + arg + "' takes no value");
            *option->flagTarget = true;
            break;
        case Kind::OptionalValue:
            *option->flagTarget = true;
            if (inlineValue && !option->sink(*inlineValue))
                return fail("malformed value '" + *inlineValue +
                            "' for option '" + arg + "'");
            break;
        case Kind::Value:
        case Kind::Repeated: {
            std::string token;
            if (inlineValue) {
                token = *inlineValue;
            } else {
                if (i + 1 >= argc)
                    return fail("option '" + arg + "' needs a value");
                token = argv[++i];
            }
            if (!option->sink(token))
                return fail("malformed value '" + token +
                            "' for option '" + arg + "'");
            break;
        }
        }
    }
    return Outcome::Ok;
}

std::string
ArgParser::helpText() const
{
    std::ostringstream out;
    out << "usage: " << program << " [options]";
    if (positionalTarget != nullptr)
        out << " " << positionalMetavar;
    out << "\n\n" << summary << "\n\noptions:\n";

    // Column layout: pad every "--name METAVAR" cell to the widest.
    std::vector<std::string> cells;
    cells.reserve(options.size());
    size_t width = 0;
    for (const Option &option : options) {
        std::string cell = option.name;
        if (option.kind == Kind::Value || option.kind == Kind::Repeated)
            cell += " " + option.metavar;
        else if (option.kind == Kind::OptionalValue)
            cell += "[=" + option.metavar + "]";
        width = std::max(width, cell.size());
        cells.push_back(std::move(cell));
    }
    width = std::max(width, std::string("--help").size());
    for (size_t i = 0; i < options.size(); ++i)
        out << "  " << cells[i]
            << std::string(width - cells[i].size() + 2, ' ')
            << options[i].help << "\n";
    out << "  --help" << std::string(width - 6 + 2, ' ')
        << "print this text and exit\n";
    if (positionalTarget != nullptr && !positionalHelp.empty())
        out << "\n" << positionalMetavar << ": " << positionalHelp << "\n";
    if (!extra.empty())
        out << "\n" << extra;
    return out.str();
}

} // namespace lemons
