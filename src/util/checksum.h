/**
 * @file
 * Data-integrity checksums for on-disk artifacts.
 *
 * The fleet checkpoint format needs to distinguish "this file is what
 * the writer wrote" from "this file is torn, truncated, or corrupted"
 * before trusting any of its contents — a resumed campaign that reads
 * garbage state silently diverges from the uninterrupted run, which is
 * exactly the failure mode the crash-safety contract forbids. CRC-32C
 * (Castagnoli) is the integrity check: cheap, well-studied, and good
 * at the short-burst corruption patterns torn writes produce. FNV-1a
 * is the non-cryptographic fingerprint used to tie a checkpoint to the
 * configuration that produced it. Neither is a security primitive —
 * tamper resistance is out of scope (crypto/sha256.h covers that).
 */

#ifndef LEMONS_UTIL_CHECKSUM_H_
#define LEMONS_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace lemons {

/**
 * CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) of @p size
 * bytes at @p data. @p seed chains incremental computation: pass the
 * previous return value to continue a running checksum.
 */
uint32_t crc32c(const void *data, size_t size, uint32_t seed = 0);

/**
 * FNV-1a 64-bit hash of @p size bytes at @p data, chainable via
 * @p seed (pass a previous return value to extend the hash).
 */
uint64_t fnv1a64(const void *data, size_t size,
                 uint64_t seed = 0xcbf29ce484222325ULL);

} // namespace lemons

#endif // LEMONS_UTIL_CHECKSUM_H_
