/**
 * @file
 * ASCII table rendering for the benchmark harness.
 *
 * Every bench binary prints the rows/series of the paper table or
 * figure it regenerates; Table keeps that output aligned and uniform.
 */

#ifndef LEMONS_UTIL_TABLE_H_
#define LEMONS_UTIL_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lemons {

/** Format @p v with @p precision significant digits (general format). */
std::string formatGeneral(double v, int precision = 6);

/** Format @p v in scientific notation with @p precision digits. */
std::string formatSci(double v, int precision = 2);

/** Format an integer count with thousands separators (1,234,567). */
std::string formatCount(uint64_t v);

/**
 * Column-aligned ASCII table. Usage:
 * @code
 *   Table t({"alpha", "beta", "#NEMS"});
 *   t.addRow({"14", "8", formatCount(n)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t rowCount() const { return rows.size(); }

    /** Render the table with a header underline to @p out. */
    void print(std::ostream &out) const;

  private:
    std::vector<std::string> columnHeaders;
    std::vector<std::vector<std::string>> rows;
};

} // namespace lemons

#endif // LEMONS_UTIL_TABLE_H_
