/**
 * @file
 * Monte Carlo counterparts of the analytic structure models: sample
 * device lifetimes from a factory and report how many accesses a
 * structure actually survives.
 */

#ifndef LEMONS_ARCH_STRUCTURES_SIM_H_
#define LEMONS_ARCH_STRUCTURES_SIM_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "fault/faulty_device.h"
#include "util/rng.h"
#include "wearout/population.h"

namespace lemons::arch {

/**
 * Arbitrary lifetime source: draws one device time-to-failure. Lets
 * the model-sensitivity studies run the same structure simulations on
 * non-Weibull populations (e.g. bathtub mixtures).
 */
using LifetimeSampler = std::function<double(Rng &)>;

/**
 * Generic version of sampleParallelSurvivedAccesses for any lifetime
 * distribution.
 */
uint64_t sampleParallelSurvivedAccesses(const LifetimeSampler &sampler,
                                        size_t n, size_t k, Rng &rng);

/** Generic version of sampleSerialCopiesTotalAccesses. */
uint64_t sampleSerialCopiesTotalAccesses(const LifetimeSampler &sampler,
                                         size_t n, size_t k,
                                         uint64_t copies, Rng &rng);

/**
 * Sample the number of whole accesses a k-out-of-n parallel structure
 * survives: each access actuates every device; the structure works
 * while at least k devices still close. Equals floor of the k-th
 * largest sampled lifetime.
 *
 * @param factory Device fabrication model.
 * @param n Structure width. @param k Alive threshold (1 <= k <= n).
 * @param rng Randomness source.
 */
uint64_t sampleParallelSurvivedAccesses(const wearout::DeviceFactory &factory,
                                        size_t n, size_t k, Rng &rng);

/**
 * Sample the number of whole accesses an n-device series chain
 * survives: floor of the minimum sampled lifetime.
 */
uint64_t sampleSeriesSurvivedAccesses(const wearout::DeviceFactory &factory,
                                      size_t n, Rng &rng);

/**
 * Sample the total accesses served by @p copies serially-consumed
 * parallel structures (the N-copy architecture of Section 4.1): when
 * the current copy's structure dies, the next copy takes over; the
 * total is the sum of per-copy survived accesses. This is the
 * quantity behind the paper's "empirical access bounds" (Fig 4c).
 */
uint64_t sampleSerialCopiesTotalAccesses(const wearout::DeviceFactory &factory,
                                         size_t n, size_t k, uint64_t copies,
                                         Rng &rng);

/**
 * Coarse structure condition. Fault injection makes the old binary
 * dead/alive view insufficient: a structure can be functional yet
 * compromised (stuck-closed shares) or functional yet eroded (devices
 * lost but still >= threshold).
 */
enum class HealthStatus {
    Healthy,  ///< every device still closes
    Degraded, ///< devices lost, but the structure still works
    Dead,     ///< below threshold: the structure no longer conducts
};

/**
 * Degraded-but-alive health report for one structure at a probe
 * access. Produced by sampling a fresh population from a faulty
 * factory and asking which devices would still close at that access.
 */
struct StructureHealth
{
    size_t width = 0;       ///< n devices in the structure
    size_t threshold = 0;   ///< devices required for the structure to work
    size_t alive = 0;       ///< devices still closing at the probe access
    size_t stuckClosed = 0; ///< fail-short devices (always counted alive)
    HealthStatus status = HealthStatus::Dead;
    /**
     * Whether the structure can never die: enough fail-short devices
     * to meet the threshold forever, so the secret behind it outlives
     * every wearout bound the paper's analyses assume.
     */
    bool attackBoundViolated = false;
};

/**
 * Sample the health of a k-out-of-n parallel structure at access
 * @p probeAccess (the structure works while >= k devices close).
 * 1-of-n parallel structures are the k = 1 case.
 */
StructureHealth probeParallelHealth(const fault::FaultyDeviceFactory &factory,
                                    size_t n, size_t k, uint64_t probeAccess,
                                    Rng &rng);

/**
 * Sample the health of an n-device series chain at @p probeAccess:
 * the chain conducts only while every device closes, so threshold = n.
 * A stuck-closed device cannot break a series chain (it conducts);
 * the chain is unkillable only when every device is stuck.
 */
StructureHealth probeSeriesHealth(const fault::FaultyDeviceFactory &factory,
                                  size_t n, uint64_t probeAccess, Rng &rng);

/** Survived-access sample under fault injection. */
struct FaultySurvival
{
    /** Accesses survived; meaningless when unbounded. */
    uint64_t accesses = 0;
    /**
     * True when >= k devices are stuck closed: the structure never
     * degrades below threshold and the access bound is gone.
     */
    bool unbounded = false;
    /** Fail-short devices in the sampled population. */
    size_t stuckDevices = 0;
};

/**
 * Fault-injected counterpart of sampleParallelSurvivedAccesses.
 * Transient glitches are ignored here: they fail individual reads but
 * do not move the wearout order statistics.
 */
FaultySurvival
sampleFaultyParallelSurvivedAccesses(const fault::FaultyDeviceFactory &factory,
                                     size_t n, size_t k, Rng &rng);

/** Whole-architecture outcome under fault injection. */
struct FaultyArchitectureOutcome
{
    /** Accesses served before exhaustion (sum over consumed copies). */
    uint64_t totalAccesses = 0;
    /** True when some copy never dies (secret retrievable forever). */
    bool unbounded = false;
    /** Copies with >= k stuck-closed devices. */
    size_t stuckDominatedCopies = 0;
};

/**
 * Fault-injected counterpart of sampleSerialCopiesTotalAccesses:
 * copies are consumed serially until one of them turns out to be
 * unkillable (at which point the architecture serves unbounded
 * accesses) or all copies die.
 */
FaultyArchitectureOutcome
sampleFaultySerialCopiesOutcome(const fault::FaultyDeviceFactory &factory,
                                size_t n, size_t k, uint64_t copies,
                                Rng &rng);

} // namespace lemons::arch

#endif // LEMONS_ARCH_STRUCTURES_SIM_H_
