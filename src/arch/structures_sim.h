/**
 * @file
 * Monte Carlo counterparts of the analytic structure models: sample
 * device lifetimes from a factory and report how many accesses a
 * structure actually survives.
 */

#ifndef LEMONS_ARCH_STRUCTURES_SIM_H_
#define LEMONS_ARCH_STRUCTURES_SIM_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "wearout/population.h"

namespace lemons::arch {

/**
 * Arbitrary lifetime source: draws one device time-to-failure. Lets
 * the model-sensitivity studies run the same structure simulations on
 * non-Weibull populations (e.g. bathtub mixtures).
 */
using LifetimeSampler = std::function<double(Rng &)>;

/**
 * Generic version of sampleParallelSurvivedAccesses for any lifetime
 * distribution.
 */
uint64_t sampleParallelSurvivedAccesses(const LifetimeSampler &sampler,
                                        size_t n, size_t k, Rng &rng);

/** Generic version of sampleSerialCopiesTotalAccesses. */
uint64_t sampleSerialCopiesTotalAccesses(const LifetimeSampler &sampler,
                                         size_t n, size_t k,
                                         uint64_t copies, Rng &rng);

/**
 * Sample the number of whole accesses a k-out-of-n parallel structure
 * survives: each access actuates every device; the structure works
 * while at least k devices still close. Equals floor of the k-th
 * largest sampled lifetime.
 *
 * @param factory Device fabrication model.
 * @param n Structure width. @param k Alive threshold (1 <= k <= n).
 * @param rng Randomness source.
 */
uint64_t sampleParallelSurvivedAccesses(const wearout::DeviceFactory &factory,
                                        size_t n, size_t k, Rng &rng);

/**
 * Sample the number of whole accesses an n-device series chain
 * survives: floor of the minimum sampled lifetime.
 */
uint64_t sampleSeriesSurvivedAccesses(const wearout::DeviceFactory &factory,
                                      size_t n, Rng &rng);

/**
 * Sample the total accesses served by @p copies serially-consumed
 * parallel structures (the N-copy architecture of Section 4.1): when
 * the current copy's structure dies, the next copy takes over; the
 * total is the sum of per-copy survived accesses. This is the
 * quantity behind the paper's "empirical access bounds" (Fig 4c).
 */
uint64_t sampleSerialCopiesTotalAccesses(const wearout::DeviceFactory &factory,
                                         size_t n, size_t k, uint64_t copies,
                                         Rng &rng);

} // namespace lemons::arch

#endif // LEMONS_ARCH_STRUCTURES_SIM_H_
