/**
 * @file
 * Parallel-in / serial-out shift register — the leaf storage element
 * of the decision-tree schematic (paper Fig 7, which cites the
 * MM74HC165's ~20 ns per-bit propagation for the read-out latency in
 * Section 6.5.2).
 *
 * The random string is latched in parallel at fabrication and clocked
 * out serially through the single output pin; each clock destroys the
 * bit it emits (the register is the paper's "read destructive shift
 * register"). This is the bit-level model beneath ShareStore's
 * byte-level abstraction; the cost model's read latency
 * (20 ns x 1000 H bits) corresponds to clocking a full register out.
 */

#ifndef LEMONS_ARCH_SHIFT_REGISTER_H_
#define LEMONS_ARCH_SHIFT_REGISTER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace lemons::arch {

/**
 * A read-destructive PISO shift register.
 */
class ShiftRegister
{
  public:
    /**
     * Latch @p data in parallel (MSB of byte 0 shifts out first).
     */
    explicit ShiftRegister(const std::vector<uint8_t> &data);

    /** Bits latched at construction. */
    size_t capacityBits() const { return totalBits; }

    /** Bits not yet clocked out. */
    size_t remainingBits() const { return totalBits - position; }

    /**
     * Clock one bit out of the serial pin; the bit is destroyed in
     * the register as it leaves.
     *
     * @return The bit, or nullopt once the register is drained.
     */
    std::optional<bool> clockOut();

    /**
     * Clock the whole remaining contents out as packed bytes (the
     * final partial byte, if any, is zero-padded in its low bits).
     * Equivalent to repeated clockOut(); the register is drained
     * afterwards.
     */
    std::vector<uint8_t> drain();

    /** Whether every bit has been clocked out. */
    bool drained() const { return position >= totalBits; }

    /**
     * Serial read-out latency in nanoseconds for the *remaining*
     * contents at @p nsPerBit (default: the MM74HC165-class 20 ns the
     * paper assumes).
     */
    double readoutLatencyNs(double nsPerBit = 20.0) const;

  private:
    std::vector<uint8_t> cells;
    size_t totalBits;
    size_t position = 0;
};

} // namespace lemons::arch

#endif // LEMONS_ARCH_SHIFT_REGISTER_H_
