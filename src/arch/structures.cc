#include "arch/structures.h"

#include <cmath>

#include "lint/rules.h"
#include "util/math.h"
#include "util/require.h"

namespace lemons::arch {

SeriesChain::SeriesChain(const wearout::Weibull &dev, size_t n)
    : device(dev), length(n)
{
    // L201: a chain needs at least one device. Fast-path check; a
    // full lint::Report is only built on violation.
    lint::checkSeriesOrThrow(n);
}

double
SeriesChain::reliabilityAt(double x) const
{
    return std::exp(static_cast<double>(length) * device.logReliability(x));
}

wearout::Weibull
SeriesChain::equivalentDevice() const
{
    const double scale =
        device.alpha() /
        std::pow(static_cast<double>(length), 1.0 / device.beta());
    return wearout::Weibull(scale, device.beta());
}

double
SeriesChain::lengthForScaleFactor(double y, double beta)
{
    requireArg(y > 0.0, "SeriesChain::lengthForScaleFactor: y must be > 0");
    requireArg(beta > 0.0,
               "SeriesChain::lengthForScaleFactor: beta must be > 0");
    return std::pow(y, beta);
}

ParallelStructure::ParallelStructure(const wearout::Weibull &dev, size_t n,
                                     size_t k)
    : device(dev), width(n), threshold(k)
{
    // L201/L202: width and threshold bounds. This constructor sits
    // inside solver search loops, so the clean path must stay
    // allocation-free (see lint::checkParallelOrThrow).
    lint::checkParallelOrThrow(n, k);
}

double
ParallelStructure::reliabilityAt(double x) const
{
    return std::exp(logReliabilityAt(x));
}

double
ParallelStructure::logReliabilityAt(double x) const
{
    const double logR = device.logReliability(x);
    if (threshold == 1) {
        // 1 - (1 - r)^n, via the complement in log space (Eq. 6).
        const double logAllDead =
            static_cast<double>(width) * log1mExp(logR);
        return log1mExp(std::min(0.0, logAllDead));
    }
    return logBinomialTailAtLeast(width, threshold, std::exp(logR));
}

double
ParallelStructure::logFailureAt(double x) const
{
    const double logR = device.logReliability(x);
    if (threshold == 1)
        return static_cast<double>(width) * log1mExp(logR);
    // P(fewer than k alive) = P(at least n-k+1 dead).
    const double deadProb = -std::expm1(logR);
    return logBinomialTailAtLeast(width, width - threshold + 1, deadProb);
}

uint64_t
ParallelStructure::degradationWindow(double hi, double lo) const
{
    requireArg(hi > lo, "degradationWindow: hi must exceed lo");
    uint64_t t1 = 0;
    uint64_t t = 1;
    // Scan until reliability crosses below lo; cap at a generous bound
    // so degenerate parameters cannot loop forever.
    const uint64_t cap =
        static_cast<uint64_t>(100.0 * device.alpha() *
                              std::pow(static_cast<double>(width),
                                       1.0 / device.beta())) +
        1000;
    double r = reliabilityAt(static_cast<double>(t));
    while (r > lo && t < cap) {
        if (r >= hi)
            t1 = t;
        ++t;
        r = reliabilityAt(static_cast<double>(t));
    }
    return t - t1;
}

} // namespace lemons::arch
