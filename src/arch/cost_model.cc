#include "arch/cost_model.h"

#include <cmath>

#include "util/require.h"

namespace lemons::arch {

double
CostModel::connectionAreaMm2(uint64_t totalSwitches) const
{
    const double perSwitch =
        tech.contactAreaNm2 + tech.switchSpacingNm * tech.switchSpacingNm;
    return static_cast<double>(totalSwitches) * perSwitch * nm2ToMm2;
}

double
CostModel::encodedConnectionAreaMm2(uint64_t totalSwitches,
                                    uint64_t structureWidth,
                                    uint64_t threshold, uint64_t copies,
                                    uint64_t keyBits) const
{
    requireArg(threshold >= 1,
               "encodedConnectionAreaMm2: threshold must be >= 1");
    // Component-key storage, "proportional to the size of the parallel
    // structure" (Section 4.3.2): Reed-Solomon chunking stores
    // keyBits / k bits in each of the n components, i.e.
    // keyBits * n / k bits per copy.
    const double bitsPerCopy = static_cast<double>(keyBits) *
                               static_cast<double>(structureWidth) /
                               static_cast<double>(threshold);
    const double storageArea = bitsPerCopy *
                               static_cast<double>(copies) *
                               tech.registerCellAreaNm2;
    return connectionAreaMm2(totalSwitches) + storageArea * nm2ToMm2;
}

double
CostModel::accessEnergyJ(uint64_t n) const
{
    return static_cast<double>(n) * tech.switchEnergyJ;
}

double
CostModel::accessLatencyNs() const
{
    // All switches in a parallel structure actuate simultaneously.
    return tech.switchDelayNs;
}

double
CostModel::decisionTreeAreaMm2(unsigned h) const
{
    requireArg(h >= 1 && h < 64, "decisionTreeAreaMm2: bad height");
    const double leaves = std::ldexp(1.0, static_cast<int>(h) - 1); // 2^(h-1)
    const double switchesArea = leaves * tech.contactAreaNm2;
    const double stringBits = tech.bitsPerTreeLevel * static_cast<double>(h);
    const double registersArea = leaves * stringBits *
                                 tech.registerCellAreaNm2;
    return (switchesArea + registersArea) * nm2ToMm2;
}

uint64_t
CostModel::treesPerMm2(unsigned h) const
{
    return static_cast<uint64_t>(1.0 / decisionTreeAreaMm2(h));
}

uint64_t
CostModel::padsPerMm2(unsigned h, uint64_t copies) const
{
    requireArg(copies >= 1, "padsPerMm2: need at least one copy");
    return treesPerMm2(h) / copies;
}

double
CostModel::padRetrievalLatencyMs(unsigned h, uint64_t copies) const
{
    // Worst case traverses every copy's path serially, then reads the
    // random string out of one shift register.
    const double pathNs = tech.switchDelayNs * static_cast<double>(h) *
                          static_cast<double>(copies);
    const double readNs = tech.registerDelayPerBitNs *
                          tech.bitsPerTreeLevel * static_cast<double>(h);
    return (pathNs + readNs) * 1e-6;
}

double
CostModel::padRetrievalEnergyJ(unsigned h, uint64_t copies) const
{
    return tech.switchEnergyJ * static_cast<double>(h) *
           static_cast<double>(copies);
}

} // namespace lemons::arch
