/**
 * @file
 * Share storage behind a wearout switch.
 *
 * A GuardedShare is the unit cell of every architecture in the paper:
 * a payload (one Shamir/RS component of a key) that can only be read
 * by actuating a NEMS switch. Once the switch wears out, the payload
 * is unreachable forever. ShareStore additionally models the
 * *read-destructive* registers of the one-time-pad chip (Section 6.2)
 * including the "evil-maid low-voltage read" bypass the paper warns
 * plain read-destructive memories are vulnerable to — which is exactly
 * why the NEMS guard in front of the store matters.
 */

#ifndef LEMONS_ARCH_SHARE_STORE_H_
#define LEMONS_ARCH_SHARE_STORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/faulty_device.h"
#include "util/rng.h"
#include "wearout/device.h"
#include "wearout/population.h"

namespace lemons::arch {

/**
 * A small memory holding one key component.
 */
class ShareStore
{
  public:
    /**
     * @param payload Stored bytes.
     * @param destructive When true the contents are erased by read()
     *        (one-time-pad shift registers); when false the store is
     *        re-readable (limited-use connection component storage).
     */
    ShareStore(std::vector<uint8_t> payload, bool destructive);

    /**
     * Normal read through the intended interface. Destructive stores
     * erase themselves after returning the payload once.
     *
     * @return Payload, or nullopt if already erased.
     */
    std::optional<std::vector<uint8_t>> read();

    /**
     * The attack the paper mentions: "the read-destruction could be
     * compromised if reading with a lower voltage". Returns the raw
     * contents without triggering erasure — but note this models
     * access to the *store* only; in the full architecture the
     * attacker still has to get past the NEMS network to reach it.
     */
    std::optional<std::vector<uint8_t>> lowVoltageRead() const;

    /** Whether the contents have been erased. */
    bool erased() const { return isErased; }

  private:
    std::vector<uint8_t> contents;
    bool destructiveRead;
    bool isErased = false;
};

/**
 * A write-once (anti-fuse style) memory cell for end-user one-time
 * programming — the capability the paper defers to future work
 * (Section 3: "we leave as future work techniques to allow secure,
 * one-time programming of our devices by end users"). The cell is
 * fabricated blank; the first program() burns the contents in and
 * blows the write fuse, after which neither reprogramming nor erasing
 * is possible.
 */
class WriteOnceStore
{
  public:
    /**
     * @param destructive Whether reads erase the contents (one-time-
     *        pad registers) or leave them intact (connection storage).
     */
    explicit WriteOnceStore(bool destructive);

    /**
     * Burn @p payload into the cell. Succeeds exactly once.
     *
     * @return true on the first call; false forever after (fuse blown).
     */
    bool program(std::vector<uint8_t> payload);

    /**
     * Read the cell. Blank cells return nullopt; destructive cells
     * erase on the first successful read.
     */
    std::optional<std::vector<uint8_t>> read();

    /** Whether the write fuse has been blown (cell was programmed). */
    bool fuseBlown() const { return programmed; }

    /** Whether a destructive read has erased the contents. */
    bool erased() const { return isErased; }

  private:
    std::vector<uint8_t> contents;
    bool destructiveRead;
    bool programmed = false;
    bool isErased = false;
};

/**
 * One key component behind one NEMS switch. Reading requires a
 * successful switch actuation; the switch wears out with use.
 */
class GuardedShare
{
  public:
    /**
     * @param payload Component bytes.
     * @param factory Fabrication model for the guarding switch.
     * @param destructive Whether the backing store is read-destructive.
     * @param rng Randomness for the switch lifetime.
     */
    GuardedShare(std::vector<uint8_t> payload,
                 const wearout::DeviceFactory &factory, bool destructive,
                 Rng &rng);

    /**
     * Fault-injected fabrication: the guarding switch is drawn from
     * @p factory 's fault plan (stuck-closed, infant mortality,
     * glitches, drift). With a null plan this is bit-identical to the
     * ideal constructor for the same seed.
     */
    GuardedShare(std::vector<uint8_t> payload,
                 const fault::FaultyDeviceFactory &factory, bool destructive,
                 Rng &rng);

    /**
     * Actuate the switch and, if it still closes, read the store.
     *
     * @return Payload on success; nullopt when the switch has worn out
     *         (or glitched) or the destructive store was consumed.
     */
    std::optional<std::vector<uint8_t>> access();

    /** Whether the guarding switch has failed. */
    bool switchFailed() const { return guard.failed(); }

    /** Actuations the switch has absorbed. */
    uint64_t cyclesUsed() const { return guard.cyclesUsed(); }

    /** Whether the guard is fail-short (share readable forever). */
    bool stuckClosed() const { return guard.stuckClosed(); }

    /** Non-consuming probe: would the next access's actuation close? */
    bool switchAlive() const { return guard.alive(); }

  private:
    fault::FaultyNemsSwitch guard;
    ShareStore store;
};

} // namespace lemons::arch

#endif // LEMONS_ARCH_SHARE_STORE_H_
