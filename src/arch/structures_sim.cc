#include "arch/structures_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "engine/batch.h"
#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::arch {

namespace {

// The lifetime -> whole-accesses clamp lives in the engine layer now
// (engine::floorToAccesses) so the batched trial kernels and this
// generic path share one definition.
using engine::floorToAccesses;

/** True when every fabricated device matches the nominal Weibull. */
bool
isNominalLot(const wearout::DeviceFactory &factory)
{
    const wearout::ProcessVariation &variation = factory.variation();
    return variation.alphaSigma == 0.0 && variation.betaSigma == 0.0;
}

} // namespace

uint64_t
sampleParallelSurvivedAccesses(const LifetimeSampler &sampler, size_t n,
                               size_t k, Rng &rng)
{
    requireArg(n >= 1, "sampleParallelSurvivedAccesses: n must be >= 1");
    requireArg(k >= 1 && k <= n,
               "sampleParallelSurvivedAccesses: need 1 <= k <= n");
    // One bump per structure, not per device: the per-device count is
    // n, and aggregate increments keep the atomic off the inner loop.
    LEMONS_OBS_INCREMENT("arch.sim.structure_samples");
    LEMONS_OBS_COUNT("arch.sim.device_samples", n);
    std::vector<double> lifetimes(n);
    for (auto &lifetime : lifetimes)
        lifetime = sampler(rng);
    // The structure survives access t while the k-th largest lifetime
    // is >= t, so the survived count is floor of that order statistic.
    std::nth_element(lifetimes.begin(),
                     lifetimes.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     lifetimes.end(), std::greater<double>());
    return floorToAccesses(lifetimes[k - 1]);
}

uint64_t
sampleParallelSurvivedAccesses(const wearout::DeviceFactory &factory,
                               size_t n, size_t k, Rng &rng)
{
    if (isNominalLot(factory)) {
        // iid nominal Weibull: the engine's u-select kernel consumes
        // the identical uniform stream and returns a bit-identical
        // order statistic with one inverse-CDF transform instead of n.
        // Argument validation happens once, inside the kernel.
        LEMONS_OBS_INCREMENT("arch.sim.structure_samples");
        LEMONS_OBS_COUNT("arch.sim.device_samples", n);
        return engine::sampleParallelBankSurvival(factory.nominalModel(),
                                                  n, k, rng);
    }
    return sampleParallelSurvivedAccesses(
        [&factory](Rng &r) { return factory.sampleLifetime(r); }, n, k,
        rng);
}

uint64_t
sampleSerialCopiesTotalAccesses(const LifetimeSampler &sampler, size_t n,
                                size_t k, uint64_t copies, Rng &rng)
{
    requireArg(copies >= 1,
               "sampleSerialCopiesTotalAccesses: need at least one copy");
    uint64_t total = 0;
    for (uint64_t c = 0; c < copies; ++c)
        total += sampleParallelSurvivedAccesses(sampler, n, k, rng);
    return total;
}

uint64_t
sampleSeriesSurvivedAccesses(const wearout::DeviceFactory &factory, size_t n,
                             Rng &rng)
{
    requireArg(n >= 1, "sampleSeriesSurvivedAccesses: n must be >= 1");
    if (isNominalLot(factory))
        return engine::sampleSeriesBankSurvival(factory.nominalModel(), n,
                                                rng);
    double minLifetime = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i)
        minLifetime = std::min(minLifetime, factory.sampleLifetime(rng));
    return floorToAccesses(minLifetime);
}

uint64_t
sampleSerialCopiesTotalAccesses(const wearout::DeviceFactory &factory,
                                size_t n, size_t k, uint64_t copies, Rng &rng)
{
    requireArg(copies >= 1,
               "sampleSerialCopiesTotalAccesses: need at least one copy");
    uint64_t total = 0;
    for (uint64_t c = 0; c < copies; ++c)
        total += sampleParallelSurvivedAccesses(factory, n, k, rng);
    return total;
}

namespace {

/**
 * Classify a sampled population at a probe access. A device counts
 * alive when it is stuck closed (conducts forever) or its lifetime
 * covers the probe access.
 */
StructureHealth
assessHealth(const std::vector<fault::FaultyLifetime> &fates,
             size_t threshold, uint64_t probeAccess)
{
    StructureHealth health;
    health.width = fates.size();
    health.threshold = threshold;
    for (const fault::FaultyLifetime &fate : fates) {
        if (fate.stuckClosed()) {
            ++health.stuckClosed;
            ++health.alive;
        } else if (fate.lifetime >= static_cast<double>(probeAccess)) {
            ++health.alive;
        }
    }
    if (health.alive == health.width)
        health.status = HealthStatus::Healthy;
    else if (health.alive >= threshold)
        health.status = HealthStatus::Degraded;
    else
        health.status = HealthStatus::Dead;
    health.attackBoundViolated = health.stuckClosed >= threshold;
    return health;
}

std::vector<fault::FaultyLifetime>
sampleFates(const fault::FaultyDeviceFactory &factory, size_t n, Rng &rng)
{
    std::vector<fault::FaultyLifetime> fates;
    fates.reserve(n);
    for (size_t i = 0; i < n; ++i)
        fates.push_back(factory.sampleFaultyLifetime(rng));
    return fates;
}

} // namespace

StructureHealth
probeParallelHealth(const fault::FaultyDeviceFactory &factory, size_t n,
                    size_t k, uint64_t probeAccess, Rng &rng)
{
    requireArg(n >= 1, "probeParallelHealth: n must be >= 1");
    requireArg(k >= 1 && k <= n, "probeParallelHealth: need 1 <= k <= n");
    return assessHealth(sampleFates(factory, n, rng), k, probeAccess);
}

StructureHealth
probeSeriesHealth(const fault::FaultyDeviceFactory &factory, size_t n,
                  uint64_t probeAccess, Rng &rng)
{
    requireArg(n >= 1, "probeSeriesHealth: n must be >= 1");
    // A series chain conducts only when every device does, so its
    // threshold is the full width; it is unkillable only when every
    // device is stuck closed, which assessHealth reports through the
    // same stuckClosed >= threshold rule.
    return assessHealth(sampleFates(factory, n, rng), n, probeAccess);
}

FaultySurvival
sampleFaultyParallelSurvivedAccesses(const fault::FaultyDeviceFactory &factory,
                                     size_t n, size_t k, Rng &rng)
{
    requireArg(n >= 1,
               "sampleFaultyParallelSurvivedAccesses: n must be >= 1");
    requireArg(k >= 1 && k <= n,
               "sampleFaultyParallelSurvivedAccesses: need 1 <= k <= n");
    LEMONS_OBS_INCREMENT("arch.sim.faulty_structure_samples");
    LEMONS_OBS_COUNT("arch.sim.device_samples", n);
    FaultySurvival survival;
    std::vector<double> lifetimes;
    lifetimes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const fault::FaultyLifetime fate = factory.sampleFaultyLifetime(rng);
        if (fate.stuckClosed())
            ++survival.stuckDevices;
        lifetimes.push_back(fate.lifetime);
    }
    if (survival.stuckDevices >= k) {
        survival.unbounded = true;
        return survival;
    }
    std::nth_element(lifetimes.begin(),
                     lifetimes.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     lifetimes.end(), std::greater<double>());
    survival.accesses = floorToAccesses(lifetimes[k - 1]);
    return survival;
}

FaultyArchitectureOutcome
sampleFaultySerialCopiesOutcome(const fault::FaultyDeviceFactory &factory,
                                size_t n, size_t k, uint64_t copies,
                                Rng &rng)
{
    requireArg(copies >= 1,
               "sampleFaultySerialCopiesOutcome: need at least one copy");
    FaultyArchitectureOutcome outcome;
    for (uint64_t c = 0; c < copies; ++c) {
        const FaultySurvival survival =
            sampleFaultyParallelSurvivedAccesses(factory, n, k, rng);
        if (survival.stuckDevices >= k)
            ++outcome.stuckDominatedCopies;
        if (survival.unbounded) {
            // Serial consumption halts here: this copy keeps serving
            // accesses forever, so later copies are never reached.
            LEMONS_OBS_INCREMENT("arch.sim.unbounded_outcomes");
            outcome.unbounded = true;
            return outcome;
        }
        outcome.totalAccesses += survival.accesses;
    }
    return outcome;
}

} // namespace lemons::arch
