#include "arch/structures_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/require.h"

namespace lemons::arch {

namespace {

uint64_t
floorToAccesses(double lifetime)
{
    // A device with lifetime L serves floor(L) whole accesses (the
    // t-th access succeeds iff t <= L).
    if (lifetime <= 0.0)
        return 0;
    const double f = std::floor(lifetime);
    if (f >= static_cast<double>(std::numeric_limits<int64_t>::max()))
        return std::numeric_limits<uint64_t>::max() / 2;
    return static_cast<uint64_t>(f);
}

} // namespace

uint64_t
sampleParallelSurvivedAccesses(const LifetimeSampler &sampler, size_t n,
                               size_t k, Rng &rng)
{
    requireArg(n >= 1, "sampleParallelSurvivedAccesses: n must be >= 1");
    requireArg(k >= 1 && k <= n,
               "sampleParallelSurvivedAccesses: need 1 <= k <= n");
    std::vector<double> lifetimes(n);
    for (auto &lifetime : lifetimes)
        lifetime = sampler(rng);
    // The structure survives access t while the k-th largest lifetime
    // is >= t, so the survived count is floor of that order statistic.
    std::nth_element(lifetimes.begin(),
                     lifetimes.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     lifetimes.end(), std::greater<double>());
    return floorToAccesses(lifetimes[k - 1]);
}

uint64_t
sampleParallelSurvivedAccesses(const wearout::DeviceFactory &factory,
                               size_t n, size_t k, Rng &rng)
{
    return sampleParallelSurvivedAccesses(
        [&factory](Rng &r) { return factory.sampleLifetime(r); }, n, k,
        rng);
}

uint64_t
sampleSerialCopiesTotalAccesses(const LifetimeSampler &sampler, size_t n,
                                size_t k, uint64_t copies, Rng &rng)
{
    requireArg(copies >= 1,
               "sampleSerialCopiesTotalAccesses: need at least one copy");
    uint64_t total = 0;
    for (uint64_t c = 0; c < copies; ++c)
        total += sampleParallelSurvivedAccesses(sampler, n, k, rng);
    return total;
}

uint64_t
sampleSeriesSurvivedAccesses(const wearout::DeviceFactory &factory, size_t n,
                             Rng &rng)
{
    requireArg(n >= 1, "sampleSeriesSurvivedAccesses: n must be >= 1");
    double minLifetime = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i)
        minLifetime = std::min(minLifetime, factory.sampleLifetime(rng));
    return floorToAccesses(minLifetime);
}

uint64_t
sampleSerialCopiesTotalAccesses(const wearout::DeviceFactory &factory,
                                size_t n, size_t k, uint64_t copies, Rng &rng)
{
    requireArg(copies >= 1,
               "sampleSerialCopiesTotalAccesses: need at least one copy");
    uint64_t total = 0;
    for (uint64_t c = 0; c < copies; ++c)
        total += sampleParallelSurvivedAccesses(factory, n, k, rng);
    return total;
}

} // namespace lemons::arch
