/**
 * @file
 * Analytic reliability of the paper's architectural building blocks
 * (Figure 2, Equations 3, 5, 6, 8).
 *
 * Each model answers "what is the probability the structure still
 * works at the x-th access?" given the underlying device Weibull. The
 * simulation counterparts in structures_sim.h sample the same
 * structures from device populations so tests can cross-validate.
 */

#ifndef LEMONS_ARCH_STRUCTURES_H_
#define LEMONS_ARCH_STRUCTURES_H_

#include <cstddef>
#include <cstdint>

#include "wearout/weibull.h"

namespace lemons::arch {

/**
 * Series chain of n identical devices (Fig 2b): the chain works only
 * while every device works, so R(x) = exp(-n (x/alpha)^beta) (Eq. 5).
 * Equivalent to a single device with alpha' = alpha / n^(1/beta) —
 * which is why the paper discards chaining: shrinking alpha by a
 * factor y costs n = y^beta devices.
 */
class SeriesChain
{
  public:
    /** @param device Per-device wearout. @param n Chain length >= 1. */
    SeriesChain(const wearout::Weibull &device, size_t n);

    /** Chain length. */
    size_t n() const { return length; }

    /** Probability the chain survives access @p x. */
    double reliabilityAt(double x) const;

    /** The equivalent single-device Weibull (alpha / n^(1/beta)). */
    wearout::Weibull equivalentDevice() const;

    /**
     * Chain length needed to scale the effective alpha down by factor
     * @p y > 0 at shape @p beta: n = y^beta (the paper's explosion
     * argument in Section 4.1.2).
     */
    static double lengthForScaleFactor(double y, double beta);

  private:
    wearout::Weibull device;
    size_t length;
};

/**
 * Parallel structure of n devices requiring at least k alive
 * (Fig 2c/2d). k = 1 is the plain parallel structure (Eq. 6); k > 1
 * models redundant encoding where any k surviving shares reconstruct
 * the secret (Eq. 8).
 */
class ParallelStructure
{
  public:
    /**
     * @param device Per-device wearout model.
     * @param n Structure width (>= 1).
     * @param k Required alive devices (1 <= k <= n).
     */
    ParallelStructure(const wearout::Weibull &device, size_t n, size_t k = 1);

    /** Structure width. */
    size_t n() const { return width; }
    /** Reconstruction threshold. */
    size_t k() const { return threshold; }

    /** Probability at least k devices survive access @p x. */
    double reliabilityAt(double x) const;

    /** log of reliabilityAt, stable deep in the degradation tail. */
    double logReliabilityAt(double x) const;

    /**
     * log P(structure already dead at access x) — the complement,
     * needed when reliability is near one (e.g. verifying 99.99999 %
     * minimum-usage targets, Section 4.3.3).
     */
    double logFailureAt(double x) const;

    /**
     * Width of the degradation window [t1, t2]: t1 = last access with
     * reliability >= hi, t2 = first access with reliability <= lo,
     * scanned over integer accesses from 1. Used by Fig 3 analyses.
     */
    uint64_t degradationWindow(double hi = 0.99, double lo = 0.01) const;

  private:
    wearout::Weibull device;
    size_t width;
    size_t threshold;
};

} // namespace lemons::arch

#endif // LEMONS_ARCH_STRUCTURES_H_
