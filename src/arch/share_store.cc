#include "arch/share_store.h"

namespace lemons::arch {

ShareStore::ShareStore(std::vector<uint8_t> payload, bool destructive)
    : contents(std::move(payload)), destructiveRead(destructive)
{
}

std::optional<std::vector<uint8_t>>
ShareStore::read()
{
    if (isErased)
        return std::nullopt;
    if (destructiveRead) {
        std::vector<uint8_t> out = std::move(contents);
        contents.clear();
        isErased = true;
        return out;
    }
    return contents;
}

std::optional<std::vector<uint8_t>>
ShareStore::lowVoltageRead() const
{
    if (isErased)
        return std::nullopt;
    return contents;
}

WriteOnceStore::WriteOnceStore(bool destructive)
    : destructiveRead(destructive)
{
}

bool
WriteOnceStore::program(std::vector<uint8_t> payload)
{
    if (programmed)
        return false; // fuse blown: physically unwritable
    contents = std::move(payload);
    programmed = true;
    return true;
}

std::optional<std::vector<uint8_t>>
WriteOnceStore::read()
{
    if (!programmed || isErased)
        return std::nullopt;
    if (destructiveRead) {
        std::vector<uint8_t> out = std::move(contents);
        contents.clear();
        isErased = true;
        return out;
    }
    return contents;
}

GuardedShare::GuardedShare(std::vector<uint8_t> payload,
                           const wearout::DeviceFactory &factory,
                           bool destructive, Rng &rng)
    : guard(factory.sampleLifetime(rng)),
      store(std::move(payload), destructive)
{
}

GuardedShare::GuardedShare(std::vector<uint8_t> payload,
                           const fault::FaultyDeviceFactory &factory,
                           bool destructive, Rng &rng)
    : guard(factory.fabricate(rng)), store(std::move(payload), destructive)
{
}

std::optional<std::vector<uint8_t>>
GuardedShare::access()
{
    if (!guard.actuate())
        return std::nullopt;
    return store.read();
}

} // namespace lemons::arch
