/**
 * @file
 * Area, energy, and latency cost models (paper Sections 4.3 and 6.5).
 *
 * Constants follow the paper's assumptions:
 *  - NEMS contact area 100 nm^2, 1 nm spacing, H-tree layout whose
 *    area is on the order of the number of leaves (Brent & Kung),
 *  - 1e-20 J per switch operation, ~10 ns per switch actuation,
 *  - shift registers: 50 nm^2 per cell, ~20 ns propagation per bit,
 *  - decision-tree random strings: 1000 * H bits for a height-H tree.
 */

#ifndef LEMONS_ARCH_COST_MODEL_H_
#define LEMONS_ARCH_COST_MODEL_H_

#include <cstdint>

namespace lemons::arch {

/** Physical constants of the simulated technology. */
struct TechnologyParams
{
    double contactAreaNm2 = 100.0;  ///< per NEMS switch
    double switchSpacingNm = 1.0;   ///< wire spacing between switches
    double switchEnergyJ = 1e-20;   ///< per actuation
    double switchDelayNs = 10.0;    ///< per actuation
    double registerCellAreaNm2 = 50.0; ///< per stored bit
    double registerDelayPerBitNs = 20.0; ///< serial read-out
    double bitsPerTreeLevel = 1000.0; ///< random-string bits per level
};

/** Square millimetres in one square nanometre. */
inline constexpr double nm2ToMm2 = 1e-12;

/** Cost model parameterized by the technology constants. */
class CostModel
{
  public:
    /** Use the paper's default constants. */
    CostModel() = default;

    /** Override the technology constants. */
    explicit CostModel(const TechnologyParams &params) : tech(params) {}

    /** The active technology constants. */
    const TechnologyParams &technology() const { return tech; }

    /**
     * Area (mm^2) of a limited-use connection with @p totalSwitches
     * NEMS switches in an H-tree: contact area plus spacing per switch.
     */
    double connectionAreaMm2(uint64_t totalSwitches) const;

    /**
     * Area (mm^2) of an *encoded* connection: switches plus component-
     * key storage proportional to the parallel-structure width
     * (Section 4.3.2). Components are Reed-Solomon chunks, so each of
     * the n components in a copy is keyBits / k bits and every copy
     * stores keyBits * n / k bits in total.
     *
     * @param totalSwitches All NEMS switches in the architecture.
     * @param structureWidth n of each copy.
     * @param threshold k of each copy (>= 1).
     * @param copies Number of serially consumed copies.
     * @param keyBits Size of the protected key in bits.
     */
    double encodedConnectionAreaMm2(uint64_t totalSwitches,
                                    uint64_t structureWidth,
                                    uint64_t threshold, uint64_t copies,
                                    uint64_t keyBits = 256) const;

    /** Energy (J) of one access through a width-@p n structure. */
    double accessEnergyJ(uint64_t n) const;

    /** Latency (ns) of one access (parallel actuation). */
    double accessLatencyNs() const;

    /**
     * Area (mm^2) of one height-@p h decision tree including its leaf
     * shift registers: 2^(h-1) leaves, each with a (1000 h)-bit string
     * (Section 6.5.1).
     */
    double decisionTreeAreaMm2(unsigned h) const;

    /** Decision trees of height @p h fitting in one square millimetre. */
    uint64_t treesPerMm2(unsigned h) const;

    /**
     * One-time pads per mm^2 when each pad needs @p copies tree copies.
     */
    uint64_t padsPerMm2(unsigned h, uint64_t copies) const;

    /**
     * Worst-case latency (ms) of one pad retrieval: serial traversal of
     * @p copies height-@p h paths plus one shift-register read-out
     * (Section 6.5.2).
     */
    double padRetrievalLatencyMs(unsigned h, uint64_t copies) const;

    /** Worst-case path energy (J) of one pad retrieval. */
    double padRetrievalEnergyJ(unsigned h, uint64_t copies) const;

  private:
    TechnologyParams tech;
};

} // namespace lemons::arch

#endif // LEMONS_ARCH_COST_MODEL_H_
