/**
 * @file
 * H-tree layout engine.
 *
 * The paper's area estimates "assume an H-tree layout of the NEMS
 * switches and wires" and lean on Brent & Kung's result that a
 * complete binary tree in H-layout occupies area on the order of its
 * leaf count (Section 6.5.1, ref [12]). This module makes that
 * concrete: it places the nodes of a complete binary tree in the
 * classic recursive H pattern, reports the bounding box and total
 * wire length, and verifies the O(leaves) area claim numerically —
 * grounding the closed-form cost model in an actual layout.
 *
 * Geometry: leaves sit on a sqrt(L) x sqrt(L) grid with @p pitch
 * spacing (L a power of four gives the exact classic H; other sizes
 * embed into the next power of four). Internal nodes sit at the
 * midpoint of their children, wired rectilinearly.
 */

#ifndef LEMONS_ARCH_HTREE_H_
#define LEMONS_ARCH_HTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lemons::arch {

/** A placed tree node. */
struct HTreeNode
{
    double x = 0.0;        ///< centre x in nm
    double y = 0.0;        ///< centre y in nm
    unsigned level = 0;    ///< 0 = root
    uint64_t index = 0;    ///< index within the level
};

/**
 * Layout of a complete binary tree of a given height in the recursive
 * H pattern.
 */
class HTreeLayout
{
  public:
    /**
     * @param levels Number of node levels (>= 1, <= 24): the tree has
     *        2^(levels-1) leaves.
     * @param pitch Centre-to-centre spacing of adjacent leaves in nm.
     */
    explicit HTreeLayout(unsigned levels, double pitch = 11.0);

    /** Node levels. */
    unsigned levels() const { return levelCount; }
    /** Leaves = 2^(levels - 1). */
    uint64_t leafCount() const { return uint64_t{1} << (levelCount - 1); }
    /** Total nodes = 2^levels - 1. */
    uint64_t nodeCount() const { return (uint64_t{1} << levelCount) - 1; }

    /** Placed node (level, index). @pre valid coordinates. */
    const HTreeNode &node(unsigned level, uint64_t index) const;

    /** All placed nodes, root first, in level order. */
    const std::vector<HTreeNode> &nodes() const { return placed; }

    /** Bounding-box width in nm. */
    double width() const { return boxWidth; }
    /** Bounding-box height in nm. */
    double height() const { return boxHeight; }
    /** Bounding-box area in nm^2. */
    double areaNm2() const { return boxWidth * boxHeight; }

    /**
     * Total rectilinear (Manhattan) wire length connecting every
     * parent to its children, in nm.
     */
    double totalWireLengthNm() const;

    /**
     * Area per leaf in units of pitch^2 — Brent & Kung's claim is that
     * this stays O(1) as the tree grows.
     */
    double areaPerLeafPitchSq() const;

  private:
    unsigned levelCount;
    double leafPitch;
    std::vector<HTreeNode> placed;
    double boxWidth = 0.0;
    double boxHeight = 0.0;

    /** Offset of the first node of @p level within @p placed. */
    static uint64_t levelOffset(unsigned level);
};

} // namespace lemons::arch

#endif // LEMONS_ARCH_HTREE_H_
