#include "arch/htree.h"

#include <cmath>

#include "util/require.h"

namespace lemons::arch {

uint64_t
HTreeLayout::levelOffset(unsigned level)
{
    return (uint64_t{1} << level) - 1;
}

HTreeLayout::HTreeLayout(unsigned levels, double pitch)
    : levelCount(levels), leafPitch(pitch)
{
    requireArg(levels >= 1 && levels <= 24,
               "HTreeLayout: levels must lie in [1, 24]");
    requireArg(pitch > 0.0, "HTreeLayout: pitch must be positive");

    // The leaf grid: alternate splits give nx = 2^ceil(s/2) columns and
    // ny = 2^floor(s/2) rows for s = levels - 1 bisections.
    const unsigned splits = levels - 1;
    const unsigned splitsX = (splits + 1) / 2;
    const unsigned splitsY = splits / 2;
    boxWidth = static_cast<double>(uint64_t{1} << splitsX) * pitch;
    boxHeight = static_cast<double>(uint64_t{1} << splitsY) * pitch;

    placed.resize(nodeCount());
    // Each node owns a region obtained by bisecting the die along
    // alternating axes down its root path; the node sits at the
    // region's centre, which is also the midpoint of its children.
    for (unsigned level = 0; level < levelCount; ++level) {
        const uint64_t countAtLevel = uint64_t{1} << level;
        for (uint64_t index = 0; index < countAtLevel; ++index) {
            double x0 = 0.0, x1 = boxWidth;
            double y0 = 0.0, y1 = boxHeight;
            for (unsigned bit = 0; bit < level; ++bit) {
                // Root-to-node path: the bit-th split (x first).
                const bool upper =
                    (index >> (level - 1 - bit)) & uint64_t{1};
                if (bit % 2 == 0) {
                    const double mid = 0.5 * (x0 + x1);
                    (upper ? x0 : x1) = mid;
                } else {
                    const double mid = 0.5 * (y0 + y1);
                    (upper ? y0 : y1) = mid;
                }
            }
            HTreeNode &node = placed[levelOffset(level) + index];
            node.x = 0.5 * (x0 + x1);
            node.y = 0.5 * (y0 + y1);
            node.level = level;
            node.index = index;
        }
    }
}

const HTreeNode &
HTreeLayout::node(unsigned level, uint64_t index) const
{
    requireArg(level < levelCount, "HTreeLayout::node: bad level");
    requireArg(index < (uint64_t{1} << level),
               "HTreeLayout::node: bad index");
    return placed[levelOffset(level) + index];
}

double
HTreeLayout::totalWireLengthNm() const
{
    double total = 0.0;
    for (unsigned level = 0; level + 1 < levelCount; ++level) {
        const uint64_t countAtLevel = uint64_t{1} << level;
        for (uint64_t index = 0; index < countAtLevel; ++index) {
            const HTreeNode &parent = placed[levelOffset(level) + index];
            for (uint64_t child = 2 * index; child <= 2 * index + 1;
                 ++child) {
                const HTreeNode &c =
                    placed[levelOffset(level + 1) + child];
                total += std::abs(parent.x - c.x) +
                         std::abs(parent.y - c.y);
            }
        }
    }
    return total;
}

double
HTreeLayout::areaPerLeafPitchSq() const
{
    return areaNm2() /
           (static_cast<double>(leafCount()) * leafPitch * leafPitch);
}

} // namespace lemons::arch
