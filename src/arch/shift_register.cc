#include "arch/shift_register.h"

namespace lemons::arch {

ShiftRegister::ShiftRegister(const std::vector<uint8_t> &data)
    : cells(data), totalBits(8 * data.size())
{
}

std::optional<bool>
ShiftRegister::clockOut()
{
    if (position >= totalBits)
        return std::nullopt;
    const size_t byte = position / 8;
    const size_t bit = 7 - position % 8; // MSB first
    const bool value = (cells[byte] >> bit) & 1;
    // Destructive: the bit leaves the register as it shifts out.
    cells[byte] = static_cast<uint8_t>(cells[byte] &
                                       ~(uint8_t{1} << bit));
    ++position;
    return value;
}

std::vector<uint8_t>
ShiftRegister::drain()
{
    std::vector<uint8_t> out;
    out.reserve((remainingBits() + 7) / 8);
    uint8_t current = 0;
    unsigned filled = 0;
    while (auto bit = clockOut()) {
        current = static_cast<uint8_t>((current << 1) |
                                       (*bit ? 1 : 0));
        if (++filled == 8) {
            out.push_back(current);
            current = 0;
            filled = 0;
        }
    }
    if (filled > 0)
        out.push_back(static_cast<uint8_t>(current << (8 - filled)));
    return out;
}

double
ShiftRegister::readoutLatencyNs(double nsPerBit) const
{
    return nsPerBit * static_cast<double>(remainingBits());
}

} // namespace lemons::arch
