/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used by the example applications for key derivation (passcode ->
 * storage key unwrapping) and by HMAC/HKDF. This is a straightforward,
 * portable implementation — constant-time properties and side-channel
 * hardening are out of scope for the simulation.
 */

#ifndef LEMONS_CRYPTO_SHA256_H_
#define LEMONS_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lemons::crypto {

/** A 256-bit digest. */
using Digest = std::array<uint8_t, 32>;

/**
 * Incremental SHA-256 hasher.
 *
 * @code
 *   Sha256 h;
 *   h.update(bytes1);
 *   h.update(bytes2);
 *   Digest d = h.finalize();
 * @endcode
 *
 * finalize() may be called once; the object is then exhausted.
 */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p size bytes from @p data. */
    void update(const uint8_t *data, size_t size);

    /** Absorb a byte vector. */
    void update(const std::vector<uint8_t> &data);

    /** Absorb the bytes of a string (no terminator). */
    void update(const std::string &text);

    /** Pad, finish, and return the digest. @pre not finalized yet. */
    Digest finalize();

  private:
    std::array<uint32_t, 8> state;
    std::array<uint8_t, 64> buffer;
    size_t bufferUsed = 0;
    uint64_t totalBytes = 0;
    bool finalized = false;

    void processBlock(const uint8_t *block);
};

/** One-shot convenience hash of a byte vector. */
Digest sha256(const std::vector<uint8_t> &data);

/** One-shot convenience hash of a string. */
Digest sha256(const std::string &text);

/** Render a digest as lowercase hex. */
std::string toHex(const Digest &digest);

} // namespace lemons::crypto

#endif // LEMONS_CRYPTO_SHA256_H_
