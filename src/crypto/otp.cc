#include "crypto/otp.h"

#include "util/require.h"

namespace lemons::crypto {

std::vector<uint8_t>
otpApply(const std::vector<uint8_t> &message, const std::vector<uint8_t> &pad)
{
    requireArg(pad.size() >= message.size(),
               "otpApply: pad must be at least as long as the message");
    std::vector<uint8_t> out(message.size());
    for (size_t i = 0; i < message.size(); ++i)
        out[i] = message[i] ^ pad[i];
    return out;
}

std::vector<uint8_t>
generatePad(Rng &rng, size_t length)
{
    std::vector<uint8_t> pad(length);
    for (auto &byte : pad)
        byte = static_cast<uint8_t>(rng.nextBelow(256));
    return pad;
}

} // namespace lemons::crypto
