/**
 * @file
 * One-time-pad cipher (paper Section 6).
 *
 * Vernam XOR encryption with perfect secrecy when the key is uniformly
 * random, at least as long as the message, and used exactly once — the
 * usage rules the decision-tree hardware physically enforces.
 */

#ifndef LEMONS_CRYPTO_OTP_H_
#define LEMONS_CRYPTO_OTP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace lemons::crypto {

/**
 * XOR @p message with @p pad. Encryption and decryption are the same
 * operation. @pre pad.size() >= message.size().
 */
std::vector<uint8_t> otpApply(const std::vector<uint8_t> &message,
                              const std::vector<uint8_t> &pad);

/** Generate @p length random pad bytes from @p rng. */
std::vector<uint8_t> generatePad(Rng &rng, size_t length);

} // namespace lemons::crypto

#endif // LEMONS_CRYPTO_OTP_H_
