#include "crypto/hmac.h"

#include <algorithm>
#include <cstddef>

#include "util/require.h"

namespace lemons::crypto {

Digest
hmacSha256(const std::vector<uint8_t> &key,
           const std::vector<uint8_t> &message)
{
    constexpr size_t blockSize = 64;
    std::vector<uint8_t> keyBlock(blockSize, 0);
    if (key.size() > blockSize) {
        const Digest hashed = sha256(key);
        std::copy(hashed.begin(), hashed.end(), keyBlock.begin());
    } else {
        std::copy(key.begin(), key.end(), keyBlock.begin());
    }

    std::vector<uint8_t> inner(blockSize);
    std::vector<uint8_t> outer(blockSize);
    for (size_t i = 0; i < blockSize; ++i) {
        inner[i] = keyBlock[i] ^ 0x36;
        outer[i] = keyBlock[i] ^ 0x5c;
    }

    Sha256 innerHash;
    innerHash.update(inner);
    innerHash.update(message);
    const Digest innerDigest = innerHash.finalize();

    Sha256 outerHash;
    outerHash.update(outer);
    outerHash.update(innerDigest.data(), innerDigest.size());
    return outerHash.finalize();
}

Digest
hkdfExtract(const std::vector<uint8_t> &salt, const std::vector<uint8_t> &ikm)
{
    return hmacSha256(salt, ikm);
}

std::vector<uint8_t>
hkdfExpand(const Digest &prk, const std::string &info, size_t length)
{
    requireArg(length <= 255 * 32, "hkdfExpand: length exceeds 255 blocks");
    const std::vector<uint8_t> prkVec(prk.begin(), prk.end());
    std::vector<uint8_t> output;
    output.reserve(length);
    std::vector<uint8_t> previous;
    uint8_t counter = 1;
    while (output.size() < length) {
        std::vector<uint8_t> block = previous;
        block.insert(block.end(), info.begin(), info.end());
        block.push_back(counter++);
        const Digest t = hmacSha256(prkVec, block);
        previous.assign(t.begin(), t.end());
        const size_t take = std::min(length - output.size(), t.size());
        output.insert(output.end(), t.begin(),
                      t.begin() + static_cast<std::ptrdiff_t>(take));
    }
    return output;
}

std::vector<uint8_t>
deriveKey(const std::vector<uint8_t> &ikm, const std::vector<uint8_t> &salt,
          const std::string &info, size_t length)
{
    return hkdfExpand(hkdfExtract(salt, ikm), info, length);
}

} // namespace lemons::crypto
