#include "crypto/password_model.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace lemons::crypto {

PasswordModel::PasswordModel(double anchorFraction, double anchorGuesses,
                             double gamma)
    : p1(anchorFraction), g1(anchorGuesses), expo(gamma), rejected(0.0)
{
    requireArg(anchorFraction > 0.0 && anchorFraction <= 1.0,
               "PasswordModel: anchor fraction outside (0, 1]");
    requireArg(anchorGuesses >= 1.0,
               "PasswordModel: anchor guesses must be >= 1");
    requireArg(gamma > 0.0, "PasswordModel: gamma must be positive");
}

double
PasswordModel::baseCurve(double guesses) const
{
    if (guesses <= 0.0)
        return 0.0;
    return std::min(1.0, p1 * std::pow(guesses / g1, expo));
}

double
PasswordModel::crackedFraction(double guesses) const
{
    const double base = baseCurve(guesses);
    if (rejected <= 0.0)
        return base;
    return std::clamp((base - rejected) / (1.0 - rejected), 0.0, 1.0);
}

double
PasswordModel::guessesForFraction(double fraction) const
{
    requireArg(fraction > 0.0 && fraction <= 1.0,
               "PasswordModel::guessesForFraction: fraction outside (0, 1]");
    const double target = rejected + fraction * (1.0 - rejected);
    return g1 * std::pow(target / p1, 1.0 / expo);
}

uint64_t
PasswordModel::sampleGuessRank(Rng &rng) const
{
    constexpr double saturation = 4.611686018427388e18; // 2^62
    const double u = rng.nextDoubleOpenLow();
    const double rank = std::ceil(guessesForFraction(u));
    if (!(rank < saturation))
        return uint64_t{1} << 62;
    return static_cast<uint64_t>(std::max(1.0, rank));
}

double
PasswordModel::attackSuccessProbability(uint64_t attempts) const
{
    return crackedFraction(static_cast<double>(attempts));
}

PasswordModel
PasswordModel::withPopularRejected(double rejectedFraction) const
{
    requireArg(rejectedFraction >= 0.0 && rejectedFraction < 1.0,
               "withPopularRejected: fraction outside [0, 1)");
    PasswordModel filtered = *this;
    // Compose filters: rejecting r2 of the survivors of an r1 filter
    // rejects r1 + r2 (1 - r1) of the original population.
    filtered.rejected = rejected + rejectedFraction * (1.0 - rejected);
    return filtered;
}

} // namespace lemons::crypto
