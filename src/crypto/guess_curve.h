/**
 * @file
 * Piecewise empirical password-guessability curve.
 *
 * PasswordModel (password_model.h) is a single power law anchored at
 * the paper's two quoted points. Real guessability curves (Blase Ur
 * et al., USENIX Security '15 — the paper's citation) are piecewise:
 * a steep popular head, a long flattening tail. This class represents
 * an arbitrary monotone curve through (guesses, cracked-fraction)
 * anchors with log-log interpolation, so security analyses can swap
 * in measured curves when available; a synthetic default shaped like
 * the paper's description of 8-character 4-class passwords is
 * provided.
 */

#ifndef LEMONS_CRYPTO_GUESS_CURVE_H_
#define LEMONS_CRYPTO_GUESS_CURVE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace lemons::crypto {

/**
 * Monotone piecewise log-log guessing curve.
 */
class EmpiricalGuessCurve
{
  public:
    /** One measured point: @p fraction of passwords fall within the
     *  attacker's first @p guesses attempts. */
    struct Anchor
    {
        double guesses;  ///< > 0, strictly increasing across anchors
        double fraction; ///< in (0, 1], strictly increasing
    };

    /**
     * @param anchors At least two anchors, strictly increasing in both
     *        coordinates.
     */
    explicit EmpiricalGuessCurve(std::vector<Anchor> anchors);

    /** Fraction of passwords cracked within @p guesses attempts. */
    double crackedFraction(double guesses) const;

    /** Inverse: guesses needed to crack @p fraction. @pre (0, 1]. */
    double guessesForFraction(double fraction) const;

    /**
     * Draw a random user's guess rank (saturated at 2^62 for the
     * unreachable tail beyond the last anchor).
     */
    uint64_t sampleGuessRank(Rng &rng) const;

    /** The anchors. */
    const std::vector<Anchor> &anchors() const { return points; }

    /**
     * Synthetic 8-character 4-class curve consistent with the paper's
     * narrative: a handful of very popular passwords fall almost
     * immediately, ~1 % within 100,000 guesses, ~2 % within 200,000,
     * then a long flattening tail (half the corpus needs ~1e12
     * guesses; full coverage ~1e16, the size of the 8-char space).
     */
    static EmpiricalGuessCurve blaseUr8Char4Class();

  private:
    std::vector<Anchor> points;
};

} // namespace lemons::crypto

#endif // LEMONS_CRYPTO_GUESS_CURVE_H_
