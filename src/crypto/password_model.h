/**
 * @file
 * Empirical password-guessability model (paper Sections 3, 4.1, 4.3.3).
 *
 * The paper sizes its limited-use connection against *professional*
 * cracking that tries passwords in order of empirical popularity,
 * citing Blase Ur et al. (USENIX Security '15): for 8-character
 * 4-class passwords, roughly 1 % of user passwords fall within the
 * attacker's first 100,000 guesses and roughly 2 % within 200,000.
 *
 * We do not have the proprietary password corpora, so per the
 * substitution rule this module provides a synthetic guessing curve
 *   crackedFraction(g) = min(1, p1 * (g / g1)^gamma)
 * anchored exactly at the paper's quoted points (p1 = 1 % at
 * g1 = 100,000; gamma = 1 makes the 2 % @ 200,000 anchor exact). The
 * limited-use connection analysis consumes only this CDF, so anchoring
 * it at the paper's numbers preserves every downstream conclusion.
 */

#ifndef LEMONS_CRYPTO_PASSWORD_MODEL_H_
#define LEMONS_CRYPTO_PASSWORD_MODEL_H_

#include <cstdint>

#include "util/rng.h"

namespace lemons::crypto {

/**
 * Guessing-curve model for professional attacks in popularity order.
 */
class PasswordModel
{
  public:
    /**
     * @param anchorFraction Fraction of passwords cracked at the anchor
     *        guess count (default 1 %).
     * @param anchorGuesses Guess count of the anchor (default 100,000).
     * @param gamma Power-law exponent of the curve (default 1).
     */
    PasswordModel(double anchorFraction = 0.01,
                  double anchorGuesses = 100000.0, double gamma = 1.0);

    /**
     * Fraction of user passwords cracked within @p guesses attempts by
     * an attacker guessing in popularity order (the curve's CDF).
     */
    double crackedFraction(double guesses) const;

    /**
     * Number of guesses needed to reach a target cracked fraction
     * (inverse of crackedFraction). @pre 0 < fraction <= 1.
     */
    double guessesForFraction(double fraction) const;

    /**
     * Draw the guess rank of a random user's password: the number of
     * attempts a popularity-order attacker needs for this user.
     * Extremely unpopular passwords produce astronomically large ranks;
     * the return is saturated at 2^62 to stay in integer range.
     */
    uint64_t sampleGuessRank(Rng &rng) const;

    /**
     * Probability that an attacker holding @p attempts total attempts
     * cracks a random user's password — identical to crackedFraction,
     * named for readability at call sites evaluating attack success.
     */
    double attackSuccessProbability(uint64_t attempts) const;

    /**
     * Rejection filter for §4.3.3 "stronger passcodes": model software
     * that rejects the most popular @p rejectedFraction of passwords at
     * enrollment. Returns a model whose curve is the conditional curve
     * given the password survived rejection (cracked fraction is zero
     * until the attacker exhausts the rejected prefix).
     */
    PasswordModel withPopularRejected(double rejectedFraction) const;

  private:
    double p1;       ///< anchor fraction
    double g1;       ///< anchor guesses
    double expo;     ///< power-law exponent
    double rejected; ///< popular prefix removed at enrollment

    /** Raw curve before the rejection filter. */
    double baseCurve(double guesses) const;
};

} // namespace lemons::crypto

#endif // LEMONS_CRYPTO_PASSWORD_MODEL_H_
