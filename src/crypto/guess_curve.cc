#include "crypto/guess_curve.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace lemons::crypto {

EmpiricalGuessCurve::EmpiricalGuessCurve(std::vector<Anchor> anchors)
    : points(std::move(anchors))
{
    requireArg(points.size() >= 2,
               "EmpiricalGuessCurve: need at least two anchors");
    for (size_t i = 0; i < points.size(); ++i) {
        requireArg(points[i].guesses > 0.0,
                   "EmpiricalGuessCurve: guesses must be positive");
        requireArg(points[i].fraction > 0.0 && points[i].fraction <= 1.0,
                   "EmpiricalGuessCurve: fraction outside (0, 1]");
        if (i > 0) {
            requireArg(points[i].guesses > points[i - 1].guesses,
                       "EmpiricalGuessCurve: guesses must increase");
            requireArg(points[i].fraction > points[i - 1].fraction,
                       "EmpiricalGuessCurve: fraction must increase");
        }
    }
}

double
EmpiricalGuessCurve::crackedFraction(double guesses) const
{
    if (guesses <= 0.0)
        return 0.0;
    if (guesses <= points.front().guesses) {
        // Head extrapolation: scale the first anchor linearly (a
        // popularity-ordered attacker cracks roughly proportionally
        // within the head).
        return points.front().fraction * guesses / points.front().guesses;
    }
    if (guesses >= points.back().guesses)
        return points.back().fraction;

    // Find the bracketing segment and interpolate in log-log space.
    const auto upper = std::upper_bound(
        points.begin(), points.end(), guesses,
        [](double g, const Anchor &a) { return g < a.guesses; });
    const Anchor &hi = *upper;
    const Anchor &lo = *(upper - 1);
    const double t = (std::log(guesses) - std::log(lo.guesses)) /
                     (std::log(hi.guesses) - std::log(lo.guesses));
    const double logF = std::log(lo.fraction) +
                        t * (std::log(hi.fraction) - std::log(lo.fraction));
    return std::exp(logF);
}

double
EmpiricalGuessCurve::guessesForFraction(double fraction) const
{
    requireArg(fraction > 0.0 && fraction <= 1.0,
               "EmpiricalGuessCurve::guessesForFraction: bad fraction");
    if (fraction <= points.front().fraction) {
        return points.front().guesses * fraction /
               points.front().fraction;
    }
    requireArg(fraction <= points.back().fraction,
               "EmpiricalGuessCurve::guessesForFraction: fraction beyond "
               "the curve's coverage");
    if (fraction == points.back().fraction)
        return points.back().guesses;

    const auto upper = std::upper_bound(
        points.begin(), points.end(), fraction,
        [](double f, const Anchor &a) { return f < a.fraction; });
    const Anchor &hi = *upper;
    const Anchor &lo = *(upper - 1);
    const double t = (std::log(fraction) - std::log(lo.fraction)) /
                     (std::log(hi.fraction) - std::log(lo.fraction));
    const double logG = std::log(lo.guesses) +
                        t * (std::log(hi.guesses) - std::log(lo.guesses));
    return std::exp(logG);
}

uint64_t
EmpiricalGuessCurve::sampleGuessRank(Rng &rng) const
{
    constexpr uint64_t saturation = uint64_t{1} << 62;
    const double u = rng.nextDoubleOpenLow();
    if (u > points.back().fraction)
        return saturation; // beyond the curve: effectively unguessable
    const double rank = std::ceil(guessesForFraction(u));
    if (!(rank < static_cast<double>(saturation)))
        return saturation;
    return static_cast<uint64_t>(std::max(1.0, rank));
}

EmpiricalGuessCurve
EmpiricalGuessCurve::blaseUr8Char4Class()
{
    // Synthetic anchors consistent with the paper's Section 4.1
    // narrative (see file comment); the 1e5/1e-2 and 2e5/2e-2 points
    // are the paper's quoted values.
    return EmpiricalGuessCurve({{1e2, 1e-4},
                                {1e3, 1e-3},
                                {1e5, 1e-2},
                                {2e5, 2e-2},
                                {1e8, 1e-1},
                                {1e12, 5e-1},
                                {1e16, 1.0}});
}

} // namespace lemons::crypto
