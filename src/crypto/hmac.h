/**
 * @file
 * HMAC-SHA-256 and HKDF key derivation (RFC 2104 / RFC 5869).
 *
 * The example applications derive the storage-key wrapping key from
 * (passcode, chip secret) with HKDF so that the limited-use connection
 * gates a realistic unlock flow.
 */

#ifndef LEMONS_CRYPTO_HMAC_H_
#define LEMONS_CRYPTO_HMAC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace lemons::crypto {

/** HMAC-SHA-256 of @p message under @p key (any key length). */
Digest hmacSha256(const std::vector<uint8_t> &key,
                  const std::vector<uint8_t> &message);

/** HKDF-Extract: PRK = HMAC(salt, ikm). */
Digest hkdfExtract(const std::vector<uint8_t> &salt,
                   const std::vector<uint8_t> &ikm);

/**
 * HKDF-Expand: derive @p length bytes (<= 255 * 32) from a pseudo-
 * random key and context string.
 */
std::vector<uint8_t> hkdfExpand(const Digest &prk, const std::string &info,
                                size_t length);

/**
 * Convenience: derive @p length key bytes from input keying material,
 * salt, and context label in one call.
 */
std::vector<uint8_t> deriveKey(const std::vector<uint8_t> &ikm,
                               const std::vector<uint8_t> &salt,
                               const std::string &info, size_t length);

} // namespace lemons::crypto

#endif // LEMONS_CRYPTO_HMAC_H_
