#include "lint/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace lemons::lint {

const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "unknown";
}

namespace {

/*
 * The registry's uniqueness contract: every row's id string must be
 * pairwise distinct across the L/V/C/A families. The enumerators
 * already cannot collide (the compiler rejects duplicate names), but
 * the id strings are free-form — this is what CI greps, EXPECT_CODES
 * lists, and suppression files match on, so a typo'd duplicate would
 * silently alias two rules. Checked at compile time.
 */
constexpr const char *kCodeIds[] = {
#define LEMONS_LINT_ID(code, id, severity, title) id,
    LEMONS_CODE_TABLE(LEMONS_LINT_ID)
#undef LEMONS_LINT_ID
};

constexpr bool
sameId(const char *a, const char *b)
{
    size_t i = 0;
    while (a[i] != '\0' && a[i] == b[i])
        ++i;
    return a[i] == b[i];
}

constexpr bool
codeIdsUnique()
{
    constexpr size_t n = sizeof(kCodeIds) / sizeof(kCodeIds[0]);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            if (sameId(kCodeIds[i], kCodeIds[j]))
                return false;
    return true;
}

static_assert(codeIdsUnique(),
              "diagnostic code ids must be unique across the "
              "L/V/C/A families (see lint/code_registry.h)");

} // namespace

const std::vector<CodeInfo> &
codeCatalog()
{
    static const std::vector<CodeInfo> catalog = {
#define LEMONS_LINT_ROW(code, id, severity, title)                           \
    CodeInfo{Code::code, id, Severity::severity, title},
        LEMONS_CODE_TABLE(LEMONS_LINT_ROW)
#undef LEMONS_LINT_ROW
    };
    return catalog;
}

const CodeInfo &
codeInfo(Code code)
{
    // Codes enumerate densely from 0 in table order.
    return codeCatalog()[static_cast<size_t>(code)];
}

std::string
Diagnostic::format() const
{
    std::ostringstream out;
    if (!file.empty())
        out << file << ": ";
    out << "[" << id() << "] " << severityName(severity) << " " << object;
    if (!field.empty())
        out << "." << field;
    out << ": " << message;
    if (!hint.empty())
        out << " (fix: " << hint << ")";
    return out.str();
}

void
Report::add(Code code, std::string object, std::string field,
            std::string message, std::string hint)
{
    Diagnostic d;
    d.code = code;
    d.severity = codeInfo(code).severity;
    d.object = std::move(object);
    d.field = std::move(field);
    d.message = std::move(message);
    d.hint = std::move(hint);
    items.push_back(std::move(d));
}

void
Report::merge(Report other)
{
    items.insert(items.end(),
                 std::make_move_iterator(other.items.begin()),
                 std::make_move_iterator(other.items.end()));
}

void
Report::setFile(const std::string &name)
{
    for (Diagnostic &d : items) {
        if (d.file.empty())
            d.file = name;
    }
}

bool
Report::hasErrors() const
{
    return errorCount() > 0;
}

size_t
Report::errorCount() const
{
    return static_cast<size_t>(
        std::count_if(items.begin(), items.end(), [](const Diagnostic &d) {
            return d.severity == Severity::Error;
        }));
}

size_t
Report::warningCount() const
{
    return static_cast<size_t>(
        std::count_if(items.begin(), items.end(), [](const Diagnostic &d) {
            return d.severity == Severity::Warning;
        }));
}

bool
Report::hasCode(Code code) const
{
    return std::any_of(items.begin(), items.end(), [code](
                                                       const Diagnostic &d) {
        return d.code == code;
    });
}

std::string
Report::format() const
{
    std::string out;
    for (const Diagnostic &d : items) {
        out += d.format();
        out += '\n';
    }
    return out;
}

namespace {

/** Exception message: the first error line (what() must be concise). */
std::string
firstErrorLine(const Report &report)
{
    for (const Diagnostic &d : report.diagnostics()) {
        if (d.severity == Severity::Error)
            return d.format();
    }
    return "lint error";
}

} // namespace

LintError::LintError(Report reported)
    : std::invalid_argument(firstErrorLine(reported)),
      findings(std::move(reported))
{
}

void
throwOnErrors(const Report &report)
{
    if (report.hasErrors())
        throw LintError(report);
}

} // namespace lemons::lint
