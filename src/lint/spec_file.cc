#include "lint/spec_file.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "lint/rules.h"

namespace lemons::lint {

namespace {

/** One key = value entry with its source line (1-based). */
struct Entry
{
    std::string key;
    std::string value;
    size_t line = 0;
};

/** One [section] with its entries, in file order. */
struct Section
{
    std::string name;
    size_t line = 0;
    std::vector<Entry> entries;
};

std::string
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin])) != 0)
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::string
lineRef(size_t line)
{
    return "line " + std::to_string(line);
}

/**
 * Split @p text into sections, reporting syntax problems into
 * @p report. Keys before any section header are L902 errors.
 */
std::vector<Section>
parseSections(std::string_view text, Report &report)
{
    std::vector<Section> sections;
    std::istringstream in{std::string(text)};
    std::string raw;
    size_t lineNo = 0;
    while (std::getline(in, raw)) {
        ++lineNo;
        // Strip comments ('#' or ';' to end of line), then whitespace.
        const size_t comment = raw.find_first_of("#;");
        const std::string line =
            trim(comment == std::string::npos ? raw
                                              : raw.substr(0, comment));
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']' || line.size() < 3) {
                report.add(Code::L902, "spec", "",
                           lineRef(lineNo) + ": malformed section "
                           "header '" + line + "'",
                           "write [design], [structure], [shares], "
                           "[otp], [fault], [mway], [workload], "
                           "[mixture], [fleet], or [cohort]");
                continue;
            }
            Section section;
            section.name = trim(line.substr(1, line.size() - 2));
            section.line = lineNo;
            sections.push_back(std::move(section));
            continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            report.add(Code::L902, "spec", "",
                       lineRef(lineNo) + ": expected 'key = value', "
                       "got '" + line + "'");
            continue;
        }
        if (sections.empty()) {
            report.add(Code::L902, "spec", "",
                       lineRef(lineNo) + ": 'key = value' before any "
                       "[section] header");
            continue;
        }
        Entry entry;
        entry.key = trim(line.substr(0, eq));
        entry.value = trim(line.substr(eq + 1));
        entry.line = lineNo;
        if (entry.key.empty() || entry.value.empty()) {
            report.add(Code::L902, "spec", "",
                       lineRef(lineNo) + ": empty key or value");
            continue;
        }
        sections.back().entries.push_back(std::move(entry));
    }
    return sections;
}

/** Parse a full-consumption floating-point literal; L905 otherwise. */
bool
parseDouble(const Entry &entry, const std::string &object, Report &report,
            double &out)
{
    const char *begin = entry.value.c_str();
    char *end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || !std::isfinite(value)) {
        report.add(Code::L905, object, entry.key,
                   lineRef(entry.line) + ": '" + entry.value +
                       "' is not a finite number");
        return false;
    }
    out = value;
    return true;
}

/** Parse a non-negative integer (scientific notation welcome). */
bool
parseUint(const Entry &entry, const std::string &object, Report &report,
          uint64_t &out)
{
    double value = 0.0;
    if (!parseDouble(entry, object, report, value))
        return false;
    if (value < 0.0 || value > 1.8e19 ||
        value != std::floor(value)) {
        report.add(Code::L905, object, entry.key,
                   lineRef(entry.line) + ": '" + entry.value +
                       "' is not a non-negative integer");
        return false;
    }
    out = static_cast<uint64_t>(value);
    return true;
}

void
unknownKey(const Entry &entry, const std::string &object, Report &report)
{
    report.add(Code::L904, object, entry.key,
               lineRef(entry.line) + ": key '" + entry.key +
                   "' is not recognised in " + object,
               "see the section/key table in lint/spec_file.h");
}

/*
 * Each parse*Section consumes one [section], appending parse
 * diagnostics and then rule diagnostics to its report. Sections whose
 * values parsed (no L905/L904-escalated errors) are appended to the
 * ParsedSpec even when rule checks fail, so the verifier can analyse
 * rule-questionable but well-formed designs.
 */

Report
parseDesignSection(const Section &section, ParsedSpec &spec)
{
    Report report;
    const std::string object = "[design]";
    DesignSection design;
    for (const Entry &entry : section.entries) {
        if (entry.key == "alpha") {
            parseDouble(entry, object, report,
                        design.request.device.alpha);
        } else if (entry.key == "beta") {
            parseDouble(entry, object, report,
                        design.request.device.beta);
        } else if (entry.key == "lab") {
            parseUint(entry, object, report,
                      design.request.legitimateAccessBound);
        } else if (entry.key == "k_fraction") {
            parseDouble(entry, object, report, design.request.kFraction);
        } else if (entry.key == "min_reliability") {
            parseDouble(entry, object, report,
                        design.request.criteria.minReliability);
        } else if (entry.key == "max_residual_reliability") {
            parseDouble(entry, object, report,
                        design.request.criteria.maxResidualReliability);
        } else if (entry.key == "upper_bound_target") {
            uint64_t target = 0;
            if (parseUint(entry, object, report, target))
                design.request.upperBoundTarget = target;
        } else if (entry.key == "guess_space") {
            double space = 0.0;
            if (parseDouble(entry, object, report, space))
                design.options.guessSpace = space;
        } else if (entry.key == "guess_success_ceiling") {
            double ceiling = 0.0;
            if (parseDouble(entry, object, report, ceiling))
                design.options.guessSuccessCeiling = ceiling;
        } else if (entry.key == "max_width") {
            parseUint(entry, object, report, design.request.maxWidth);
        } else if (entry.key == "max_per_copy_bound") {
            parseUint(entry, object, report,
                      design.request.maxPerCopyBound);
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkDesign(design.request, design.options));
    spec.designs.push_back(design);
    return report;
}

Report
parseStructureSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[structure]";
    StructureSpec spec;
    for (const Entry &entry : section.entries) {
        if (entry.key == "kind") {
            if (entry.value == "series") {
                spec.kind = StructureSpec::Kind::Series;
            } else if (entry.value == "parallel") {
                spec.kind = StructureSpec::Kind::Parallel;
            } else {
                report.add(Code::L905, object, entry.key,
                           lineRef(entry.line) + ": kind must be "
                           "'series' or 'parallel', got '" +
                               entry.value + "'");
            }
        } else if (entry.key == "n") {
            parseUint(entry, object, report, spec.n);
        } else if (entry.key == "k") {
            parseUint(entry, object, report, spec.k);
        } else if (entry.key == "alpha") {
            parseDouble(entry, object, report, spec.device.alpha);
        } else if (entry.key == "beta") {
            parseDouble(entry, object, report, spec.device.beta);
        } else if (entry.key == "access_bound") {
            uint64_t bound = 0;
            if (parseUint(entry, object, report, bound))
                spec.accessBound = bound;
        } else if (entry.key == "copies") {
            uint64_t copies = 0;
            if (parseUint(entry, object, report, copies))
                spec.copies = copies;
        } else if (entry.key == "min_reliability") {
            double floor = 0.0;
            if (parseDouble(entry, object, report, floor))
                spec.minReliability = floor;
        } else if (entry.key == "max_residual") {
            double ceiling = 0.0;
            if (parseDouble(entry, object, report, ceiling))
                spec.maxResidual = ceiling;
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkStructure(spec));
    parsed.structures.push_back(spec);
    return report;
}

Report
parseSharesSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[shares]";
    ShareSpec spec;
    for (const Entry &entry : section.entries) {
        if (entry.key == "n") {
            parseUint(entry, object, report, spec.shares);
        } else if (entry.key == "k") {
            parseUint(entry, object, report, spec.threshold);
        } else if (entry.key == "field_bits") {
            uint64_t bits = 0;
            if (parseUint(entry, object, report, bits))
                spec.fieldBits = static_cast<unsigned>(
                    std::min<uint64_t>(bits, 1u << 16));
        } else if (entry.key == "unguarded") {
            parseUint(entry, object, report, spec.unguarded);
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkShares(spec));
    parsed.shares.push_back(spec);
    return report;
}

Report
parseOtpSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[otp]";
    OtpSection otp;
    for (const Entry &entry : section.entries) {
        if (entry.key == "height") {
            uint64_t height = 0;
            if (parseUint(entry, object, report, height))
                otp.params.height = static_cast<unsigned>(
                    std::min<uint64_t>(height, 1u << 16));
        } else if (entry.key == "copies") {
            parseUint(entry, object, report, otp.params.copies);
        } else if (entry.key == "threshold") {
            parseUint(entry, object, report, otp.params.threshold);
        } else if (entry.key == "alpha") {
            parseDouble(entry, object, report, otp.params.device.alpha);
        } else if (entry.key == "beta") {
            parseDouble(entry, object, report, otp.params.device.beta);
        } else if (entry.key == "receiver_floor") {
            double floor = 0.0;
            if (parseDouble(entry, object, report, floor))
                otp.receiverFloor = floor;
        } else if (entry.key == "adversary_ceiling") {
            double ceiling = 0.0;
            if (parseDouble(entry, object, report, ceiling))
                otp.adversaryCeiling = ceiling;
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkOtp(otp.params));
    parsed.otps.push_back(otp);
    return report;
}

Report
parseFaultSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[fault]";
    fault::FaultPlan plan;
    for (const Entry &entry : section.entries) {
        if (entry.key == "stuck_closed_rate") {
            parseDouble(entry, object, report, plan.stuckClosedRate);
        } else if (entry.key == "infant_fraction") {
            parseDouble(entry, object, report, plan.infantFraction);
        } else if (entry.key == "infant_scale_fraction") {
            parseDouble(entry, object, report, plan.infantScaleFraction);
        } else if (entry.key == "infant_shape") {
            parseDouble(entry, object, report, plan.infantShape);
        } else if (entry.key == "glitch_rate") {
            parseDouble(entry, object, report, plan.glitchRate);
        } else if (entry.key == "alpha_drift_sigma") {
            parseDouble(entry, object, report, plan.alphaDriftSigma);
        } else if (entry.key == "beta_drift_sigma") {
            parseDouble(entry, object, report, plan.betaDriftSigma);
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkFaultPlan(plan));
    parsed.faults.push_back(plan);
    return report;
}

Report
parseMwaySection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[mway]";
    MwaySpec spec;
    for (const Entry &entry : section.entries) {
        if (entry.key == "m") {
            parseUint(entry, object, report, spec.m);
        } else if (entry.key == "module_devices") {
            uint64_t devices = 0;
            if (parseUint(entry, object, report, devices))
                spec.moduleDevices = devices;
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkMway(spec));
    parsed.mways.push_back(spec);
    return report;
}

Report
parseWorkloadSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[workload]";
    WorkloadSpec spec;
    for (const Entry &entry : section.entries) {
        if (entry.key == "mean_per_day") {
            parseDouble(entry, object, report, spec.meanPerDay);
        } else if (entry.key == "burst_probability") {
            parseDouble(entry, object, report, spec.burstProbability);
        } else if (entry.key == "burst_multiplier") {
            parseDouble(entry, object, report, spec.burstMultiplier);
        } else if (entry.key == "budget") {
            uint64_t budget = 0;
            if (parseUint(entry, object, report, budget))
                spec.budgetAccesses = budget;
        } else if (entry.key == "horizon_days") {
            uint64_t horizon = 0;
            if (parseUint(entry, object, report, horizon))
                spec.horizonDays = horizon;
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkWorkload(spec));
    parsed.workloads.push_back(spec);
    return report;
}

Report
parseMixtureSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[mixture]";
    MixtureSpec spec;
    for (const Entry &entry : section.entries) {
        if (entry.key == "infant_fraction") {
            parseDouble(entry, object, report, spec.infantFraction);
        } else if (entry.key == "infant_alpha") {
            parseDouble(entry, object, report, spec.infant.alpha);
        } else if (entry.key == "infant_beta") {
            parseDouble(entry, object, report, spec.infant.beta);
        } else if (entry.key == "main_alpha") {
            parseDouble(entry, object, report, spec.main.alpha);
        } else if (entry.key == "main_beta") {
            parseDouble(entry, object, report, spec.main.beta);
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    report.merge(checkMixture(spec));
    parsed.mixtures.push_back(spec);
    return report;
}

Report
parseFleetSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[fleet]";
    FleetSpec spec;
    spec.cohorts.clear(); // cohorts come from [cohort] sections
    for (const Entry &entry : section.entries) {
        if (entry.key == "devices") {
            parseUint(entry, object, report, spec.devices);
        } else if (entry.key == "seed") {
            parseUint(entry, object, report, spec.seed);
        } else if (entry.key == "chunk_size") {
            parseUint(entry, object, report, spec.chunkSize);
        } else if (entry.key == "checkpoint_interval") {
            parseUint(entry, object, report,
                      spec.checkpointEveryChunks);
        } else if (entry.key == "horizon_days") {
            parseUint(entry, object, report, spec.horizonDays);
        } else if (entry.key == "premature_days") {
            parseUint(entry, object, report, spec.prematureDays);
        } else if (entry.key == "premature_tolerance") {
            double tolerance = 0.0;
            if (parseDouble(entry, object, report, tolerance))
                spec.prematureTolerance = tolerance;
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    // Cross-cohort rules (checkFleet) run after the whole file has
    // been parsed; see parseSpec.
    parsed.fleets.push_back(std::move(spec));
    return report;
}

Report
parseCohortSection(const Section &section, ParsedSpec &parsed)
{
    Report report;
    const std::string object = "[cohort]";
    if (parsed.fleets.empty()) {
        report.add(Code::L902, "spec", "",
                   lineRef(section.line) + ": [cohort] before any "
                   "[fleet] section",
                   "declare the [fleet] the cohort belongs to first");
        return report;
    }
    FleetCohortSpec spec;
    for (const Entry &entry : section.entries) {
        if (entry.key == "name") {
            spec.name = entry.value;
        } else if (entry.key == "weight") {
            parseDouble(entry, object, report, spec.weight);
        } else if (entry.key == "stagger_days") {
            parseDouble(entry, object, report, spec.staggerDays);
        } else if (entry.key == "access_bound") {
            parseUint(entry, object, report, spec.accessBound);
        } else if (entry.key == "mean_per_day") {
            parseDouble(entry, object, report, spec.usage.meanPerDay);
        } else if (entry.key == "burst_probability") {
            parseDouble(entry, object, report,
                        spec.usage.burstProbability);
        } else if (entry.key == "burst_multiplier") {
            parseDouble(entry, object, report,
                        spec.usage.burstMultiplier);
        } else if (entry.key == "infant_fraction") {
            parseDouble(entry, object, report,
                        spec.lifetime.infantFraction);
        } else if (entry.key == "infant_alpha") {
            parseDouble(entry, object, report,
                        spec.lifetime.infant.alpha);
        } else if (entry.key == "infant_beta") {
            parseDouble(entry, object, report,
                        spec.lifetime.infant.beta);
        } else if (entry.key == "main_alpha") {
            parseDouble(entry, object, report, spec.lifetime.main.alpha);
        } else if (entry.key == "main_beta") {
            parseDouble(entry, object, report, spec.lifetime.main.beta);
        } else if (entry.key == "reprovision_day") {
            double day = 0.0;
            if (parseDouble(entry, object, report, day))
                spec.reprovisionDay = day;
        } else if (entry.key == "reprovision_scale") {
            parseDouble(entry, object, report,
                        spec.reprovisionUsageScale);
        } else {
            unknownKey(entry, object, report);
        }
    }
    if (report.hasErrors())
        return report;
    parsed.fleets.back().cohorts.push_back(std::move(spec));
    return report;
}

} // namespace

ParsedSpec
parseSpec(std::string_view text, const std::string &filename,
          Report &report)
{
    ParsedSpec parsed;
    Report local;
    const std::vector<Section> sections = parseSections(text, local);
    if (sections.empty() && local.empty()) {
        local.add(Code::L906, "spec", "",
                  "the file declares no sections; nothing was checked",
                  "add a [design], [structure], [shares], [otp], "
                  "[fault], [mway], [workload], [mixture], or [fleet] "
                  "section");
    }
    using Dispatcher = Report (*)(const Section &, ParsedSpec &);
    static const std::map<std::string, Dispatcher> dispatch = {
        {"design", &parseDesignSection},
        {"structure", &parseStructureSection},
        {"shares", &parseSharesSection},
        {"otp", &parseOtpSection},
        {"fault", &parseFaultSection},
        {"mway", &parseMwaySection},
        {"workload", &parseWorkloadSection},
        {"mixture", &parseMixtureSection},
        {"fleet", &parseFleetSection},
        {"cohort", &parseCohortSection},
    };
    for (const Section &section : sections) {
        const auto found = dispatch.find(section.name);
        if (found == dispatch.end()) {
            local.add(Code::L903, "spec", "",
                      lineRef(section.line) + ": unknown section [" +
                          section.name + "]",
                      "known sections: design, structure, shares, "
                      "otp, fault, mway, workload, mixture, fleet, "
                      "cohort");
            continue;
        }
        local.merge(found->second(section, parsed));
    }
    // Fleet rules are cross-section (cohort weights must partition the
    // population), so they run only after every [cohort] has attached.
    for (const FleetSpec &fleet : parsed.fleets)
        local.merge(checkFleet(fleet));
    local.setFile(filename);
    report.merge(std::move(local));
    return parsed;
}

Report
lintText(std::string_view text, const std::string &filename)
{
    Report report;
    (void)parseSpec(text, filename, report);
    return report;
}

Report
lintFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        Report report;
        report.add(Code::L901, "spec", "", "cannot open '" + path + "'");
        report.setFile(path);
        return report;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintText(buffer.str(), path);
}

ParsedSpec
parseSpecFile(const std::string &path, Report &report)
{
    std::ifstream in(path);
    if (!in) {
        Report local;
        local.add(Code::L901, "spec", "", "cannot open '" + path + "'");
        local.setFile(path);
        report.merge(std::move(local));
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseSpec(buffer.str(), path, report);
}

} // namespace lemons::lint
