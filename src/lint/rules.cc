#include "lint/rules.h"

#include <cmath>
#include <sstream>
#include <string>

namespace lemons::lint {

namespace {

/** Shortest round-trip rendering of a number for messages. */
std::string
num(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

std::string
num(uint64_t v)
{
    return std::to_string(v);
}

bool
positiveFinite(double v)
{
    return std::isfinite(v) && v > 0.0;
}

/** Device-spec errors shared by several passes. */
void
checkDeviceInto(Report &report, Code alphaCode, Code betaCode,
                const std::string &object, const wearout::DeviceSpec &device)
{
    if (!positiveFinite(device.alpha)) {
        report.add(alphaCode, object, "device.alpha",
                   "alpha is " + num(device.alpha) +
                       "; the Weibull scale must be positive and finite",
                   "use the mean device lifetime in cycles, e.g. 10");
    }
    if (!positiveFinite(device.beta)) {
        report.add(betaCode, object, "device.beta",
                   "beta is " + num(device.beta) +
                       "; the Weibull shape must be positive and finite",
                   "use the lot's fitted shape, e.g. 12");
    }
}

/** Plausible NEMS-contact alpha range for L012/L307 plausibility. */
constexpr double minPlausibleAlpha = 1.0;
constexpr double maxPlausibleAlpha = 1e9;

} // namespace

Report
checkDesign(const core::DesignRequest &request,
            const DesignLintOptions &options)
{
    Report report;
    const std::string object = "DesignRequest";
    const auto &criteria = request.criteria;

    checkDeviceInto(report, Code::L001, Code::L002, object, request.device);
    if (request.legitimateAccessBound < 1) {
        report.add(Code::L003, object, "legitimateAccessBound",
                   "the LAB is 0; the design must serve at least one "
                   "legitimate access",
                   "size the LAB from the usage profile, e.g. 91250 for "
                   "10 accesses/day over 25 years");
    }
    if (!(request.kFraction >= 0.0 && request.kFraction < 1.0)) {
        report.add(Code::L004, object, "kFraction",
                   "kFraction is " + num(request.kFraction) +
                       "; the encoding fraction must lie in [0, 1)",
                   "0 disables encoding; the paper uses 0.1-0.3");
    }
    const bool minOk =
        criteria.minReliability > 0.0 && criteria.minReliability < 1.0;
    if (!minOk) {
        report.add(Code::L005, object, "criteria.minReliability",
                   "minReliability is " + num(criteria.minReliability) +
                       "; it must lie strictly inside (0, 1)");
    }
    const bool residualOk = criteria.maxResidualReliability > 0.0 &&
                            criteria.maxResidualReliability < 1.0;
    if (!residualOk) {
        report.add(Code::L006, object, "criteria.maxResidualReliability",
                   "maxResidualReliability is " +
                       num(criteria.maxResidualReliability) +
                       "; it must lie strictly inside (0, 1)");
    }
    if (minOk && residualOk &&
        criteria.maxResidualReliability >= criteria.minReliability) {
        report.add(Code::L007, object, "criteria",
                   "maxResidualReliability (" +
                       num(criteria.maxResidualReliability) +
                       ") does not stay below minReliability (" +
                       num(criteria.minReliability) +
                       "): copies would count as dead while still "
                       "serving legitimate users",
                   "keep the residual ceiling well below the "
                   "reliability floor, e.g. 0.01 vs 0.99");
    }
    if (request.upperBoundTarget &&
        *request.upperBoundTarget <= request.legitimateAccessBound) {
        report.add(Code::L008, object, "upperBoundTarget",
                   "upper-bound target " + num(*request.upperBoundTarget) +
                       " does not exceed the LAB " +
                       num(request.legitimateAccessBound),
                   "drop the target or raise it above the LAB");
    }
    if (request.maxWidth < 1) {
        report.add(Code::L009, object, "maxWidth",
                   "maxWidth is 0; the solver needs room for at least "
                   "one device per structure");
    }
    if (options.guessSuccessCeiling &&
        !(*options.guessSuccessCeiling > 0.0 &&
          *options.guessSuccessCeiling < 1.0)) {
        report.add(Code::L014, object, "guessSuccessCeiling",
                   "guess-success ceiling " +
                       num(*options.guessSuccessCeiling) +
                       " is not a probability in (0, 1)",
                   "declare a ceiling strictly between 0 and 1");
    }
    if (report.hasErrors())
        return report;

    // Security-feasibility warnings (only meaningful on a sane spec).
    if (options.guessSpace) {
        const double budget =
            request.upperBoundTarget
                ? static_cast<double>(*request.upperBoundTarget)
                : static_cast<double>(request.legitimateAccessBound);
        if (budget >= *options.guessSpace) {
            report.add(Code::L010, object, "legitimateAccessBound",
                       "the hardware concedes up to " + num(budget) +
                           " attempts but the guess space holds only " +
                           num(*options.guessSpace) +
                           " candidates; an attacker inside the access "
                           "bound can exhaust the passcode space",
                       "use a larger passcode space or a smaller "
                       "access bound");
        }
    }
    if (request.device.beta <= 1.0) {
        report.add(Code::L011, object, "device.beta",
                   "beta = " + num(request.device.beta) +
                       " has non-increasing wearout hazard; limited-use "
                       "connections need a sharp knee (the paper's gate "
                       "lots fit beta in 7-13)",
                   "pick a device lot with beta well above 1");
    }
    if (request.device.alpha < minPlausibleAlpha ||
        request.device.alpha > maxPlausibleAlpha) {
        report.add(Code::L012, object, "device.alpha",
                   "alpha = " + num(request.device.alpha) +
                       " cycles is outside the plausible NEMS-contact "
                       "range [" + num(minPlausibleAlpha) + ", " +
                       num(maxPlausibleAlpha) + "]");
    }
    // L013: even the easiest configuration (one access per copy, plain
    // 1-out-of-n) cannot reach the reliability floor within maxWidth.
    // R(1) of a width-n structure is 1 - F(1)^n, so the minimal width
    // is log(1 - minReliability) / log F(1).
    const double logF1 = std::log1p(
        -std::exp(-std::pow(1.0 / request.device.alpha,
                            request.device.beta)));
    if (logF1 < 0.0) { // F(1) < 1; otherwise devices die on access one
        const double neededWidth =
            std::log1p(-criteria.minReliability) / logF1;
        if (neededWidth > static_cast<double>(request.maxWidth)) {
            report.add(Code::L013, object, "maxWidth",
                       "meeting minReliability " +
                           num(criteria.minReliability) +
                           " at a single access already needs width " +
                           num(std::ceil(neededWidth)) +
                           " > maxWidth " + num(request.maxWidth) +
                           "; no (t, n) within the caps is feasible",
                       "raise maxWidth or use a longer-lived device");
        }
    } else if (logF1 == 0.0) {
        // F(1) == 1: every device dies on its first access; no width
        // can serve even one legitimate access reliably.
        report.add(Code::L013, object, "device.alpha",
                   "devices fail on their first access with "
                   "certainty; no structure width can meet the "
                   "reliability floor",
                   "raise alpha or lower beta");
    }
    return report;
}

Report
checkStructure(const StructureSpec &spec)
{
    Report report;
    const bool series = spec.kind == StructureSpec::Kind::Series;
    const std::string object =
        series ? "SeriesChain" : "ParallelStructure";

    if (spec.n < 1) {
        report.add(Code::L201, object, "n",
                   "the structure is empty; it needs at least one device");
    }
    if (!series && spec.n >= 1 && !(spec.k >= 1 && spec.k <= spec.n)) {
        report.add(Code::L202, object, "k",
                   "k = " + num(spec.k) + " outside [1, n = " +
                       num(spec.n) + "]",
                   "k = 1 is the plain parallel structure; k > 1 "
                   "needs matching redundant encoding");
    }
    checkDeviceInto(report, Code::L203, Code::L203, object, spec.device);
    if (report.hasErrors())
        return report;

    if (series && spec.n > 1'000'000) {
        report.add(Code::L204, object, "n",
                   "a series chain of " + num(spec.n) +
                       " devices; chain cost grows as y^beta, which is "
                       "why the paper discards chaining (Section 4.1.2)",
                   "use parallel structures consumed serially instead");
    }
    if (!series && spec.n > 50'000'000) {
        report.add(Code::L205, object, "n",
                   "width " + num(spec.n) + " exceeds the default "
                       "die-area plausibility cap of 5e7 devices");
    }
    if (!series && spec.k > 1 && spec.k * 10 > spec.n * 9) {
        report.add(Code::L206, object, "k",
                   "k = " + num(spec.k) + " of n = " + num(spec.n) +
                       " leaves under 10% share-loss margin before the "
                       "secret is destroyed",
                   "the paper's encodings use k/n of 0.1-0.3");
    }
    // Optional verification criteria reuse the design-criteria codes:
    // the rule is the same whether the numbers arrive via a
    // DesignRequest or an annotated structure.
    const bool minOk = !spec.minReliability ||
                       (*spec.minReliability > 0.0 &&
                        *spec.minReliability < 1.0);
    if (!minOk) {
        report.add(Code::L005, object, "minReliability",
                   "minReliability is " + num(*spec.minReliability) +
                       "; it must lie strictly inside (0, 1)");
    }
    const bool residualOk = !spec.maxResidual ||
                            (*spec.maxResidual > 0.0 &&
                             *spec.maxResidual < 1.0);
    if (!residualOk) {
        report.add(Code::L006, object, "maxResidual",
                   "maxResidual is " + num(*spec.maxResidual) +
                       "; it must lie strictly inside (0, 1)");
    }
    if (minOk && residualOk && spec.minReliability && spec.maxResidual &&
        *spec.maxResidual >= *spec.minReliability) {
        report.add(Code::L007, object, "minReliability/maxResidual",
                   "maxResidual (" + num(*spec.maxResidual) +
                       ") does not stay below minReliability (" +
                       num(*spec.minReliability) + ")",
                   "keep the residual ceiling well below the "
                   "reliability floor, e.g. 0.01 vs 0.99");
    }
    return report;
}

Report
checkShares(const ShareSpec &spec)
{
    Report report;
    const std::string object = "ShareScheme";

    if (spec.fieldBits != 8 && spec.fieldBits != 16) {
        report.add(Code::L105, object, "fieldBits",
                   "field width " + num(uint64_t{spec.fieldBits}) +
                       " bits is unsupported",
                   "use 8 (GF(256) Shamir) or 16 (GF(65536) wide "
                   "scheme)");
    }
    if (spec.threshold < 1) {
        report.add(Code::L101, object, "threshold",
                   "threshold 0 would reconstruct the secret from "
                   "nothing");
    }
    if (spec.threshold > spec.shares) {
        report.add(Code::L102, object, "threshold",
                   "threshold " + num(spec.threshold) +
                       " exceeds the share count " + num(spec.shares) +
                       "; the secret could never be reconstructed");
    }
    if (spec.fieldBits == 8 || spec.fieldBits == 16) {
        const uint64_t capacity =
            (uint64_t{1} << spec.fieldBits) - 1;
        if (spec.shares > capacity) {
            report.add(Code::L103, object, "shares",
                       num(spec.shares) + " shares exceed the " +
                           num(capacity) + " distinct evaluation points "
                           "of GF(2^" + num(uint64_t{spec.fieldBits}) +
                           ")",
                       spec.fieldBits == 8
                           ? "use the 16-bit wide scheme for wider "
                             "structures"
                           : "split the structure into multiple "
                             "schemes");
        }
    }
    if (report.hasErrors())
        return report;

    if (spec.shares == spec.threshold && spec.shares > 1) {
        report.add(Code::L104, object, "threshold",
                   "k == n == " + num(spec.shares) +
                       ": a single worn-out share destroys the secret, "
                       "so wearout provides no degradation window",
                   "issue spare shares (n > k)");
    }
    return report;
}

Report
checkOtp(const core::OtpParams &params)
{
    Report report;
    const std::string object = "OtpParams";

    if (params.height < 1 || params.height > 20) {
        report.add(Code::L301, object, "height",
                   "height " + num(uint64_t{params.height}) +
                       " outside [1, 20]",
                   "the paper evaluates H = 4-16");
    }
    if (params.copies < 1) {
        report.add(Code::L303, object, "copies",
                   "a pad needs at least one tree copy");
    }
    if (params.copies >= 1 &&
        !(params.threshold >= 1 && params.threshold <= params.copies)) {
        report.add(Code::L304, object, "threshold",
                   "threshold " + num(params.threshold) +
                       " outside [1, copies = " + num(params.copies) +
                       "]");
    }
    if (params.copies > 255) {
        report.add(Code::L305, object, "copies",
                   num(params.copies) + " copies exceed the 255 "
                       "evaluation points of the GF(256) Shamir split "
                       "behind each pad key",
                   "use at most 255 copies per pad");
    }
    checkDeviceInto(report, Code::L306, Code::L306, object, params.device);
    if (report.hasErrors())
        return report;

    if (params.height < 4) {
        report.add(Code::L302, object, "height",
                   "height " + num(uint64_t{params.height}) + " gives " +
                       num(uint64_t{1} << (params.height - 1)) +
                       " paths, so a random-path adversary guesses "
                       "right too often (Fig 8b needs H >= 8 for "
                       "negligible success)",
                   "raise the tree height");
    }
    if (params.device.alpha > 1000.0) {
        report.add(Code::L307, object, "device.alpha",
                   "alpha = " + num(params.device.alpha) +
                       " cycles: pad trees survive far past their one "
                       "legitimate traversal, opening a replay/clone "
                       "window",
                   "one-time pads want near-one-shot switches "
                   "(alpha of a few cycles)");
    }
    return report;
}

Report
checkFaultPlan(const fault::FaultPlan &plan)
{
    Report report;
    const std::string object = "FaultPlan";
    const auto inUnit = [](double v) { return v >= 0.0 && v <= 1.0; };

    if (!inUnit(plan.stuckClosedRate)) {
        report.add(Code::L401, object, "stuckClosedRate",
                   "rate " + num(plan.stuckClosedRate) +
                       " outside [0, 1]");
    }
    if (!inUnit(plan.infantFraction)) {
        report.add(Code::L402, object, "infantFraction",
                   "fraction " + num(plan.infantFraction) +
                       " outside [0, 1]");
    }
    if (!(plan.infantScaleFraction > 0.0)) {
        report.add(Code::L403, object, "infantScaleFraction",
                   "scale fraction " + num(plan.infantScaleFraction) +
                       " must be positive");
    }
    if (!(plan.infantShape > 0.0)) {
        report.add(Code::L404, object, "infantShape",
                   "shape " + num(plan.infantShape) +
                       " must be positive");
    }
    if (!inUnit(plan.glitchRate)) {
        report.add(Code::L405, object, "glitchRate",
                   "rate " + num(plan.glitchRate) + " outside [0, 1]");
    }
    if (plan.alphaDriftSigma < 0.0 || plan.betaDriftSigma < 0.0) {
        report.add(Code::L406, object, "alphaDriftSigma/betaDriftSigma",
                   "lognormal sigmas must be non-negative");
    }
    if (report.hasErrors())
        return report;

    if (plan.stuckClosedRate > 0.05) {
        report.add(Code::L407, object, "stuckClosedRate",
                   num(plan.stuckClosedRate * 100.0) +
                       "% of devices never wear out; the shares behind "
                       "them stay readable forever and the attack "
                       "bound collapses",
                   "screen stuck-closed parts at fabrication or model "
                   "a realistic rate (<= 5%)");
    }
    if (plan.infantFraction > 0.0 && plan.infantScaleFraction >= 1.0) {
        report.add(Code::L408, object, "infantScaleFraction",
                   "infant scale " + num(plan.infantScaleFraction) +
                       " x alpha is not early-life; the leg is "
                       "indistinguishable from designed wearout");
    }
    if (plan.infantFraction > 0.0 && plan.infantShape >= 1.0) {
        report.add(Code::L409, object, "infantShape",
                   "infant shape " + num(plan.infantShape) +
                       " >= 1 gives a non-decreasing hazard, which is "
                       "not an infant-mortality mechanism");
    }
    if (plan.glitchRate > 0.5) {
        report.add(Code::L410, object, "glitchRate",
                   "more than half of all actuations misfire; "
                   "legitimate availability collapses");
    }
    if (plan.alphaDriftSigma > 1.0 || plan.betaDriftSigma > 1.0) {
        report.add(Code::L411, object, "alphaDriftSigma/betaDriftSigma",
                   "a lognormal sigma above 1 means order-of-magnitude "
                   "parameter uncertainty; calibrate the lot first");
    }
    return report;
}

Report
checkMway(const MwaySpec &spec)
{
    Report report;
    const std::string object = "MWayReplication";

    if (spec.m < 1) {
        report.add(Code::L501, object, "m",
                   "replication factor 0; at least one module is "
                   "required");
    }
    if (spec.moduleFeasible && !*spec.moduleFeasible) {
        report.add(Code::L503, object, "design",
                   "the per-module design did not solve; replicating "
                   "an infeasible module is still infeasible");
    }
    if (report.hasErrors())
        return report;

    if (spec.m > 10'000) {
        report.add(Code::L502, object, "m",
                   "m = " + num(spec.m) + " modules each need their own "
                       "passcode and a re-wrap migration; the paper's "
                       "heavy-use example is m = 10");
    }
    if (spec.moduleDevices) {
        const double total = static_cast<double>(spec.m) *
                             static_cast<double>(*spec.moduleDevices);
        if (total > 1e9) {
            report.add(Code::L504, object, "m",
                       num(spec.m) + " modules x " +
                           num(*spec.moduleDevices) +
                           " devices = " + num(total) +
                           " total devices, beyond fabrication "
                           "plausibility");
        }
    }
    return report;
}

Report
checkWorkload(const WorkloadSpec &spec)
{
    Report report;
    const std::string object = "UsageProfile";

    if (!positiveFinite(spec.meanPerDay)) {
        report.add(Code::L601, object, "meanPerDay",
                   "mean accesses per day is " + num(spec.meanPerDay) +
                       "; the Poisson rate must be positive and finite",
                   "the paper's smartphone assumption is 50/day");
    }
    if (!(spec.burstProbability >= 0.0 && spec.burstProbability <= 1.0)) {
        report.add(Code::L602, object, "burstProbability",
                   "burst probability " + num(spec.burstProbability) +
                       " outside [0, 1]");
    }
    if (!(std::isfinite(spec.burstMultiplier) &&
          spec.burstMultiplier >= 1.0)) {
        report.add(Code::L603, object, "burstMultiplier",
                   "burst multiplier " + num(spec.burstMultiplier) +
                       " must be at least 1 and finite",
                   "a multiplier of 1 disables bursts");
    }
    if (report.hasErrors())
        return report;

    const double effectiveMean =
        spec.meanPerDay *
        (1.0 + spec.burstProbability * (spec.burstMultiplier - 1.0));
    if (spec.budgetAccesses && spec.horizonDays) {
        const double demand =
            effectiveMean * static_cast<double>(*spec.horizonDays);
        if (static_cast<double>(*spec.budgetAccesses) < demand) {
            report.add(Code::L604, object, "budgetAccesses",
                       "the budget of " + num(*spec.budgetAccesses) +
                           " accesses is below the expected demand of " +
                           num(demand) + " over " + num(*spec.horizonDays) +
                           " days; the device exhausts before the "
                           "horizon more often than not",
                       "raise the budget (or replicate M-way) or "
                       "shorten the horizon");
        }
    }
    if (spec.burstProbability > 0.0 && spec.burstMultiplier > 1.0) {
        const double burstShare =
            spec.burstProbability * spec.burstMultiplier /
            (1.0 - spec.burstProbability +
             spec.burstProbability * spec.burstMultiplier);
        if (burstShare > 0.5) {
            report.add(Code::L605, object, "burstMultiplier",
                       "burst days carry " + num(burstShare * 100.0) +
                           "% of all accesses; the profile is no longer "
                           "a perturbed daily rate",
                       "model the bursty application as its own "
                       "profile instead");
        }
    }
    return report;
}

Report
checkMixture(const MixtureSpec &spec)
{
    Report report;
    const std::string object = "BathtubModel";

    if (!(spec.infantFraction >= 0.0 && spec.infantFraction <= 1.0)) {
        report.add(Code::L701, object, "infantFraction",
                   "mixture weight " + num(spec.infantFraction) +
                       " outside [0, 1]");
    }
    checkDeviceInto(report, Code::L702, Code::L702, object, spec.infant);
    checkDeviceInto(report, Code::L702, Code::L702, object, spec.main);
    if (report.hasErrors())
        return report;

    if (spec.infantFraction > 0.0 && spec.infant.beta >= 1.0) {
        report.add(Code::L703, object, "infant.beta",
                   "infant shape " + num(spec.infant.beta) +
                       " >= 1 gives a non-decreasing hazard, which is "
                       "not an infant-mortality mechanism",
                   "early-life legs use shape < 1 (e.g. 0.8)");
    }
    if (spec.infantFraction > 0.0 &&
        spec.infant.alpha >= spec.main.alpha) {
        report.add(Code::L704, object, "infant.alpha",
                   "infant scale " + num(spec.infant.alpha) +
                       " is not below the main scale " +
                       num(spec.main.alpha) + "; the leg is "
                       "indistinguishable from designed wearout",
                   "early-life scales sit at ~10% of the main alpha");
    }
    return report;
}

Report
checkFleet(const FleetSpec &spec)
{
    Report report;
    const std::string object = "FleetSpec";

    if (spec.devices < 1)
        report.add(Code::L801, object, "devices",
                   "a fleet needs at least one device");
    if (spec.horizonDays < 1)
        report.add(Code::L802, object, "horizonDays",
                   "a campaign needs at least a one-day horizon");
    if (spec.checkpointEveryChunks < 1)
        report.add(Code::L803, object, "checkpointEveryChunks",
                   "checkpoint interval " +
                       std::to_string(spec.checkpointEveryChunks) +
                       " disables crash recovery",
                   "use a positive chunk count (e.g. 8)");
    if (spec.cohorts.empty()) {
        report.add(Code::L808, object, "cohorts",
                   "the fleet declares no cohorts; the campaign "
                   "simulates nothing",
                   "add at least one [cohort] section");
        return report;
    }

    double weightSum = 0.0;
    for (size_t i = 0; i < spec.cohorts.size(); ++i) {
        const FleetCohortSpec &cohort = spec.cohorts[i];
        const std::string field =
            "cohorts[" + std::to_string(i) + "] '" + cohort.name + "'";
        if (!(cohort.weight > 0.0 && cohort.weight <= 1.0)) {
            report.add(Code::L804, object, field,
                       "weight " + num(cohort.weight) +
                           " outside (0, 1]");
        } else {
            weightSum += cohort.weight;
        }
        if (!(cohort.staggerDays >= 0.0) ||
            !std::isfinite(cohort.staggerDays)) {
            report.add(Code::L806, object, field,
                       "provisioning stagger " + num(cohort.staggerDays) +
                           " days is not a non-negative finite window");
        }
        if (cohort.accessBound < 1)
            report.add(Code::L807, object, field,
                       "access bound 0 locks every device out at "
                       "provisioning time");
        if (!(cohort.reprovisionUsageScale >= 0.0) ||
            !std::isfinite(cohort.reprovisionUsageScale)) {
            report.add(Code::L811, object, field,
                       "re-provisioning usage scale " +
                           num(cohort.reprovisionUsageScale) +
                           " is not non-negative and finite");
        }
        if (cohort.reprovisionDay &&
            *cohort.reprovisionDay >=
                static_cast<double>(spec.horizonDays)) {
            report.add(Code::L809, object, field,
                       "re-provisioning at day " +
                           num(*cohort.reprovisionDay) +
                           " never fires within the " +
                           std::to_string(spec.horizonDays) +
                           "-day horizon");
        }
        report.merge(checkWorkload(cohort.usage));
        report.merge(checkMixture(cohort.lifetime));
    }
    // Tolerate float accumulation, not misconfiguration: 1e-6 allows
    // "0.1 x 10" spellings while catching a forgotten cohort.
    if (std::abs(weightSum - 1.0) > 1e-6) {
        report.add(Code::L805, object, "cohorts",
                   "cohort weights sum to " + num(weightSum) +
                       ", not 1: the partition over- or "
                       "under-covers the population",
                   "make the weights a partition of unity");
    }
    if (spec.prematureTolerance &&
        !(*spec.prematureTolerance > 0.0 &&
          *spec.prematureTolerance <= 1.0)) {
        report.add(Code::L812, object, "prematureTolerance",
                   "premature-lockout tolerance " +
                       num(*spec.prematureTolerance) +
                       " is not a probability in (0, 1]",
                   "declare a tolerance in (0, 1] or omit it");
    }
    if (spec.prematureDays >= spec.horizonDays &&
        spec.horizonDays >= 1) {
        report.add(Code::L810, object, "prematureDays",
                   "premature threshold " +
                       std::to_string(spec.prematureDays) +
                       " days >= horizon " +
                       std::to_string(spec.horizonDays) +
                       ": every lockout counts as premature");
    }
    return report;
}

void
checkDesignOrThrow(const core::DesignRequest &request)
{
    const auto &criteria = request.criteria;
    const bool clean =
        positiveFinite(request.device.alpha) &&
        positiveFinite(request.device.beta) &&
        request.legitimateAccessBound >= 1 &&
        request.kFraction >= 0.0 && request.kFraction < 1.0 &&
        criteria.minReliability > 0.0 && criteria.minReliability < 1.0 &&
        criteria.maxResidualReliability > 0.0 &&
        criteria.maxResidualReliability < 1.0 &&
        criteria.maxResidualReliability < criteria.minReliability &&
        (!request.upperBoundTarget ||
         *request.upperBoundTarget > request.legitimateAccessBound) &&
        request.maxWidth >= 1;
    if (!clean)
        throwOnErrors(checkDesign(request));
}

void
checkSeriesOrThrow(uint64_t n)
{
    if (n >= 1)
        return;
    StructureSpec spec;
    spec.kind = StructureSpec::Kind::Series;
    spec.n = n;
    throwOnErrors(checkStructure(spec));
}

void
checkParallelOrThrow(uint64_t n, uint64_t k)
{
    if (n >= 1 && k >= 1 && k <= n)
        return;
    StructureSpec spec;
    spec.kind = StructureSpec::Kind::Parallel;
    spec.n = n;
    spec.k = k;
    throwOnErrors(checkStructure(spec));
}

void
checkOtpOrThrow(const core::OtpParams &params)
{
    const bool clean = params.height >= 1 && params.height <= 20 &&
                       params.copies >= 1 && params.copies <= 255 &&
                       params.threshold >= 1 &&
                       params.threshold <= params.copies &&
                       positiveFinite(params.device.alpha) &&
                       positiveFinite(params.device.beta);
    if (!clean)
        throwOnErrors(checkOtp(params));
}

void
checkFaultPlanOrThrow(const fault::FaultPlan &plan)
{
    const auto inUnit = [](double v) { return v >= 0.0 && v <= 1.0; };
    const bool clean =
        inUnit(plan.stuckClosedRate) && inUnit(plan.infantFraction) &&
        plan.infantScaleFraction > 0.0 && plan.infantShape > 0.0 &&
        inUnit(plan.glitchRate) && plan.alphaDriftSigma >= 0.0 &&
        plan.betaDriftSigma >= 0.0;
    if (!clean)
        throwOnErrors(checkFaultPlan(plan));
}

void
checkMwayOrThrow(uint64_t m)
{
    if (m >= 1)
        return;
    MwaySpec spec;
    spec.m = m;
    throwOnErrors(checkMway(spec));
}

} // namespace lemons::lint
