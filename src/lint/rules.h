/**
 * @file
 * Static design-rule passes over the library's spec structs.
 *
 * Every pass is a pure function from a spec to a Report — no
 * simulation, no RNG, no device fabrication. The passes validate the
 * same contracts the constructors enforce (as errors) plus
 * plausibility rules the constructors cannot reject without breaking
 * legitimate exotic uses (as warnings): a stuck-closed rate of 30 %
 * is a legal FaultPlan but almost certainly a typo, and a design
 * whose guess space is below its access bound is secure hardware
 * wrapped around a brute-forceable passcode.
 *
 * The checkOrThrow wrappers are the constructor-facing fast path:
 * they test the error conditions with zero allocation and only build
 * a full Report when something is actually wrong, so hot paths
 * (ParallelStructure is constructed inside solver loops) pay a few
 * comparisons, not string formatting.
 */

#ifndef LEMONS_LINT_RULES_H_
#define LEMONS_LINT_RULES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "fault/fault_plan.h"
#include "lint/diagnostics.h"
#include "wearout/device.h"

namespace lemons::lint {

/** Context for design-level security rules that need attack inputs. */
struct DesignLintOptions
{
    /**
     * Size of the passcode/key guess space the design protects (e.g.
     * 1e4 for a 4-digit PIN). When set, the L010 feasibility rule
     * compares it against the attack budget the hardware concedes
     * (the upper-bound target if present, else the LAB).
     */
    std::optional<double> guessSpace{};

    /**
     * Acceptable probability that a guessing adversary who spends the
     * whole conceded attack budget recovers the secret. When set (with
     * guessSpace), the wear-budget analyzer (lemons::analysis) must
     * discharge the A101 obligation: certified success bracket below
     * this ceiling. Must lie in (0, 1) — rule L014.
     */
    std::optional<double> guessSuccessCeiling{};
};

/** A series/parallel structure described statically (pre-construction). */
struct StructureSpec
{
    enum class Kind { Series, Parallel };

    Kind kind = Kind::Parallel;
    uint64_t n = 1; ///< width (parallel) or chain length (series)
    uint64_t k = 1; ///< reconstruction threshold (parallel only)
    wearout::DeviceSpec device{10.0, 12.0};

    // Optional verification obligations. When present, the static
    // verifier (lemons::verify) certifies analytic brackets against
    // them; the plain lint pass only range-checks the values.
    std::optional<uint64_t> accessBound{}; ///< per-copy bound t to certify
    std::optional<uint64_t> copies{};      ///< serially consumed copies N
    std::optional<double> minReliability{}; ///< floor for R(t)
    std::optional<double> maxResidual{};    ///< ceiling for R(t + 1)
};

/** A secret-sharing layout: n shares, threshold k, field width. */
struct ShareSpec
{
    uint64_t shares = 1;
    uint64_t threshold = 1;
    unsigned fieldBits = 8; ///< 8 = GF(256) Shamir, 16 = GF(65536)
    /**
     * Shares stored outside the wearout fabric (no NEMS guard in
     * front of them). Zero in every sane deployment; the secret-flow
     * verifier pass (V2xx) flags designs where shares bypass the
     * wearout gates.
     */
    uint64_t unguarded = 0;
};

/** A stochastic usage-workload profile (sim/workload.h counterpart). */
struct WorkloadSpec
{
    double meanPerDay = 50.0;     ///< Poisson rate on ordinary days
    double burstProbability = 0.0; ///< P(a day is a burst day)
    double burstMultiplier = 1.0;  ///< rate multiplier on burst days
    /** Total access budget the profile draws down, when known. */
    std::optional<uint64_t> budgetAccesses{};
    /** Calendar horizon in days, when known. */
    std::optional<uint64_t> horizonDays{};
};

/** A bathtub lifetime mixture (wearout/mixture.h counterpart). */
struct MixtureSpec
{
    double infantFraction = 0.0; ///< weight of the early-life leg
    wearout::DeviceSpec infant{1.0, 0.8}; ///< early-failure component
    wearout::DeviceSpec main{10.0, 12.0}; ///< designed wearout component
};

/** An M-way replication layout. */
struct MwaySpec
{
    uint64_t m = 1;
    /** Devices per module, when known (for the L504 total-cost rule). */
    std::optional<uint64_t> moduleDevices{};
    /** Whether the per-module design solved feasibly, when known. */
    std::optional<bool> moduleFeasible{};
};

/**
 * One cohort of a fleet lifecycle campaign ([cohort] counterpart):
 * a homogeneous slice of the population sharing a lot (lifetime
 * mixture), a usage profile, a provisioning stagger window, and an
 * optional mid-life re-provisioning event (secondhand reuse).
 */
struct FleetCohortSpec
{
    std::string name = "cohort";
    /** Fraction of the fleet in this cohort, in (0, 1]. */
    double weight = 1.0;
    /** Provisioning stagger window in days (devices enter service
     *  uniformly over [0, staggerDays]). */
    double staggerDays = 0.0;
    /** Per-device access budget (the design's LAB). */
    uint64_t accessBound = 91250;
    /** Daily usage profile. */
    WorkloadSpec usage{};
    /** Lot lifetime model (bathtub mixture; infantFraction 0 = pure
     *  designed wearout). */
    MixtureSpec lifetime{};
    /** Day surviving devices are re-provisioned to a second owner. */
    std::optional<double> reprovisionDay{};
    /** Usage-rate multiplier after re-provisioning (>= 0). */
    double reprovisionUsageScale = 1.0;
};

/**
 * A fleet lifecycle campaign ([fleet] + [cohort] counterpart):
 * population size, horizon, checkpoint cadence, and the cohorts the
 * population is partitioned into.
 */
struct FleetSpec
{
    /** Total devices across all cohorts. */
    uint64_t devices = 10000;
    /** Campaign RNG seed. */
    uint64_t seed = 0;
    /** Engine chunk size; 0 = the engine default. */
    uint64_t chunkSize = 0;
    /** Chunks between checkpoints (must be positive). */
    uint64_t checkpointEveryChunks = 8;
    /** Calendar horizon in days. */
    uint64_t horizonDays = 1825;
    /** A lockout earlier than this many absolute days is premature. */
    uint64_t prematureDays = 365;
    /**
     * Acceptable per-device premature-lockout probability. When set,
     * the wear-budget analyzer raises A002 if a cohort's certified
     * premature bracket provably exceeds it. Must lie in (0, 1] —
     * rule L812. Absent means no declared tolerance (brackets are
     * still reported as A004 notes).
     */
    std::optional<double> prematureTolerance{};
    /** Population partition; weights must sum to 1. */
    std::vector<FleetCohortSpec> cohorts;
};

/** L0xx: solver input rules (bounds, criteria, attack feasibility). */
Report checkDesign(const core::DesignRequest &request,
                   const DesignLintOptions &options = {});

/** L2xx (+ L1xx for parallel k-out-of-n): structure composition. */
Report checkStructure(const StructureSpec &spec);

/** L1xx: share counts vs. field capacity. */
Report checkShares(const ShareSpec &spec);

/** L3xx: one-time-pad tree configuration. */
Report checkOtp(const core::OtpParams &params);

/** L4xx: fault-plan ranges and plausibility. */
Report checkFaultPlan(const fault::FaultPlan &plan);

/** L5xx: M-way replication composition limits. */
Report checkMway(const MwaySpec &spec);

/** L6xx: usage-workload profile rules. */
Report checkWorkload(const WorkloadSpec &spec);

/** L7xx: bathtub-mixture model rules. */
Report checkMixture(const MixtureSpec &spec);

/** L8xx: fleet campaign composition (weights, stagger, cadence),
 *  including the L6xx/L7xx passes over every cohort's profile. */
Report checkFleet(const FleetSpec &spec);

/** Constructor fast paths: throw LintError on error-severity findings. */
void checkDesignOrThrow(const core::DesignRequest &request);
void checkSeriesOrThrow(uint64_t n);
void checkParallelOrThrow(uint64_t n, uint64_t k);
void checkOtpOrThrow(const core::OtpParams &params);
void checkFaultPlanOrThrow(const fault::FaultPlan &plan);
void checkMwayOrThrow(uint64_t m);

} // namespace lemons::lint

#endif // LEMONS_LINT_RULES_H_
