/**
 * @file
 * lemons-lint — static design-rule checker CLI.
 *
 * Lints spec files (see lint/spec_file.h for the format) and exits
 * non-zero when any error-severity finding fires, so a CI step can
 * gate deployment configurations the same way a compiler gates code:
 *
 *     lemons-lint examples/configs/smartphone_unlock.lemons ...
 *
 * With --verify the whole-design static verifier also runs: each
 * file's sections are lowered into the architecture IR and the bound-
 * propagation, structural, and secret-flow passes report V-range
 * findings alongside the lint L-range, under the same exit-code and
 * --werror semantics.
 *
 * Exit codes: 0 clean (warnings allowed unless --werror), 1 at least
 * one error-severity finding, 2 usage error.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/diagnostics.h"
#include "lint/spec_file.h"
#include "verify/verifier.h"

namespace {

void
printUsage(std::ostream &out)
{
    out << "usage: lemons-lint [options] <spec-file>...\n"
           "\n"
           "Statically checks limited-use architecture specs against\n"
           "the lemons design rules without running any simulation.\n"
           "\n"
           "options:\n"
           "  --verify  also lower each spec into the architecture IR\n"
           "            and run the static verifier (V-range findings)\n"
           "  --werror  treat warnings as errors\n"
           "  --quiet   print only the per-file summaries\n"
           "  --codes   print the diagnostic-code catalog and exit\n"
           "  --help    this text\n";
}

void
printCatalog(std::ostream &out)
{
    out << "code  severity  rule\n";
    for (const lemons::lint::CodeInfo &info :
         lemons::lint::codeCatalog()) {
        const char *severity = lemons::lint::severityName(info.severity);
        out << info.id << "  " << severity;
        // Pad to the widest severity name ("warning", 7 chars) + 2.
        for (size_t pad = std::strlen(severity); pad < 9; ++pad)
            out << ' ';
        out << info.title << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false;
    bool quiet = false;
    bool verify = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--werror") {
            werror = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--codes") {
            printCatalog(std::cout);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "lemons-lint: unknown option '" << arg << "'\n";
            printUsage(std::cerr);
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::cerr << "lemons-lint: no spec files given\n";
        printUsage(std::cerr);
        return 2;
    }

    size_t errors = 0;
    size_t warnings = 0;
    for (const std::string &file : files) {
        lemons::lint::Report report = lemons::lint::lintFile(file);
        if (verify)
            report.merge(lemons::verify::verifySpecFile(file));
        errors += report.errorCount();
        warnings += report.warningCount();
        if (!quiet && !report.empty())
            std::cout << report.format();
        std::cout << file << ": " << report.errorCount() << " error(s), "
                  << report.warningCount() << " warning(s)\n";
    }
    if (errors > 0)
        return 1;
    if (werror && warnings > 0)
        return 1;
    return 0;
}
