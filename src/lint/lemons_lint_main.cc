/**
 * @file
 * lemons-lint — static design-rule checker CLI.
 *
 * Lints spec files (see lint/spec_file.h for the format) and exits
 * non-zero when any error-severity finding fires, so a CI step can
 * gate deployment configurations the same way a compiler gates code:
 *
 *     lemons-lint examples/configs/smartphone_unlock.lemons ...
 *
 * With --verify the whole-design static verifier also runs: each
 * file's sections are lowered into the architecture IR and the bound-
 * propagation, structural, and secret-flow passes report V-range
 * findings alongside the lint L-range. With --analyze the wear-budget
 * abstract interpreter adds A-range findings: certified access-count
 * brackets, budget-exhaustion and premature-lockout obligations, and
 * adversary-success ceilings. All modes share one merged report per
 * file, so the exit-code and --werror semantics are uniform across
 * the L/V/A families.
 *
 * --json emits the whole run as one `lemons-api/1` envelope (implying
 * --analyze): {schema, ok, diagnostics[], result: {files[], errors,
 * warnings}} — the same document lemonsd's POST /v1/analyze returns,
 * so dashboards consume CI runs and server responses with one parser.
 * The pre-envelope `lemons-analyze/1` document survives behind
 * --json-legacy (deprecated, removal announced in the README).
 *
 * Exit codes: 0 clean (warnings allowed unless --werror), 1 at least
 * one error-severity finding (or any warning under --werror), 2
 * usage error.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "analysis/report.h"
#include "api/codec.h"
#include "lint/diagnostics.h"
#include "lint/spec_file.h"
#include "util/argparse.h"
#include "verify/verifier.h"

namespace {

/** Catalog family header for a code id ("L001" -> the lint range). */
const char *
familyTitle(char prefix)
{
    switch (prefix) {
    case 'L':
        return "L-range: design-rule lint (lemons::lint)";
    case 'V':
        return "V-range: static verifier (lemons::verify)";
    case 'C':
        return "C-range: fleet checkpoint errors (lemons::fleet)";
    case 'A':
        return "A-range: wear-budget analyzer (lemons::analysis)";
    case 'S':
        return "S-range: serving/API request errors (lemons::api)";
    case 'T':
        return "T-range: source-level tidy checks (tools/tidy plugin)";
    default:
        return "other";
    }
}

void
printCatalog(std::ostream &out)
{
    // Group by family so the listing reads as six catalogs; the
    // registry itself is append-only and therefore not sorted.
    std::vector<lemons::lint::CodeInfo> sorted =
        lemons::lint::codeCatalog();
    std::sort(sorted.begin(), sorted.end(),
              [](const lemons::lint::CodeInfo &a,
                 const lemons::lint::CodeInfo &b) {
                  return std::strcmp(a.id, b.id) < 0;
              });
    const auto familyRank = [](char prefix) {
        switch (prefix) {
        case 'L':
            return 0;
        case 'V':
            return 1;
        case 'C':
            return 2;
        case 'A':
            return 3;
        case 'S':
            return 4;
        case 'T':
            return 5;
        default:
            return 6;
        }
    };
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const lemons::lint::CodeInfo &a,
                         const lemons::lint::CodeInfo &b) {
                         return familyRank(a.id[0]) < familyRank(b.id[0]);
                     });
    char family = '\0';
    for (const lemons::lint::CodeInfo &info : sorted) {
        if (info.id[0] != family) {
            family = info.id[0];
            out << (family == 'L' ? "" : "\n") << familyTitle(family)
                << "\n";
        }
        const char *severity = lemons::lint::severityName(info.severity);
        out << "  " << info.id << "  " << severity;
        // Pad to the widest severity name ("warning", 7 chars) + 2.
        for (size_t pad = std::strlen(severity); pad < 9; ++pad)
            out << ' ';
        out << info.title << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false;
    bool quiet = false;
    bool verify = false;
    bool analyze = false;
    bool json = false;
    bool jsonLegacy = false;
    bool codes = false;
    std::vector<std::string> files;

    lemons::ArgParser parser(
        "lemons-lint",
        "Statically checks limited-use architecture specs against the\n"
        "lemons design rules without running any simulation.");
    parser.flag("--verify", &verify,
                "also lower each spec into the architecture IR and run "
                "the static verifier (V-range findings)");
    parser.flag("--analyze", &analyze,
                "also run the wear-budget abstract interpreter (A-range "
                "findings: budget exhaustion, premature lockout, dead "
                "wear, adversary obligations)");
    parser.flag("--json", &json,
                "emit one lemons-api/1 envelope for the whole run "
                "(implies --analyze)");
    parser.flag("--json-legacy", &jsonLegacy,
                "deprecated: emit the pre-envelope lemons-analyze/1 "
                "document instead (implies --analyze)");
    parser.flag("--werror", &werror,
                "treat warnings as errors (uniform across the L/V/A "
                "families)");
    parser.flag("--quiet", &quiet, "print only the per-file summaries");
    parser.flag("--codes", &codes,
                "print the diagnostic-code catalog and exit");
    parser.positionals("<spec-file>...", &files, "spec files to check");

    switch (parser.parse(argc, argv)) {
    case lemons::ArgParser::Outcome::Ok:
        break;
    case lemons::ArgParser::Outcome::Help:
        return 0;
    case lemons::ArgParser::Outcome::Error:
        std::cerr << parser.error() << '\n' << parser.helpText();
        return 2;
    }

    if (codes) {
        printCatalog(std::cout);
        return 0;
    }
    if (json && jsonLegacy) {
        std::cerr << "lemons-lint: --json and --json-legacy are "
                     "mutually exclusive\n";
        return 2;
    }
    if (jsonLegacy)
        std::cerr << "lemons-lint: warning: --json-legacy "
                     "(lemons-analyze/1) is deprecated; migrate to the "
                     "--json lemons-api/1 envelope\n";
    if (json || jsonLegacy)
        analyze = true;
    if (files.empty()) {
        std::cerr << "lemons-lint: no spec files given\n"
                  << parser.helpText();
        return 2;
    }

    const bool machineOutput = json || jsonLegacy;
    size_t errors = 0;
    size_t warnings = 0;
    std::vector<lemons::analysis::AnalyzedFile> analyzed;
    for (const std::string &file : files) {
        lemons::lint::Report report = lemons::lint::lintFile(file);
        if (verify)
            report.merge(lemons::verify::verifySpecFile(file));
        lemons::analysis::FileAnalysis analysis;
        if (analyze) {
            analysis = lemons::analysis::analyzeSpecFile(file);
            lemons::lint::Report findings = analysis.findings;
            report.merge(std::move(findings));
        }
        errors += report.errorCount();
        warnings += report.warningCount();
        if (!machineOutput) {
            if (!quiet && !report.empty())
                std::cout << report.format();
            std::cout << file << ": " << report.errorCount()
                      << " error(s), " << report.warningCount()
                      << " warning(s)\n";
        } else {
            analyzed.push_back({std::move(report), std::move(analysis)});
        }
    }
    if (json)
        std::cout << lemons::api::renderAnalysisEnvelope(analyzed);
    else if (jsonLegacy)
        std::cout << lemons::analysis::renderAnalysisJson(analyzed);
    if (errors > 0)
        return 1;
    if (werror && warnings > 0)
        return 1;
    return 0;
}
