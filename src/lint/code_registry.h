/**
 * @file
 * The single source of truth for every stable diagnostic code the
 * project emits, across all five families:
 *
 *   L-range  lemons::lint     design-rule findings (L001...)
 *   V-range  lemons::verify   static-verifier findings (V001...)
 *   C-range  lemons::fleet    checkpoint error codes (C101...)
 *   A-range  lemons::analysis wear-budget analyzer findings (A001...)
 *   T-range  lemons-tidy      source-level clang-tidy checks (T001...)
 *   S-range  lemons::api      serving/API request errors (S001...)
 *
 * The T-family is emitted by the out-of-tree clang-tidy plugin in
 * tools/tidy (loaded with `clang-tidy -load liblemons_tidy.so`); the
 * plugin includes this header so its diagnostics carry the same stable
 * ids the CLI catalogs and the suppression baseline matches on.
 *
 * Before this registry the L/V catalogs lived in one X-macro while the
 * fleet C-codes were raw string literals inside exception messages —
 * nothing stopped a new code from colliding across families. Every
 * family now draws from LEMONS_CODE_TABLE, and diagnostics.cc
 * static_asserts that the id strings are pairwise distinct, so a
 * collision is a compile error instead of an ambiguous CI grep.
 *
 * Row shape: X(enumerator, "id", DefaultSeverity, "one-line title").
 * The id string is deliberately explicit rather than #enumerator so
 * that the uniqueness check guards what tests and suppression lists
 * actually match on. Codes are append-only: a published code never
 * changes meaning and is never renumbered; add new rows at the end of
 * the table (grouping by family is cosmetic — --codes sorts).
 */

#ifndef LEMONS_LINT_CODE_REGISTRY_H_
#define LEMONS_LINT_CODE_REGISTRY_H_

// clang-format off
#define LEMONS_CODE_TABLE(X)                                                 \
    X(L001, "L001", Error, "device alpha must be positive and finite")       \
    X(L002, "L002", Error, "device beta must be positive and finite")        \
    X(L003, "L003", Error, "legitimate access bound must be at least 1")     \
    X(L004, "L004", Error, "kFraction must lie in [0, 1)")                   \
    X(L005, "L005", Error, "minReliability must lie in (0, 1)")              \
    X(L006, "L006", Error, "maxResidualReliability must lie in (0, 1)")      \
    X(L007, "L007", Error, "degradation criteria inverted: residual "        \
                           "ceiling must stay below the reliability floor")  \
    X(L008, "L008", Error, "upper-bound target must exceed the LAB")         \
    X(L009, "L009", Error, "maxWidth must be at least 1")                    \
    X(L010, "L010", Warning, "attack budget reaches the passcode guess "     \
                             "space: wearout alone cannot stop brute force") \
    X(L011, "L011", Warning, "beta <= 1 gives no wearout knee: the "         \
                             "degradation window never closes sharply")      \
    X(L012, "L012", Warning, "alpha outside the plausible NEMS-contact "     \
                             "range")                                        \
    X(L013, "L013", Warning, "minReliability unreachable within maxWidth "   \
                             "even at one access per copy")                  \
    X(L101, "L101", Error, "share threshold k must be at least 1")           \
    X(L102, "L102", Error, "share threshold k must not exceed share "        \
                           "count n")                                        \
    X(L103, "L103", Error, "share count exceeds the field's share "          \
                           "capacity")                                       \
    X(L104, "L104", Warning, "k == n leaves no redundancy: one worn-out "    \
                             "share destroys the secret")                    \
    X(L105, "L105", Error, "unsupported share field width (use 8 or 16 "     \
                           "bits)")                                          \
    X(L201, "L201", Error, "structure width n must be at least 1")           \
    X(L202, "L202", Error, "parallel threshold k must satisfy 1 <= k <= n")  \
    X(L203, "L203", Error, "structure device alpha/beta must be positive")   \
    X(L204, "L204", Warning, "series chain length explosion (the paper "    \
                             "discards chaining for this reason)")           \
    X(L205, "L205", Warning, "parallel width beyond die-area plausibility")  \
    X(L206, "L206", Warning, "k above 0.9 n: reconstruction margin "         \
                             "nearly nil")                                   \
    X(L301, "L301", Error, "OTP tree height must lie in [1, 20]")            \
    X(L302, "L302", Warning, "OTP tree height below 4 leaves the "           \
                             "adversary a path-guess probability of 1/8 "    \
                             "or better")                                    \
    X(L303, "L303", Error, "OTP copies must be at least 1")                  \
    X(L304, "L304", Error, "OTP threshold must lie in [1, copies]")          \
    X(L305, "L305", Error, "OTP copies exceed the GF(256) Shamir share "     \
                           "limit")                                          \
    X(L306, "L306", Error, "OTP device alpha/beta must be positive")         \
    X(L307, "L307", Warning, "OTP switch alpha is not near-one-shot: "       \
                             "surviving trees open a replay window")         \
    X(L401, "L401", Error, "stuckClosedRate outside [0, 1]")                 \
    X(L402, "L402", Error, "infantFraction outside [0, 1]")                  \
    X(L403, "L403", Error, "infantScaleFraction must be positive")           \
    X(L404, "L404", Error, "infantShape must be positive")                   \
    X(L405, "L405", Error, "glitchRate outside [0, 1]")                      \
    X(L406, "L406", Error, "drift sigmas must be non-negative")              \
    X(L407, "L407", Warning, "stuckClosedRate above 5%: the attack bound "   \
                             "effectively collapses")                        \
    X(L408, "L408", Warning, "infantScaleFraction >= 1: the infant leg "     \
                             "is not early-life")                            \
    X(L409, "L409", Warning, "infantShape >= 1: infant hazard is not "       \
                             "decreasing")                                   \
    X(L410, "L410", Warning, "glitchRate above 0.5: availability "           \
                             "collapse")                                     \
    X(L411, "L411", Warning, "drift sigma above 1: order-of-magnitude "      \
                             "calibration uncertainty")                      \
    X(L501, "L501", Error, "M-way replication factor must be at least 1")    \
    X(L502, "L502", Warning, "M-way factor above 10000: migration/re-wrap "  \
                             "burden implausible")                           \
    X(L503, "L503", Error, "M-way module design is infeasible")              \
    X(L504, "L504", Warning, "M-way total device count beyond "              \
                             "fabrication plausibility")                     \
    X(L901, "L901", Error, "spec file unreadable")                           \
    X(L902, "L902", Error, "spec syntax error")                              \
    X(L903, "L903", Error, "unknown spec section")                           \
    X(L904, "L904", Warning, "unknown spec key")                             \
    X(L905, "L905", Error, "malformed spec value")                           \
    X(L906, "L906", Warning, "spec file declares no sections")               \
    X(L601, "L601", Error, "workload mean accesses per day must be "         \
                           "positive and finite")                            \
    X(L602, "L602", Error, "burst probability outside [0, 1]")               \
    X(L603, "L603", Error, "burst multiplier must be at least 1 and "        \
                           "finite")                                         \
    X(L604, "L604", Warning, "access budget below the expected demand "      \
                             "over the horizon")                             \
    X(L605, "L605", Warning, "burst-dominated profile: bursts carry most "   \
                             "of the demand")                                \
    X(L701, "L701", Error, "mixture infant fraction outside [0, 1]")         \
    X(L702, "L702", Error, "mixture component alpha/beta must be "           \
                           "positive and finite")                            \
    X(L703, "L703", Warning, "infant component shape >= 1: hazard is not "   \
                             "decreasing")                                   \
    X(L704, "L704", Warning, "infant component scale not below the main "    \
                             "scale")                                        \
    X(L801, "L801", Error, "fleet device count must be at least 1")          \
    X(L802, "L802", Error, "fleet horizon must be at least 1 day")           \
    X(L803, "L803", Error, "checkpoint interval must be at least 1 chunk")   \
    X(L804, "L804", Error, "cohort weight must lie in (0, 1]")               \
    X(L805, "L805", Error, "cohort weights must sum to 1")                   \
    X(L806, "L806", Error, "provisioning stagger must be non-negative "      \
                           "and finite")                                     \
    X(L807, "L807", Error, "cohort access bound must be at least 1")         \
    X(L808, "L808", Warning, "fleet declares no cohorts")                    \
    X(L809, "L809", Warning, "re-provisioning scheduled at or beyond the "   \
                             "horizon: the event never fires")               \
    X(L810, "L810", Warning, "premature-lockout threshold at or beyond "     \
                             "the horizon: every lockout counts as "         \
                             "premature")                                    \
    X(L811, "L811", Error, "re-provisioning usage scale must be "            \
                           "non-negative and finite")                        \
    X(V001, "V001", Note, "certified bound bracket")                         \
    X(V002, "V002", Error, "survival bracket falls below the reliability "   \
                           "floor at the access bound")                      \
    X(V003, "V003", Error, "residual survival bracket exceeds the "          \
                           "degradation ceiling")                            \
    X(V004, "V004", Warning, "bound bracket inconclusive: the criterion "    \
                             "lies inside the certified interval")           \
    X(V005, "V005", Error, "expected total accesses cannot reach the "       \
                           "legitimate access bound")                        \
    X(V006, "V006", Error, "expected total accesses exceed the "             \
                           "upper-bound target")                             \
    X(V007, "V007", Error, "OTP adversary success bracket is not "           \
                           "negligible")                                     \
    X(V008, "V008", Warning, "OTP receiver success bracket below the "       \
                             "delivery floor")                               \
    X(V101, "V101", Warning, "unreachable node: no source-to-sink path "     \
                             "traverses it")                                 \
    X(V102, "V102", Warning, "redundancy waste: parallel width beyond "      \
                             "what the reliability target needs")            \
    X(V103, "V103", Error, "fault plan attached to a node the design "       \
                           "never traverses")                                \
    X(V201, "V201", Error, "secret share reaches a sink without "            \
                           "traversing a wearout gate")                      \
    X(V202, "V202", Error, "fewer than threshold shares sit behind "         \
                           "wearout gates")                                  \
    X(V203, "V203", Warning, "secret source cannot reach any sink: the "     \
                             "key is unrecoverable")                         \
    X(V901, "V901", Error, "spec does not lower into the architecture IR")   \
    X(L014, "L014", Error, "guess-success ceiling outside (0, 1)")           \
    X(L812, "L812", Error, "premature-lockout tolerance outside (0, 1]")     \
    X(C101, "C101", Error, "checkpoint magic is not fleet-ckpt")             \
    X(C102, "C102", Error, "unsupported checkpoint version")                 \
    X(C103, "C103", Error, "truncated checkpoint payload")                   \
    X(C104, "C104", Error, "checkpoint checksum mismatch")                   \
    X(C105, "C105", Error, "checkpoint configuration fingerprint "           \
                           "mismatch")                                       \
    X(C106, "C106", Error, "malformed checkpoint payload")                   \
    X(C107, "C107", Error, "checkpoint io failure")                          \
    X(A001, "A001", Error, "declared workload demand can exhaust the "       \
                           "provisioned access budget")                      \
    X(A002, "A002", Error, "premature-lockout bracket exceeds the "          \
                           "declared fleet tolerance")                       \
    X(A003, "A003", Warning, "dead wear: provisioned budget far exceeds "    \
                             "every declared workload demand")               \
    X(A004, "A004", Note, "certified access-consumption bracket")            \
    X(A101, "A101", Error, "guessing-adversary success bracket exceeds "     \
                           "the declared ceiling")                           \
    X(A102, "A102", Error, "adversary access consumption is unbounded "      \
                           "by wearout")                                     \
    X(A103, "A103", Warning, "guessing-adversary bracket straddles the "     \
                             "declared ceiling")                             \
    X(A104, "A104", Note, "guessing-adversary obligation discharged: "       \
                          "success bracket below the ceiling")               \
    X(T001, "T001", Error, "raw std::thread/std::async outside the engine "  \
                           "pool (lemons-no-raw-thread)")                    \
    X(T002, "T002", Error, "nondeterminism source in a simulation TU "       \
                           "(lemons-deterministic-sim)")                     \
    X(T003, "T003", Warning, "direct Weibull/binomial math on a hot path "   \
                             "that should use engine::cache "                \
                             "(lemons-memoized-math)")                       \
    X(T004, "T004", Error, "member mutated under MutexLock without a "       \
                           "GUARDED_BY annotation (lemons-guarded-member)")  \
    X(T005, "T005", Warning, "misused LEMONS_OBS_SCOPED_TIMER or "           \
                             "unregistered metric namespace "                \
                             "(lemons-obs-scoped-timer)")                    \
    X(T006, "T006", Error, "raw cross-thread accumulation outside "          \
                           "RunningStats merge (lemons-stats-accumulation)") \
    X(S001, "S001", Error, "request body is not valid JSON")                 \
    X(S002, "S002", Error, "request does not match the lemons-api/1 "        \
                           "schema")                                         \
    X(S003, "S003", Error, "unknown endpoint")                               \
    X(S004, "S004", Error, "method not allowed for this endpoint")           \
    X(S005, "S005", Error, "request body exceeds the configured size "       \
                           "limit")                                          \
    X(S006, "S006", Error, "malformed HTTP request")                         \
    X(S007, "S007", Error, "per-tenant request quota exhausted")             \
    X(S008, "S008", Error, "server is draining: new requests refused")       \
    X(S009, "S009", Error, "admission queue full")                           \
    X(S010, "S010", Error, "spec contains no section this endpoint can "     \
                           "run")                                            \
    X(S011, "S011", Error, "request field value out of range")              \
    X(S012, "S012", Error, "internal error while handling the request")
// clang-format on

#endif // LEMONS_LINT_CODE_REGISTRY_H_
