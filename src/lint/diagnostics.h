/**
 * @file
 * Diagnostic engine for the lemons::lint design-rule checker.
 *
 * The paper's security guarantees are statistical statements about
 * carefully constrained designs (k-out-of-n share structures, positive
 * Weibull shape/scale, access bounds sized against attack budgets). A
 * misconfigured spec does not fail loudly — it silently weakens the
 * architecture, which is exactly the misconfiguration class targeted-
 * wearout attackers exploit. The lint layer rejects inconsistent
 * specs *before* any simulation runs.
 *
 * Every finding carries a stable diagnostic code (L001, L002, ...)
 * with a fixed default severity, the object/field it refers to, a
 * human message, and an optional fix-hint. Codes are append-only: a
 * published code never changes meaning, so tests, CI greps, and
 * suppression lists stay valid across releases.
 *
 * Code ranges:
 *   L0xx  DesignRequest / solver inputs
 *   L1xx  secret-sharing share counts vs. field size
 *   L2xx  series / parallel structure composition
 *   L3xx  one-time-pad tree configurations
 *   L4xx  fault-injection plans
 *   L5xx  M-way replication composition
 *   L6xx  usage-workload profiles
 *   L7xx  lifetime-mixture (bathtub) models
 *   L8xx  fleet lifecycle campaigns
 *   L9xx  spec-file parsing (CLI)
 *
 * The V range belongs to the whole-design static verifier
 * (lemons::verify over the lemons::ir architecture IR):
 *   V0xx  analytic bound propagation (certified [lo, hi] brackets)
 *   V1xx  structural rules (reachability, redundancy waste)
 *   V2xx  secret-flow analysis (taint from share sources to sinks)
 *   V9xx  IR lowering problems
 */

#ifndef LEMONS_LINT_DIAGNOSTICS_H_
#define LEMONS_LINT_DIAGNOSTICS_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace lemons::lint {

/** How bad a finding is. Only Error makes checkOrThrow throw. */
enum class Severity {
    Note,    ///< informational context
    Warning, ///< legal but probably not what the designer meant
    Error,   ///< the spec violates a hard design rule
};

/** Lowercase severity name ("note" / "warning" / "error"). */
const char *severityName(Severity severity);

/**
 * Stable diagnostic codes. X-macro so the enum, the id string, the
 * default severity, and the one-line title can never drift apart.
 * Append new codes at the end of their range; never renumber.
 */
#define LEMONS_LINT_CODE_TABLE(X)                                            \
    X(L001, Error, "device alpha must be positive and finite")               \
    X(L002, Error, "device beta must be positive and finite")                \
    X(L003, Error, "legitimate access bound must be at least 1")             \
    X(L004, Error, "kFraction must lie in [0, 1)")                           \
    X(L005, Error, "minReliability must lie in (0, 1)")                      \
    X(L006, Error, "maxResidualReliability must lie in (0, 1)")              \
    X(L007, Error, "degradation criteria inverted: residual ceiling "        \
                   "must stay below the reliability floor")                  \
    X(L008, Error, "upper-bound target must exceed the LAB")                 \
    X(L009, Error, "maxWidth must be at least 1")                            \
    X(L010, Warning, "attack budget reaches the passcode guess space: "     \
                     "wearout alone cannot stop brute force")                \
    X(L011, Warning, "beta <= 1 gives no wearout knee: the degradation "    \
                     "window never closes sharply")                          \
    X(L012, Warning, "alpha outside the plausible NEMS-contact range")       \
    X(L013, Warning, "minReliability unreachable within maxWidth even at "  \
                     "one access per copy")                                  \
    X(L101, Error, "share threshold k must be at least 1")                   \
    X(L102, Error, "share threshold k must not exceed share count n")        \
    X(L103, Error, "share count exceeds the field's share capacity")         \
    X(L104, Warning, "k == n leaves no redundancy: one worn-out share "     \
                     "destroys the secret")                                  \
    X(L105, Error, "unsupported share field width (use 8 or 16 bits)")       \
    X(L201, Error, "structure width n must be at least 1")                   \
    X(L202, Error, "parallel threshold k must satisfy 1 <= k <= n")          \
    X(L203, Error, "structure device alpha/beta must be positive")           \
    X(L204, Warning, "series chain length explosion (the paper discards "   \
                     "chaining for this reason)")                            \
    X(L205, Warning, "parallel width beyond die-area plausibility")          \
    X(L206, Warning, "k above 0.9 n: reconstruction margin nearly nil")      \
    X(L301, Error, "OTP tree height must lie in [1, 20]")                    \
    X(L302, Warning, "OTP tree height below 4 leaves the adversary a "      \
                     "path-guess probability of 1/8 or better")              \
    X(L303, Error, "OTP copies must be at least 1")                          \
    X(L304, Error, "OTP threshold must lie in [1, copies]")                  \
    X(L305, Error, "OTP copies exceed the GF(256) Shamir share limit")       \
    X(L306, Error, "OTP device alpha/beta must be positive")                 \
    X(L307, Warning, "OTP switch alpha is not near-one-shot: surviving "    \
                     "trees open a replay window")                           \
    X(L401, Error, "stuckClosedRate outside [0, 1]")                         \
    X(L402, Error, "infantFraction outside [0, 1]")                          \
    X(L403, Error, "infantScaleFraction must be positive")                   \
    X(L404, Error, "infantShape must be positive")                           \
    X(L405, Error, "glitchRate outside [0, 1]")                              \
    X(L406, Error, "drift sigmas must be non-negative")                      \
    X(L407, Warning, "stuckClosedRate above 5%: the attack bound "          \
                     "effectively collapses")                                \
    X(L408, Warning, "infantScaleFraction >= 1: the infant leg is not "     \
                     "early-life")                                           \
    X(L409, Warning, "infantShape >= 1: infant hazard is not decreasing")    \
    X(L410, Warning, "glitchRate above 0.5: availability collapse")          \
    X(L411, Warning, "drift sigma above 1: order-of-magnitude "             \
                     "calibration uncertainty")                              \
    X(L501, Error, "M-way replication factor must be at least 1")            \
    X(L502, Warning, "M-way factor above 10000: migration/re-wrap burden "  \
                     "implausible")                                          \
    X(L503, Error, "M-way module design is infeasible")                      \
    X(L504, Warning, "M-way total device count beyond fabrication "         \
                     "plausibility")                                         \
    X(L901, Error, "spec file unreadable")                                   \
    X(L902, Error, "spec syntax error")                                      \
    X(L903, Error, "unknown spec section")                                   \
    X(L904, Warning, "unknown spec key")                                     \
    X(L905, Error, "malformed spec value")                                   \
    X(L906, Warning, "spec file declares no sections")                       \
    X(L601, Error, "workload mean accesses per day must be positive "       \
                   "and finite")                                             \
    X(L602, Error, "burst probability outside [0, 1]")                       \
    X(L603, Error, "burst multiplier must be at least 1 and finite")         \
    X(L604, Warning, "access budget below the expected demand over the "    \
                     "horizon")                                              \
    X(L605, Warning, "burst-dominated profile: bursts carry most of the "   \
                     "demand")                                               \
    X(L701, Error, "mixture infant fraction outside [0, 1]")                 \
    X(L702, Error, "mixture component alpha/beta must be positive and "     \
                   "finite")                                                 \
    X(L703, Warning, "infant component shape >= 1: hazard is not "          \
                     "decreasing")                                           \
    X(L704, Warning, "infant component scale not below the main scale")     \
    X(L801, Error, "fleet device count must be at least 1")                  \
    X(L802, Error, "fleet horizon must be at least 1 day")                   \
    X(L803, Error, "checkpoint interval must be at least 1 chunk")           \
    X(L804, Error, "cohort weight must lie in (0, 1]")                       \
    X(L805, Error, "cohort weights must sum to 1")                           \
    X(L806, Error, "provisioning stagger must be non-negative and "         \
                   "finite")                                                 \
    X(L807, Error, "cohort access bound must be at least 1")                 \
    X(L808, Warning, "fleet declares no cohorts")                            \
    X(L809, Warning, "re-provisioning scheduled at or beyond the "          \
                     "horizon: the event never fires")                       \
    X(L810, Warning, "premature-lockout threshold at or beyond the "        \
                     "horizon: every lockout counts as premature")           \
    X(L811, Error, "re-provisioning usage scale must be non-negative "      \
                   "and finite")                                             \
    X(V001, Note, "certified bound bracket")                                 \
    X(V002, Error, "survival bracket falls below the reliability floor "    \
                   "at the access bound")                                    \
    X(V003, Error, "residual survival bracket exceeds the degradation "     \
                   "ceiling")                                                \
    X(V004, Warning, "bound bracket inconclusive: the criterion lies "      \
                     "inside the certified interval")                        \
    X(V005, Error, "expected total accesses cannot reach the legitimate "   \
                   "access bound")                                           \
    X(V006, Error, "expected total accesses exceed the upper-bound "        \
                   "target")                                                 \
    X(V007, Error, "OTP adversary success bracket is not negligible")        \
    X(V008, Warning, "OTP receiver success bracket below the delivery "     \
                     "floor")                                                \
    X(V101, Warning, "unreachable node: no source-to-sink path "            \
                     "traverses it")                                         \
    X(V102, Warning, "redundancy waste: parallel width beyond what the "    \
                     "reliability target needs")                             \
    X(V103, Error, "fault plan attached to a node the design never "        \
                   "traverses")                                              \
    X(V201, Error, "secret share reaches a sink without traversing a "      \
                   "wearout gate")                                           \
    X(V202, Error, "fewer than threshold shares sit behind wearout "        \
                   "gates")                                                  \
    X(V203, Warning, "secret source cannot reach any sink: the key is "     \
                     "unrecoverable")                                        \
    X(V901, Error, "spec does not lower into the architecture IR")

/** Stable diagnostic identifiers. */
enum class Code {
#define LEMONS_LINT_ENUM(id, severity, title) id,
    LEMONS_LINT_CODE_TABLE(LEMONS_LINT_ENUM)
#undef LEMONS_LINT_ENUM
};

/** Catalog entry for one diagnostic code. */
struct CodeInfo
{
    Code code;
    const char *id;    ///< "L001"
    Severity severity; ///< default severity
    const char *title; ///< one-line rule statement
};

/** Catalog row for @p code. */
const CodeInfo &codeInfo(Code code);

/** The full append-only catalog, in code order (for --codes / docs). */
const std::vector<CodeInfo> &codeCatalog();

/** One finding. */
struct Diagnostic
{
    Code code;
    Severity severity; ///< copied from the catalog at creation
    std::string object; ///< e.g. "DesignRequest"
    std::string field;  ///< e.g. "device.alpha"; may be empty
    std::string message;
    std::string hint;   ///< optional fix-hint; may be empty
    std::string file;   ///< spec file (CLI runs); empty for API checks

    /** "L001". */
    const char *id() const { return codeInfo(code).id; }

    /** One-line rendering: file: [code] severity object.field: msg. */
    std::string format() const;
};

/** An ordered collection of findings from one or more rule passes. */
class Report
{
  public:
    /** Append a finding; severity comes from the catalog. */
    void add(Code code, std::string object, std::string field,
             std::string message, std::string hint = "");

    /** Append every finding of @p other. */
    void merge(Report other);

    /** Stamp every un-stamped finding with the source file @p name. */
    void setFile(const std::string &name);

    /** All findings in emission order. */
    const std::vector<Diagnostic> &diagnostics() const { return items; }

    bool empty() const { return items.empty(); }
    /** Any error-severity finding? */
    bool hasErrors() const;
    size_t errorCount() const;
    size_t warningCount() const;
    /** Whether a finding with @p code is present. */
    bool hasCode(Code code) const;

    /** All findings rendered one per line. */
    std::string format() const;

  private:
    std::vector<Diagnostic> items;
};

/**
 * Thrown by the checkOrThrow wrappers. Derives from
 * std::invalid_argument so call sites (and tests) that predate the
 * lint layer keep catching what requireArg used to throw.
 */
class LintError : public std::invalid_argument
{
  public:
    explicit LintError(Report findings);

    /** The full report behind the exception message. */
    const Report &report() const { return findings; }

  private:
    Report findings;
};

/** Throw LintError when @p report contains error-severity findings. */
void throwOnErrors(const Report &report);

} // namespace lemons::lint

#endif // LEMONS_LINT_DIAGNOSTICS_H_
