/**
 * @file
 * Diagnostic engine for the lemons::lint design-rule checker.
 *
 * The paper's security guarantees are statistical statements about
 * carefully constrained designs (k-out-of-n share structures, positive
 * Weibull shape/scale, access bounds sized against attack budgets). A
 * misconfigured spec does not fail loudly — it silently weakens the
 * architecture, which is exactly the misconfiguration class targeted-
 * wearout attackers exploit. The lint layer rejects inconsistent
 * specs *before* any simulation runs.
 *
 * Every finding carries a stable diagnostic code (L001, L002, ...)
 * with a fixed default severity, the object/field it refers to, a
 * human message, and an optional fix-hint. Codes are append-only: a
 * published code never changes meaning, so tests, CI greps, and
 * suppression lists stay valid across releases.
 *
 * Code ranges:
 *   L0xx  DesignRequest / solver inputs
 *   L1xx  secret-sharing share counts vs. field size
 *   L2xx  series / parallel structure composition
 *   L3xx  one-time-pad tree configurations
 *   L4xx  fault-injection plans
 *   L5xx  M-way replication composition
 *   L6xx  usage-workload profiles
 *   L7xx  lifetime-mixture (bathtub) models
 *   L8xx  fleet lifecycle campaigns
 *   L9xx  spec-file parsing (CLI)
 *
 * The V range belongs to the whole-design static verifier
 * (lemons::verify over the lemons::ir architecture IR):
 *   V0xx  analytic bound propagation (certified [lo, hi] brackets)
 *   V1xx  structural rules (reachability, redundancy waste)
 *   V2xx  secret-flow analysis (taint from share sources to sinks)
 *   V9xx  IR lowering problems
 *
 * The C range names the fleet checkpoint failure modes (C101-C107,
 * raised as fleet::CheckpointError rather than Report findings), and
 * the A range belongs to the wear-budget analyzer (lemons::analysis):
 *   A0xx  access-budget dataflow (exhaustion, premature lockout,
 *         dead wear, certified consumption brackets)
 *   A1xx  adversary-success obligations (guessing, unbounded wearout)
 *
 * All four families share one registry (lint/code_registry.h) whose
 * id strings are compile-time checked for uniqueness.
 */

#ifndef LEMONS_LINT_DIAGNOSTICS_H_
#define LEMONS_LINT_DIAGNOSTICS_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/code_registry.h"

namespace lemons::lint {

/** How bad a finding is. Only Error makes checkOrThrow throw. */
enum class Severity {
    Note,    ///< informational context
    Warning, ///< legal but probably not what the designer meant
    Error,   ///< the spec violates a hard design rule
};

/** Lowercase severity name ("note" / "warning" / "error"). */
const char *severityName(Severity severity);

/*
 * The code table itself lives in lint/code_registry.h, shared with
 * the verify, fleet, and analysis families so ids cannot collide.
 */

/** Stable diagnostic identifiers. */
enum class Code {
#define LEMONS_LINT_ENUM(code, id, severity, title) code,
    LEMONS_CODE_TABLE(LEMONS_LINT_ENUM)
#undef LEMONS_LINT_ENUM
};

/** Catalog entry for one diagnostic code. */
struct CodeInfo
{
    Code code;
    const char *id;    ///< "L001"
    Severity severity; ///< default severity
    const char *title; ///< one-line rule statement
};

/** Catalog row for @p code. */
const CodeInfo &codeInfo(Code code);

/** The full append-only catalog, in code order (for --codes / docs). */
const std::vector<CodeInfo> &codeCatalog();

/** One finding. */
struct Diagnostic
{
    Code code;
    Severity severity; ///< copied from the catalog at creation
    std::string object; ///< e.g. "DesignRequest"
    std::string field;  ///< e.g. "device.alpha"; may be empty
    std::string message;
    std::string hint;   ///< optional fix-hint; may be empty
    std::string file;   ///< spec file (CLI runs); empty for API checks

    /** "L001". */
    const char *id() const { return codeInfo(code).id; }

    /** One-line rendering: file: [code] severity object.field: msg. */
    std::string format() const;
};

/** An ordered collection of findings from one or more rule passes. */
class Report
{
  public:
    /** Append a finding; severity comes from the catalog. */
    void add(Code code, std::string object, std::string field,
             std::string message, std::string hint = "");

    /** Append every finding of @p other. */
    void merge(Report other);

    /** Stamp every un-stamped finding with the source file @p name. */
    void setFile(const std::string &name);

    /** All findings in emission order. */
    const std::vector<Diagnostic> &diagnostics() const { return items; }

    bool empty() const { return items.empty(); }
    /** Any error-severity finding? */
    bool hasErrors() const;
    size_t errorCount() const;
    size_t warningCount() const;
    /** Whether a finding with @p code is present. */
    bool hasCode(Code code) const;

    /** All findings rendered one per line. */
    std::string format() const;

  private:
    std::vector<Diagnostic> items;
};

/**
 * Thrown by the checkOrThrow wrappers. Derives from
 * std::invalid_argument so call sites (and tests) that predate the
 * lint layer keep catching what requireArg used to throw.
 */
class LintError : public std::invalid_argument
{
  public:
    explicit LintError(Report findings);

    /** The full report behind the exception message. */
    const Report &report() const { return findings; }

  private:
    Report findings;
};

/** Throw LintError when @p report contains error-severity findings. */
void throwOnErrors(const Report &report);

} // namespace lemons::lint

#endif // LEMONS_LINT_DIAGNOSTICS_H_
