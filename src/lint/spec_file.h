/**
 * @file
 * Spec-file front end for the lemons-lint CLI.
 *
 * A spec file is a tiny INI dialect describing the configurations a
 * deployment intends to fabricate, so they can be design-rule-checked
 * without compiling anything or running a simulator:
 *
 *     # smartphone unlock, paper Section 5
 *     [design]
 *     alpha = 10
 *     beta = 12
 *     lab = 91250
 *     k_fraction = 0.2
 *     guess_space = 1e6
 *
 *     [fault]
 *     stuck_closed_rate = 0.001
 *
 * Sections may repeat; each is linted independently with the rule
 * passes from rules.h. Parsing problems are themselves diagnostics
 * (L9xx), so a CI run gets one uniform report for "the spec is
 * malformed" and "the spec describes an insecure design".
 *
 * Sections and keys:
 *   [design]    alpha beta lab k_fraction min_reliability
 *               max_residual_reliability upper_bound_target
 *               guess_space max_width max_per_copy_bound
 *   [structure] kind (series|parallel) n k alpha beta
 *   [shares]    n k field_bits
 *   [otp]       height copies threshold alpha beta
 *   [fault]     stuck_closed_rate infant_fraction
 *               infant_scale_fraction infant_shape glitch_rate
 *               alpha_drift_sigma beta_drift_sigma
 *   [mway]      m module_devices
 */

#ifndef LEMONS_LINT_SPEC_FILE_H_
#define LEMONS_LINT_SPEC_FILE_H_

#include <string>
#include <string_view>

#include "lint/diagnostics.h"

namespace lemons::lint {

/**
 * Lint spec text. @p filename is used only to stamp diagnostics.
 */
Report lintText(std::string_view text, const std::string &filename);

/**
 * Read and lint one spec file. An unreadable file yields an L901
 * error diagnostic rather than an exception.
 */
Report lintFile(const std::string &path);

} // namespace lemons::lint

#endif // LEMONS_LINT_SPEC_FILE_H_
