/**
 * @file
 * Spec-file front end for the lemons-lint CLI.
 *
 * A spec file is a tiny INI dialect describing the configurations a
 * deployment intends to fabricate, so they can be design-rule-checked
 * without compiling anything or running a simulator:
 *
 *     # smartphone unlock, paper Section 5
 *     [design]
 *     alpha = 10
 *     beta = 12
 *     lab = 91250
 *     k_fraction = 0.2
 *     guess_space = 1e6
 *
 *     [fault]
 *     stuck_closed_rate = 0.001
 *
 * Sections may repeat; each is linted independently with the rule
 * passes from rules.h. Parsing problems are themselves diagnostics
 * (L9xx), so a CI run gets one uniform report for "the spec is
 * malformed" and "the spec describes an insecure design".
 *
 * Sections and keys:
 *   [design]    alpha beta lab k_fraction min_reliability
 *               max_residual_reliability upper_bound_target
 *               guess_space guess_success_ceiling max_width
 *               max_per_copy_bound
 *   [structure] kind (series|parallel) n k alpha beta
 *               access_bound copies min_reliability max_residual
 *   [shares]    n k field_bits unguarded
 *   [otp]       height copies threshold alpha beta
 *               receiver_floor adversary_ceiling
 *   [fault]     stuck_closed_rate infant_fraction
 *               infant_scale_fraction infant_shape glitch_rate
 *               alpha_drift_sigma beta_drift_sigma
 *   [mway]      m module_devices
 *   [workload]  mean_per_day burst_probability burst_multiplier
 *               budget horizon_days
 *   [mixture]   infant_fraction infant_alpha infant_beta
 *               main_alpha main_beta
 *   [fleet]     devices seed chunk_size checkpoint_interval
 *               horizon_days premature_days premature_tolerance
 *   [cohort]    name weight stagger_days access_bound mean_per_day
 *               burst_probability burst_multiplier infant_fraction
 *               infant_alpha infant_beta main_alpha main_beta
 *               reprovision_day reprovision_scale
 *
 * A [cohort] section attaches to the most recent [fleet] section;
 * the fleet's cross-cohort rules (L8xx) run once the whole file is
 * parsed, so weight-sum checks see every cohort.
 *
 * Beyond linting, parseSpec() exposes the parsed sections as typed
 * structs so the static verifier (lemons::verify) can lower the same
 * file into the architecture IR without re-implementing the parser.
 */

#ifndef LEMONS_LINT_SPEC_FILE_H_
#define LEMONS_LINT_SPEC_FILE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/decision_tree.h"
#include "core/design_solver.h"
#include "fault/fault_plan.h"
#include "lint/diagnostics.h"
#include "lint/rules.h"

namespace lemons::lint {

/** A parsed [design] section: solver request plus lint context. */
struct DesignSection
{
    core::DesignRequest request;
    DesignLintOptions options;
};

/** A parsed [otp] section: tree params plus verify criteria. */
struct OtpSection
{
    core::OtpParams params;
    /** Floor for P(receiver reconstructs the pad); verify default 0.99. */
    std::optional<double> receiverFloor{};
    /** Ceiling for P(path-guessing adversary wins); default 1e-6. */
    std::optional<double> adversaryCeiling{};
};

/**
 * Every section of a spec file, parsed into the library's typed spec
 * structs. Sections whose values failed to parse (L905/L902) are
 * reported and omitted; sections that parse but violate design rules
 * are still included, so the verifier can analyse them anyway.
 */
struct ParsedSpec
{
    std::vector<DesignSection> designs;
    std::vector<StructureSpec> structures;
    std::vector<ShareSpec> shares;
    std::vector<OtpSection> otps;
    std::vector<fault::FaultPlan> faults;
    std::vector<MwaySpec> mways;
    std::vector<WorkloadSpec> workloads;
    std::vector<MixtureSpec> mixtures;
    std::vector<FleetSpec> fleets;

    bool empty() const
    {
        return designs.empty() && structures.empty() && shares.empty() &&
               otps.empty() && faults.empty() && mways.empty() &&
               workloads.empty() && mixtures.empty() && fleets.empty();
    }
};

/**
 * Parse spec text into typed sections, appending parse *and* rule
 * diagnostics to @p report. @p filename only stamps diagnostics.
 */
ParsedSpec parseSpec(std::string_view text, const std::string &filename,
                     Report &report);

/**
 * Lint spec text. @p filename is used only to stamp diagnostics.
 */
Report lintText(std::string_view text, const std::string &filename);

/**
 * Read and lint one spec file. An unreadable file yields an L901
 * error diagnostic rather than an exception.
 */
Report lintFile(const std::string &path);

/**
 * Read one spec file into typed sections (diagnostics into @p report;
 * an unreadable file yields L901 and an empty spec).
 */
ParsedSpec parseSpecFile(const std::string &path, Report &report);

} // namespace lemons::lint

#endif // LEMONS_LINT_SPEC_FILE_H_
