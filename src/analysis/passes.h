/**
 * @file
 * The wear-budget abstract interpreter over the architecture IR.
 *
 * Where the verifier (lemons::verify) brackets survival
 * *probabilities*, this pass brackets access *counts*: how many
 * accesses each node can serve before wearout exhausts it (capacity,
 * propagated source-to-sink) and how many the declared workloads will
 * push through it (demand, propagated sink-to-source). Both are
 * AccessBracket values composed with the certified interval
 * arithmetic from verify/interval.h:
 *
 *   - a Device bank of n switches serves E[1-of-n] expected accesses;
 *   - a Series chain of `count` stages serves the chain expectation;
 *   - a Parallel k-of-n combinator serves the order-statistic
 *     expectation E[accesses until fewer than k survive];
 *   - a Replicate node multiplies upstream capacity by its copy
 *     count and divides downstream demand per copy;
 *   - SecretSource / Store / Sink nodes consume nothing: their
 *     capacity is the lattice top (no wearout bound — which is
 *     precisely the A102 condition when a whole source-to-sink path
 *     is made of them).
 *
 * A cyclic graph (a lowering bug or a hostile spec) yields the
 * all-top vacuous result rather than a crash or an unsound claim.
 *
 * analyzeSpec* then joins the graph results with the demand side
 * (workload sections, fleet cohorts) and the adversary obligations
 * (guessing success against a declared ceiling) and emits the stable
 * A-code catalog:
 *
 *   A001 (error)   declared demand provably exhausts a budget
 *   A002 (error)   premature-lockout bracket exceeds the declared
 *                  fleet tolerance
 *   A003 (warning) dead wear: budget above kDeadWearFactor times the
 *                  peak declared demand
 *   A004 (note)    certified consumption / capacity brackets
 *   A101 (error)   guessing-adversary success bracket above ceiling
 *   A102 (error)   adversary access consumption unbounded by wearout
 *   A103 (warning) guessing bracket straddles the ceiling
 *   A104 (note)    guessing obligation discharged
 */

#ifndef LEMONS_ANALYSIS_PASSES_H_
#define LEMONS_ANALYSIS_PASSES_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/bracket.h"
#include "ir/graph.h"
#include "lint/diagnostics.h"
#include "lint/spec_file.h"
#include "verify/interval.h"

namespace lemons::analysis {

/** Per-node result of the budget dataflow. */
struct NodeBudget
{
    std::string kind;  ///< nodeKindName of the IR node
    std::string label; ///< the IR node's label
    /** Accesses the node can serve before wearout (top = unbounded). */
    AccessBracket capacity = AccessBracket::top();
    /** Declared demand routed through the node (top = undeclared). */
    AccessBracket demand = AccessBracket::top();
};

/** Whole-graph result of the budget dataflow. */
struct GraphBudget
{
    std::string graph; ///< IR graph name ("design", "share-layout"...)
    /** Cyclic or empty graph: every bracket is top, nothing decided. */
    bool vacuous = false;
    /** Dense by NodeId. */
    std::vector<NodeBudget> nodes;
    /** Join over sink nodes of gated capacity: the system budget. */
    AccessBracket systemCapacity = AccessBracket::top();
    /** The demand injected at the sinks (top when none declared). */
    AccessBracket systemDemand = AccessBracket::top();
};

/**
 * Run the capacity (forward) and demand (backward) dataflow over
 * @p graph. @p demand, when present, is the declared system-level
 * demand injected at every sink.
 */
GraphBudget propagateBudgets(const ir::Graph &graph,
                             std::optional<AccessBracket> demand = {});

/** Analyzer result for one [workload] section. */
struct WorkloadAnalysis
{
    /** Demand over the declared horizon (widened fixpoint when the
     *  horizon is absent). */
    AccessBracket demand = AccessBracket::top();
    /** Declared budget, when the section names one. */
    std::optional<double> budget{};
    /** Certified upper bound on P(realized demand exceeds budget). */
    double exhaustUpper = 0.0;
};

/** Analyzer result for one fleet cohort. */
struct CohortAnalysis
{
    std::string cohort;
    /** Certified premature-lockout probability bracket. */
    verify::Interval premature{0.0, 1.0};
    /** Demand bracket over the premature window. */
    AccessBracket windowDemand = AccessBracket::top();
    /** Demand bracket over the whole campaign horizon. */
    AccessBracket horizonDemand = AccessBracket::top();
};

/** Guessing-adversary obligation for one [design] section. */
struct AdversaryAnalysis
{
    std::string graph = "design";
    double guessSpace = 0.0;
    std::optional<double> ceiling{};
    /** Certified bracket on P(adversary guesses the secret) when the
     *  whole conceded access budget is spent on guesses. */
    verify::Interval success{0.0, 1.0};
};

/** Everything the analyzer derives from one spec file. */
struct FileAnalysis
{
    std::string file;
    std::vector<GraphBudget> graphs;
    std::vector<WorkloadAnalysis> workloads;
    std::vector<CohortAnalysis> cohorts;
    std::vector<AdversaryAnalysis> adversaries;
    /** A-range findings only (L/V are the other passes' business). */
    lint::Report findings;
};

/** Analyze a parsed spec (graphs, workloads, fleets, obligations). */
FileAnalysis analyzeSpec(const lint::ParsedSpec &parsed);

/** Parse and analyze spec text; @p filename stamps diagnostics. */
FileAnalysis analyzeSpecText(std::string_view text,
                             const std::string &filename);

/** Analyze one spec file; unreadable files yield an empty result
 *  (the lint pass reports L901). */
FileAnalysis analyzeSpecFile(const std::string &path);

} // namespace lemons::analysis

#endif // LEMONS_ANALYSIS_PASSES_H_
