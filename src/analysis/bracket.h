/**
 * @file
 * The wear-budget analyzer's abstract domain: access-count brackets.
 *
 * An AccessBracket [lo, hi] is a certified claim that a true access
 * count (a demand a workload generates, or a capacity a structure can
 * serve before wearout) lies inside the interval. hi = +inf is the
 * honest "unbounded above" element, so the domain is a lattice under
 * the hull join with top = [0, +inf]. The analyzer composes brackets
 * through the architecture IR (see passes.h) and through campaign
 * time loops, where the widening operator forces fixpoints to
 * converge instead of climbing the infinite chain of ever-longer
 * horizons — exactly the textbook interval-widening construction.
 *
 * The demand side turns the lint layer's stochastic workload specs
 * into certified brackets: a bursty daily profile (Poisson base rate
 * with Bernoulli burst days) has a closed-form mean and variance per
 * day, so a kDemandSigmas-sigma envelope around the horizon total,
 * padded by a Chernoff tail bound on the dominating Poisson, is a
 * bracket that contains the realized demand except with negligible
 * probability — and that residual probability is itself reported
 * (poissonExceedUpper) rather than silently dropped.
 *
 * Degenerate inputs (non-positive rates, NaN) yield the vacuous
 * top bracket rather than throwing: the fuzzers drive garbage
 * through here, and top is still a sound answer.
 */

#ifndef LEMONS_ANALYSIS_BRACKET_H_
#define LEMONS_ANALYSIS_BRACKET_H_

#include <cstdint>
#include <limits>

#include "lint/rules.h"
#include "verify/interval.h"

namespace lemons::analysis {

/** Sigma multiple for demand envelopes (tail mass < 1e-8 per side). */
inline constexpr double kDemandSigmas = 6.0;

/** Budget more than this multiple of peak demand is dead wear (A003). */
inline constexpr double kDeadWearFactor = 4.0;

/** A certified access-count bracket; hi = +inf means unbounded above. */
struct AccessBracket
{
    double lo = 0.0;
    double hi = std::numeric_limits<double>::infinity();

    /** The lattice top [0, +inf]: every access count. */
    static AccessBracket top()
    {
        return {0.0, std::numeric_limits<double>::infinity()};
    }

    /** The degenerate bracket [value, value]. */
    static AccessBracket point(double value) { return {value, value}; }

    bool unboundedAbove() const { return std::numeric_limits<double>::infinity() == hi; }
    bool isTop() const { return lo <= 0.0 && unboundedAbove(); }
    bool contains(double value) const { return lo <= value && value <= hi; }
};

/** Sum of independent counts: [a.lo + b.lo, a.hi + b.hi]. */
AccessBracket add(AccessBracket a, AccessBracket b);

/** Multiply both endpoints by @p factor >= 0 (0 * inf defined as 0). */
AccessBracket scale(AccessBracket a, double factor);

/** Bracket of min(x, y) for x in @p a, y in @p b (capacity gating). */
AccessBracket meetMin(AccessBracket a, AccessBracket b);

/** Lattice join: the convex hull [min lo, max hi]. */
AccessBracket join(AccessBracket a, AccessBracket b);

/**
 * Interval widening a NABLA b: endpoints of @p b that moved past
 * @p a jump straight to the lattice bound (0 below, +inf above), so
 * any ascending chain stabilizes in at most two steps.
 */
AccessBracket widen(AccessBracket a, AccessBracket b);

/** Per-day demand moments of a bursty workload profile. */
struct DailyDemand
{
    double mean = 0.0;     ///< E[daily accesses]
    double variance = 0.0; ///< Var[daily accesses]
};

/**
 * Mean and variance of one day's access count under @p workload:
 * a Poisson(m) day with probability 1-p and Poisson(m*b) with
 * probability p, so mean = m(1 + p(b-1)) and variance adds the
 * between-day term p(1-p)(m(b-1))^2 on top of the Poisson mean.
 * Degenerate rates yield {0, 0} with a NaN guard upstream.
 */
DailyDemand workloadDailyDemand(const lint::WorkloadSpec &workload);

/**
 * Certified bracket on total demand over @p horizonDays:
 * T*mean +/- kDemandSigmas * sqrt(T*variance), clamped at 0.
 * Vacuous (top) when the profile's moments are not finite.
 */
AccessBracket workloadDemand(const lint::WorkloadSpec &workload,
                             uint64_t horizonDays);

/**
 * Demand over an *unbounded* horizon, computed as the widening
 * fixpoint of the one-day transfer function F(x) = x + day:
 * x_{n+1} = x_n NABLA (x_n JOIN F(x_n)). Converges to
 * [day.lo, +inf] — the sound answer for a campaign loop with no
 * declared end.
 */
AccessBracket unboundedHorizonDemand(const lint::WorkloadSpec &workload);

/**
 * Chernoff upper bound on P(X >= bound) for X ~ Poisson(lambda):
 * exp(bound - lambda - bound*ln(bound/lambda)) when bound > lambda,
 * else 1. Returns 0 for lambda <= 0 with bound > 0.
 */
double poissonExceedUpper(double lambda, double bound);

/**
 * Certified Chernoff tail bound on the realized total demand over
 * @p horizonDays: an upper bound on P(total >= threshold) when
 * @p above, on P(total <= threshold) otherwise. Uses the exact
 * per-day moment generating function of the burst mixture (a
 * Poisson(m) day with probability 1-p, Poisson(m*b) with probability
 * p), minimized over a fixed grid of exponents — every grid point is
 * a valid bound, so the scan only tightens, never breaks, the
 * certificate. Degenerate profiles return 1.
 */
double demandTailBound(const lint::WorkloadSpec &workload,
                       uint64_t horizonDays, double threshold,
                       bool above);

/**
 * Certified upper bound on the probability the workload's realized
 * demand over @p horizonDays exceeds @p budget (the above-tail of
 * demandTailBound).
 */
double exhaustionProbabilityUpper(const lint::WorkloadSpec &workload,
                                  uint64_t horizonDays, double budget);

/**
 * Bracket on P(a device drawn from @p lifetime locks out once
 * @p demand accesses have been spent against a budget of
 * min(@p accessBound, lifetime draw)): the mixture lifetime CDF
 * evaluated at the demand endpoints through certified Weibull
 * reliability brackets; demand at or past the bound forces 1.
 */
verify::Interval lockoutProbability(const lint::MixtureSpec &lifetime,
                                    AccessBracket demand,
                                    double accessBound);

/**
 * Certified bracket on the probability one device of @p cohort locks
 * out before the fleet's premature-lockout day. The lower endpoint
 * assumes the latest possible provisioning (full stagger window
 * elapsed), the upper endpoint day-0 provisioning plus the Chernoff
 * spend tail, and a re-provisioning event inside the window scales
 * the usage envelope conservatively in both directions.
 */
verify::Interval prematureLockoutBracket(const lint::FleetCohortSpec &cohort,
                                         const lint::FleetSpec &fleet);

} // namespace lemons::analysis

#endif // LEMONS_ANALYSIS_BRACKET_H_
