#include "analysis/bracket.h"

#include <algorithm>
#include <cmath>

namespace lemons::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Endpoint product that defines 0 * inf = 0 (absorbing scale). */
double
scaleEndpoint(double endpoint, double factor)
{
    if (factor == 0.0 || endpoint == 0.0)
        return 0.0;
    return endpoint * factor;
}

/** NaN-proof normalization: any NaN endpoint collapses to top. */
AccessBracket
normalize(AccessBracket bracket)
{
    if (std::isnan(bracket.lo) || std::isnan(bracket.hi) ||
        bracket.lo > bracket.hi)
        return AccessBracket::top();
    bracket.lo = std::max(0.0, bracket.lo);
    return bracket;
}

} // namespace

AccessBracket
add(AccessBracket a, AccessBracket b)
{
    return normalize({a.lo + b.lo, a.hi + b.hi});
}

AccessBracket
scale(AccessBracket a, double factor)
{
    if (!(factor >= 0.0) || !std::isfinite(factor))
        return AccessBracket::top();
    return normalize(
        {scaleEndpoint(a.lo, factor), scaleEndpoint(a.hi, factor)});
}

AccessBracket
meetMin(AccessBracket a, AccessBracket b)
{
    return normalize({std::min(a.lo, b.lo), std::min(a.hi, b.hi)});
}

AccessBracket
join(AccessBracket a, AccessBracket b)
{
    return normalize({std::min(a.lo, b.lo), std::max(a.hi, b.hi)});
}

AccessBracket
widen(AccessBracket a, AccessBracket b)
{
    AccessBracket widened;
    widened.lo = b.lo < a.lo ? 0.0 : a.lo;
    widened.hi = b.hi > a.hi ? kInf : a.hi;
    return normalize(widened);
}

DailyDemand
workloadDailyDemand(const lint::WorkloadSpec &workload)
{
    const double m = workload.meanPerDay;
    const double p = workload.burstProbability;
    const double b = workload.burstMultiplier;
    if (!(m > 0.0) || !std::isfinite(m) || std::isnan(p) ||
        std::isnan(b) || !std::isfinite(b))
        return {0.0, 0.0};
    const double pc = std::clamp(p, 0.0, 1.0);
    const double extra = m * (std::max(b, 1.0) - 1.0);
    DailyDemand day;
    day.mean = m + pc * extra;
    // Law of total variance: Poisson within a day-type, Bernoulli
    // burst indicator between day-types.
    day.variance = day.mean + pc * (1.0 - pc) * extra * extra;
    return day;
}

AccessBracket
workloadDemand(const lint::WorkloadSpec &workload, uint64_t horizonDays)
{
    const DailyDemand day = workloadDailyDemand(workload);
    if (!(day.mean > 0.0))
        return AccessBracket::top();
    const double days = static_cast<double>(horizonDays);
    const double mean = days * day.mean;
    const double spread =
        kDemandSigmas * std::sqrt(days * day.variance);
    if (!std::isfinite(mean) || !std::isfinite(spread))
        return AccessBracket::top();
    return {std::max(0.0, mean - spread), mean + spread};
}

AccessBracket
unboundedHorizonDemand(const lint::WorkloadSpec &workload)
{
    const AccessBracket day = workloadDemand(workload, 1);
    if (day.isTop())
        return AccessBracket::top();
    // Textbook widening fixpoint of the one-day transfer function.
    // The chain [d.lo, d.hi], [d.lo, 2 d.hi], ... never stabilizes on
    // its own; widening jumps the climbing endpoint to +inf, after
    // which x = widen(x, join(x, x + day)) holds and the loop exits.
    AccessBracket state = day;
    for (int step = 0; step < 64; ++step) {
        const AccessBracket next =
            widen(state, join(state, add(state, day)));
        if (next.lo == state.lo && next.hi == state.hi)
            return state;
        state = next;
    }
    return AccessBracket::top();
}

double
poissonExceedUpper(double lambda, double bound)
{
    if (std::isnan(lambda) || std::isnan(bound))
        return 1.0;
    if (bound <= 0.0)
        return 1.0;
    if (lambda <= 0.0)
        return 0.0;
    if (bound <= lambda || !std::isfinite(lambda))
        return 1.0;
    const double exponent =
        bound - lambda - bound * std::log(bound / lambda);
    return std::min(1.0, std::exp(exponent));
}

namespace {

/** ln E[exp(t * X)] for one day's access count X under the burst
 *  mixture: log-sum-exp of the two Poisson MGF legs. */
double
dailyLogMgf(double m, double p, double b, double t)
{
    const double base = m * std::expm1(t);
    const double burst = m * std::max(b, 1.0) * std::expm1(t);
    if (p <= 0.0)
        return base;
    if (p >= 1.0)
        return burst;
    const double legBase = std::log1p(-p) + base;
    const double legBurst = std::log(p) + burst;
    const double peak = std::max(legBase, legBurst);
    return peak + std::log(std::exp(legBase - peak) +
                           std::exp(legBurst - peak));
}

} // namespace

double
demandTailBound(const lint::WorkloadSpec &workload, uint64_t horizonDays,
                double threshold, bool above)
{
    const double m = workload.meanPerDay;
    const double p = std::clamp(workload.burstProbability, 0.0, 1.0);
    const double b = workload.burstMultiplier;
    if (!(m > 0.0) || !std::isfinite(m) || std::isnan(p) ||
        std::isnan(b) || !std::isfinite(b) || std::isnan(threshold))
        return 1.0;
    const double days = static_cast<double>(horizonDays);
    if (days == 0.0) {
        // Zero in-service days: the total is exactly 0.
        return above ? (threshold <= 0.0 ? 1.0 : 0.0)
                     : (threshold >= 0.0 ? 1.0 : 0.0);
    }
    // Markov/Chernoff: P(S >= a) <= exp(T lnM(t) - t a) for every
    // t > 0, and P(S <= a) <= the same for every t < 0. Any grid
    // point is a valid certificate, so the scan can only tighten.
    double best = 1.0;
    double magnitude = 1e-4;
    for (int step = 0; step < 160; ++step, magnitude *= 1.1) {
        const double t = above ? magnitude : -magnitude;
        const double exponent =
            days * dailyLogMgf(m, p, b, t) - t * threshold;
        if (exponent < 0.0)
            best = std::min(best, std::exp(exponent));
    }
    // Outward slack dominating the rounding of the log-space scan.
    return std::min(1.0, best * (1.0 + 1e-9));
}

double
exhaustionProbabilityUpper(const lint::WorkloadSpec &workload,
                           uint64_t horizonDays, double budget)
{
    return demandTailBound(workload, horizonDays, budget, true);
}

namespace {

/**
 * Bracket on the lifetime-mixture CDF F(d) = P(lifetime <= d) via
 * certified Weibull survival brackets for both legs.
 */
verify::Interval
mixtureCdf(const lint::MixtureSpec &lifetime, double demand)
{
    const double f = std::clamp(lifetime.infantFraction, 0.0, 1.0);
    const verify::Interval infant =
        verify::deviceReliability(lifetime.infant, demand);
    const verify::Interval main =
        verify::deviceReliability(lifetime.main, demand);
    verify::Interval cdf;
    cdf.lo = f * (1.0 - infant.hi) + (1.0 - f) * (1.0 - main.hi);
    cdf.hi = f * (1.0 - infant.lo) + (1.0 - f) * (1.0 - main.lo);
    cdf.lo = std::clamp(cdf.lo, 0.0, 1.0);
    cdf.hi = std::clamp(cdf.hi, cdf.lo, 1.0);
    return cdf;
}

} // namespace

verify::Interval
lockoutProbability(const lint::MixtureSpec &lifetime,
                   AccessBracket demand, double accessBound)
{
    verify::Interval result;
    if (std::isnan(accessBound) || std::isnan(demand.lo) ||
        std::isnan(demand.hi))
        return {0.0, 1.0};
    result.lo = demand.lo >= accessBound
                    ? 1.0
                    : mixtureCdf(lifetime, demand.lo).lo;
    result.hi = demand.hi >= accessBound
                    ? 1.0
                    : mixtureCdf(lifetime, demand.hi).hi;
    result.lo = std::clamp(result.lo, 0.0, 1.0);
    result.hi = std::clamp(result.hi, result.lo, 1.0);
    return result;
}

verify::Interval
prematureLockoutBracket(const lint::FleetCohortSpec &cohort,
                        const lint::FleetSpec &fleet)
{
    const double window = static_cast<double>(fleet.prematureDays);
    const double stagger =
        std::isfinite(cohort.staggerDays)
            ? std::max(0.0, cohort.staggerDays)
            : window;

    // Usage-scale envelope when re-provisioning lands inside the
    // premature window (the second owner's multiplier applies to an
    // unknown suffix of the window, so stretch/shrink the whole
    // window's demand conservatively).
    double scaleLo = 1.0;
    double scaleHi = 1.0;
    if (cohort.reprovisionDay && *cohort.reprovisionDay < window &&
        std::isfinite(cohort.reprovisionUsageScale) &&
        cohort.reprovisionUsageScale >= 0.0) {
        scaleLo = std::min(1.0, cohort.reprovisionUsageScale);
        scaleHi = std::max(1.0, cohort.reprovisionUsageScale);
    }

    // Latest entrant: only (window - stagger) in-service days can have
    // elapsed before the premature cutoff. Earliest entrant: all of
    // them. The re-provisioning envelope scales the usage rate itself
    // so the Chernoff tails below see the same process.
    const auto windowDays = [](double days) {
        return static_cast<uint64_t>(std::max(0.0, days));
    };
    const auto scaledUsage = [&](double factor) {
        lint::WorkloadSpec usage = cohort.usage;
        usage.meanPerDay *= factor;
        return usage;
    };
    const lint::WorkloadSpec usageLo = scaledUsage(scaleLo);
    const lint::WorkloadSpec usageHi = scaledUsage(scaleHi);
    const uint64_t daysLo = windowDays(window - stagger);
    const uint64_t daysHi = windowDays(window);
    const AccessBracket demandLo = workloadDemand(usageLo, daysLo);
    const AccessBracket demandHi = workloadDemand(usageHi, daysHi);

    const double bound = static_cast<double>(cohort.accessBound);
    const verify::Interval low =
        lockoutProbability(cohort.lifetime,
                           AccessBracket::point(demandLo.lo), bound);
    const verify::Interval high =
        lockoutProbability(cohort.lifetime,
                           AccessBracket::point(demandHi.hi), bound);

    // The sigma envelope covers the spend randomness except for its
    // own tail mass; fold that residual into the endpoints so the
    // bracket stays a certificate rather than a heuristic. The lower
    // endpoint conditions on the latest entrant having spent at least
    // its envelope floor, the upper on the earliest entrant staying
    // under its ceiling.
    const double tailLow =
        demandTailBound(usageLo, daysLo, demandLo.lo, false);
    const double tailHigh =
        demandTailBound(usageHi, daysHi, demandHi.hi, true);
    verify::Interval result;
    result.lo = std::clamp(low.lo - tailLow, 0.0, 1.0);
    result.hi = std::clamp(high.hi + tailHigh, result.lo, 1.0);
    return result;
}

} // namespace lemons::analysis
