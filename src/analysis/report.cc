#include "analysis/report.h"

#include <sstream>

#include "obs/json.h"

namespace lemons::analysis {

namespace {

/** {"lo": x, "hi": y} with unbounded endpoints as null. */
void
writeBracket(obs::JsonWriter &json, double lo, double hi)
{
    json.beginObject();
    json.key("lo");
    json.value(lo);
    json.key("hi");
    json.value(hi); // non-finite (the lattice top) emits as null
    json.endObject();
}

void
writeBracket(obs::JsonWriter &json, AccessBracket bracket)
{
    writeBracket(json, bracket.lo, bracket.hi);
}

void
writeGraphs(obs::JsonWriter &json, const std::vector<GraphBudget> &graphs)
{
    json.beginArray();
    for (const GraphBudget &graph : graphs) {
        json.beginObject();
        json.key("graph");
        json.value(graph.graph);
        json.key("vacuous");
        json.value(graph.vacuous);
        json.key("system_capacity");
        writeBracket(json, graph.systemCapacity);
        json.key("system_demand");
        writeBracket(json, graph.systemDemand);
        json.key("nodes");
        json.beginArray();
        for (const NodeBudget &node : graph.nodes) {
            json.beginObject();
            json.key("kind");
            json.value(node.kind);
            json.key("label");
            json.value(node.label);
            json.key("capacity");
            writeBracket(json, node.capacity);
            json.key("demand");
            writeBracket(json, node.demand);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
}

void
writeWorkloads(obs::JsonWriter &json,
               const std::vector<WorkloadAnalysis> &workloads)
{
    json.beginArray();
    for (const WorkloadAnalysis &workload : workloads) {
        json.beginObject();
        json.key("demand");
        writeBracket(json, workload.demand);
        json.key("budget");
        if (workload.budget)
            json.value(*workload.budget);
        else
            json.null();
        json.key("exhaust_upper");
        json.value(workload.exhaustUpper);
        json.endObject();
    }
    json.endArray();
}

void
writeCohorts(obs::JsonWriter &json,
             const std::vector<CohortAnalysis> &cohorts)
{
    json.beginArray();
    for (const CohortAnalysis &cohort : cohorts) {
        json.beginObject();
        json.key("cohort");
        json.value(cohort.cohort);
        json.key("premature");
        writeBracket(json, cohort.premature.lo, cohort.premature.hi);
        json.key("window_demand");
        writeBracket(json, cohort.windowDemand);
        json.key("horizon_demand");
        writeBracket(json, cohort.horizonDemand);
        json.endObject();
    }
    json.endArray();
}

void
writeAdversaries(obs::JsonWriter &json,
                 const std::vector<AdversaryAnalysis> &adversaries)
{
    json.beginArray();
    for (const AdversaryAnalysis &adversary : adversaries) {
        json.beginObject();
        json.key("graph");
        json.value(adversary.graph);
        json.key("guess_space");
        json.value(adversary.guessSpace);
        json.key("ceiling");
        if (adversary.ceiling)
            json.value(*adversary.ceiling);
        else
            json.null();
        json.key("success");
        writeBracket(json, adversary.success.lo, adversary.success.hi);
        json.endObject();
    }
    json.endArray();
}

} // namespace

void
writeFindingsJson(obs::JsonWriter &json, const lint::Report &findings)
{
    json.beginArray();
    for (const lint::Diagnostic &diagnostic : findings.diagnostics()) {
        json.beginObject();
        json.key("code");
        json.value(diagnostic.id());
        json.key("severity");
        json.value(lint::severityName(diagnostic.severity));
        json.key("object");
        json.value(diagnostic.object);
        json.key("field");
        json.value(diagnostic.field);
        json.key("message");
        json.value(diagnostic.message);
        json.key("hint");
        json.value(diagnostic.hint);
        json.endObject();
    }
    json.endArray();
}

void
writeFileAnalysisJson(obs::JsonWriter &json, const AnalyzedFile &file)
{
    json.beginObject();
    json.key("file");
    json.value(file.analysis.file);
    json.key("findings");
    writeFindingsJson(json, file.findings);
    json.key("graphs");
    writeGraphs(json, file.analysis.graphs);
    json.key("workloads");
    writeWorkloads(json, file.analysis.workloads);
    json.key("cohorts");
    writeCohorts(json, file.analysis.cohorts);
    json.key("adversaries");
    writeAdversaries(json, file.analysis.adversaries);
    json.endObject();
}

std::string
renderAnalysisJson(const std::vector<AnalyzedFile> &files)
{
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value(kAnalyzeSchema);

    size_t errors = 0;
    size_t warnings = 0;
    json.key("files");
    json.beginArray();
    for (const AnalyzedFile &file : files) {
        errors += file.findings.errorCount();
        warnings += file.findings.warningCount();
        writeFileAnalysisJson(json, file);
    }
    json.endArray();

    json.key("errors");
    json.value(static_cast<uint64_t>(errors));
    json.key("warnings");
    json.value(static_cast<uint64_t>(warnings));
    json.endObject();
    out << '\n';
    return out.str();
}

} // namespace lemons::analysis
