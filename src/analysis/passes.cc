#include "analysis/passes.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/design_solver.h"
#include "ir/lower.h"

namespace lemons::analysis {

namespace {

using lint::Code;

/** Shortest round-trip rendering of a number for messages. */
std::string
num(double v)
{
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    std::ostringstream out;
    out << v;
    return out.str();
}

std::string
bracketText(AccessBracket bracket)
{
    return "[" + num(bracket.lo) + ", " + num(bracket.hi) + "]";
}

std::string
bracketText(verify::Interval interval)
{
    return "[" + num(interval.lo) + ", " + num(interval.hi) + "]";
}

/** Accesses the node itself can serve before wearout exhausts it. */
AccessBracket
ownCapacity(const ir::Node &node)
{
    verify::Interval expected;
    switch (node.kind) {
    case ir::NodeKind::Device:
        expected =
            verify::expectedStructureAccesses(node.device, node.n, 1, 0);
        break;
    case ir::NodeKind::Parallel:
        expected = verify::expectedStructureAccesses(node.device, node.n,
                                                     node.k, 0);
        break;
    case ir::NodeKind::Series:
        expected = verify::expectedStructureAccesses(node.device, 1, 1,
                                                     node.count);
        break;
    default: {
        // SecretSource / Store / Sink / Replicate wear nothing out:
        // their capacity is exactly +inf (the identity under the
        // min-composition), not the vacuous top whose lower endpoint
        // would drag every downstream bracket to zero.
        const double inf = std::numeric_limits<double>::infinity();
        return {inf, inf};
    }
    }
    return {expected.lo, expected.hi};
}

} // namespace

GraphBudget
propagateBudgets(const ir::Graph &graph,
                 std::optional<AccessBracket> demand)
{
    GraphBudget result;
    result.graph = graph.name();
    result.nodes.assign(graph.size(), NodeBudget{});
    for (ir::NodeId id = 0; id < graph.size(); ++id) {
        result.nodes[id].kind = ir::nodeKindName(graph.node(id).kind);
        result.nodes[id].label = graph.node(id).label;
    }
    if (demand)
        result.systemDemand = *demand;

    const std::vector<ir::NodeId> topo = graph.topoOrder();
    if (graph.size() == 0 || topo.empty()) {
        // Empty or cyclic: not an architecture. Every bracket stays
        // top — vacuous but sound.
        result.vacuous = true;
        return result;
    }

    std::vector<std::vector<ir::NodeId>> preds(graph.size());
    for (ir::NodeId id = 0; id < graph.size(); ++id)
        for (ir::NodeId succ : graph.successors(id))
            preds[succ].push_back(id);

    // Forward capacity flow: what each node can still deliver to its
    // successors, gated by its own wearout expectation. A Replicate
    // node multiplies the upstream capacity by its copy count.
    std::vector<AccessBracket> outFlow(graph.size());
    const double inf = std::numeric_limits<double>::infinity();
    for (ir::NodeId id : topo) {
        const ir::Node &node = graph.node(id);
        // Entry nodes draw on an unlimited upstream supply: the
        // min-identity [inf, inf], not the vacuous top whose zero
        // lower endpoint would survive every min downstream.
        AccessBracket inflow{inf, inf};
        bool first = true;
        for (ir::NodeId pred : preds[id]) {
            inflow = first ? outFlow[pred] : join(inflow, outFlow[pred]);
            first = false;
        }
        AccessBracket flow = meetMin(ownCapacity(node), inflow);
        result.nodes[id].capacity = flow;
        outFlow[id] = node.kind == ir::NodeKind::Replicate
                          ? scale(flow, static_cast<double>(node.count))
                          : flow;
    }

    // The system budget: join over the sinks (terminal nodes when the
    // graph has no explicit Sink) of the gated capacity reaching them.
    bool sawSink = false;
    AccessBracket capacity = AccessBracket::top();
    const auto fold = [&](ir::NodeId id) {
        capacity = sawSink ? join(capacity, outFlow[id]) : outFlow[id];
        sawSink = true;
    };
    for (ir::NodeId id = 0; id < graph.size(); ++id)
        if (graph.node(id).kind == ir::NodeKind::Sink)
            fold(id);
    if (!sawSink)
        for (ir::NodeId id = 0; id < graph.size(); ++id)
            if (graph.successors(id).empty())
                fold(id);
    result.systemCapacity = capacity;

    // Backward demand flow: declared system demand enters at the
    // sinks; a Replicate spreads it serially over its copies, so each
    // upstream copy sees demand / count.
    if (demand) {
        std::vector<AccessBracket> demandAt(graph.size(),
                                            AccessBracket::point(0.0));
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
            const ir::NodeId id = *it;
            const ir::Node &node = graph.node(id);
            if (node.kind == ir::NodeKind::Sink ||
                graph.successors(id).empty()) {
                demandAt[id] = *demand;
            } else {
                AccessBracket flowBack = AccessBracket::point(0.0);
                bool first = true;
                for (ir::NodeId succ : graph.successors(id)) {
                    const ir::Node &succNode = graph.node(succ);
                    AccessBracket back =
                        succNode.kind == ir::NodeKind::Replicate
                            ? scale(demandAt[succ],
                                    1.0 / static_cast<double>(std::max<
                                              uint64_t>(1, succNode.count)))
                            : demandAt[succ];
                    flowBack = first ? back : join(flowBack, back);
                    first = false;
                }
                demandAt[id] = flowBack;
            }
            result.nodes[id].demand = demandAt[id];
        }
    }
    return result;
}

namespace {

/** A001/A102/A004 per lowered graph. */
void
analyzeGraphs(const lint::ParsedSpec &parsed,
              std::optional<AccessBracket> demand, FileAnalysis &out)
{
    lint::Report scratch; // V901 belongs to --verify, not --analyze
    const std::vector<ir::Graph> graphs = ir::lowerSpec(parsed, scratch);
    for (const ir::Graph &graph : graphs) {
        GraphBudget budget = propagateBudgets(graph, demand);
        const std::string object = budget.graph;
        if (!budget.vacuous) {
            if (budget.systemCapacity.unboundedAbove()) {
                out.findings.add(
                    Code::A102, object, "system-capacity",
                    "a source-to-sink path avoids every wearout gate: "
                    "an adversary's access consumption is unbounded, "
                    "so the limited-use guarantee is void",
                    "route every path through a Device/Series/Parallel "
                    "wearout structure");
            } else {
                out.findings.add(
                    Code::A004, object, "system-capacity",
                    "certified system access capacity " +
                        bracketText(budget.systemCapacity) +
                        " expected accesses before wearout exhaustion");
            }
            if (demand && !demand->isTop() &&
                demand->lo > budget.systemCapacity.hi) {
                out.findings.add(
                    Code::A001, object, "system-capacity",
                    "declared workload demand " + bracketText(*demand) +
                        " provably exceeds the certified capacity " +
                        bracketText(budget.systemCapacity),
                    "provision more copies/width or reduce the "
                    "declared usage");
            }
        }
        out.graphs.push_back(std::move(budget));
    }
}

/** A001/A003/A004 per [workload] section. */
void
analyzeWorkloads(const lint::ParsedSpec &parsed, FileAnalysis &out)
{
    for (const lint::WorkloadSpec &workload : parsed.workloads) {
        WorkloadAnalysis analysis;
        analysis.demand =
            workload.horizonDays
                ? workloadDemand(workload, *workload.horizonDays)
                : unboundedHorizonDemand(workload);
        const std::string object = "[workload]";
        out.findings.add(
            Code::A004, object, "demand",
            "certified demand bracket " + bracketText(analysis.demand) +
                " accesses over " +
                (workload.horizonDays
                     ? std::to_string(*workload.horizonDays) + " days"
                     : std::string("an unbounded horizon (widened)")));
        if (workload.budgetAccesses) {
            const double budget =
                static_cast<double>(*workload.budgetAccesses);
            analysis.budget = budget;
            if (workload.horizonDays)
                analysis.exhaustUpper = exhaustionProbabilityUpper(
                    workload, *workload.horizonDays, budget);
            if (analysis.demand.lo > budget) {
                out.findings.add(
                    Code::A001, object, "budget",
                    "demand bracket " + bracketText(analysis.demand) +
                        " provably exhausts the declared budget of " +
                        num(budget) + " accesses before the horizon ends",
                    "raise the budget or reduce the usage rate");
            } else if (!analysis.demand.unboundedAbove() &&
                       budget > kDeadWearFactor * analysis.demand.hi) {
                out.findings.add(
                    Code::A003, object, "budget",
                    "budget " + num(budget) + " exceeds " +
                        num(kDeadWearFactor) +
                        "x the peak certified demand " +
                        num(analysis.demand.hi) +
                        ": most of the provisioned wearout life is "
                        "unreachable",
                    "size the budget nearer the demand envelope so "
                    "exhaustion stays a meaningful security bound");
            }
        }
        out.workloads.push_back(analysis);
    }
}

/** A002/A003/A004 per fleet cohort. */
void
analyzeFleets(const lint::ParsedSpec &parsed, FileAnalysis &out)
{
    for (const lint::FleetSpec &fleet : parsed.fleets) {
        for (size_t i = 0; i < fleet.cohorts.size(); ++i) {
            const lint::FleetCohortSpec &cohort = fleet.cohorts[i];
            const std::string object = "[fleet]";
            const std::string field =
                "cohorts[" + std::to_string(i) + "] '" + cohort.name +
                "'";
            CohortAnalysis analysis;
            analysis.cohort = cohort.name;
            analysis.premature = prematureLockoutBracket(cohort, fleet);
            analysis.windowDemand =
                workloadDemand(cohort.usage, fleet.prematureDays);
            analysis.horizonDemand =
                workloadDemand(cohort.usage, fleet.horizonDays);
            out.findings.add(
                Code::A004, object, field,
                "certified premature-lockout bracket " +
                    bracketText(analysis.premature) + " before day " +
                    std::to_string(fleet.prematureDays));
            if (fleet.prematureTolerance &&
                analysis.premature.lo > *fleet.prematureTolerance) {
                out.findings.add(
                    Code::A002, object, field,
                    "premature-lockout bracket " +
                        bracketText(analysis.premature) +
                        " provably exceeds the declared tolerance " +
                        num(*fleet.prematureTolerance),
                    "raise the access bound, slow the usage profile, "
                    "or screen the infant-mortality leg");
            }
            const double bound = static_cast<double>(cohort.accessBound);
            if (!analysis.horizonDemand.isTop() &&
                !analysis.horizonDemand.unboundedAbove() &&
                bound > kDeadWearFactor * analysis.horizonDemand.hi) {
                out.findings.add(
                    Code::A003, object, field,
                    "access bound " + num(bound) + " exceeds " +
                        num(kDeadWearFactor) +
                        "x the certified horizon demand " +
                        num(analysis.horizonDemand.hi) +
                        ": the budget can never be consumed",
                    "size the bound nearer the horizon demand");
            }
            out.cohorts.push_back(std::move(analysis));
        }
    }
}

/** A101/A103/A104 per [design] section with a declared guess space. */
void
analyzeAdversaries(const lint::ParsedSpec &parsed, FileAnalysis &out)
{
    for (const lint::DesignSection &section : parsed.designs) {
        if (!section.options.guessSpace)
            continue;
        const double space = *section.options.guessSpace;
        if (!(space > 0.0) || !std::isfinite(space))
            continue;
        core::Design design;
        try {
            design = core::DesignSolver(section.request).solve();
        } catch (const lint::LintError &) {
            continue; // the lint pass already condemned the request
        }
        if (!design.feasible)
            continue;

        // The access budget the hardware concedes to a guessing
        // adversary: the certified expected system total, stretched
        // to the declared upper-bound target when one exists.
        const verify::Interval perCopy =
            verify::expectedStructureAccesses(section.request.device,
                                              design.width,
                                              design.threshold, 0);
        const double copies = static_cast<double>(design.copies);
        double budgetLo = perCopy.lo * copies;
        double budgetHi = perCopy.hi * copies;
        if (section.request.upperBoundTarget)
            budgetHi = std::max(
                budgetHi,
                static_cast<double>(*section.request.upperBoundTarget));

        AdversaryAnalysis adversary;
        adversary.guessSpace = space;
        adversary.ceiling = section.options.guessSuccessCeiling;
        adversary.success.lo = std::min(1.0, budgetLo / space);
        adversary.success.hi = std::min(1.0, budgetHi / space);
        if (std::isnan(adversary.success.lo) ||
            std::isnan(adversary.success.hi))
            adversary.success = {0.0, 1.0};

        const std::string object = "design";
        const std::string claim =
            "guessing-adversary success bracket " +
            bracketText(adversary.success) + " over a guess space of " +
            num(space);
        if (adversary.ceiling) {
            const double ceiling = *adversary.ceiling;
            if (adversary.success.lo > ceiling) {
                out.findings.add(
                    Code::A101, object, "guess-success",
                    claim + " provably exceeds the declared ceiling " +
                        num(ceiling),
                    "enlarge the guess space or shrink the conceded "
                    "access budget");
            } else if (adversary.success.hi > ceiling) {
                out.findings.add(
                    Code::A103, object, "guess-success",
                    claim + " straddles the declared ceiling " +
                        num(ceiling) +
                        ": the obligation is honestly undecided");
            } else {
                out.findings.add(Code::A104, object, "guess-success",
                                 claim +
                                     " stays below the declared "
                                     "ceiling " +
                                     num(ceiling));
            }
        } else {
            out.findings.add(Code::A004, object, "guess-success", claim);
        }
        out.adversaries.push_back(std::move(adversary));
    }
}

} // namespace

FileAnalysis
analyzeSpec(const lint::ParsedSpec &parsed)
{
    FileAnalysis out;

    // The hull over every declared workload is the demand injected
    // into the architecture graphs: a sound envelope whichever usage
    // profile the deployment actually follows.
    std::optional<AccessBracket> demand;
    for (const lint::WorkloadSpec &workload : parsed.workloads) {
        const AccessBracket bracket =
            workload.horizonDays
                ? workloadDemand(workload, *workload.horizonDays)
                : unboundedHorizonDemand(workload);
        demand = demand ? join(*demand, bracket) : bracket;
    }

    analyzeGraphs(parsed, demand, out);
    analyzeWorkloads(parsed, out);
    analyzeFleets(parsed, out);
    analyzeAdversaries(parsed, out);
    return out;
}

FileAnalysis
analyzeSpecText(std::string_view text, const std::string &filename)
{
    // The lint pass owns the L-range; parse findings go to a scratch
    // report so an --analyze run never duplicates them.
    lint::Report parseFindings;
    const lint::ParsedSpec parsed =
        lint::parseSpec(text, filename, parseFindings);
    FileAnalysis out = analyzeSpec(parsed);
    out.file = filename;
    out.findings.setFile(filename);
    return out;
}

FileAnalysis
analyzeSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        FileAnalysis out;
        out.file = path;
        return out;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return analyzeSpecText(buffer.str(), path);
}

} // namespace lemons::analysis
