/**
 * @file
 * Machine-readable reporting for the wear-budget analyzer.
 *
 * `lemons-lint --json` emits one `lemons-analyze/1` document per run:
 * every finding the run produced (L/V/A merged, in emission order)
 * plus the analyzer's certified brackets — per-graph capacity/demand
 * dataflow results, per-workload demand envelopes, per-cohort
 * premature-lockout brackets, and the guessing-adversary obligations.
 * Unbounded bracket endpoints (the lattice top) serialize as JSON
 * null, matching the obs::JsonWriter convention for non-finite
 * doubles, so consumers can distinguish "certified huge" from
 * "unbounded".
 */

#ifndef LEMONS_ANALYSIS_REPORT_H_
#define LEMONS_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "analysis/passes.h"
#include "lint/diagnostics.h"

namespace lemons::obs {
class JsonWriter;
} // namespace lemons::obs

namespace lemons::analysis {

/** The JSON schema identifier emitted at the document root. */
inline constexpr const char *kAnalyzeSchema = "lemons-analyze/1";

/** One spec file's merged findings plus its analyzer results. */
struct AnalyzedFile
{
    /** All findings for the file (L + optional V + A, merged). */
    lint::Report findings;
    /** The analyzer's brackets (analysis.file names the file). */
    FileAnalysis analysis;
};

/**
 * Write @p findings as a JSON array of diagnostic objects
 * ({code, severity, object, field, message, hint}). Exposed so the
 * lemons::api envelope codec emits byte-identical finding objects.
 */
void writeFindingsJson(obs::JsonWriter &json, const lint::Report &findings);

/**
 * Write one analyzed file as a JSON object ({file, findings, graphs,
 * workloads, cohorts, adversaries}) — the per-file payload both the
 * legacy `lemons-analyze/1` document and the `lemons-api/1` analyze
 * result are built from.
 */
void writeFileAnalysisJson(obs::JsonWriter &json, const AnalyzedFile &file);

/** Render the whole run as a `lemons-analyze/1` JSON document. */
std::string renderAnalysisJson(const std::vector<AnalyzedFile> &files);

} // namespace lemons::analysis

#endif // LEMONS_ANALYSIS_REPORT_H_
