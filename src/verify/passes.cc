#include "verify/passes.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <string>
#include <vector>

#include "util/math.h"
#include "verify/interval.h"

namespace lemons::verify {

namespace {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::Obligation;
using lint::Code;
using lint::Report;

std::string
num(double value)
{
    std::ostringstream out;
    out.precision(6);
    out << value;
    return out.str();
}

std::string
bracket(const Interval &interval)
{
    return "[" + num(interval.lo) + ", " + num(interval.hi) + "]";
}

/**
 * Certified survival bracket of @p id at access @p x, composed from
 * its (first) predecessor. The visiting set makes hand-built cyclic
 * graphs terminate with the vacuous bracket instead of recursing.
 */
Interval
survivalAt(const Graph &graph, NodeId id, double x,
           std::vector<char> &visiting)
{
    if (visiting[id] != 0)
        return Interval{0.0, 1.0};
    visiting[id] = 1;
    const Node &node = graph.node(id);
    const auto fromPred = [&]() -> Interval {
        const std::vector<NodeId> preds = graph.predecessors(id);
        if (preds.empty())
            return Interval{1.0, 1.0};
        return survivalAt(graph, preds.front(), x, visiting);
    };
    Interval out{0.0, 1.0};
    switch (node.kind) {
    case NodeKind::Device:
        out = deviceReliability(node.device, x);
        break;
    case NodeKind::Series:
        out = powInterval(fromPred(), static_cast<double>(node.count));
        break;
    case NodeKind::Parallel:
        out = parallelReliability(node.n, node.k, fromPred());
        break;
    case NodeKind::SecretSource:
    case NodeKind::Replicate:
    case NodeKind::Store:
    case NodeKind::Sink:
        out = fromPred();
        break;
    }
    visiting[id] = 0;
    return out;
}

Interval
survivalAt(const Graph &graph, NodeId id, double x)
{
    std::vector<char> visiting(graph.size(), 0);
    return survivalAt(graph, id, x, visiting);
}

void
checkSurvivalFloor(const Graph &graph, const Obligation &obligation,
                   Report &report)
{
    const std::string field = graph.node(obligation.target).label;
    const Interval s = survivalAt(graph, obligation.target,
                                  obligation.access);
    const std::string claim = "P(survive " + num(obligation.access) +
                              " accesses) in " + bracket(s);
    if (s.lo >= obligation.floor) {
        report.add(Code::V001, graph.name(), field,
                   claim + " >= floor " + num(obligation.floor) +
                       " — certified");
    } else if (s.hi < obligation.floor) {
        report.add(Code::V002, graph.name(), field,
                   claim + " < floor " + num(obligation.floor),
                   "widen the structure or lower the access bound");
    } else {
        report.add(Code::V004, graph.name(), field,
                   claim + " straddles floor " + num(obligation.floor));
    }
}

void
checkResidualCeiling(const Graph &graph, const Obligation &obligation,
                     Report &report)
{
    const std::string field = graph.node(obligation.target).label;
    const Interval s = survivalAt(graph, obligation.target,
                                  obligation.access);
    const std::string claim = "P(survive " + num(obligation.access) +
                              " accesses) in " + bracket(s);
    if (s.hi <= obligation.ceiling) {
        report.add(Code::V001, graph.name(), field,
                   claim + " <= ceiling " + num(obligation.ceiling) +
                       " — certified");
    } else if (s.lo > obligation.ceiling) {
        report.add(Code::V003, graph.name(), field,
                   claim + " > ceiling " + num(obligation.ceiling),
                   "the structure outlives its death check: attackers "
                   "get extra accesses");
    } else {
        report.add(Code::V004, graph.name(), field,
                   claim + " straddles ceiling " +
                       num(obligation.ceiling));
    }
}

void
checkExpectedTotal(const Graph &graph, const Obligation &obligation,
                   Report &report)
{
    // The obligation targets the Replicate node; the structure whose
    // per-copy expectation is summed sits right behind it (or is the
    // target itself in hand-built graphs).
    const Node &target = graph.node(obligation.target);
    NodeId structId = obligation.target;
    double copies = 1.0;
    if (target.kind == NodeKind::Replicate) {
        copies = static_cast<double>(target.count);
        const std::vector<NodeId> preds =
            graph.predecessors(obligation.target);
        if (preds.empty())
            return;
        structId = preds.front();
    }
    const Node &structure = graph.node(structId);
    Interval per{0.0, 0.0};
    switch (structure.kind) {
    case NodeKind::Parallel:
        per = expectedStructureAccesses(structure.device, structure.n,
                                        structure.k, 0);
        break;
    case NodeKind::Series:
        per = expectedStructureAccesses(structure.device, 1, 1,
                                        structure.count);
        break;
    case NodeKind::Device:
        per = expectedStructureAccesses(structure.device, structure.n,
                                        1, 0);
        break;
    default:
        return; // nothing access-bearing to sum over
    }
    const Interval total{per.lo * copies, per.hi * copies};
    const std::string field = structure.label;
    const std::string claim =
        "E[system total accesses] in " + bracket(total);
    bool pass = true;
    if (obligation.hasFloor) {
        // The legitimate-access floor is a *capacity* claim: N copies
        // each rated for t accesses serve N * t by construction (the
        // expectation sits slightly below N * t because copies can die
        // just before their bound — that is the paper's accepted
        // 1 - minReliability slice, not an architecture defect).
        const double capacity = copies * obligation.access;
        if (capacity < obligation.floor) {
            report.add(Code::V005, graph.name(), field,
                       "rated capacity " + num(capacity) + " (" +
                           num(copies) + " copies x " +
                           num(obligation.access) +
                           " accesses) < required " +
                           num(obligation.floor),
                       "add copies or widen the per-copy structure");
            pass = false;
        }
    }
    if (obligation.hasCeiling) {
        if (total.lo > obligation.ceiling) {
            report.add(Code::V006, graph.name(), field,
                       claim + " > upper-bound target " +
                           num(obligation.ceiling),
                       "the architecture concedes more accesses than "
                       "the attack budget allows");
            pass = false;
        } else if (total.hi > obligation.ceiling) {
            report.add(Code::V004, graph.name(), field,
                       claim + " straddles the upper-bound target " +
                           num(obligation.ceiling));
            pass = false;
        }
    }
    if (pass)
        report.add(Code::V001, graph.name(), field,
                   claim + " — within the required window, certified");
}

void
checkOtpBounds(const Graph &graph, const Obligation &obligation,
               Report &report)
{
    const Node &target = graph.node(obligation.target);
    const std::string field = target.label;
    const unsigned height =
        static_cast<unsigned>(std::max(0.0, obligation.access));

    const Interval receiver = survivalAt(graph, obligation.target, 1.0);
    const std::vector<NodeId> preds =
        graph.predecessors(obligation.target);
    const Interval path = preds.empty()
                              ? Interval{0.0, 1.0}
                              : survivalAt(graph, preds.front(), 1.0);
    const Interval adversary =
        otpAdversarySuccess(target.n, target.k, height, path);

    bool pass = true;
    const std::string receiverClaim =
        "P(receiver recovers the pad) in " + bracket(receiver);
    if (receiver.hi < obligation.floor) {
        report.add(Code::V008, graph.name(), field,
                   receiverClaim + " < delivery floor " +
                       num(obligation.floor),
                   "raise copies or lower the threshold");
        pass = false;
    } else if (receiver.lo < obligation.floor) {
        report.add(Code::V004, graph.name(), field,
                   receiverClaim + " straddles the delivery floor " +
                       num(obligation.floor));
        pass = false;
    }
    const std::string adversaryClaim =
        "P(random-path adversary wins) in " + bracket(adversary);
    if (adversary.lo > obligation.ceiling) {
        report.add(Code::V007, graph.name(), field,
                   adversaryClaim + " > ceiling " +
                       num(obligation.ceiling),
                   "increase the tree height (paths grow as 2^(H-1))");
        pass = false;
    } else if (adversary.hi > obligation.ceiling) {
        report.add(Code::V004, graph.name(), field,
                   adversaryClaim + " straddles the ceiling " +
                       num(obligation.ceiling));
        pass = false;
    }
    if (pass)
        report.add(Code::V001, graph.name(), field,
                   receiverClaim + ", " + adversaryClaim +
                       " — certified");
}

/** Forward BFS over successors from the given seed set. */
std::vector<char>
forwardReach(const Graph &graph, const std::vector<NodeId> &seeds)
{
    std::vector<char> seen(graph.size(), 0);
    std::deque<NodeId> queue(seeds.begin(), seeds.end());
    for (const NodeId id : seeds)
        seen[id] = 1;
    while (!queue.empty()) {
        const NodeId id = queue.front();
        queue.pop_front();
        for (const NodeId next : graph.successors(id)) {
            if (seen[next] == 0) {
                seen[next] = 1;
                queue.push_back(next);
            }
        }
    }
    return seen;
}

/** Backward BFS (over predecessors) from every Sink node. */
std::vector<char>
backwardReachFromSinks(const Graph &graph)
{
    std::vector<char> seen(graph.size(), 0);
    std::deque<NodeId> queue;
    for (NodeId id = 0; id < graph.size(); ++id) {
        if (graph.node(id).kind == NodeKind::Sink) {
            seen[id] = 1;
            queue.push_back(id);
        }
    }
    while (!queue.empty()) {
        const NodeId id = queue.front();
        queue.pop_front();
        for (const NodeId pred : graph.predecessors(id)) {
            if (seen[pred] == 0) {
                seen[pred] = 1;
                queue.push_back(pred);
            }
        }
    }
    return seen;
}

void
checkRedundancyWaste(const Graph &graph, Report &report)
{
    for (const Obligation &obligation : graph.obligations()) {
        if (obligation.kind != Obligation::Kind::SurvivalFloor)
            continue;
        const Node &target = graph.node(obligation.target);
        if (target.kind != NodeKind::Parallel || target.k == 0 ||
            target.n <= target.k)
            continue;
        const Interval rIv =
            deviceReliability(target.device, obligation.access);
        const double r = 0.5 * (rIv.lo + rIv.hi);
        if (!(r > 0.0) || !(r < 1.0))
            continue;
        double residualR = -1.0;
        double residualCeiling = 0.0;
        for (const Obligation &other : graph.obligations()) {
            if (other.kind == Obligation::Kind::ResidualCeiling &&
                other.target == obligation.target) {
                const Interval iv =
                    deviceReliability(target.device, other.access);
                residualR = 0.5 * (iv.lo + iv.hi);
                residualCeiling = other.ceiling;
            }
        }
        if (binomialTailAtLeast(target.n, target.k, r) <
            obligation.floor)
            continue; // the floor is not even met: V002 territory
        // Probe the half-width structure with the encoding ratio k/n
        // preserved (shrinking a solved design re-derives k from the
        // kFraction, so a fixed-k probe would spuriously condemn
        // solver-minimal widths). If half the devices still meet both
        // of the node's own criteria, the full width is waste.
        const uint64_t half = target.n / 2;
        if (half < 1 || target.n - half < 8)
            continue;
        const double ratio = static_cast<double>(target.k) /
                             static_cast<double>(target.n);
        const uint64_t halfK = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::ceil(ratio * static_cast<double>(half))));
        if (binomialTailAtLeast(half, halfK, r) < obligation.floor)
            continue;
        if (residualR >= 0.0 &&
            binomialTailAtLeast(half, halfK, residualR) >
                residualCeiling)
            continue; // the shrink would outlive its death check
        report.add(Code::V102, graph.name(), target.label,
                   "width " + std::to_string(target.n) +
                       " is redundancy waste: " + std::to_string(half) +
                       " devices (threshold " + std::to_string(halfK) +
                       ") already meet this node's reliability "
                       "obligations",
                   "shrink the structure: extra devices cost die "
                   "area without buying security");
    }
}

} // namespace

Report
runBoundPass(const Graph &graph)
{
    Report report;
    if (graph.size() > 0 && graph.topoOrder().empty()) {
        report.add(Code::V901, graph.name(), "",
                   "the graph is cyclic: it does not describe an "
                   "architecture");
        return report;
    }
    for (const Obligation &obligation : graph.obligations()) {
        switch (obligation.kind) {
        case Obligation::Kind::SurvivalFloor:
            checkSurvivalFloor(graph, obligation, report);
            break;
        case Obligation::Kind::ResidualCeiling:
            checkResidualCeiling(graph, obligation, report);
            break;
        case Obligation::Kind::ExpectedTotal:
            checkExpectedTotal(graph, obligation, report);
            break;
        case Obligation::Kind::OtpBounds:
            checkOtpBounds(graph, obligation, report);
            break;
        }
    }
    return report;
}

Report
runStructuralPass(const Graph &graph)
{
    Report report;
    if (graph.size() == 0)
        return report;

    std::vector<NodeId> entries;
    std::vector<size_t> inDegree(graph.size(), 0);
    for (NodeId id = 0; id < graph.size(); ++id) {
        for (const NodeId next : graph.successors(id))
            ++inDegree[next];
    }
    for (NodeId id = 0; id < graph.size(); ++id) {
        if (inDegree[id] == 0)
            entries.push_back(id);
    }

    bool hasSink = false;
    for (NodeId id = 0; id < graph.size(); ++id)
        hasSink = hasSink || graph.node(id).kind == NodeKind::Sink;

    if (hasSink) {
        const std::vector<char> fwd = forwardReach(graph, entries);
        const std::vector<char> bwd = backwardReachFromSinks(graph);
        for (NodeId id = 0; id < graph.size(); ++id) {
            const bool onPath = fwd[id] != 0 && bwd[id] != 0;
            if (onPath)
                continue;
            const Node &node = graph.node(id);
            report.add(Code::V101, graph.name(), node.label,
                       std::string(nodeKindName(node.kind)) + " '" +
                           node.label + "' lies on no source-to-sink "
                           "path",
                       "dead hardware: remove it or wire it into the "
                       "access path");
            if (node.faultPlan) {
                report.add(Code::V103, graph.name(), node.label,
                           "a fault plan targets '" + node.label +
                               "', which the design never traverses: "
                               "its faults cannot manifest",
                           "attach the plan to a node on the access "
                           "path");
            }
        }
    }

    checkRedundancyWaste(graph, report);
    return report;
}

Report
runSecretFlowPass(const Graph &graph)
{
    Report report;
    if (graph.size() == 0)
        return report;

    // reachesSink[x]: any path x ->* Sink.
    const std::vector<char> reachesSink = backwardReachFromSinks(graph);

    // unguarded[x]: x can reach a sink along a path whose nodes after
    // x contain no wearout Device gate. Fixpoint over the (possibly
    // cyclic, for hand-built graphs) edge set.
    std::vector<char> unguarded(graph.size(), 0);
    for (NodeId id = 0; id < graph.size(); ++id)
        unguarded[id] = graph.node(id).kind == NodeKind::Sink ? 1 : 0;
    for (size_t round = 0; round < graph.size(); ++round) {
        bool changed = false;
        for (NodeId id = 0; id < graph.size(); ++id) {
            if (unguarded[id] != 0)
                continue;
            for (const NodeId next : graph.successors(id)) {
                if (graph.node(next).kind != NodeKind::Device &&
                    unguarded[next] != 0) {
                    unguarded[id] = 1;
                    changed = true;
                    break;
                }
            }
        }
        if (!changed)
            break;
    }

    for (NodeId id = 0; id < graph.size(); ++id) {
        const Node &source = graph.node(id);
        if (source.kind != NodeKind::SecretSource)
            continue;
        bool anyReach = false;
        uint64_t guardedShares = 0;
        for (const NodeId branch : graph.successors(id)) {
            const Node &head = graph.node(branch);
            const bool reaches = reachesSink[branch] != 0;
            anyReach = anyReach || reaches;
            const bool leaks =
                head.kind != NodeKind::Device && unguarded[branch] != 0;
            if (leaks) {
                report.add(
                    Code::V201, graph.name(), head.label,
                    std::to_string(head.n) + " share(s) of '" +
                        source.label + "' reach the sink through '" +
                        head.label + "' without traversing any "
                        "wearout gate",
                    "an attacker reads these shares without spending "
                    "device lifetime: put a NEMS gate in front");
            } else if (reaches) {
                guardedShares += head.n;
            }
        }
        if (!anyReach) {
            report.add(Code::V203, graph.name(), source.label,
                       "no share of '" + source.label +
                           "' reaches any sink: the key can never be "
                           "reconstructed",
                       "connect the share store to the release path");
            continue;
        }
        if (guardedShares < source.shareThreshold) {
            report.add(
                Code::V202, graph.name(), source.label,
                "only " + std::to_string(guardedShares) +
                    " share(s) sit behind wearout gates, below the "
                    "reconstruction threshold " +
                    std::to_string(source.shareThreshold),
                "the secret is recoverable without wearing anything "
                "out; guard at least k shares");
        }
    }
    return report;
}

Report
verifyGraph(const Graph &graph)
{
    Report report = runBoundPass(graph);
    report.merge(runStructuralPass(graph));
    report.merge(runSecretFlowPass(graph));
    return report;
}

} // namespace lemons::verify
