/**
 * @file
 * The verifier's analysis passes over the architecture IR.
 *
 * Three passes, each a pure function Graph -> Report emitting V-range
 * diagnostics through the lemons::lint engine:
 *
 *  - bound propagation (V0xx): composes certified survival brackets
 *    through the graph (series = product, k-of-n = binomial tail,
 *    expected totals = survival sums) and decides each obligation as
 *    PASS (V001 note), FAIL (V002/V003/V005/V006/V007 error, V008
 *    warning), or honestly inconclusive (V004) when the criterion
 *    lies inside the bracket;
 *
 *  - structural rules (V1xx): source-to-sink reachability (V101 dead
 *    nodes, V103 fault plans on never-traversed nodes) and
 *    redundancy-waste detection (V102: parallel width at least twice
 *    the minimum meeting the node's own reliability obligations);
 *
 *  - secret flow (V2xx): taints share material at SecretSource nodes
 *    and flags branches that reach a sink without traversing a
 *    wearout Device gate (V201), sources with fewer than
 *    shareThreshold shares behind gates (V202), and sources that
 *    cannot reach any sink at all (V203).
 */

#ifndef LEMONS_VERIFY_PASSES_H_
#define LEMONS_VERIFY_PASSES_H_

#include "ir/graph.h"
#include "lint/diagnostics.h"

namespace lemons::verify {

/** V0xx: certify every obligation against propagated brackets. */
lint::Report runBoundPass(const ir::Graph &graph);

/** V1xx: reachability and redundancy-waste rules. */
lint::Report runStructuralPass(const ir::Graph &graph);

/** V2xx: secret-share taint from sources to sinks. */
lint::Report runSecretFlowPass(const ir::Graph &graph);

/** All three passes, merged in the order above. */
lint::Report verifyGraph(const ir::Graph &graph);

} // namespace lemons::verify

#endif // LEMONS_VERIFY_PASSES_H_
