#include "verify/verifier.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "ir/lower.h"
#include "lint/spec_file.h"
#include "verify/passes.h"

namespace lemons::verify {

lint::Report
verifySpecText(std::string_view text, const std::string &filename)
{
    // The lint pass owns the L-range; parse findings go to a scratch
    // report so a --verify run never duplicates them.
    lint::Report parseFindings;
    const lint::ParsedSpec parsed =
        lint::parseSpec(text, filename, parseFindings);

    lint::Report report;
    const std::vector<ir::Graph> graphs = ir::lowerSpec(parsed, report);
    for (const ir::Graph &graph : graphs)
        report.merge(verifyGraph(graph));
    report.setFile(filename);
    return report;
}

lint::Report
verifySpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return verifySpecText(buffer.str(), path);
}

} // namespace lemons::verify
