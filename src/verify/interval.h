/**
 * @file
 * Interval arithmetic over Weibull survival probabilities.
 *
 * The verifier's claims are brackets: every composition rule the
 * paper uses (series = product, k-of-n = binomial tail, expected
 * totals = survival sums) is evaluated at interval endpoints —
 * legitimate because each composed quantity is monotone in its
 * per-element survival probability — and then widened *outward* by a
 * conservative relative slack that dominates the floating-point
 * rounding of the underlying log-space evaluators. A returned
 * [lo, hi] is therefore a certificate: the true analytic value lies
 * inside, so a criterion strictly outside the bracket is decided,
 * and a criterion inside it is honestly reported as inconclusive
 * (V004) instead of being coin-flipped by rounding.
 *
 * Degenerate inputs (non-positive alpha/beta, k = 0, NaN) yield the
 * vacuous bracket [0, 1] (or [0, inf] for expectations) rather than
 * throwing: the fuzzers drive garbage through here, and a vacuous
 * answer is still a *sound* answer.
 */

#ifndef LEMONS_VERIFY_INTERVAL_H_
#define LEMONS_VERIFY_INTERVAL_H_

#include <cstdint>

#include "wearout/device.h"

namespace lemons::verify {

/** A closed bracket [lo, hi] certified to contain the true value. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    bool contains(double value) const { return lo <= value && value <= hi; }
    double width() const { return hi - lo; }
};

/** Relative outward slack for elementary evaluations (exp/pow). */
inline constexpr double kElemRel = 1e-12;
/** Relative outward slack for binomial-tail / log-sum evaluations. */
inline constexpr double kTailRel = 1e-9;

/** [v(1-rel), v(1+rel)] clamped to [0, 1]; vacuous on NaN. */
Interval widenProbability(double value, double rel);

/** R(x) = exp(-(x/alpha)^beta) as a certified bracket. */
Interval deviceReliability(const wearout::DeviceSpec &device, double access);

/** base^exponent for base a probability bracket, exponent >= 0. */
Interval powInterval(Interval base, double exponent);

/**
 * P(X >= k) for X ~ Binomial(n, p) with p a probability bracket
 * (monotone non-decreasing in p, so endpoint evaluation is exact up
 * to rounding). k = 0 gives [1, 1]; k > n gives [0, 0].
 */
Interval parallelReliability(uint64_t n, uint64_t k, Interval p);

/**
 * Expected accesses one structure survives: sum_{j>=1} S(j) where
 * S(j) = P(Bin(n, r(j)) >= k) for a parallel structure, or r(j)^count
 * for a series chain (pass n = count, k = 0 series sentinel via
 * @p seriesCount). The truncated tail is covered by the certified
 * bound  sum_{j>J} S(j) <= n * (alpha/beta) * U^(1/beta - 1) * r(J)
 * with U = (J/alpha)^beta (incomplete-gamma envelope; valid because
 * S(j) <= n * r(j) and r is decreasing).
 */
Interval expectedStructureAccesses(const wearout::DeviceSpec &device,
                                   uint64_t n, uint64_t k,
                                   uint64_t seriesCount);

/**
 * OTP adversary success (paper Eq. 13-15) as a bracket: per-copy
 * traversal success s in @p pathSuccess, right-path probability
 * 2^-(height-1); monotone non-decreasing in s.
 */
Interval otpAdversarySuccess(uint64_t copies, uint64_t threshold,
                             unsigned height, Interval pathSuccess);

} // namespace lemons::verify

#endif // LEMONS_VERIFY_INTERVAL_H_
