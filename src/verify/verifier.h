/**
 * @file
 * Spec-file drivers for the static verifier.
 *
 * These glue the pieces together for the `lemons-lint --verify` CLI
 * mode and the cross-validation tests: parse a `.lemons` file with
 * the lint front end, lower every architecture-bearing section into
 * the IR, and run the three analysis passes over each graph. Only
 * V-range diagnostics are returned — the plain lint pass reports the
 * L-range separately, so a CLI run that does both never duplicates a
 * finding.
 */

#ifndef LEMONS_VERIFY_VERIFIER_H_
#define LEMONS_VERIFY_VERIFIER_H_

#include <string>
#include <string_view>

#include "lint/diagnostics.h"

namespace lemons::verify {

/**
 * Verify spec text: parse, lower (V901 on sections that cannot lower),
 * and run all passes on every resulting graph. @p filename stamps the
 * diagnostics. Parse-level L-range findings are *not* included.
 */
lint::Report verifySpecText(std::string_view text,
                            const std::string &filename);

/**
 * Verify one spec file. An unreadable file yields an empty report —
 * the lint pass (which always runs first in the CLI) reports L901.
 */
lint::Report verifySpecFile(const std::string &path);

} // namespace lemons::verify

#endif // LEMONS_VERIFY_VERIFIER_H_
