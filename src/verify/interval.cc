#include "verify/interval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/math.h"

namespace lemons::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** The vacuous probability bracket: sound for any true value. */
constexpr Interval
vacuous()
{
    return Interval{0.0, 1.0};
}

bool
validDevice(const wearout::DeviceSpec &device)
{
    return std::isfinite(device.alpha) && device.alpha > 0.0 &&
           std::isfinite(device.beta) && device.beta > 0.0;
}

/** Scalar R(j) for a pre-validated device. */
double
scalarReliability(const wearout::DeviceSpec &device, double access)
{
    const double u = std::pow(access / device.alpha, device.beta);
    const double r = std::exp(-u);
    return std::isnan(r) ? 0.0 : r;
}

} // namespace

Interval
widenProbability(double value, double rel)
{
    if (std::isnan(value))
        return vacuous();
    const double clamped = std::clamp(value, 0.0, 1.0);
    const double slack = rel * clamped + 1e-300;
    return Interval{std::max(0.0, clamped - slack),
                    std::min(1.0, clamped + slack)};
}

Interval
deviceReliability(const wearout::DeviceSpec &device, double access)
{
    if (!validDevice(device) || !(access >= 0.0) ||
        !std::isfinite(access))
        return vacuous();
    if (access == 0.0)
        return Interval{1.0, 1.0};
    return widenProbability(scalarReliability(device, access), kElemRel);
}

Interval
powInterval(Interval base, double exponent)
{
    if (!(exponent >= 0.0) || !std::isfinite(exponent))
        return vacuous();
    if (exponent == 0.0)
        return Interval{1.0, 1.0};
    const double lo = std::pow(std::clamp(base.lo, 0.0, 1.0), exponent);
    const double hi = std::pow(std::clamp(base.hi, 0.0, 1.0), exponent);
    return Interval{widenProbability(lo, kElemRel).lo,
                    widenProbability(hi, kElemRel).hi};
}

Interval
parallelReliability(uint64_t n, uint64_t k, Interval p)
{
    if (k == 0)
        return Interval{1.0, 1.0};
    if (k > n)
        return Interval{0.0, 0.0};
    const double lo =
        binomialTailAtLeast(n, k, std::clamp(p.lo, 0.0, 1.0));
    const double hi =
        binomialTailAtLeast(n, k, std::clamp(p.hi, 0.0, 1.0));
    return Interval{widenProbability(lo, kTailRel).lo,
                    widenProbability(hi, kTailRel).hi};
}

Interval
expectedStructureAccesses(const wearout::DeviceSpec &device, uint64_t n,
                          uint64_t k, uint64_t seriesCount)
{
    if (!validDevice(device))
        return Interval{0.0, kInf};
    const bool series = seriesCount > 0;
    if (!series) {
        if (k == 0)
            return Interval{0.0, kInf}; // never fails: unbounded E
        if (n == 0 || k > n)
            return Interval{0.0, 0.0};
    }

    // Partial sum with per-term outward widening, truncated once terms
    // are negligible relative to the accumulated total.
    constexpr uint64_t kMaxTerms = 4'000'000;
    double lo = 0.0;
    double hi = 0.0;
    uint64_t lastJ = 0;
    for (uint64_t j = 1; j <= kMaxTerms; ++j) {
        const double r = scalarReliability(device,
                                           static_cast<double>(j));
        double s = series ? std::pow(r, static_cast<double>(seriesCount))
                          : binomialTailAtLeast(n, k, r);
        if (std::isnan(s) || s < 0.0)
            s = 0.0;
        lo += s * (1.0 - kTailRel);
        hi += s * (1.0 + kTailRel);
        lastJ = j;
        if (s == 0.0 || (hi > 0.0 && s < hi * 1e-15))
            break;
    }

    // Certified truncation tail: S(j) <= factor * r(j), r decreasing,
    // and  sum_{j>J} r(j) <= integral_J^inf r  = (a/b) Gamma(1/b, U)
    // with U = (J/a)^b. For 1/b <= 1 the integrand envelope gives
    // Gamma(1/b, U) <= U^(1/b-1) e^-U; for 1/b > 1 the same times
    // U / (U - (1/b - 1)), valid once U clears 1/b - 1.
    const double a = device.alpha;
    const double b = device.beta;
    const double J = static_cast<double>(lastJ);
    const double U = std::pow(J / a, b);
    const double s1 = 1.0 / b - 1.0;
    const double factor =
        series ? 1.0 : static_cast<double>(n);
    double tail = kInf;
    if (U > std::max(0.0, s1)) {
        tail = factor * (a / b) * std::pow(U, s1) * std::exp(-U);
        if (s1 > 0.0)
            tail *= U / (U - s1);
    }
    if (!std::isfinite(tail))
        return Interval{lo, kInf};
    return Interval{lo, hi + tail};
}

namespace {

/** Scalar Eq. 13-15 at per-copy traversal success @p s. */
double
adversaryAt(uint64_t copies, uint64_t threshold, unsigned height,
            double s)
{
    if (threshold == 0)
        return 1.0;
    if (threshold > copies)
        return 0.0;
    const double pRight =
        height >= 1 ? std::ldexp(1.0, -(static_cast<int>(height) - 1))
                    : 1.0;
    std::vector<double> terms;
    terms.reserve(static_cast<size_t>(copies - threshold + 1));
    for (uint64_t x = threshold; x <= copies; ++x) {
        terms.push_back(logBinomialPmf(copies, x, s) +
                        logBinomialTailAtLeast(x, threshold, pRight));
    }
    const double result = std::exp(logSumExp(terms));
    return std::isnan(result) ? 1.0 : result;
}

} // namespace

Interval
otpAdversarySuccess(uint64_t copies, uint64_t threshold, unsigned height,
                    Interval pathSuccess)
{
    // O(copies) log-space terms per endpoint; bail out to the vacuous
    // bracket on absurd widths a fuzzer might feed in.
    if (copies > 200'000)
        return vacuous();
    const double lo = adversaryAt(copies, threshold, height,
                                  std::clamp(pathSuccess.lo, 0.0, 1.0));
    const double hi = adversaryAt(copies, threshold, height,
                                  std::clamp(pathSuccess.hi, 0.0, 1.0));
    // The log-sum accumulates one rounding per term; 1e-7 relative
    // slack dominates it for any copies under the cap.
    return Interval{widenProbability(lo, 1e-7).lo,
                    widenProbability(hi, 1e-7).hi};
}

} // namespace lemons::verify
