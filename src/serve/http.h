/**
 * @file
 * Minimal HTTP/1.1 machinery for lemonsd: an incremental request
 * parser and a response renderer. No external dependency — the
 * serving layer's transport needs are a strict subset of HTTP
 * (one request per connection, explicit Content-Length bodies), so a
 * few hundred lines beat linking a framework the container may not
 * have.
 *
 * The parser is byte-incremental: feed() it whatever recv() produced
 * and ask whether a full request has materialized. Every way a
 * request can be malformed maps to a stable S-code plus the HTTP
 * status the server should answer with (400 malformed, 413 oversized
 * body, 431 oversized header block), so the error path produces the
 * same machine-readable envelopes as every other failure.
 *
 * Deliberate non-features: no chunked transfer encoding (rejected,
 * not ignored), no multi-line header folding (obsolete per RFC 7230),
 * no keep-alive (lemonsd answers and closes; clients are CI scripts
 * and dashboards, not browsers fetching sprite sheets).
 */

#ifndef LEMONS_SERVE_HTTP_H_
#define LEMONS_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/diagnostics.h"

namespace lemons::serve {

/** One parsed request. Header names are stored lowercased. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< origin-form path, e.g. "/v1/solve"
    std::string version; ///< "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by (case-insensitive) name; nullptr when absent. */
    const std::string *header(std::string_view name) const;
};

/** Limits the parser enforces while bytes arrive. */
struct HttpLimits
{
    /** Ceiling on the declared Content-Length (S005 -> 413). */
    size_t maxBodyBytes = 1u << 20;
    /** Ceiling on start-line + headers together (S006 -> 431). */
    size_t maxHeaderBytes = 16u << 10;
};

/**
 * Incremental request parser. Feed bytes until complete() or
 * failed(); a failed parse reports the diagnostic code, a
 * human-readable reason, and the HTTP status to answer with.
 */
class RequestParser
{
  public:
    explicit RequestParser(HttpLimits limits = {});

    /** Consume the next chunk of received bytes. No-op once done. */
    void feed(std::string_view bytes);

    /** Signal end-of-stream (peer closed before a full request). */
    void finish();

    bool complete() const { return phase == Phase::Complete; }
    bool failed() const { return phase == Phase::Error; }

    /** @pre complete(). */
    const HttpRequest &request() const { return parsed; }

    /** @pre failed(). */
    lint::Code errorCode() const { return code; }
    int errorStatus() const { return status; }
    const std::string &errorMessage() const { return message; }

  private:
    enum class Phase { Head, Body, Complete, Error };

    void fail(lint::Code diagnostic, int httpStatus, std::string why);
    /** Try to cut a full head (start-line + headers) out of buffer. */
    void parseHead();
    bool parseStartLine(std::string_view line);
    bool parseHeaderLine(std::string_view line);
    /** Validate Content-Length et al. once the head is in. */
    void finishHead();

    HttpLimits limits;
    Phase phase = Phase::Head;
    std::string buffer;
    HttpRequest parsed;
    size_t contentLength = 0;
    lint::Code code = lint::Code::S006;
    int status = 400;
    std::string message;
};

/** One response to render. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    /** Extra headers (e.g. Retry-After, Allow). */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/** Standard reason phrase for the statuses lemonsd emits. */
const char *reasonPhrase(int status);

/** Serialize status line, headers (Content-Length, Connection:
 *  close, extras), blank line, and body. */
std::string renderResponse(const HttpResponse &response);

} // namespace lemons::serve

#endif // LEMONS_SERVE_HTTP_H_
