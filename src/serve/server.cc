#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "api/codec.h"
#include "engine/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lemons::serve {

namespace {

/** Envelope carrying exactly one S-code diagnostic. */
std::string
errorEnvelope(lint::Code code, const std::string &message,
              const std::string &hint = "")
{
    lint::Report report;
    report.add(code, "request", "", message, hint);
    return api::renderEnvelope(report);
}

/** Bump the serve.responses.<class> counter for @p status. */
void
countResponse(int status)
{
    LEMONS_OBS_INCREMENT("serve.responses");
    if (status < 300)
        LEMONS_OBS_INCREMENT("serve.responses.2xx");
    else if (status < 500)
        LEMONS_OBS_INCREMENT("serve.responses.4xx");
    else
        LEMONS_OBS_INCREMENT("serve.responses.5xx");
}

void
setSocketTimeout(int fd, std::chrono::milliseconds timeout)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

} // namespace

Server::Server(ServerOptions options)
    : opts(std::move(options)), quota(opts.quota)
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    const auto failWith = [&](const char *what) {
        if (error != nullptr) {
            std::ostringstream out;
            out << what << ": " << std::strerror(errno);
            *error = out.str();
        }
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        return false;
    };

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        return failWith("socket");

    const int enable = 1;
    setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    if (::inet_pton(AF_INET, opts.address.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return failWith("inet_pton");
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return failWith("bind");
    if (::listen(listenFd, 64) != 0)
        return failWith("listen");

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                      &boundLen) != 0)
        return failWith("getsockname");
    listenPort = ntohs(bound.sin_port);

    // Pre-grow the pool so the first burst of requests runs
    // concurrently instead of serializing behind worker creation.
    engine::ThreadPool::global().submit([] {}, opts.workers);

    // The one thread lemonsd owns: it only accepts and hands off.
    // LEMONS-TIDY-ALLOW(T001): the acceptor blocks in poll()/accept()
    // and must not occupy a pool worker; request handlers all run on
    // the pool via submit().
    acceptor = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::acceptLoop()
{
    while (!drainRequested.load(std::memory_order_acquire)) {
        pollfd watched{};
        watched.fd = listenFd;
        watched.events = POLLIN;
        // Short poll timeout keeps drain latency bounded without a
        // wakeup pipe: worst case the loop notices beginDrain() 50 ms
        // late.
        const int ready = ::poll(&watched, 1, 50);
        if (ready <= 0)
            continue;

        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        LEMONS_OBS_INCREMENT("serve.accepted");
        setSocketTimeout(fd, opts.socketTimeout);

        {
            std::lock_guard<std::mutex> lock(mu);
            if (inflightCount >= opts.maxInflight) {
                // Reject on the acceptor: a full queue must shed load
                // without consuming the very workers it is waiting on.
                LEMONS_OBS_INCREMENT("serve.rejected.queue");
                HttpResponse response;
                response.status = 503;
                response.body = errorEnvelope(
                    lint::Code::S009,
                    "admission queue is full; retry shortly");
                response.headers.emplace_back("Retry-After", "1");
                countResponse(response.status);
                writeAll(fd, renderResponse(response));
                ::close(fd);
                continue;
            }
            ++inflightCount;
        }

        engine::ThreadPool::global().submit(
            [this, fd] {
                handleConnection(fd);
                finishRequest();
            },
            opts.workers);
    }
    acceptorDone.store(true, std::memory_order_release);
}

void
Server::finishRequest()
{
    std::lock_guard<std::mutex> lock(mu);
    --inflightCount;
    if (inflightCount == 0)
        idle.notify_all();
}

size_t
Server::inflight() const
{
    std::lock_guard<std::mutex> lock(mu);
    return inflightCount;
}

void
Server::handleConnection(int fd)
{
    LEMONS_OBS_SCOPED_TIMER("serve.request");
    RequestParser parser(opts.http);
    char chunk[4096];
    while (!parser.complete() && !parser.failed()) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0) {
            // Timeout or reset: whatever arrived is all there is.
            parser.finish();
            break;
        }
        if (got == 0) {
            parser.finish();
            break;
        }
        LEMONS_OBS_COUNT("serve.bytes_in", static_cast<uint64_t>(got));
        parser.feed(std::string_view(chunk, static_cast<size_t>(got)));
    }

    HttpResponse response;
    if (parser.failed()) {
        LEMONS_OBS_INCREMENT("serve.rejected.malformed");
        response.status = parser.errorStatus();
        response.body =
            errorEnvelope(parser.errorCode(), parser.errorMessage());
    } else if (!parser.complete()) {
        response.status = 400;
        response.body = errorEnvelope(lint::Code::S006,
                                      "request never completed");
    } else {
        response = route(parser.request());
    }

    countResponse(response.status);
    const std::string rendered = renderResponse(response);
    LEMONS_OBS_COUNT("serve.bytes_out",
                     static_cast<uint64_t>(rendered.size()));
    writeAll(fd, rendered);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

HttpResponse
Server::route(const HttpRequest &request)
{
    HttpResponse response;
    try {
        LEMONS_OBS_INCREMENT("serve.requests");

        // Drain check happens per-request so a connection that was
        // admitted just before beginDrain() still gets a response,
        // while one racing past the acceptor gets a clean 503.
        if (draining() && request.target != "/v1/healthz" &&
            request.target != "/metrics") {
            LEMONS_OBS_INCREMENT("serve.rejected.drain");
            response.status = 503;
            response.body = errorEnvelope(
                lint::Code::S008,
                "server is draining: new requests refused");
            return response;
        }

        const bool isGet = request.method == "GET";
        const bool isPost = request.method == "POST";
        const auto methodNotAllowed = [&](const char *allow) {
            response.status = 405;
            response.headers.emplace_back("Allow", allow);
            response.body = errorEnvelope(
                lint::Code::S004,
                request.method + " is not allowed on " + request.target,
                std::string("use ") + allow);
        };

        if (request.target == "/v1/healthz") {
            if (!isGet) {
                methodNotAllowed("GET");
                return response;
            }
            lint::Report empty;
            const bool drainingNow = draining();
            response.body = api::renderEnvelope(
                empty, [drainingNow](obs::JsonWriter &json) {
                    json.beginObject();
                    json.key("status");
                    json.value(drainingNow ? "draining" : "serving");
                    json.endObject();
                });
            return response;
        }

        if (request.target == "/metrics") {
            if (!isGet) {
                methodNotAllowed("GET");
                return response;
            }
            response.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            response.body = obs::Registry::global().toPrometheus();
            return response;
        }

        const bool knownPost = request.target == "/v1/solve" ||
            request.target == "/v1/lint" ||
            request.target == "/v1/verify" ||
            request.target == "/v1/analyze" ||
            request.target == "/v1/mc/run";
        if (!knownPost) {
            response.status = 404;
            response.body = errorEnvelope(
                lint::Code::S003,
                "no endpoint at \"" + request.target + "\"",
                "known endpoints: /v1/solve /v1/lint /v1/verify "
                "/v1/analyze /v1/mc/run /v1/healthz /metrics");
            return response;
        }
        if (!isPost) {
            methodNotAllowed("POST");
            return response;
        }

        // Per-tenant quota, keyed on the cooperative tenant header.
        const std::string *tenantHeader =
            request.header("x-lemons-tenant");
        const std::string tenant =
            tenantHeader != nullptr ? *tenantHeader : std::string();
        const TenantQuota::Decision decision = quota.admit(tenant);
        if (!decision.admitted) {
            LEMONS_OBS_INCREMENT("serve.rejected.quota");
            response.status = 429;
            const long waitSeconds = std::lround(
                std::ceil(decision.retryAfterSeconds));
            response.headers.emplace_back(
                "Retry-After",
                std::to_string(waitSeconds < 1 ? 1 : waitSeconds));
            response.body = errorEnvelope(
                lint::Code::S007,
                "request quota exhausted for tenant \"" + tenant + "\"",
                "retry after the Retry-After interval, or spread "
                "load across tenants");
            return response;
        }

        api::ServiceResult result;
        if (request.target == "/v1/solve") {
            result = service.solve(request.body);
        } else if (request.target == "/v1/lint") {
            result = service.lint(request.body);
        } else if (request.target == "/v1/verify") {
            result = service.verify(request.body);
        } else if (request.target == "/v1/analyze") {
            result = service.analyze(request.body);
        } else {
            api::McExecution exec;
            exec.cancel = &drainCancel;
            exec.deadline =
                std::chrono::steady_clock::now() + opts.mcDeadline;
            result = service.mcRun(request.body, exec);
        }
        response.status = result.status;
        response.body = std::move(result.body);
        return response;
    } catch (const std::exception &fault) {
        LEMONS_OBS_INCREMENT("serve.errors.internal");
        response.status = 500;
        response.headers.clear();
        response.body = errorEnvelope(
            lint::Code::S012,
            std::string("internal error: ") + fault.what());
        return response;
    } catch (...) {
        LEMONS_OBS_INCREMENT("serve.errors.internal");
        response.status = 500;
        response.headers.clear();
        response.body =
            errorEnvelope(lint::Code::S012, "internal error");
        return response;
    }
}

void
Server::writeAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t wrote =
            ::send(fd, bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote <= 0)
            return; // peer gone or timeout: nothing left to do
        sent += static_cast<size_t>(wrote);
    }
}

void
Server::beginDrain()
{
    drainRequested.store(true, std::memory_order_release);
}

void
Server::waitDrained()
{
    beginDrain();
    if (acceptor.joinable())
        acceptor.join();

    std::unique_lock<std::mutex> lock(mu);
    if (!idle.wait_for(lock, opts.drainGrace,
                       [this] { return inflightCount == 0; })) {
        // Grace expired: stop in-flight Monte Carlo runs at their
        // next wave boundary. Handlers still produce well-formed
        // (partial, interrupted-flagged) responses.
        LEMONS_OBS_INCREMENT("serve.drain.cancelled");
        drainCancel.cancel();
        idle.wait(lock, [this] { return inflightCount == 0; });
    }
}

void
Server::stop()
{
    if (listenFd < 0 && !acceptor.joinable())
        return;
    waitDrained();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

} // namespace lemons::serve
