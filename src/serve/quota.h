/**
 * @file
 * Per-tenant admission quotas for lemonsd: a token bucket per tenant
 * key, refilled continuously at a configured rate up to a burst cap.
 *
 * Tenancy is cooperative — the `X-Lemons-Tenant` request header names
 * the bucket (absent means the shared "" tenant) — so the quota layer
 * is fairness plumbing for trusted CI fleets sharing one daemon, not
 * an authentication boundary. A denied admit() reports how long until
 * one whole token exists again, which the server rounds up into a
 * Retry-After header.
 *
 * The clock is injectable so tests drive refill deterministically
 * instead of sleeping.
 */

#ifndef LEMONS_SERVE_QUOTA_H_
#define LEMONS_SERVE_QUOTA_H_

#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace lemons::serve {

/** Token-bucket parameters shared by every tenant. */
struct QuotaOptions
{
    /** Sustained requests/second per tenant; <= 0 disables quotas. */
    double ratePerSecond = 10.0;
    /** Bucket capacity: requests a tenant may burst back-to-back. */
    double burst = 20.0;
};

/** Per-tenant token buckets behind one mutex. */
class TenantQuota
{
  public:
    using Clock = std::chrono::steady_clock;
    using ClockFn = std::function<Clock::time_point()>;

    /** What admit() decided. */
    struct Decision
    {
        bool admitted = true;
        /** Seconds until one full token exists; 0 when admitted. */
        double retryAfterSeconds = 0.0;
    };

    /** @param now Test override; defaults to the steady clock. */
    explicit TenantQuota(QuotaOptions options, ClockFn now = {});

    /** Take one token from @p tenant's bucket (creating it full). */
    Decision admit(const std::string &tenant);

    /** Tenants currently tracked (test/metrics visibility). */
    size_t tenantCount() const;

  private:
    struct Bucket
    {
        double tokens = 0.0;
        Clock::time_point lastRefill;
    };

    QuotaOptions opts;
    ClockFn clock;
    mutable std::mutex mu;
    std::map<std::string, Bucket> buckets;
};

} // namespace lemons::serve

#endif // LEMONS_SERVE_QUOTA_H_
