#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace lemons::serve {

namespace {

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

std::string_view
trimSpace(std::string_view text)
{
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
        text.remove_prefix(1);
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t'))
        text.remove_suffix(1);
    return text;
}

/** Strict decimal parse for Content-Length: digits only, no sign. */
bool
parseContentLength(std::string_view text, size_t &out)
{
    if (text.empty() || text.size() > 15)
        return false;
    size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<size_t>(c - '0');
    }
    out = value;
    return true;
}

} // namespace

const std::string *
HttpRequest::header(std::string_view name) const
{
    const std::string wanted = toLower(name);
    for (const auto &[key, value] : headers)
        if (key == wanted)
            return &value;
    return nullptr;
}

RequestParser::RequestParser(HttpLimits requestLimits)
    : limits(requestLimits)
{
}

void
RequestParser::fail(lint::Code diagnostic, int httpStatus, std::string why)
{
    phase = Phase::Error;
    code = diagnostic;
    status = httpStatus;
    message = std::move(why);
    buffer.clear();
}

void
RequestParser::feed(std::string_view bytes)
{
    if (phase == Phase::Complete || phase == Phase::Error)
        return;
    buffer.append(bytes);
    if (phase == Phase::Head) {
        if (buffer.size() > limits.maxHeaderBytes &&
            buffer.find("\r\n\r\n") == std::string::npos) {
            fail(lint::Code::S006, 431,
                 "request head exceeds the header size limit");
            return;
        }
        parseHead();
    }
    if (phase == Phase::Body && buffer.size() >= contentLength) {
        parsed.body = buffer.substr(0, contentLength);
        buffer.clear();
        phase = Phase::Complete;
    }
}

void
RequestParser::finish()
{
    if (phase == Phase::Head) {
        fail(lint::Code::S006, 400,
             "connection closed before the request head completed");
    } else if (phase == Phase::Body) {
        std::ostringstream why;
        why << "connection closed mid-body: got " << buffer.size()
            << " of " << contentLength << " declared bytes";
        fail(lint::Code::S006, 400, why.str());
    }
}

void
RequestParser::parseHead()
{
    const size_t headEnd = buffer.find("\r\n\r\n");
    if (headEnd == std::string::npos)
        return;
    if (headEnd + 4 > limits.maxHeaderBytes) {
        fail(lint::Code::S006, 431,
             "request head exceeds the header size limit");
        return;
    }

    size_t lineStart = 0;
    bool first = true;
    while (lineStart <= headEnd) {
        const size_t lineEnd = buffer.find("\r\n", lineStart);
        const std::string_view line =
            std::string_view(buffer).substr(lineStart, lineEnd - lineStart);
        if (first) {
            if (!parseStartLine(line))
                return;
            first = false;
        } else if (!line.empty()) {
            if (!parseHeaderLine(line))
                return;
        }
        lineStart = lineEnd + 2;
        if (lineEnd == headEnd)
            break;
    }

    buffer.erase(0, headEnd + 4);
    finishHead();
}

bool
RequestParser::parseStartLine(std::string_view line)
{
    const size_t firstSpace = line.find(' ');
    const size_t lastSpace = line.rfind(' ');
    if (firstSpace == std::string_view::npos || firstSpace == lastSpace) {
        fail(lint::Code::S006, 400,
             "start line is not 'METHOD target HTTP/version'");
        return false;
    }
    parsed.method = std::string(line.substr(0, firstSpace));
    parsed.target = std::string(
        line.substr(firstSpace + 1, lastSpace - firstSpace - 1));
    parsed.version = std::string(line.substr(lastSpace + 1));
    if (parsed.method.empty() ||
        !std::all_of(parsed.method.begin(), parsed.method.end(),
                     [](char c) { return c >= 'A' && c <= 'Z'; })) {
        fail(lint::Code::S006, 400, "malformed request method");
        return false;
    }
    if (parsed.target.empty() || parsed.target.front() != '/') {
        fail(lint::Code::S006, 400,
             "request target must be an absolute path");
        return false;
    }
    if (parsed.version != "HTTP/1.1" && parsed.version != "HTTP/1.0") {
        fail(lint::Code::S006, 400,
             "unsupported HTTP version \"" + parsed.version + "\"");
        return false;
    }
    return true;
}

bool
RequestParser::parseHeaderLine(std::string_view line)
{
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
        fail(lint::Code::S006, 400, "malformed header line");
        return false;
    }
    std::string name = toLower(line.substr(0, colon));
    // RFC 7230: no whitespace between field name and colon.
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
        fail(lint::Code::S006, 400,
             "whitespace in header field name");
        return false;
    }
    const std::string value(trimSpace(line.substr(colon + 1)));
    parsed.headers.emplace_back(std::move(name), value);
    return true;
}

void
RequestParser::finishHead()
{
    if (const std::string *encoding = parsed.header("transfer-encoding")) {
        static_cast<void>(encoding);
        fail(lint::Code::S006, 400,
             "transfer-encoding is not supported; send a "
             "Content-Length body");
        return;
    }

    size_t declared = 0;
    size_t seen = 0;
    for (const auto &[name, value] : parsed.headers) {
        if (name != "content-length")
            continue;
        ++seen;
        size_t parsedLength = 0;
        if (!parseContentLength(value, parsedLength)) {
            fail(lint::Code::S006, 400,
                 "Content-Length \"" + value +
                     "\" is not a valid length");
            return;
        }
        if (seen > 1 && parsedLength != declared) {
            fail(lint::Code::S006, 400,
                 "conflicting Content-Length headers");
            return;
        }
        declared = parsedLength;
    }

    if (declared > limits.maxBodyBytes) {
        std::ostringstream why;
        why << "declared body of " << declared
            << " bytes exceeds the limit of " << limits.maxBodyBytes;
        fail(lint::Code::S005, 413, why.str());
        return;
    }

    contentLength = declared;
    phase = Phase::Body;
    if (buffer.size() >= contentLength) {
        parsed.body = buffer.substr(0, contentLength);
        buffer.clear();
        phase = Phase::Complete;
    }
}

const char *
reasonPhrase(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 413:
        return "Payload Too Large";
    case 422:
        return "Unprocessable Entity";
    case 429:
        return "Too Many Requests";
    case 431:
        return "Request Header Fields Too Large";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

std::string
renderResponse(const HttpResponse &response)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << response.status << ' '
        << reasonPhrase(response.status) << "\r\n";
    out << "Content-Type: " << response.contentType << "\r\n";
    out << "Content-Length: " << response.body.size() << "\r\n";
    for (const auto &[name, value] : response.headers)
        out << name << ": " << value << "\r\n";
    out << "Connection: close\r\n\r\n";
    out << response.body;
    return out.str();
}

} // namespace lemons::serve
