/**
 * @file
 * lemonsd — the lemons designs-as-a-service HTTP server.
 *
 * One acceptor thread owns the listening socket; every accepted
 * connection is handed to engine::ThreadPool::global().submit(), so
 * request handlers run on the same persistent workers that execute
 * Monte Carlo trials and no per-request thread is ever created (the
 * `sim.mc.pool.threads_created` counter stays flat under load, and
 * `sim.mc.pool.submitted` counts exactly the admitted connections).
 *
 * Admission control happens in three layers before a handler runs:
 *
 *   1. in-flight bound — more than maxInflight admitted connections
 *      answers 503 + S009 straight from the acceptor,
 *   2. drain state — once beginDrain() is called new connections get
 *      503 + S008 while in-flight requests finish,
 *   3. per-tenant token buckets — the X-Lemons-Tenant header names a
 *      bucket; an empty one answers 429 + S007 with a Retry-After.
 *
 * Graceful drain rides the engine's cancellation machinery: handlers
 * pass the server's CancelToken and a per-request deadline into
 * /v1/mc/run executions, so waitDrained() first waits drainGrace for
 * requests to finish on their own and then fires the token, which
 * stops in-flight runs at the next wave boundary with a partial,
 * interrupted-flagged (still well-formed) response.
 *
 * Endpoints:
 *   POST /v1/solve    design-space solver        (lemons-api/1)
 *   POST /v1/lint     design-rule findings       (lemons-api/1)
 *   POST /v1/verify   static-verifier findings   (lemons-api/1)
 *   POST /v1/analyze  wear-budget analysis       (lemons-api/1)
 *   POST /v1/mc/run   Monte Carlo over [structure] sections
 *   GET  /v1/healthz  liveness + drain state
 *   GET  /metrics     Prometheus text exposition of the obs registry
 */

#ifndef LEMONS_SERVE_SERVER_H_
#define LEMONS_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "api/service.h"
#include "engine/engine.h"
#include "serve/http.h"
#include "serve/quota.h"

namespace lemons::serve {

/** Everything configurable about one lemonsd instance. */
struct ServerOptions
{
    /** Bind address (IPv4 dotted quad). */
    std::string address = "127.0.0.1";
    /** Bind port; 0 asks the kernel for an ephemeral one. */
    uint16_t port = 0;
    /** Pool workers to provision for concurrent handlers. */
    unsigned workers = 2;
    /** Request-size limits enforced while bytes arrive. */
    HttpLimits http{};
    /** Admitted-but-unfinished connection bound (S009 above it). */
    size_t maxInflight = 64;
    /** Per-tenant token buckets; ratePerSecond <= 0 disables. */
    QuotaOptions quota{};
    /** How long waitDrained() lets in-flight requests finish before
     *  firing the cancel token. */
    std::chrono::milliseconds drainGrace{2000};
    /** Socket receive/send timeout per connection. */
    std::chrono::milliseconds socketTimeout{10000};
    /** Wall-clock budget for one /v1/mc/run execution. */
    std::chrono::milliseconds mcDeadline{30000};
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start the acceptor. Returns false (with the
     * OS error in @p error) when the socket cannot be set up.
     */
    bool start(std::string *error = nullptr);

    /** The bound port (resolves ephemeral binds); 0 before start(). */
    uint16_t boundPort() const { return listenPort; }

    /** Whether beginDrain() has been called. */
    bool draining() const
    {
        return drainRequested.load(std::memory_order_acquire);
    }

    /** Stop admitting new connections; in-flight requests continue. */
    void beginDrain();

    /**
     * Block until every admitted connection has been answered: waits
     * drainGrace for voluntary completion, then cancels in-flight
     * Monte Carlo runs and waits for the (now prompt) remainder.
     */
    void waitDrained();

    /** beginDrain + waitDrained + close the listening socket. */
    void stop();

    /** Connections admitted and not yet answered (tests/metrics). */
    size_t inflight() const;

  private:
    void acceptLoop();
    void handleConnection(int fd);
    /** Route one parsed request to a handler; never throws. */
    HttpResponse route(const HttpRequest &request);
    /** Respond-and-close helper used by the rejection paths. */
    static void writeAll(int fd, const std::string &bytes);
    void finishRequest();

    ServerOptions opts;
    api::Service service;
    TenantQuota quota;

    int listenFd = -1;
    uint16_t listenPort = 0;
    std::thread acceptor;
    std::atomic<bool> drainRequested{false};
    std::atomic<bool> acceptorDone{false};

    engine::CancelToken drainCancel;

    mutable std::mutex mu;
    std::condition_variable idle;
    size_t inflightCount = 0;
};

} // namespace lemons::serve

#endif // LEMONS_SERVE_SERVER_H_
