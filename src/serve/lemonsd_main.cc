/**
 * @file
 * lemonsd — long-running designs-as-a-service daemon.
 *
 *     lemonsd --port 8787
 *     curl -s localhost:8787/v1/solve -d '{"alpha":10,"beta":12}'
 *
 * The process stays up until SIGTERM/SIGINT, then drains gracefully:
 * the acceptor stops, in-flight requests finish (Monte Carlo runs are
 * cancelled at the next wave boundary once the grace period expires),
 * and the daemon exits 0. A second signal during the drain exits
 * immediately.
 *
 * --port 0 binds an ephemeral port; --port-file writes the resolved
 * port (one line) so scripts and the CI smoke test can find it
 * without racing the log output.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "serve/server.h"
#include "util/argparse.h"

namespace {

/** Self-pipe the signal handler writes one byte into. */
int signalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    // Only async-signal-safe calls allowed here.
    const char byte = 's';
    static_cast<void>(::write(signalPipe[1], &byte, 1));
}

} // namespace

int
main(int argc, char **argv)
{
    lemons::serve::ServerOptions options;
    std::string address = options.address;
    uint64_t port = 8787;
    uint64_t maxInflight = options.maxInflight;
    uint64_t maxBody = options.http.maxBodyBytes;
    uint64_t drainGraceMs =
        static_cast<uint64_t>(options.drainGrace.count());
    uint64_t socketTimeoutMs =
        static_cast<uint64_t>(options.socketTimeout.count());
    uint64_t mcDeadlineMs =
        static_cast<uint64_t>(options.mcDeadline.count());
    std::string portFile;

    lemons::ArgParser parser(
        "lemonsd",
        "Serve the lemons design analyses over HTTP/JSON: the design\n"
        "solver, the L/V/A spec pipeline, and reproducible Monte Carlo\n"
        "runs, all speaking the lemons-api/1 envelope.");
    parser.value("--address", &address, "ADDR",
                 "IPv4 address to bind (default 127.0.0.1)");
    parser.value("--port", &port, "PORT",
                 "TCP port to bind; 0 = ephemeral (default 8787)");
    parser.value("--port-file", &portFile, "PATH",
                 "write the resolved port to PATH after binding");
    parser.value("--workers", &options.workers, "N",
                 "thread-pool workers to provision (default 2)");
    parser.value("--max-inflight", &maxInflight, "N",
                 "admitted-connection bound; above it new connections "
                 "get 503 (default 64)");
    parser.value("--max-body", &maxBody, "BYTES",
                 "request body size limit; above it 413 (default 1 MiB)");
    parser.value("--quota-rate", &options.quota.ratePerSecond, "R",
                 "per-tenant sustained requests/second; <= 0 disables "
                 "quotas (default 10)");
    parser.value("--quota-burst", &options.quota.burst, "B",
                 "per-tenant burst capacity in requests (default 20)");
    parser.value("--drain-grace-ms", &drainGraceMs, "MS",
                 "how long a drain lets in-flight requests finish "
                 "before cancelling them (default 2000)");
    parser.value("--socket-timeout-ms", &socketTimeoutMs, "MS",
                 "per-connection receive/send timeout (default 10000)");
    parser.value("--mc-deadline-ms", &mcDeadlineMs, "MS",
                 "wall-clock budget for one /v1/mc/run (default 30000)");
    parser.epilog(
        "endpoints:\n"
        "  POST /v1/solve /v1/lint /v1/verify /v1/analyze /v1/mc/run\n"
        "  GET  /v1/healthz /metrics\n"
        "\n"
        "example:\n"
        "  lemonsd --port 0 --port-file /tmp/lemonsd.port &\n"
        "  curl -s \"localhost:$(cat /tmp/lemonsd.port)/v1/healthz\"");

    switch (parser.parse(argc, argv)) {
    case lemons::ArgParser::Outcome::Ok:
        break;
    case lemons::ArgParser::Outcome::Help:
        return 0;
    case lemons::ArgParser::Outcome::Error:
        std::cerr << parser.error() << '\n';
        return 2;
    }
    if (port > 65535) {
        std::cerr << "lemonsd: --port must be in [0, 65535]\n";
        return 2;
    }

    options.address = address;
    options.port = static_cast<uint16_t>(port);
    options.maxInflight = maxInflight;
    options.http.maxBodyBytes = maxBody;
    options.drainGrace =
        std::chrono::milliseconds(static_cast<int64_t>(drainGraceMs));
    options.socketTimeout = std::chrono::milliseconds(
        static_cast<int64_t>(socketTimeoutMs));
    options.mcDeadline =
        std::chrono::milliseconds(static_cast<int64_t>(mcDeadlineMs));

    if (::pipe(signalPipe) != 0) {
        std::perror("lemonsd: pipe");
        return 1;
    }
    struct sigaction action = {};
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    // A dying client mid-write must not kill the daemon.
    signal(SIGPIPE, SIG_IGN);

    lemons::serve::Server server(options);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "lemonsd: " << error << '\n';
        return 1;
    }

    if (!portFile.empty()) {
        std::ofstream out(portFile, std::ios::trunc);
        out << server.boundPort() << '\n';
        if (!out) {
            std::cerr << "lemonsd: cannot write --port-file " << portFile
                      << '\n';
            server.stop();
            return 1;
        }
    }
    std::cout << "lemonsd: listening on " << options.address << ':'
              << server.boundPort() << std::endl;

    // Park until the first signal arrives.
    char byte = 0;
    while (::read(signalPipe[0], &byte, 1) < 0 && errno == EINTR)
        continue;
    std::cout << "lemonsd: draining (" << server.inflight()
              << " request(s) in flight)" << std::endl;
    server.beginDrain();
    server.waitDrained();
    server.stop();
    std::cout << "lemonsd: drained, exiting" << std::endl;
    return 0;
}
