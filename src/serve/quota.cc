#include "serve/quota.h"

#include <algorithm>

namespace lemons::serve {

TenantQuota::TenantQuota(QuotaOptions options, ClockFn now)
    : opts(options), clock(std::move(now))
{
    if (!clock)
        clock = [] { return Clock::now(); };
}

TenantQuota::Decision
TenantQuota::admit(const std::string &tenant)
{
    if (opts.ratePerSecond <= 0.0)
        return {};

    const Clock::time_point now = clock();
    const std::lock_guard<std::mutex> lock(mu);
    auto [it, created] = buckets.try_emplace(tenant);
    Bucket &bucket = it->second;
    if (created) {
        // New tenants start with a full bucket: the first request of
        // a quiet client is never the one that gets throttled.
        bucket.tokens = opts.burst;
        bucket.lastRefill = now;
    } else {
        const double elapsed =
            std::chrono::duration<double>(now - bucket.lastRefill)
                .count();
        bucket.tokens = std::min(
            opts.burst, bucket.tokens + elapsed * opts.ratePerSecond);
        bucket.lastRefill = now;
    }

    if (bucket.tokens >= 1.0) {
        bucket.tokens -= 1.0;
        return {};
    }

    Decision denied;
    denied.admitted = false;
    denied.retryAfterSeconds =
        (1.0 - bucket.tokens) / opts.ratePerSecond;
    return denied;
}

size_t
TenantQuota::tenantCount() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return buckets.size();
}

} // namespace lemons::serve
