/**
 * @file
 * Shamir (k, n) threshold secret sharing over GF(2^8).
 *
 * The paper (Section 4.1.4) encodes the storage decryption key into n
 * components spread across read-destructive storage behind NEMS
 * switches: at least k components are needed to recover the key, and
 * k-1 or fewer reveal *nothing* (information-theoretic secrecy). Each
 * secret byte is the constant term of an independent uniformly random
 * polynomial of degree k-1 (paper Eq. 7); share i is the evaluation at
 * x = i.
 */

#ifndef LEMONS_SHAMIR_SHAMIR_H_
#define LEMONS_SHAMIR_SHAMIR_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace lemons::shamir {

/** One secret share: evaluation index plus one byte per secret byte. */
struct Share
{
    uint8_t index;                ///< x coordinate, 1-based, <= n.
    std::vector<uint8_t> payload; ///< Same length as the secret.

    bool operator==(const Share &other) const = default;
};

/**
 * A (k, n) threshold scheme. Immutable after construction; split and
 * combine are const.
 */
class Scheme
{
  public:
    /**
     * @param k Threshold: shares required to reconstruct (>= 1).
     * @param n Total shares issued (k <= n <= 255).
     */
    Scheme(size_t k, size_t n);

    /** Reconstruction threshold. */
    size_t k() const { return threshold; }
    /** Total share count. */
    size_t n() const { return total; }

    /**
     * Split @p secret into n shares.
     *
     * @param secret Secret bytes (any length, including empty).
     * @param rng Randomness for the masking polynomials. Secrecy of the
     *        scheme is only as good as this source; production use
     *        would substitute a CSPRNG, which is out of scope for the
     *        simulation (documented in DESIGN.md).
     */
    std::vector<Share> split(const std::vector<uint8_t> &secret,
                             Rng &rng) const;

    /**
     * Reconstruct the secret from any k or more shares.
     *
     * @return The secret, or nullopt when the shares are unusable
     *         (fewer than k, duplicate/out-of-range indices, or
     *         mismatched payload lengths).
     */
    std::optional<std::vector<uint8_t>>
    combine(const std::vector<Share> &shares) const;

  private:
    size_t threshold;
    size_t total;
};

} // namespace lemons::shamir

#endif // LEMONS_SHAMIR_SHAMIR_H_
