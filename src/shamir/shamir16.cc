#include "shamir/shamir16.h"

#include <unordered_set>

#include "gf/gf65536.h"
#include "util/math.h"
#include "util/require.h"

namespace lemons::shamir {

namespace {

/** Pack bytes into big-endian 16-bit symbols, zero-padding the tail. */
std::vector<uint16_t>
packSymbols(const std::vector<uint8_t> &bytes)
{
    std::vector<uint16_t> symbols(
        static_cast<size_t>(ceilDiv(bytes.size(), 2)));
    for (size_t i = 0; i < bytes.size(); ++i) {
        const size_t sym = i / 2;
        if (i % 2 == 0)
            symbols[sym] = static_cast<uint16_t>(bytes[i] << 8);
        else
            symbols[sym] = static_cast<uint16_t>(symbols[sym] | bytes[i]);
    }
    return symbols;
}

/** Unpack symbols back into exactly @p byteCount bytes. */
std::vector<uint8_t>
unpackSymbols(const std::vector<uint16_t> &symbols, size_t byteCount)
{
    std::vector<uint8_t> bytes(byteCount);
    for (size_t i = 0; i < byteCount; ++i) {
        const uint16_t sym = symbols[i / 2];
        bytes[i] = i % 2 == 0 ? static_cast<uint8_t>(sym >> 8)
                              : static_cast<uint8_t>(sym & 0xff);
    }
    return bytes;
}

/** Horner evaluation of a polynomial over GF(2^16). */
uint16_t
evalPoly(const std::vector<uint16_t> &coeffs, uint16_t x)
{
    uint16_t acc = 0;
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it)
        acc = gf16::add(gf16::mul(acc, x), *it);
    return acc;
}

} // namespace

std::vector<uint8_t>
WideShare::toBytes() const
{
    std::vector<uint8_t> out;
    out.reserve(2 + 2 * payload.size());
    out.push_back(static_cast<uint8_t>(index >> 8));
    out.push_back(static_cast<uint8_t>(index & 0xff));
    for (uint16_t sym : payload) {
        out.push_back(static_cast<uint8_t>(sym >> 8));
        out.push_back(static_cast<uint8_t>(sym & 0xff));
    }
    return out;
}

std::optional<WideShare>
WideShare::fromBytes(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 2 || bytes.size() % 2 != 0)
        return std::nullopt;
    WideShare share;
    share.index = static_cast<uint16_t>((bytes[0] << 8) | bytes[1]);
    share.payload.resize(bytes.size() / 2 - 1);
    for (size_t i = 0; i < share.payload.size(); ++i) {
        share.payload[i] = static_cast<uint16_t>(
            (bytes[2 + 2 * i] << 8) | bytes[3 + 2 * i]);
    }
    return share;
}

WideScheme::WideScheme(size_t k, size_t n) : threshold(k), total(n)
{
    requireArg(k >= 1, "WideScheme: k must be at least 1");
    requireArg(n >= k, "WideScheme: n must be at least k");
    requireArg(n <= 65535, "WideScheme: n must be at most 65535");
}

std::vector<WideShare>
WideScheme::split(const std::vector<uint8_t> &secret, Rng &rng) const
{
    const std::vector<uint16_t> symbols = packSymbols(secret);
    std::vector<WideShare> shares(total);
    for (size_t i = 0; i < total; ++i) {
        shares[i].index = static_cast<uint16_t>(i + 1);
        shares[i].payload.resize(symbols.size());
    }
    std::vector<uint16_t> coeffs(threshold);
    for (size_t s = 0; s < symbols.size(); ++s) {
        coeffs[0] = symbols[s];
        for (size_t c = 1; c < threshold; ++c)
            coeffs[c] = static_cast<uint16_t>(rng.nextBelow(65536));
        for (size_t i = 0; i < total; ++i)
            shares[i].payload[s] = evalPoly(coeffs, shares[i].index);
    }
    return shares;
}

std::optional<std::vector<uint8_t>>
WideScheme::combine(const std::vector<WideShare> &shares,
                    size_t secretBytes) const
{
    if (shares.size() < threshold)
        return std::nullopt;
    const size_t symbolCount =
        static_cast<size_t>(ceilDiv(secretBytes, 2));

    std::unordered_set<uint16_t> seen;
    for (const WideShare &share : shares) {
        if (share.index == 0 || share.index > total)
            return std::nullopt;
        if (!seen.insert(share.index).second)
            return std::nullopt;
        if (share.payload.size() != symbolCount)
            return std::nullopt;
    }

    // Lagrange basis at x = 0 depends only on the share indices, so
    // compute the weights once and reuse across symbols.
    std::vector<uint16_t> weights(threshold);
    for (size_t i = 0; i < threshold; ++i) {
        uint16_t num = 1;
        uint16_t denom = 1;
        for (size_t j = 0; j < threshold; ++j) {
            if (j == i)
                continue;
            num = gf16::mul(num, shares[j].index);
            denom = gf16::mul(
                denom, gf16::sub(shares[j].index, shares[i].index));
        }
        weights[i] = gf16::div(num, denom);
    }

    std::vector<uint16_t> symbols(symbolCount);
    for (size_t s = 0; s < symbolCount; ++s) {
        uint16_t secret = 0;
        for (size_t i = 0; i < threshold; ++i) {
            secret = gf16::add(
                secret, gf16::mul(shares[i].payload[s], weights[i]));
        }
        symbols[s] = secret;
    }
    return unpackSymbols(symbols, secretBytes);
}

} // namespace lemons::shamir
