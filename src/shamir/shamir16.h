/**
 * @file
 * Shamir (k, n) threshold secret sharing over GF(2^16).
 *
 * The GF(2^8) scheme caps n at 255 shares, but the paper's encoded
 * designs at high process variation (Fig 4b, beta = 4) use parallel
 * structures thousands of devices wide. This wide variant packs the
 * secret into 16-bit symbols and supports up to 65,535 shares with the
 * same information-theoretic threshold guarantee.
 */

#ifndef LEMONS_SHAMIR_SHAMIR16_H_
#define LEMONS_SHAMIR_SHAMIR16_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace lemons::shamir {

/** One wide share: 16-bit index plus one 16-bit symbol per secret pair. */
struct WideShare
{
    uint16_t index;                ///< x coordinate, 1-based, <= n.
    std::vector<uint16_t> payload; ///< ceil(secretBytes / 2) symbols.

    bool operator==(const WideShare &other) const = default;

    /** Serialize as big-endian bytes: [idx_hi, idx_lo, sym_hi, ...]. */
    std::vector<uint8_t> toBytes() const;

    /** Parse a serialized share; nullopt on malformed input. */
    static std::optional<WideShare>
    fromBytes(const std::vector<uint8_t> &bytes);
};

/**
 * A (k, n) threshold scheme over GF(2^16). Immutable after
 * construction; split and combine are const.
 */
class WideScheme
{
  public:
    /**
     * @param k Threshold (>= 1).
     * @param n Total shares (k <= n <= 65535).
     */
    WideScheme(size_t k, size_t n);

    /** Reconstruction threshold. */
    size_t k() const { return threshold; }
    /** Total share count. */
    size_t n() const { return total; }

    /**
     * Split @p secret into n shares. Odd-length secrets are padded
     * with a zero byte inside the symbol packing; combine() restores
     * the exact byte length.
     */
    std::vector<WideShare> split(const std::vector<uint8_t> &secret,
                                 Rng &rng) const;

    /**
     * Reconstruct a @p secretBytes -byte secret from any k or more
     * shares. Returns nullopt when the shares are unusable.
     */
    std::optional<std::vector<uint8_t>>
    combine(const std::vector<WideShare> &shares, size_t secretBytes) const;

  private:
    size_t threshold;
    size_t total;
};

} // namespace lemons::shamir

#endif // LEMONS_SHAMIR_SHAMIR16_H_
