#include "shamir/shamir.h"

#include <array>

#include "gf/gf256.h"
#include "gf/poly.h"
#include "obs/metrics.h"
#include "util/require.h"

namespace lemons::shamir {

Scheme::Scheme(size_t k, size_t n) : threshold(k), total(n)
{
    requireArg(k >= 1, "shamir::Scheme: k must be at least 1");
    requireArg(n >= k, "shamir::Scheme: n must be at least k");
    requireArg(n <= 255, "shamir::Scheme: n must be at most 255");
}

std::vector<Share>
Scheme::split(const std::vector<uint8_t> &secret, Rng &rng) const
{
    LEMONS_OBS_INCREMENT("shamir.split.calls");
    LEMONS_OBS_COUNT("shamir.split.bytes", secret.size());
    std::vector<Share> shares(total);
    for (size_t i = 0; i < total; ++i) {
        shares[i].index = static_cast<uint8_t>(i + 1);
        shares[i].payload.resize(secret.size());
    }
    for (size_t b = 0; b < secret.size(); ++b) {
        const gf::Poly p = gf::Poly::random(secret[b], threshold - 1, rng);
        for (size_t i = 0; i < total; ++i)
            shares[i].payload[b] = p.eval(shares[i].index);
    }
    return shares;
}

std::optional<std::vector<uint8_t>>
Scheme::combine(const std::vector<Share> &shares) const
{
    LEMONS_OBS_INCREMENT("shamir.combine.calls");
    if (shares.size() < threshold)
        return std::nullopt;

    std::array<bool, 256> seen{};
    const size_t secretSize = shares.front().payload.size();
    for (const Share &share : shares) {
        if (share.index == 0 || share.index > total)
            return std::nullopt;
        if (seen[share.index])
            return std::nullopt;
        seen[share.index] = true;
        if (share.payload.size() != secretSize)
            return std::nullopt;
    }

    // The Lagrange basis at x = 0 depends only on the share indices,
    // so compute the weights once and reuse them for every byte.
    std::vector<uint8_t> weights(threshold);
    for (size_t i = 0; i < threshold; ++i) {
        uint8_t num = 1;
        uint8_t denom = 1;
        for (size_t j = 0; j < threshold; ++j) {
            if (j == i)
                continue;
            num = gf::mul(num, shares[j].index);
            denom = gf::mul(denom,
                            gf::sub(shares[j].index, shares[i].index));
        }
        weights[i] = gf::div(num, denom);
    }

    std::vector<uint8_t> secret(secretSize);
    for (size_t b = 0; b < secretSize; ++b) {
        uint8_t value = 0;
        for (size_t i = 0; i < threshold; ++i)
            value = gf::add(value,
                            gf::mul(shares[i].payload[b], weights[i]));
        secret[b] = value;
    }
    return secret;
}

} // namespace lemons::shamir
