/**
 * @file
 * Systematic Reed-Solomon erasure coding over GF(2^8).
 *
 * The paper (Section 4.1.4) uses Reed-Solomon codes as "the error
 * correction version of Shamir's secret-sharing scheme": a key is
 * encoded into n component shares, stored behind n wearout devices,
 * such that any k surviving shares reconstruct the key while the
 * reliability of the k-out-of-n structure degrades sharply at the
 * designed access bound (Eq. 8). Device failures manifest as
 * *erasures* (shares that cannot be read), which RS handles up to
 * n - k of.
 *
 * Encoding is systematic: shares with index 1..k carry the raw data
 * chunks, shares k+1..n carry parity. Per byte position j, the encoder
 * takes the unique polynomial p_j of degree < k through the points
 * (i, chunk_i[j]) for i = 1..k and evaluates it at the parity indices;
 * the decoder interpolates through any k received shares.
 */

#ifndef LEMONS_RS_REED_SOLOMON_H_
#define LEMONS_RS_REED_SOLOMON_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace lemons::rs {

/** One coded share: the evaluation index plus the payload bytes. */
struct Share
{
    uint8_t index;                ///< x coordinate, 1-based, <= n.
    std::vector<uint8_t> payload; ///< One byte per data-chunk position.

    /** Serialize as [index, payload...]. */
    std::vector<uint8_t> toBytes() const;

    /** Parse a serialized share; nullopt if too short. */
    static std::optional<Share> fromBytes(const std::vector<uint8_t> &bytes);

    bool operator==(const Share &other) const = default;
};

/**
 * An (n, k) systematic Reed-Solomon erasure code.
 *
 * Immutable after construction; encode/decode are const and
 * thread-compatible.
 */
class RsCode
{
  public:
    /**
     * @param k Number of data shares required to reconstruct (>= 1).
     * @param n Total number of shares (k <= n <= 255).
     */
    RsCode(size_t k, size_t n);

    /** Reconstruction threshold. */
    size_t k() const { return threshold; }
    /** Total share count. */
    size_t n() const { return total; }

    /** Payload bytes per share for a message of @p messageSize bytes. */
    size_t shareSize(size_t messageSize) const;

    /**
     * Encode @p data into n shares. The message is zero-padded up to a
     * multiple of k; callers pass the original size back to decode().
     */
    std::vector<Share> encode(const std::vector<uint8_t> &data) const;

    /**
     * Reconstruct the original message from any subset of shares.
     *
     * @param shares At least k shares; extras are used for consistency
     *        checking. Shares with duplicate indices, out-of-range
     *        indices, or mismatched payload sizes cause failure.
     * @param messageSize Original (pre-padding) message size.
     * @return The message, or nullopt when reconstruction is impossible
     *         (too few shares / malformed shares / inconsistent extras,
     *         which indicates corruption).
     */
    std::optional<std::vector<uint8_t>>
    decode(const std::vector<Share> &shares, size_t messageSize) const;

    /**
     * Check whether a share set is self-consistent: every share beyond
     * the first k must lie on the polynomial the first k define. Used
     * to *detect* (not correct) corrupted shares.
     */
    bool verifyConsistent(const std::vector<Share> &shares) const;

  private:
    size_t threshold;
    size_t total;

    /** Validate a share subset; returns false when unusable. */
    bool sharesUsable(const std::vector<Share> &shares) const;
};

} // namespace lemons::rs

#endif // LEMONS_RS_REED_SOLOMON_H_
