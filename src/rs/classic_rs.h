/**
 * @file
 * Classic BCH-view Reed-Solomon codec over GF(2^8) with full
 * errors-and-erasures correction.
 *
 * The paper frames Reed-Solomon codes as "commonly used in the error
 * correction of large amounts of data in devices such as flash disks,
 * CDs and DVDs" (Section 4.1.4). RsCode (reed_solomon.h) provides the
 * share-oriented *erasure* view the architectures use; this codec
 * provides the classic codeword view with unknown-position error
 * correction:
 *
 *  - generator polynomial g(x) = prod_{i=1}^{n-k} (x - a^i),
 *  - systematic encoding (message followed by parity),
 *  - syndrome computation, Berlekamp-Massey error-locator synthesis,
 *    Chien search, and Forney's algorithm for magnitudes,
 *  - errors-and-erasures decoding: corrects any pattern with
 *    2 * errors + erasures <= n - k.
 */

#ifndef LEMONS_RS_CLASSIC_RS_H_
#define LEMONS_RS_CLASSIC_RS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace lemons::rs {

/**
 * An (n, k) classic Reed-Solomon codec. Immutable after construction;
 * encode/decode are const.
 */
class ClassicRsCodec
{
  public:
    /**
     * @param n Codeword length (k < n <= 255).
     * @param k Message length (>= 1).
     */
    ClassicRsCodec(size_t n, size_t k);

    /** Codeword length. */
    size_t n() const { return length; }
    /** Message length. */
    size_t k() const { return dimension; }
    /** Parity symbols n - k. */
    size_t parity() const { return length - dimension; }
    /** Guaranteed correctable unknown-position errors (n-k)/2. */
    size_t errorCapacity() const { return parity() / 2; }

    /**
     * Systematically encode a k-byte message into an n-byte codeword
     * (message symbols first, parity last). @pre message.size() == k.
     */
    std::vector<uint8_t> encode(const std::vector<uint8_t> &message) const;

    /** Result of a successful decode. */
    struct DecodeResult
    {
        std::vector<uint8_t> message;   ///< recovered k message bytes
        size_t correctedErrors = 0;     ///< unknown-position fixes
        size_t correctedErasures = 0;   ///< known-position fixes
    };

    /**
     * Decode a (possibly corrupted) n-byte codeword.
     *
     * @param received The received codeword. @pre size == n.
     * @param erasurePositions Indices (< n) the caller knows are
     *        unreliable (e.g. worn-out devices). Duplicates rejected.
     * @return The corrected message, or nullopt when the pattern
     *         exceeds 2 * errors + erasures <= n - k (decoder failure
     *         detected).
     */
    std::optional<DecodeResult>
    decode(const std::vector<uint8_t> &received,
           const std::vector<size_t> &erasurePositions = {}) const;

    /** True when @p word is a codeword (all syndromes zero). */
    bool isCodeword(const std::vector<uint8_t> &word) const;

  private:
    size_t length;
    size_t dimension;
    /** g(x), low-order first, degree n - k. */
    std::vector<uint8_t> generator;

    /** Syndromes S_1..S_{n-k} of @p word; empty when all zero. */
    std::vector<uint8_t> syndromes(const std::vector<uint8_t> &word) const;
};

} // namespace lemons::rs

#endif // LEMONS_RS_CLASSIC_RS_H_
